//! The rule model: what the gateway operator writes, before compilation.
//!
//! A [`Rule`] is the human-shaped policy line — prefixes, an optional
//! protocol, an optional destination-port range, and an [`Action`]. The
//! engine never evaluates rules in this form: [`crate::FilterEngine`]
//! compiles them into flattened match arrays (DESIGN.md §13) and the
//! naive interpreter in [`crate::NaiveInterpreter`] keeps this form as
//! the executable reference spec.
//!
//! Match discipline: **most specific wins**, exactly the longest-prefix
//! discipline of `netstack::route::RouteTable` — the rule with the
//! longest combined `src.len + dst.len` that matches the packet is
//! applied, ties broken by insertion order (earlier wins). There is no
//! separate priority field; specificity *is* the priority, so a /32
//! block of one abusive host always beats a /8 allow of the whole
//! network no matter where it sits in the list.

use std::net::Ipv4Addr;

use netstack::ip::Ipv4Packet;
use netstack::route::Prefix;

/// What to do with a matching packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Action {
    /// Forward it.
    #[default]
    Allow,
    /// Drop it.
    Deny,
    /// Forward it while the source's token bucket has tokens; drop
    /// beyond that (the §4.3 flood answer).
    Limit,
}

/// One policy line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Source prefix ([`Prefix::default_route`] matches anything).
    pub src: Prefix,
    /// Destination prefix.
    pub dst: Prefix,
    /// IP protocol, or `None` for any.
    pub proto: Option<u8>,
    /// Inclusive destination-port range (TCP/UDP first fragments only);
    /// `None` matches packets with or without ports.
    pub dports: Option<(u16, u16)>,
    /// The verdict when this rule is the most specific match.
    pub action: Action,
}

impl Rule {
    /// A match-anything rule with the given action.
    pub fn any(action: Action) -> Rule {
        Rule {
            src: Prefix::default_route(),
            dst: Prefix::default_route(),
            proto: None,
            dports: None,
            action,
        }
    }

    /// Narrows the source prefix.
    pub fn from(mut self, src: Prefix) -> Rule {
        self.src = src;
        self
    }

    /// Narrows the destination prefix.
    pub fn to(mut self, dst: Prefix) -> Rule {
        self.dst = dst;
        self
    }

    /// Narrows to one IP protocol.
    pub fn proto(mut self, proto: u8) -> Rule {
        self.proto = Some(proto);
        self
    }

    /// Narrows to an inclusive destination-port range.
    pub fn dports(mut self, lo: u16, hi: u16) -> Rule {
        self.dports = Some((lo, hi));
        self
    }

    /// Combined prefix specificity — the match-priority key shared with
    /// the route table's longest-prefix discipline.
    pub fn specificity(&self) -> u16 {
        u16::from(self.src.len) + u16::from(self.dst.len)
    }
}

/// The per-packet facts the filter matches on, extracted once at the
/// hook point so both the driver (wire bytes) and the stack (decoded
/// packets) feed the same hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// Source address, host byte order.
    pub src: u32,
    /// Destination address, host byte order.
    pub dst: u32,
    /// IP protocol number.
    pub proto: u8,
    /// Destination port, valid only when `has_port`.
    pub dport: u16,
    /// True when the packet is a TCP/UDP first fragment whose transport
    /// header (and thus destination port) is visible.
    pub has_port: bool,
}

impl PacketMeta {
    /// Extracts the match fields straight from wire bytes — the
    /// `rint` hook, where the datagram has not been decoded (or even
    /// copied) yet. Returns `None` for anything too short or non-IPv4;
    /// the caller drops those as bad frames exactly as before.
    pub fn parse(bytes: &[u8]) -> Option<PacketMeta> {
        if bytes.len() < 20 || bytes[0] >> 4 != 4 {
            return None;
        }
        let ihl = usize::from(bytes[0] & 0x0F) * 4;
        let proto = bytes[9];
        let src = u32::from_be_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
        let dst = u32::from_be_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
        let frag_offset = u16::from_be_bytes([bytes[6], bytes[7]]) & 0x1FFF;
        let mut meta = PacketMeta {
            src,
            dst,
            proto,
            dport: 0,
            has_port: false,
        };
        if (proto == 6 || proto == 17) && frag_offset == 0 && bytes.len() >= ihl + 4 {
            meta.dport = u16::from_be_bytes([bytes[ihl + 2], bytes[ihl + 3]]);
            meta.has_port = true;
        }
        Some(meta)
    }

    /// Extracts the match fields from a decoded packet — the forward
    /// and encapsulate hooks, where the stack already holds an
    /// [`Ipv4Packet`].
    pub fn of(p: &Ipv4Packet) -> PacketMeta {
        let proto = p.proto.code();
        let mut meta = PacketMeta {
            src: u32::from(p.src),
            dst: u32::from(p.dst),
            proto,
            dport: 0,
            has_port: false,
        };
        if (proto == 6 || proto == 17) && p.frag_offset == 0 && p.payload.len() >= 4 {
            meta.dport = u16::from_be_bytes([p.payload[2], p.payload[3]]);
            meta.has_port = true;
        }
        meta
    }

    /// The source as an address (for traces).
    pub fn src_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.src)
    }

    /// The destination as an address (for traces).
    pub fn dst_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::ip::Proto;

    #[test]
    fn wire_parse_matches_decoded_packet() {
        let mut payload = vec![0u8; 8];
        payload[0..2].copy_from_slice(&1024u16.to_be_bytes());
        payload[2..4].copy_from_slice(&23u16.to_be_bytes());
        let p = Ipv4Packet::new(
            Ipv4Addr::new(44, 24, 0, 5),
            Ipv4Addr::new(128, 95, 1, 4),
            Proto::Tcp,
            payload,
        );
        let from_wire = PacketMeta::parse(&p.encode()).unwrap();
        let from_packet = PacketMeta::of(&p);
        assert_eq!(from_wire, from_packet);
        assert_eq!(from_wire.dport, 23);
        assert!(from_wire.has_port);
    }

    #[test]
    fn non_first_fragments_hide_their_ports() {
        let mut p = Ipv4Packet::new(
            Ipv4Addr::new(44, 24, 0, 5),
            Ipv4Addr::new(128, 95, 1, 4),
            Proto::Udp,
            vec![0xAB; 16],
        );
        p.frag_offset = 3;
        let meta = PacketMeta::of(&p);
        assert!(!meta.has_port);
        let wire = PacketMeta::parse(&p.encode()).unwrap();
        assert!(!wire.has_port);
    }

    #[test]
    fn icmp_has_no_port() {
        let p = Ipv4Packet::new(
            Ipv4Addr::new(44, 24, 0, 5),
            Ipv4Addr::new(128, 95, 1, 4),
            Proto::Icmp,
            vec![8, 0, 0, 0],
        );
        assert!(!PacketMeta::of(&p).has_port);
    }

    #[test]
    fn garbage_is_rejected() {
        assert_eq!(PacketMeta::parse(&[0x60; 24]), None, "IPv6 version nibble");
        assert_eq!(PacketMeta::parse(&[0x45; 10]), None, "truncated header");
    }
}
