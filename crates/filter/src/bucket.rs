//! Per-source token buckets: the rate-limit arm of the filter.
//!
//! A direct-mapped array of buckets keyed by a hash of the source
//! address — bounded memory no matter how many sources a spoofed flood
//! invents, which is the point: at hostile scale the attacker chooses
//! the key distribution, so per-source state must be O(1) and
//! preallocated. Colliding sources share a bucket (two chatty sources
//! that collide throttle each other); for policing, aggregate fairness
//! under collision is acceptable where unbounded state is not.
//!
//! All arithmetic is integer micro-tokens — deterministic across runs
//! and platforms, like every other number in the simulator. Refill is
//! computed lazily from the elapsed time at each charge; there is no
//! periodic refill work and no allocation after construction.

use sim::SimTime;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One token, in the fixed-point micro-token unit.
const TOKEN: u64 = 1_000_000;

/// Rate-limit parameters for [`crate::Action::Limit`] flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimitConfig {
    /// Sustained rate, packets per second per bucket.
    pub rate_per_sec: u32,
    /// Burst allowance, packets.
    pub burst: u32,
    /// log2 of the bucket-array size.
    pub bucket_bits: u8,
}

impl Default for LimitConfig {
    fn default() -> LimitConfig {
        LimitConfig {
            // 2 pkt/s sustained with a 10-packet burst: generous for a
            // 1200 bit/s channel that fits ~4 small frames a second.
            rate_per_sec: 2,
            burst: 10,
            bucket_bits: 8,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Micro-tokens available.
    level: u64,
    /// Last refill instant.
    last: SimTime,
}

/// The bucket array.
#[derive(Debug)]
pub(crate) struct TokenBuckets {
    buckets: Box<[Bucket]>,
    mask: usize,
    /// Micro-tokens per second.
    rate: u64,
    /// Level cap, micro-tokens.
    cap: u64,
}

impl TokenBuckets {
    pub(crate) fn new(cfg: LimitConfig) -> TokenBuckets {
        assert!(cfg.bucket_bits >= 1 && cfg.bucket_bits <= 20);
        let n = 1usize << cfg.bucket_bits;
        let cap = u64::from(cfg.burst) * TOKEN;
        TokenBuckets {
            // Buckets start full: a new source gets its burst.
            buckets: vec![
                Bucket {
                    level: cap,
                    last: SimTime::ZERO,
                };
                n
            ]
            .into_boxed_slice(),
            mask: n - 1,
            rate: u64::from(cfg.rate_per_sec) * TOKEN,
            cap,
        }
    }

    /// Tries to take one token from `src`'s bucket; `false` means the
    /// packet exceeds the policed rate and should drop.
    #[inline]
    pub(crate) fn charge(&mut self, src: u32, now: SimTime) -> bool {
        let idx = (u64::from(src).wrapping_mul(SEED) >> 32) as usize & self.mask;
        let b = &mut self.buckets[idx];
        let elapsed_ns = now.saturating_since(b.last).as_nanos();
        b.last = now;
        // rate is ≤ ~2^32·10^6 ≈ 2^52 µtokens/s; elapsed capped so the
        // product stays in u64 (beyond the cap horizon the bucket is
        // full anyway).
        let refill = (elapsed_ns.min(1 << 32)).wrapping_mul(self.rate) / 1_000_000_000;
        b.level = (b.level + refill).min(self.cap);
        if b.level >= TOKEN {
            b.level -= TOKEN;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SimDuration;

    #[test]
    fn burst_then_sustained_rate() {
        let mut tb = TokenBuckets::new(LimitConfig {
            rate_per_sec: 2,
            burst: 4,
            bucket_bits: 4,
        });
        let t0 = SimTime::ZERO;
        // Full burst up front…
        for _ in 0..4 {
            assert!(tb.charge(7, t0));
        }
        // …then empty.
        assert!(!tb.charge(7, t0));
        // Half a second refills one token at 2/s.
        let t1 = t0 + SimDuration::from_millis(500);
        assert!(tb.charge(7, t1));
        assert!(!tb.charge(7, t1));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut tb = TokenBuckets::new(LimitConfig {
            rate_per_sec: 100,
            burst: 3,
            bucket_bits: 4,
        });
        let late = SimTime::from_secs(3600);
        for _ in 0..3 {
            assert!(tb.charge(9, late));
        }
        assert!(!tb.charge(9, late));
    }

    #[test]
    fn distinct_sources_usually_get_distinct_buckets() {
        let mut tb = TokenBuckets::new(LimitConfig {
            rate_per_sec: 1,
            burst: 1,
            bucket_bits: 8,
        });
        let t = SimTime::ZERO;
        assert!(tb.charge(0x2C18_0005, t));
        assert!(tb.charge(0x2C18_0006, t), "neighbour hashes elsewhere");
        assert!(!tb.charge(0x2C18_0005, t));
    }
}
