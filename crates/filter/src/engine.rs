//! The filter engine: gate + compiled rules + decision cache + buckets.
//!
//! Evaluation order on a cache miss (the "full walk"):
//!
//! 1. the §4.3 **gate**: foreign→amateur traffic without a live soft-state
//!    entry is denied outright; amateur→foreign traffic opens/refreshes
//!    the return entry (when `auto_open`);
//! 2. the **compiled ruleset**: most-specific-match over the flattened
//!    arrays (`crate::compiled`);
//! 3. the **action**: `Allow`/`Deny` directly, `Limit` charges the
//!    source's token bucket and drops when it is empty.
//!
//! The conclusion of steps 1–2 — not the final verdict — is inserted
//! into the per-flow decision cache keyed `(src, dst, proto)`, so the
//! steady-state path is one hash-and-compare plus, for `Limit` flows,
//! one bucket charge (the bucket must see every packet; caching its
//! outcome would turn a rate into a latch). Port-dependent walks are
//! never cached. See `crate::cache` for the three invalidation rules.

use std::fmt;

use netstack::icmp::IcmpMessage;
use sim::SimTime;

use crate::bucket::{LimitConfig, TokenBuckets};
use crate::cache::{CachedDecision, DecisionCache};
use crate::compiled::CompiledRuleset;
use crate::gate::{ControlOutcome, GateConfig, GateTable, Mutation};
use crate::rule::{Action, PacketMeta, Rule};

/// Full engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterConfig {
    /// §4.3 soft-state gate; `None` disables it (pure rule filter).
    pub gate: Option<GateConfig>,
    /// The rule table (order-independent; specificity decides).
    pub rules: Vec<Rule>,
    /// Action when no rule matches.
    pub default_action: Action,
    /// log2 of the decision-cache size; 0 disables caching.
    pub cache_bits: u8,
    /// Token-bucket parameters for [`Action::Limit`].
    pub limit: LimitConfig,
}

impl FilterConfig {
    /// Everything allowed, no gate, no rules — policy-transparent: the
    /// E1–E16 scenarios run byte-identically with this installed, which
    /// the transparency test asserts.
    pub fn permissive() -> FilterConfig {
        FilterConfig {
            gate: None,
            rules: Vec::new(),
            default_action: Action::Allow,
            cache_bits: 12,
            limit: LimitConfig::default(),
        }
    }

    /// The paper's gateway posture: §4.3 gate on with defaults, no
    /// extra rules.
    pub fn gateway() -> FilterConfig {
        FilterConfig {
            gate: Some(GateConfig::default()),
            ..FilterConfig::permissive()
        }
    }
}

/// The filter's answer for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Pass it on.
    Allow,
    /// Drop it.
    Deny,
}

impl Verdict {
    /// True for [`Verdict::Allow`].
    pub fn is_allow(self) -> bool {
        self == Verdict::Allow
    }
}

/// Engine counters (E17's scoreboard; also surfaced through
/// `workload::report::EngineTelemetry`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Evaluations answered by the decision cache.
    pub cache_hits: u64,
    /// Evaluations that paid the full walk.
    pub cache_misses: u64,
    /// Final allow verdicts.
    pub allowed: u64,
    /// Final deny verdicts (all causes).
    pub denied: u64,
    /// Denials because no live gate entry admitted the foreign source.
    pub gate_denied: u64,
    /// Gate entries opened by amateur-side traffic.
    pub gate_opened: u64,
    /// Gate entries refreshed by amateur-side traffic.
    pub gate_refreshed: u64,
    /// Gate entries removed by TTL expiry.
    pub gate_expired: u64,
    /// Gate entries force-closed by GateClose.
    pub gate_closed: u64,
    /// Gate entries opened/refreshed by authorized GateOpen messages.
    pub opened_by_message: u64,
    /// Control messages rejected for bad or missing credentials.
    pub auth_failures: u64,
    /// `Limit` packets dropped with an empty token bucket.
    pub tokens_exhausted: u64,
}

/// Why a verdict came out the way it did (trace labelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoteWhy {
    /// Answered from the decision cache.
    Cached,
    /// Matched the rule at this compiled index.
    Rule(u16),
    /// No rule matched; the default action applied.
    Default,
    /// Foreign→amateur with no live gate entry.
    GateNoEntry,
    /// A `Limit` flow whose token bucket ran dry.
    Exhausted,
}

/// One logged decision, drained into the `sim::trace` gateway-policy
/// category when tracing is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterNote {
    /// The packet's match fields.
    pub meta: PacketMeta,
    /// The verdict.
    pub verdict: Verdict,
    /// What decided it.
    pub why: NoteWhy,
}

impl fmt::Display for FilterNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = match self.verdict {
            Verdict::Allow => "allow",
            Verdict::Deny => "deny",
        };
        write!(
            f,
            "{v} {} > {} proto {}",
            self.meta.src_addr(),
            self.meta.dst_addr(),
            self.meta.proto
        )?;
        if self.meta.has_port {
            write!(f, " port {}", self.meta.dport)?;
        }
        match self.why {
            NoteWhy::Cached => write!(f, " [cached]"),
            NoteWhy::Rule(i) => write!(f, " [rule {i}]"),
            NoteWhy::Default => write!(f, " [default]"),
            NoteWhy::GateNoEntry => write!(f, " [no gate entry]"),
            NoteWhy::Exhausted => write!(f, " [rate limit]"),
        }
    }
}

/// Decision-log bound: tracing is a debugging aid, not a flight
/// recorder; beyond this the oldest unread notes are simply counted.
const MAX_NOTES: usize = 4096;

/// The compiled packet-filter engine (DESIGN.md §13).
#[derive(Debug)]
pub struct FilterEngine {
    rules: CompiledRuleset,
    cache: DecisionCache,
    buckets: TokenBuckets,
    gate: Option<GateTable>,
    /// Bumped on any verdict-changing table mutation; cache slots
    /// stamped with an older value are dead. Starts at 1 so a zeroed
    /// slot can never match.
    generation: u32,
    stats: FilterStats,
    log_enabled: bool,
    notes: Vec<FilterNote>,
    notes_dropped: u64,
}

impl FilterEngine {
    /// Builds the engine, compiling the configured rules.
    pub fn new(cfg: FilterConfig) -> FilterEngine {
        FilterEngine {
            rules: CompiledRuleset::compile(&cfg.rules, cfg.default_action),
            cache: DecisionCache::new(cfg.cache_bits),
            buckets: TokenBuckets::new(cfg.limit),
            gate: cfg.gate.map(GateTable::new),
            generation: 1,
            stats: FilterStats::default(),
            log_enabled: false,
            notes: Vec::new(),
            notes_dropped: 0,
        }
    }

    /// Judges one packet. This is the per-packet hot path: allocation-free
    /// (asserted by the `filter_eval` bench) and, on a cache hit, one
    /// hash-and-compare.
    #[inline]
    pub fn eval(&mut self, now: SimTime, m: &PacketMeta) -> Verdict {
        if let Some(hit) = self.cache.lookup(m, self.generation, now) {
            self.stats.cache_hits += 1;
            if hit.refresh_gate {
                self.touch_gate(now, m);
            }
            return self.apply(now, m, hit.action, NoteWhy::Cached);
        }
        self.stats.cache_misses += 1;
        self.eval_miss(now, m)
    }

    /// The cache-miss path: gate, then the full rule walk.
    fn eval_miss(&mut self, now: SimTime, m: &PacketMeta) -> Verdict {
        let mut expires = SimTime::MAX;
        let mut refresh_gate = false;
        let mut gate_deny = false;
        if let Some(g) = &self.gate {
            let src_am = g.is_amateur(m.src);
            let dst_am = g.is_amateur(m.dst);
            if src_am && !dst_am {
                refresh_gate = g.cfg().auto_open;
            } else if !src_am && dst_am {
                match g.live_expiry(now, m.dst, m.src) {
                    // The admission is only as durable as the entry.
                    Some(exp) => expires = exp,
                    None => gate_deny = true,
                }
            }
        }
        if gate_deny {
            self.stats.gate_denied += 1;
            // Cacheable: only an entry opening flips this, and opening
            // bumps the generation.
            self.cache.insert(
                m,
                self.generation,
                CachedDecision {
                    action: Action::Deny,
                    refresh_gate: false,
                    expires: SimTime::MAX,
                },
            );
            return self.apply(now, m, Action::Deny, NoteWhy::GateNoEntry);
        }
        if refresh_gate {
            // May bump the generation (re-opening an expired pair), so
            // it runs before the insert below reads the counter.
            self.touch_gate(now, m);
        }
        let w = self.rules.walk(m);
        if !w.port_dependent {
            self.cache.insert(
                m,
                self.generation,
                CachedDecision {
                    action: w.action,
                    refresh_gate,
                    expires,
                },
            );
        }
        let why = if w.rule == u16::MAX {
            NoteWhy::Default
        } else {
            NoteWhy::Rule(w.rule)
        };
        self.apply(now, m, w.action, why)
    }

    /// Opens or refreshes the gate entry for an amateur→foreign packet.
    #[inline]
    fn touch_gate(&mut self, now: SimTime, m: &PacketMeta) {
        let Some(g) = &mut self.gate else { return };
        let ttl = g.cfg().entry_ttl;
        match g.open(now, m.src, m.dst, ttl) {
            Mutation::Opened => {
                self.generation += 1;
                self.stats.gate_opened += 1;
            }
            Mutation::Refreshed => self.stats.gate_refreshed += 1,
            Mutation::Shortened => {
                // The entry now dies earlier than the expiry stamped into
                // cached admissions — they must not outlive it.
                self.generation += 1;
                self.stats.gate_refreshed += 1;
            }
            _ => {}
        }
    }

    /// Turns a matched action into a final verdict, counting and
    /// logging it.
    #[inline]
    fn apply(&mut self, now: SimTime, m: &PacketMeta, action: Action, why: NoteWhy) -> Verdict {
        let mut why = why;
        let v = match action {
            Action::Allow => Verdict::Allow,
            Action::Deny => Verdict::Deny,
            Action::Limit => {
                if self.buckets.charge(m.src, now) {
                    Verdict::Allow
                } else {
                    self.stats.tokens_exhausted += 1;
                    why = NoteWhy::Exhausted;
                    Verdict::Deny
                }
            }
        };
        match v {
            Verdict::Allow => self.stats.allowed += 1,
            Verdict::Deny => self.stats.denied += 1,
        }
        if self.log_enabled {
            if self.notes.len() < MAX_NOTES {
                self.notes.push(FilterNote {
                    meta: *m,
                    verdict: v,
                    why,
                });
            } else {
                self.notes_dropped += 1;
            }
        }
        v
    }

    // --- Control plane ------------------------------------------------------

    /// Applies a §4.3 gate-control ICMP message; bumps the cache
    /// generation when (and only when) a verdict changed.
    pub fn on_gate_message(
        &mut self,
        now: SimTime,
        from_amateur_side: bool,
        msg: &IcmpMessage,
    ) -> ControlOutcome {
        let Some(g) = &mut self.gate else {
            return ControlOutcome::NoEntry;
        };
        let (outcome, mutation) = g.on_message(now, from_amateur_side, msg);
        match mutation {
            Mutation::Opened => {
                self.generation += 1;
                self.stats.opened_by_message += 1;
            }
            Mutation::Refreshed => self.stats.opened_by_message += 1,
            Mutation::Shortened => {
                self.generation += 1;
                self.stats.opened_by_message += 1;
            }
            Mutation::Closed => {
                self.generation += 1;
                self.stats.gate_closed += 1;
            }
            Mutation::NoOp => {}
        }
        if outcome == ControlOutcome::AuthFailed {
            self.stats.auth_failures += 1;
        }
        outcome
    }

    /// Replaces the rule table (recompiles; invalidates the cache).
    pub fn set_rules(&mut self, rules: &[Rule]) {
        let default_action = self.rules.default_action();
        self.rules = CompiledRuleset::compile(rules, default_action);
        self.generation += 1;
    }

    // --- Soft-state maintenance ---------------------------------------------

    /// Sweeps expired gate entries (called when
    /// [`next_deadline`](FilterEngine::next_deadline) comes due; verdicts
    /// never depend on the sweep, see `crate::gate`).
    pub fn expire(&mut self, now: SimTime) {
        if let Some(g) = &mut self.gate {
            self.stats.gate_expired += g.expire(now);
        }
    }

    /// The earliest instant soft state can decay — folded into the
    /// host's scheduler deadline, per the PR 2 discipline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.gate.as_ref().and_then(|g| g.next_deadline())
    }

    // --- Introspection ------------------------------------------------------

    /// Counters.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Current cache generation.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Compiled rule count.
    pub fn rules_len(&self) -> usize {
        self.rules.len()
    }

    /// Live + not-yet-swept gate entries.
    pub fn gate_len(&self) -> usize {
        self.gate.as_ref().map_or(0, |g| g.len())
    }

    /// Decision-cache slot count.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Whether the §4.3 gate is configured.
    pub fn gate_enabled(&self) -> bool {
        self.gate.is_some()
    }

    // --- Decision log -------------------------------------------------------

    /// Turns per-decision logging on or off (the trace integration sets
    /// this from the world's trace state; off is the default and costs
    /// one branch per packet).
    pub fn set_logging(&mut self, on: bool) {
        self.log_enabled = on;
        if !on {
            self.notes.clear();
        }
    }

    /// Whether decisions are being logged.
    pub fn logging(&self) -> bool {
        self.log_enabled
    }

    /// Drains logged decisions (oldest first).
    pub fn take_notes(&mut self) -> Vec<FilterNote> {
        std::mem::take(&mut self.notes)
    }

    /// Notes discarded because the log bound was hit between drains.
    pub fn notes_dropped(&self) -> u64 {
        self.notes_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::route::Prefix;
    use sim::SimDuration;
    use std::net::Ipv4Addr;

    fn meta(src: [u8; 4], dst: [u8; 4], proto: u8) -> PacketMeta {
        PacketMeta {
            src: u32::from(Ipv4Addr::from(src)),
            dst: u32::from(Ipv4Addr::from(dst)),
            proto,
            dport: 0,
            has_port: false,
        }
    }

    const AM: [u8; 4] = [44, 24, 0, 5];
    const FO: [u8; 4] = [128, 95, 1, 4];

    #[test]
    fn gate_round_trip_through_the_engine() {
        let mut e = FilterEngine::new(FilterConfig::gateway());
        let t0 = SimTime::ZERO;
        // Unsolicited foreign→amateur: denied (and cached as denied).
        assert_eq!(e.eval(t0, &meta(FO, AM, 6)), Verdict::Deny);
        assert_eq!(e.eval(t0, &meta(FO, AM, 6)), Verdict::Deny);
        assert_eq!(e.stats().cache_hits, 1);
        assert_eq!(e.stats().gate_denied, 1, "second deny came from cache");
        // Amateur initiates: opens the pair, bumps the generation, and
        // the stale cached denial dies with it.
        assert_eq!(e.eval(t0, &meta(AM, FO, 6)), Verdict::Allow);
        assert_eq!(e.eval(t0, &meta(FO, AM, 6)), Verdict::Allow);
        // Pairwise only.
        assert_eq!(e.eval(t0, &meta([128, 95, 1, 9], AM, 6)), Verdict::Deny);
        assert_eq!(e.stats().gate_opened, 1);
    }

    #[test]
    fn cached_amateur_flow_keeps_refreshing_the_entry() {
        let mut e = FilterEngine::new(FilterConfig::gateway());
        let mut t = SimTime::ZERO;
        // Steady amateur→foreign traffic, one packet per 400 s: every
        // one refreshes the 600 s entry, so the return path stays open
        // far beyond the original TTL — even though all but the first
        // evaluation is a cache hit.
        for _ in 0..5 {
            assert_eq!(e.eval(t, &meta(AM, FO, 17)), Verdict::Allow);
            t += SimDuration::from_secs(400);
        }
        assert!(e.stats().cache_hits >= 4);
        assert_eq!(e.stats().gate_refreshed, 4);
        assert_eq!(e.eval(t, &meta(FO, AM, 17)), Verdict::Allow);
    }

    #[test]
    fn entry_expiry_closes_the_return_path_without_a_sweep() {
        let mut e = FilterEngine::new(FilterConfig::gateway());
        let t0 = SimTime::ZERO;
        e.eval(t0, &meta(AM, FO, 17));
        assert_eq!(e.eval(t0, &meta(FO, AM, 17)), Verdict::Allow);
        let late = t0 + SimDuration::from_secs(601);
        // The cached admission carried the entry's expiry stamp.
        assert_eq!(e.eval(late, &meta(FO, AM, 17)), Verdict::Deny);
        // Deadline-driven sweep accounts for it.
        assert_eq!(e.next_deadline(), Some(t0 + SimDuration::from_secs(600)));
        e.expire(late);
        assert_eq!(e.stats().gate_expired, 1);
        assert_eq!(e.gate_len(), 0);
    }

    #[test]
    fn gate_close_invalidates_cached_admissions() {
        let mut e = FilterEngine::new(FilterConfig::gateway());
        let t0 = SimTime::ZERO;
        e.eval(t0, &meta(AM, FO, 6));
        assert_eq!(e.eval(t0, &meta(FO, AM, 6)), Verdict::Allow);
        assert_eq!(e.eval(t0, &meta(FO, AM, 6)), Verdict::Allow, "cached");
        let gen = e.generation();
        let close = IcmpMessage::GateClose {
            amateur: Ipv4Addr::from(AM),
            foreign: Ipv4Addr::from(FO),
            auth: None,
        };
        assert_eq!(e.on_gate_message(t0, true, &close), ControlOutcome::Applied);
        assert_eq!(e.generation(), gen + 1);
        assert_eq!(e.eval(t0, &meta(FO, AM, 6)), Verdict::Deny);
    }

    #[test]
    fn limit_rules_throttle_but_never_latch() {
        let mut cfg = FilterConfig::permissive();
        cfg.rules = vec![Rule::any(Action::Limit).from(Prefix::new(Ipv4Addr::from(FO), 24))];
        cfg.limit = LimitConfig {
            rate_per_sec: 1,
            burst: 2,
            bucket_bits: 4,
        };
        let mut e = FilterEngine::new(cfg);
        let t0 = SimTime::ZERO;
        let m = meta(FO, AM, 17);
        assert_eq!(e.eval(t0, &m), Verdict::Allow);
        assert_eq!(e.eval(t0, &m), Verdict::Allow);
        assert_eq!(e.eval(t0, &m), Verdict::Deny, "burst exhausted");
        assert_eq!(e.stats().tokens_exhausted, 1);
        // A second later the bucket has a token again — the cached
        // Limit classification consults the bucket every time.
        let t1 = t0 + SimDuration::from_secs(1);
        assert_eq!(e.eval(t1, &m), Verdict::Allow);
        assert!(e.stats().cache_hits >= 2);
    }

    #[test]
    fn set_rules_takes_effect_on_cached_flows() {
        let mut e = FilterEngine::new(FilterConfig::permissive());
        let t0 = SimTime::ZERO;
        let m = meta([1, 2, 3, 4], [5, 6, 7, 8], 6);
        assert_eq!(e.eval(t0, &m), Verdict::Allow);
        assert_eq!(e.eval(t0, &m), Verdict::Allow, "cached");
        e.set_rules(&[Rule::any(Action::Deny)]);
        assert_eq!(e.eval(t0, &m), Verdict::Deny);
    }

    #[test]
    fn permissive_engine_is_inert() {
        let mut e = FilterEngine::new(FilterConfig::permissive());
        assert_eq!(e.next_deadline(), None);
        assert_eq!(e.eval(SimTime::ZERO, &meta(FO, AM, 6)), Verdict::Allow);
        assert_eq!(e.eval(SimTime::ZERO, &meta(AM, FO, 6)), Verdict::Allow);
        assert_eq!(e.next_deadline(), None, "no soft state accrues");
        assert_eq!(e.gate_len(), 0);
    }

    #[test]
    fn notes_are_logged_only_when_enabled() {
        let mut e = FilterEngine::new(FilterConfig::gateway());
        e.eval(SimTime::ZERO, &meta(FO, AM, 6));
        assert!(e.take_notes().is_empty());
        e.set_logging(true);
        e.eval(SimTime::ZERO, &meta(FO, AM, 6));
        let notes = e.take_notes();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].verdict, Verdict::Deny);
        let s = notes[0].to_string();
        assert!(s.contains("deny 128.95.1.4 > 44.24.0.5"), "{s}");
    }
}
