//! The executable reference spec: a naive first-match interpreter.
//!
//! Walks the *uncompiled* rule list for every packet — no sorting, no
//! flattening, no cache, no generation counter — scoring each rule with
//! `Prefix::contains` and keeping the most specific match (earliest
//! insertion on ties), exactly the discipline the compiled engine is
//! supposed to implement. The differential proptests pit
//! [`crate::FilterEngine`] against this over random tables, packet
//! streams, and mid-stream table swaps; any divergence is an engine bug
//! by definition, same as the scalar byte-kernel specs of PR 5.

use crate::rule::{Action, PacketMeta, Rule};

/// The interpreter.
#[derive(Debug, Clone)]
pub struct NaiveInterpreter {
    rules: Vec<Rule>,
    default_action: Action,
}

impl NaiveInterpreter {
    /// Builds the interpreter over an owned copy of the rules.
    pub fn new(rules: &[Rule], default_action: Action) -> NaiveInterpreter {
        NaiveInterpreter {
            rules: rules.to_vec(),
            default_action,
        }
    }

    /// Replaces the table (mirror of `FilterEngine::set_rules`).
    pub fn set_rules(&mut self, rules: &[Rule]) {
        self.rules = rules.to_vec();
    }

    /// Classifies one packet: the most specific matching rule's action,
    /// or the default.
    pub fn classify(&self, m: &PacketMeta) -> Action {
        let src = std::net::Ipv4Addr::from(m.src);
        let dst = std::net::Ipv4Addr::from(m.dst);
        let mut best: Option<(u16, Action)> = None;
        for r in &self.rules {
            if !r.src.contains(src) || !r.dst.contains(dst) {
                continue;
            }
            if let Some(p) = r.proto {
                if p != m.proto {
                    continue;
                }
            }
            if let Some((lo, hi)) = r.dports {
                if !(m.has_port && m.dport >= lo && m.dport <= hi) {
                    continue;
                }
            }
            let spec = r.specificity();
            // Strictly-greater keeps the earliest rule on ties, because
            // iteration is in insertion order.
            if best.is_none_or(|(b, _)| spec > b) {
                best = Some((spec, r.action));
            }
        }
        best.map_or(self.default_action, |(_, a)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::route::Prefix;
    use std::net::Ipv4Addr;

    #[test]
    fn most_specific_wins_regardless_of_position() {
        let rules = [
            Rule::any(Action::Allow).from(Prefix::amprnet()),
            Rule::any(Action::Deny).from(Prefix::new(Ipv4Addr::new(44, 24, 0, 66), 32)),
        ];
        let i = NaiveInterpreter::new(&rules, Action::Allow);
        let bad = PacketMeta {
            src: u32::from(Ipv4Addr::new(44, 24, 0, 66)),
            dst: u32::from(Ipv4Addr::new(128, 95, 1, 4)),
            proto: 6,
            dport: 25,
            has_port: true,
        };
        assert_eq!(i.classify(&bad), Action::Deny);
    }
}
