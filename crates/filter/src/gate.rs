//! §4.3 soft state: the amateur-initiated access table, engine-grade.
//!
//! Same contract as the paper (this table replaced the minimal
//! standalone ACL the E5 model started with): traffic from the amateur side
//! opens or refreshes a `(amateur, foreign)` pair entry; traffic from
//! the foreign side is admitted only through a live entry; entries decay
//! on a TTL; the authenticated GateOpen/GateClose ICMP messages manage
//! entries remotely. The differences are engine concerns:
//!
//! * liveness is judged lazily against the stored expiry (a verdict
//!   never depends on when the sweep last ran), and the sweep itself is
//!   deadline-driven through [`GateTable::next_deadline`] so hosts fold
//!   it into the PR 2 scheduler instead of polling;
//! * every mutation reports whether it *changed a verdict* — new entry,
//!   forced close — because those (and only those) must bump the
//!   engine's cache generation. A refresh that *extends* a live entry
//!   changes no verdict and keeps the decision cache hot; one that pulls
//!   the expiry earlier (a default-TTL auto-open landing on a long
//!   GateOpen lease) must bump, or admissions stamped with the old, later
//!   expiry would outlive the entry. Plain expiry changes verdicts only
//!   at an instant the cache already knows (the expiry stamp travels
//!   with the cached decision).

use sim::fxhash::FxHashMap;
use sim::{SimDuration, SimTime};

use netstack::icmp::{GateAuth, IcmpMessage};
use netstack::route::Prefix;

/// Gate policy parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateConfig {
    /// The amateur network (44/8 in the paper).
    pub amateur_net: Prefix,
    /// How long an entry lives without amateur-side traffic.
    pub entry_ttl: SimDuration,
    /// Whether amateur→foreign traffic opens the return path implicitly
    /// (the paper's main mechanism). With this off, only GateOpen
    /// messages admit foreign traffic.
    pub auto_open: bool,
    /// Control operators authorized to manage entries from the
    /// non-amateur side: `(callsign, password)`.
    pub operators: Vec<(String, String)>,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            amateur_net: Prefix::amprnet(),
            entry_ttl: SimDuration::from_secs(600),
            auto_open: true,
            operators: Vec::new(),
        }
    }
}

/// Outcome of a gateway-control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOutcome {
    /// The table was updated.
    Applied,
    /// Credentials were missing or wrong.
    AuthFailed,
    /// Nothing to do (closing a nonexistent entry, or no gate at all).
    NoEntry,
}

/// What a table mutation did, verdict-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mutation {
    /// A pair that was dead (absent or expired) is now live: cached
    /// denials for it are stale → generation bump.
    Opened,
    /// A live pair had its expiry extended: no verdict changed.
    Refreshed,
    /// A live pair had its expiry pulled *earlier* (e.g. an auto-open
    /// refresh with the default TTL landing on a long GateOpen lease):
    /// cached admissions stamped with the old, later expiry would
    /// outlive the entry → generation bump.
    Shortened,
    /// A live pair was force-closed: cached admissions are stale →
    /// generation bump.
    Closed,
    /// Nothing happened.
    NoOp,
}

/// The soft-state table.
#[derive(Debug)]
pub(crate) struct GateTable {
    cfg: GateConfig,
    /// `(amateur, foreign)` → expiry.
    entries: FxHashMap<(u32, u32), SimTime>,
    /// Lower bound on the earliest expiry (exact after each sweep;
    /// refreshes may leave it early, which only costs a no-op wakeup).
    next_expiry: SimTime,
}

impl GateTable {
    pub(crate) fn new(cfg: GateConfig) -> GateTable {
        GateTable {
            cfg,
            entries: FxHashMap::default(),
            next_expiry: SimTime::MAX,
        }
    }

    pub(crate) fn cfg(&self) -> &GateConfig {
        &self.cfg
    }

    #[inline]
    pub(crate) fn is_amateur(&self, addr: u32) -> bool {
        self.cfg
            .amateur_net
            .contains(std::net::Ipv4Addr::from(addr))
    }

    /// The live entry's expiry for `(amateur, foreign)`, if any.
    #[inline]
    pub(crate) fn live_expiry(&self, now: SimTime, amateur: u32, foreign: u32) -> Option<SimTime> {
        match self.entries.get(&(amateur, foreign)) {
            Some(&exp) if exp > now => Some(exp),
            _ => None,
        }
    }

    /// Opens or refreshes `(amateur, foreign)` for `ttl` from `now`.
    pub(crate) fn open(
        &mut self,
        now: SimTime,
        amateur: u32,
        foreign: u32,
        ttl: SimDuration,
    ) -> Mutation {
        let exp = now + ttl;
        let old = self.entries.insert((amateur, foreign), exp);
        self.next_expiry = self.next_expiry.min(exp);
        match old {
            Some(prev) if prev > now => {
                if exp < prev {
                    Mutation::Shortened
                } else {
                    Mutation::Refreshed
                }
            }
            _ => Mutation::Opened,
        }
    }

    /// Force-closes `(amateur, foreign)`.
    pub(crate) fn close(&mut self, now: SimTime, amateur: u32, foreign: u32) -> Mutation {
        match self.entries.remove(&(amateur, foreign)) {
            Some(exp) if exp > now => Mutation::Closed,
            Some(_) => Mutation::NoOp,
            None => Mutation::NoOp,
        }
    }

    /// Sweeps expired entries; returns how many were dropped. Expiry
    /// needs no generation bump — cached decisions carry the expiry
    /// stamp and die on their own.
    pub(crate) fn expire(&mut self, now: SimTime) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|_, exp| *exp > now);
        self.next_expiry = self.entries.values().copied().min().unwrap_or(SimTime::MAX);
        (before - self.entries.len()) as u64
    }

    /// When the earliest entry could expire (fold into the host's
    /// scheduler deadline).
    pub(crate) fn next_deadline(&self) -> Option<SimTime> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.next_expiry)
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    fn auth_ok(&self, from_amateur_side: bool, auth: &Option<GateAuth>) -> bool {
        if from_amateur_side {
            // §4.3: messages arriving on the amateur side are inherently
            // from a licensed operator (the FCC identification rule).
            return true;
        }
        match auth {
            Some(a) => self
                .cfg
                .operators
                .iter()
                .any(|(call, pw)| *call == a.callsign && *pw == a.password),
            None => false,
        }
    }

    /// Applies a §4.3 control message. `from_amateur_side` is judged by
    /// the ingress interface, never the claimed source address.
    pub(crate) fn on_message(
        &mut self,
        now: SimTime,
        from_amateur_side: bool,
        msg: &IcmpMessage,
    ) -> (ControlOutcome, Mutation) {
        match msg {
            IcmpMessage::GateOpen {
                amateur,
                foreign,
                ttl_secs,
                auth,
            } => {
                if !self.auth_ok(from_amateur_side, auth) {
                    return (ControlOutcome::AuthFailed, Mutation::NoOp);
                }
                let ttl = SimDuration::from_secs(u64::from(*ttl_secs));
                let m = self.open(now, u32::from(*amateur), u32::from(*foreign), ttl);
                (ControlOutcome::Applied, m)
            }
            IcmpMessage::GateClose {
                amateur,
                foreign,
                auth,
            } => {
                if !self.auth_ok(from_amateur_side, auth) {
                    return (ControlOutcome::AuthFailed, Mutation::NoOp);
                }
                match self.close(now, u32::from(*amateur), u32::from(*foreign)) {
                    Mutation::Closed => (ControlOutcome::Applied, Mutation::Closed),
                    m => (ControlOutcome::NoEntry, m),
                }
            }
            _ => (ControlOutcome::NoEntry, Mutation::NoOp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> GateTable {
        let mut cfg = GateConfig::default();
        cfg.operators.push(("N7AKR".into(), "secret".into()));
        GateTable::new(cfg)
    }

    const A: u32 = 0x2C18_0005; // 44.24.0.5
    const F: u32 = 0x805F_0104; // 128.95.1.4

    #[test]
    fn open_refresh_close_report_their_verdict_effect() {
        let mut g = gate();
        let t0 = SimTime::ZERO;
        let ttl = SimDuration::from_secs(600);
        assert_eq!(g.open(t0, A, F, ttl), Mutation::Opened);
        assert_eq!(g.open(t0, A, F, ttl), Mutation::Refreshed);
        assert_eq!(g.close(t0, A, F), Mutation::Closed);
        assert_eq!(g.close(t0, A, F), Mutation::NoOp);
        // Re-opening a pair whose entry expired counts as Opened again.
        g.open(t0, A, F, ttl);
        let late = t0 + SimDuration::from_secs(601);
        assert_eq!(g.open(late, A, F, ttl), Mutation::Opened);
    }

    #[test]
    fn liveness_is_judged_lazily() {
        let mut g = gate();
        let t0 = SimTime::ZERO;
        g.open(t0, A, F, SimDuration::from_secs(60));
        assert!(g
            .live_expiry(t0 + SimDuration::from_secs(59), A, F)
            .is_some());
        // Never swept, but already dead to verdicts.
        assert!(g
            .live_expiry(t0 + SimDuration::from_secs(60), A, F)
            .is_none());
        assert_eq!(g.len(), 1);
        assert_eq!(g.expire(t0 + SimDuration::from_secs(60)), 1);
        assert_eq!(g.len(), 0);
        assert_eq!(g.next_deadline(), None);
    }

    #[test]
    fn deadline_tracks_earliest_entry() {
        let mut g = gate();
        let t0 = SimTime::ZERO;
        g.open(t0, A, F, SimDuration::from_secs(600));
        g.open(t0, A + 1, F, SimDuration::from_secs(60));
        assert_eq!(g.next_deadline(), Some(t0 + SimDuration::from_secs(60)));
        assert_eq!(g.expire(t0 + SimDuration::from_secs(60)), 1);
        assert_eq!(g.next_deadline(), Some(t0 + SimDuration::from_secs(600)));
    }

    #[test]
    fn foreign_side_messages_need_credentials() {
        let mut g = gate();
        let open = |auth| IcmpMessage::GateOpen {
            amateur: std::net::Ipv4Addr::from(A),
            foreign: std::net::Ipv4Addr::from(F),
            ttl_secs: 300,
            auth,
        };
        let (o, m) = g.on_message(SimTime::ZERO, false, &open(None));
        assert_eq!((o, m), (ControlOutcome::AuthFailed, Mutation::NoOp));
        let bad = GateAuth {
            callsign: "N7AKR".into(),
            password: "wrong".into(),
        };
        let (o, _) = g.on_message(SimTime::ZERO, false, &open(Some(bad)));
        assert_eq!(o, ControlOutcome::AuthFailed);
        let good = GateAuth {
            callsign: "N7AKR".into(),
            password: "secret".into(),
        };
        let (o, m) = g.on_message(SimTime::ZERO, false, &open(Some(good)));
        assert_eq!((o, m), (ControlOutcome::Applied, Mutation::Opened));
        // Amateur side needs none.
        let close = IcmpMessage::GateClose {
            amateur: std::net::Ipv4Addr::from(A),
            foreign: std::net::Ipv4Addr::from(F),
            auth: None,
        };
        let (o, m) = g.on_message(SimTime::ZERO, true, &close);
        assert_eq!((o, m), (ControlOutcome::Applied, Mutation::Closed));
    }
}
