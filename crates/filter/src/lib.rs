//! §4.3 at hostile scale: the line-rate packet-filter engine.
//!
//! The paper proposes amateur-initiated access control — a table of
//! permitted sources with TTL soft state, managed by two authenticated
//! ICMP messages. This crate is that table's only implementation (E5
//! runs on the gate below), built out to an engine a gateway can run on
//! every packet at line rate under attack:
//!
//! * **compiled rules** ([`Rule`] → flattened match arrays, most
//!   specific wins — the route table's longest-prefix discipline
//!   applied to policy);
//! * a direct-mapped per-flow **decision cache** keyed `(src, dst,
//!   proto)`, invalidated by generation counter on table change, so the
//!   steady state is one hash-and-compare instead of a rule walk;
//! * the §4.3 **soft-state gate** with GateOpen/GateClose control and
//!   deadline-driven expiry;
//! * per-source **token buckets** for the spoofed-flood case.
//!
//! Zero-allocation discipline throughout the packet path, same as the
//! PR 5 byte kernels; the `filter_eval` bench asserts it. The
//! [`NaiveInterpreter`] is the executable reference spec the
//! differential proptests check the engine against. DESIGN.md §13 has
//! the full compile/cache/invalidation contract; experiment E17 puts
//! the engine under a spoofed-source flood with control-plane churn.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod cache;
mod compiled;
mod engine;
mod gate;
mod oracle;
mod rule;

pub use bucket::LimitConfig;
pub use engine::{FilterConfig, FilterEngine, FilterNote, FilterStats, NoteWhy, Verdict};
pub use gate::{ControlOutcome, GateConfig};
pub use oracle::NaiveInterpreter;
pub use rule::{Action, PacketMeta, Rule};
