//! Rule compilation: the flattened match arrays the hot path walks.
//!
//! `set_rules` happens at configuration time and on control-plane churn;
//! evaluation happens per packet. So compilation does all the work that
//! can be hoisted out of the packet path:
//!
//! * prefixes become precomputed `(net, mask)` word pairs — the match is
//!   two ANDs and two compares, no `Ipv4Addr` arithmetic;
//! * the list is sorted most-specific-first (`Reverse(src.len+dst.len)`,
//!   then insertion order), the same discipline `RouteTable` applies to
//!   routes, so the walk is first-match-wins over a dense array;
//! * protocol wildcards become an out-of-band sentinel in a `u16`, port
//!   wildcards a flag — no `Option` discriminants in the inner loop.
//!
//! The result is one flat `Vec` of POD records walked front to back: no
//! `Box<dyn>`, no indirection, no per-packet allocation. The walk also
//! reports whether the decision *depended on a port* anywhere along the
//! way — the cacheability bit: the decision cache is keyed on
//! `(src, dst, proto)` only, so a verdict that would change with the
//! port must not be cached under that key.

use std::cmp::Reverse;

use crate::rule::{Action, PacketMeta, Rule};

/// Sentinel in the compiled protocol field: match any protocol.
const PROTO_ANY: u16 = 0x100;

/// One compiled rule: plain words, 28 bytes, no pointers.
#[derive(Debug, Clone, Copy)]
struct CompiledRule {
    src_net: u32,
    src_mask: u32,
    dst_net: u32,
    dst_mask: u32,
    port_lo: u16,
    port_hi: u16,
    /// `0..=255`, or [`PROTO_ANY`].
    proto: u16,
    /// True when the rule has no port constraint.
    port_wild: bool,
    action: Action,
}

/// What one full rule walk concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WalkResult {
    /// The action of the most specific matching rule (or the default).
    pub action: Action,
    /// Index of the matching rule in compiled order, `u16::MAX` for the
    /// default action (trace labelling only).
    pub rule: u16,
    /// True when any rule's outcome turned on the packet's destination
    /// port — such a decision must not enter the `(src, dst, proto)`
    /// cache, because a different port could decide differently.
    pub port_dependent: bool,
}

/// The compiled, immutable-between-changes rule table.
#[derive(Debug, Default)]
pub(crate) struct CompiledRuleset {
    rules: Vec<CompiledRule>,
    default_action: Action,
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

impl CompiledRuleset {
    /// Compiles a rule list. Order-independent input: specificity (then
    /// original position) decides precedence, exactly like the route
    /// table.
    pub(crate) fn compile(rules: &[Rule], default_action: Action) -> CompiledRuleset {
        let mut order: Vec<(usize, &Rule)> = rules.iter().enumerate().collect();
        order.sort_by_key(|(seq, r)| (Reverse(r.specificity()), *seq));
        let rules = order
            .into_iter()
            .map(|(_, r)| {
                let (port_lo, port_hi, port_wild) = match r.dports {
                    Some((lo, hi)) => (lo, hi, false),
                    None => (0, u16::MAX, true),
                };
                CompiledRule {
                    src_net: u32::from(r.src.addr),
                    src_mask: mask(r.src.len),
                    dst_net: u32::from(r.dst.addr),
                    dst_mask: mask(r.dst.len),
                    port_lo,
                    port_hi,
                    proto: r.proto.map_or(PROTO_ANY, u16::from),
                    port_wild,
                    action: r.action,
                }
            })
            .collect();
        CompiledRuleset {
            rules,
            default_action,
        }
    }

    /// The full walk: first match over the specificity-sorted array.
    /// This is the cache-miss path (and the `filter_eval` bench's
    /// "full walk" case).
    #[inline]
    pub(crate) fn walk(&self, m: &PacketMeta) -> WalkResult {
        let mut port_dependent = false;
        for (i, r) in self.rules.iter().enumerate() {
            if (m.src & r.src_mask) != r.src_net
                || (m.dst & r.dst_mask) != r.dst_net
                || (r.proto != PROTO_ANY && r.proto != u16::from(m.proto))
            {
                continue;
            }
            if !r.port_wild {
                // Addresses and protocol match: from here on the verdict
                // turns on the port, so the walk's conclusion is not
                // cacheable under (src, dst, proto).
                port_dependent = true;
                if !(m.has_port && m.dport >= r.port_lo && m.dport <= r.port_hi) {
                    continue;
                }
            }
            return WalkResult {
                action: r.action,
                rule: i as u16,
                port_dependent,
            };
        }
        WalkResult {
            action: self.default_action,
            rule: u16::MAX,
            port_dependent,
        }
    }

    /// Number of compiled rules.
    pub(crate) fn len(&self) -> usize {
        self.rules.len()
    }

    /// The action when nothing matches.
    pub(crate) fn default_action(&self) -> Action {
        self.default_action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::route::Prefix;
    use std::net::Ipv4Addr;

    fn meta(src: [u8; 4], dst: [u8; 4], proto: u8, dport: Option<u16>) -> PacketMeta {
        PacketMeta {
            src: u32::from(Ipv4Addr::from(src)),
            dst: u32::from(Ipv4Addr::from(dst)),
            proto,
            dport: dport.unwrap_or(0),
            has_port: dport.is_some(),
        }
    }

    #[test]
    fn specificity_beats_insertion_order() {
        // A broad allow inserted first, a /32 deny inserted later: the
        // deny must win, as a /32 route would beat a /8.
        let rules = [
            Rule::any(Action::Allow).from(Prefix::amprnet()),
            Rule::any(Action::Deny).from(Prefix::new(Ipv4Addr::new(44, 24, 0, 66), 32)),
        ];
        let c = CompiledRuleset::compile(&rules, Action::Allow);
        let w = c.walk(&meta([44, 24, 0, 66], [128, 95, 1, 4], 6, Some(25)));
        assert_eq!(w.action, Action::Deny);
        let w = c.walk(&meta([44, 24, 0, 5], [128, 95, 1, 4], 6, Some(25)));
        assert_eq!(w.action, Action::Allow);
    }

    #[test]
    fn equal_specificity_keeps_first_inserted() {
        let p = Prefix::new(Ipv4Addr::new(44, 24, 0, 0), 16);
        let rules = [
            Rule::any(Action::Deny).from(p),
            Rule::any(Action::Allow).from(p),
        ];
        let c = CompiledRuleset::compile(&rules, Action::Allow);
        let w = c.walk(&meta([44, 24, 0, 5], [128, 95, 1, 4], 17, None));
        assert_eq!(w.action, Action::Deny);
    }

    #[test]
    fn port_ranges_gate_the_match_and_poison_cacheability() {
        let rules = [Rule::any(Action::Deny).proto(6).dports(0, 1023)];
        let c = CompiledRuleset::compile(&rules, Action::Allow);
        // In range: denied, port-dependent.
        let w = c.walk(&meta([1, 2, 3, 4], [5, 6, 7, 8], 6, Some(23)));
        assert_eq!((w.action, w.port_dependent), (Action::Deny, true));
        // Out of range: falls to default, still port-dependent.
        let w = c.walk(&meta([1, 2, 3, 4], [5, 6, 7, 8], 6, Some(2049)));
        assert_eq!((w.action, w.port_dependent), (Action::Allow, true));
        // Portless packet of the same protocol cannot match a port rule.
        let w = c.walk(&meta([1, 2, 3, 4], [5, 6, 7, 8], 6, None));
        assert_eq!((w.action, w.port_dependent), (Action::Allow, true));
        // A different protocol never reaches the port test: cacheable.
        let w = c.walk(&meta([1, 2, 3, 4], [5, 6, 7, 8], 1, None));
        assert_eq!((w.action, w.port_dependent), (Action::Allow, false));
    }

    #[test]
    fn empty_table_is_the_default_action() {
        let c = CompiledRuleset::compile(&[], Action::Deny);
        let w = c.walk(&meta([9, 9, 9, 9], [8, 8, 8, 8], 17, Some(53)));
        assert_eq!((w.action, w.rule), (Action::Deny, u16::MAX));
        assert!(!w.port_dependent);
    }
}
