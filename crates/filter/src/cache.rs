//! The per-flow decision cache: the steady-state hot path.
//!
//! Direct-mapped, power-of-two sized, keyed on `(src, dst, proto)` — the
//! same shape as a one-way hardware cache. A lookup is one multiply-fold
//! hash, one slot load, and one wide compare; a hit skips the gate
//! lookup and the full rule walk entirely. Three things bound a cached
//! verdict's validity:
//!
//! * the **generation counter**: any change that could alter any flow's
//!   verdict (rule-table swap, gate entry open/close) bumps it, and a
//!   slot stamped with an older generation simply fails to match — no
//!   sweep, invalidation is O(1);
//! * the **expiry stamp**: a verdict backed by TTL soft state (a §4.3
//!   gate entry) carries that entry's expiry and self-invalidates when
//!   the clock passes it — gate *expiry* therefore needs no generation
//!   bump, only open/close do;
//! * **port-dependence**: walks whose outcome turned on a port are never
//!   inserted (the key has no port), so those flows pay the walk every
//!   time, correctly.
//!
//! Collisions evict silently (last write wins) — the cache is advisory;
//! a miss just walks.

use sim::SimTime;

use crate::rule::{Action, PacketMeta};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One direct-mapped slot. `gen == 0` marks a never-written slot; the
/// engine's generation counter starts at 1.
#[derive(Debug, Clone, Copy)]
struct Slot {
    src: u32,
    dst: u32,
    generation: u32,
    expires: SimTime,
    proto: u8,
    refresh_gate: bool,
    action: Action,
}

const EMPTY: Slot = Slot {
    src: 0,
    dst: 0,
    generation: 0,
    expires: SimTime::ZERO,
    proto: 0,
    refresh_gate: false,
    action: Action::Allow,
};

/// A decision pulled from (or inserted into) the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CachedDecision {
    /// The action the full walk concluded.
    pub action: Action,
    /// True for amateur→foreign flows under an auto-opening gate: the
    /// hit must still refresh the soft-state entry (the paper's "entries
    /// are removed if packets have not been received from the amateur
    /// side" demands every amateur-side packet count).
    pub refresh_gate: bool,
    /// When this verdict stops being trustworthy ([`SimTime::MAX`] for
    /// time-unbounded decisions).
    pub expires: SimTime,
}

/// The direct-mapped cache. `bits == 0` disables caching entirely
/// (every lookup misses), which the differential tests use to pit the
/// cached engine against an uncached twin.
#[derive(Debug)]
pub(crate) struct DecisionCache {
    slots: Box<[Slot]>,
    mask: usize,
}

impl DecisionCache {
    pub(crate) fn new(bits: u8) -> DecisionCache {
        assert!(bits <= 24, "cache of 2^{bits} slots is absurd");
        let n = if bits == 0 { 0 } else { 1usize << bits };
        DecisionCache {
            slots: vec![EMPTY; n].into_boxed_slice(),
            mask: n.wrapping_sub(1),
        }
    }

    #[inline]
    fn index(&self, m: &PacketMeta) -> usize {
        let mut h = ((u64::from(m.src) << 32) | u64::from(m.dst)).wrapping_mul(SEED);
        h = (h.rotate_left(5) ^ u64::from(m.proto)).wrapping_mul(SEED);
        (h >> 32) as usize & self.mask
    }

    /// The one-hash-and-compare fast path.
    #[inline]
    pub(crate) fn lookup(
        &self,
        m: &PacketMeta,
        generation: u32,
        now: SimTime,
    ) -> Option<CachedDecision> {
        if self.slots.is_empty() {
            return None;
        }
        let s = &self.slots[self.index(m)];
        if s.generation == generation
            && s.src == m.src
            && s.dst == m.dst
            && s.proto == m.proto
            && now < s.expires
        {
            Some(CachedDecision {
                action: s.action,
                refresh_gate: s.refresh_gate,
                expires: s.expires,
            })
        } else {
            None
        }
    }

    /// Installs a walk's conclusion (the caller has already checked
    /// cacheability).
    #[inline]
    pub(crate) fn insert(&mut self, m: &PacketMeta, generation: u32, d: CachedDecision) {
        if self.slots.is_empty() {
            return;
        }
        let idx = self.index(m);
        self.slots[idx] = Slot {
            src: m.src,
            dst: m.dst,
            generation,
            expires: d.expires,
            proto: m.proto,
            refresh_gate: d.refresh_gate,
            action: d.action,
        };
    }

    /// Slot count (0 when disabled).
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(src: u32, dst: u32, proto: u8) -> PacketMeta {
        PacketMeta {
            src,
            dst,
            proto,
            dport: 0,
            has_port: false,
        }
    }

    fn allow_forever() -> CachedDecision {
        CachedDecision {
            action: Action::Allow,
            refresh_gate: false,
            expires: SimTime::MAX,
        }
    }

    #[test]
    fn hit_requires_key_and_generation() {
        let mut c = DecisionCache::new(4);
        let m = meta(1, 2, 6);
        c.insert(&m, 7, allow_forever());
        assert!(c.lookup(&m, 7, SimTime::ZERO).is_some());
        assert!(c.lookup(&m, 8, SimTime::ZERO).is_none(), "stale generation");
        assert!(c.lookup(&meta(1, 2, 17), 7, SimTime::ZERO).is_none());
    }

    #[test]
    fn entries_self_invalidate_at_expiry() {
        let mut c = DecisionCache::new(4);
        let m = meta(3, 4, 17);
        let d = CachedDecision {
            expires: SimTime::from_secs(10),
            ..allow_forever()
        };
        c.insert(&m, 1, d);
        assert!(c.lookup(&m, 1, SimTime::from_secs(9)).is_some());
        assert!(c.lookup(&m, 1, SimTime::from_secs(10)).is_none());
    }

    #[test]
    fn zero_bits_disables() {
        let mut c = DecisionCache::new(0);
        let m = meta(1, 1, 1);
        c.insert(&m, 1, allow_forever());
        assert!(c.lookup(&m, 1, SimTime::ZERO).is_none());
        assert_eq!(c.capacity(), 0);
    }
}
