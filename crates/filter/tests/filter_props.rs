//! Differential properties for the compiled filter engine (DESIGN.md §13):
//! the flattened-array walk plus decision cache must be observationally
//! identical to the naive first-match interpreter (`filter::NaiveInterpreter`)
//! over random rule tables, packet streams, and mid-stream table swaps —
//! and a cached engine must be indistinguishable from an uncached twin
//! even with the §4.3 gate, token buckets, and control churn in play.

use filter::{
    Action, FilterConfig, FilterEngine, GateConfig, LimitConfig, NaiveInterpreter, PacketMeta, Rule,
};
use netstack::icmp::IcmpMessage;
use netstack::route::Prefix;
use proptest::prelude::*;
use sim::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Addresses clustered in four /24s — two amateur (44/8), two foreign —
/// with tiny host parts, so random rules and random packets collide
/// constantly instead of sailing past each other.
fn arb_addr() -> impl Strategy<Value = u32> {
    const NETS: [u32; 4] = [0x2C18_0000, 0x2C18_0100, 0x805F_0100, 0x0A00_0000];
    (0usize..4, 0u32..8).prop_map(|(net, host)| NETS[net] | host)
}

/// A prefix over the same clustered pool, any of the natural lengths.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    const LENS: [u8; 5] = [0, 8, 16, 24, 32];
    (arb_addr(), 0usize..5).prop_map(|(a, l)| Prefix::new(Ipv4Addr::from(a), LENS[l]))
}

/// One policy line. `limit` widens the action choice to include
/// [`Action::Limit`]; the oracle comparisons keep it off because the
/// interpreter speaks classifications, not token buckets.
fn arb_rule(limit: bool) -> impl Strategy<Value = Rule> {
    (
        arb_prefix(),
        arb_prefix(),
        prop_oneof![
            Just(None),
            Just(Some(6u8)),
            Just(Some(17u8)),
            Just(Some(1u8))
        ],
        prop_oneof![
            Just(None),
            Just(Some((0u16, 1023u16))),
            Just(Some((23u16, 23u16))),
            Just(Some((1024u16, u16::MAX))),
        ],
        0u8..3,
    )
        .prop_map(move |(src, dst, proto, dports, a)| Rule {
            src,
            dst,
            proto,
            dports,
            action: match a {
                0 => Action::Allow,
                _ if a == 2 && limit => Action::Limit,
                _ => Action::Deny,
            },
        })
}

/// A packet over the same pool. Ports are biased toward the rule
/// boundaries (23, the 1023/1024 split); non-first fragments hide them.
fn arb_packet() -> impl Strategy<Value = PacketMeta> {
    (
        arb_addr(),
        arb_addr(),
        0usize..4,
        prop_oneof![Just(23u16), 0u16..1024, any::<u16>()],
        any::<bool>(),
    )
        .prop_map(|(src, dst, p, dport, frag)| {
            let proto = [6u8, 17, 1, 89][p];
            let transport = proto == 6 || proto == 17;
            PacketMeta {
                src,
                dst,
                proto,
                dport: if transport { dport } else { 0 },
                has_port: transport && !frag,
            }
        })
}

proptest! {
    /// The compiled walk — cached or not — answers exactly like the
    /// naive interpreter for pure Allow/Deny tables. Every packet is
    /// evaluated twice so the second pass exercises the decision cache
    /// (and the port-dependent never-cache rule) against the same oracle.
    #[test]
    fn engine_agrees_with_the_naive_interpreter(
        rules in proptest::collection::vec(arb_rule(false), 0..24),
        default_deny in any::<bool>(),
        cache_bits in prop_oneof![Just(0u8), Just(4u8), Just(10u8)],
        packets in proptest::collection::vec(arb_packet(), 1..64),
    ) {
        let default_action = if default_deny { Action::Deny } else { Action::Allow };
        let cfg = FilterConfig {
            gate: None,
            rules: rules.clone(),
            default_action,
            cache_bits,
            limit: LimitConfig::default(),
        };
        let mut engine = FilterEngine::new(cfg);
        let oracle = NaiveInterpreter::new(&rules, default_action);
        for m in &packets {
            let want = oracle.classify(m) == Action::Allow;
            prop_assert_eq!(
                engine.eval(SimTime::ZERO, m).is_allow(), want,
                "cold walk diverged on {:?} ({} rules, cache_bits {})",
                m, rules.len(), cache_bits
            );
            prop_assert_eq!(
                engine.eval(SimTime::ZERO, m).is_allow(), want,
                "warm (cached) answer diverged on {:?}", m
            );
        }
    }

    /// Mid-stream table swaps: warm the cache under one table, swap to a
    /// second, and every verdict — including for flows whose decisions
    /// were cached under the old table — must flip to the new oracle's.
    #[test]
    fn rule_swaps_take_effect_on_cached_flows(
        rules_a in proptest::collection::vec(arb_rule(false), 0..16),
        rules_b in proptest::collection::vec(arb_rule(false), 0..16),
        packets in proptest::collection::vec(arb_packet(), 1..48),
    ) {
        let cfg = FilterConfig {
            gate: None,
            rules: rules_a.clone(),
            default_action: Action::Allow,
            cache_bits: 8,
            limit: LimitConfig::default(),
        };
        let mut engine = FilterEngine::new(cfg);
        let mut oracle = NaiveInterpreter::new(&rules_a, Action::Allow);
        for m in &packets {
            prop_assert_eq!(
                engine.eval(SimTime::ZERO, m).is_allow(),
                oracle.classify(m) == Action::Allow,
                "pre-swap divergence on {:?}", m
            );
        }
        engine.set_rules(&rules_b);
        oracle.set_rules(&rules_b);
        for m in &packets {
            prop_assert_eq!(
                engine.eval(SimTime::ZERO, m).is_allow(),
                oracle.classify(m) == Action::Allow,
                "stale cached verdict survived set_rules on {:?}", m
            );
        }
    }

    /// The decision cache is semantically invisible: a cached engine and
    /// an uncached twin, fed the same timed stream — §4.3 gate on, Limit
    /// rules charging real token buckets, TTL expiries crossed, GateClose
    /// churn injected, and a mid-stream table swap — must emit identical
    /// verdicts at every step.
    #[test]
    fn cached_engine_matches_uncached_twin_under_gate_and_limits(
        rules_a in proptest::collection::vec(arb_rule(true), 0..12),
        rules_b in proptest::collection::vec(arb_rule(true), 0..12),
        swap_at in 0usize..64,
        steps in proptest::collection::vec((arb_packet(), 0u64..300), 1..96),
    ) {
        let cfg = |cache_bits| FilterConfig {
            gate: Some(GateConfig::default()),
            rules: rules_a.clone(),
            default_action: Action::Allow,
            cache_bits,
            limit: LimitConfig { rate_per_sec: 1, burst: 2, bucket_bits: 4 },
        };
        // 16 slots: plenty of collisions/evictions in a 96-step stream.
        let mut cached = FilterEngine::new(cfg(4));
        let mut plain = FilterEngine::new(cfg(0));
        let mut now = SimTime::ZERO;
        for (i, (m, dt)) in steps.iter().enumerate() {
            now += SimDuration::from_secs(*dt);
            if i == swap_at {
                cached.set_rules(&rules_b);
                plain.set_rules(&rules_b);
            }
            if i % 13 == 7 {
                // Control churn: force-close the packet's pair when it
                // crosses the gate, on both twins.
                let (src_am, dst_am) = (m.src >> 24 == 44, m.dst >> 24 == 44);
                if src_am != dst_am {
                    let (am, fo) = if src_am { (m.src, m.dst) } else { (m.dst, m.src) };
                    let close = IcmpMessage::GateClose {
                        amateur: Ipv4Addr::from(am),
                        foreign: Ipv4Addr::from(fo),
                        auth: None,
                    };
                    cached.on_gate_message(now, true, &close);
                    plain.on_gate_message(now, true, &close);
                }
            }
            prop_assert_eq!(
                cached.eval(now, m), plain.eval(now, m),
                "twins diverged at step {} ({:?}, t={:?})", i, m, now
            );
        }
        prop_assert_eq!(plain.stats().cache_hits, 0, "uncached twin must never hit");
        let s = cached.stats();
        prop_assert_eq!(
            s.allowed + s.denied,
            plain.stats().allowed + plain.stats().denied,
            "twins judged different packet counts"
        );
    }
}
