//! Scheduler equivalence: the deadline-indexed run loop (heap and
//! timer-wheel backends) must produce event sequences and component
//! statistics identical to the full-scan reference stepper, on fixed
//! topologies and on randomized worlds with cancellations and mid-run
//! reconfiguration. Plus a golden trace digest pinning the behaviour
//! against silent drift in future changes.
//!
//! One accepted divergence: `CsmaStats::busy_detects` counts *polls* that
//! found carrier, and the dirty-set engine deliberately polls less often;
//! it is excluded from the comparison (no other code reads it).

use ax25::addr::Ax25Addr;
use gateway::host::Host;
use gateway::scenario::{self, PaperConfig};
use gateway::world::{App, BeaconId, ChanId, DigiId, HostId, TncId, World};
use proptest::prelude::*;
use radio::csma::MacConfig;
use radio::tnc::RxMode;
use radio::traffic::BeaconConfig;
use sim::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// An app that issues pings at scripted instants — deterministic traffic
/// with real TCP/ICMP timers behind it.
struct ScriptedPinger {
    dst: Ipv4Addr,
    times: Vec<SimTime>,
    seq: u16,
}

impl App for ScriptedPinger {
    fn poll(&mut self, now: SimTime, host: &mut Host) {
        while self.times.first().is_some_and(|&t| t <= now) {
            self.times.remove(0);
            self.seq += 1;
            host.ping(now, self.dst, 0x5c4e, self.seq, 64);
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.times.first().copied()
    }
}

/// Which engine drives the world.
#[derive(Clone, Copy, Debug)]
enum Driver {
    Reference,
    Indexed,
    Wheel,
}

const DRIVERS: [Driver; 3] = [Driver::Reference, Driver::Indexed, Driver::Wheel];

impl Driver {
    fn prepare(self, w: &mut World) {
        if let Driver::Wheel = self {
            w.use_timer_wheel(SimDuration::from_millis(1));
        }
    }

    fn run_for(self, w: &mut World, d: SimDuration) {
        match self {
            Driver::Reference => {
                let t = w.now + d;
                w.run_until_reference(t);
            }
            Driver::Indexed | Driver::Wheel => w.run_for(d),
        }
    }
}

/// Everything observable about a run: the recorded event log plus the
/// stats of every component (busy_detects masked out).
fn fingerprint(
    w: &mut World,
    tncs: &[TncId],
    digis: &[DigiId],
    beacons: &[BeaconId],
    chans: &[ChanId],
    hosts: &[HostId],
) -> String {
    let mut out = String::new();
    for (h, t, e) in w.take_events() {
        out.push_str(&format!("{h:?} {t} {e:?}\n"));
    }
    for &t in tncs {
        let mut mac = w.tnc(t).mac_stats();
        mac.busy_detects = 0;
        out.push_str(&format!("{t:?} {:?} {mac:?}\n", w.tnc(t).stats()));
    }
    for &d in digis {
        out.push_str(&format!("{d:?} {:?}\n", w.digipeater(d).stats()));
    }
    for &b in beacons {
        out.push_str(&format!("{b:?} {:?}\n", w.beacon(b).stats()));
    }
    for &c in chans {
        out.push_str(&format!("{c:?} {:?}\n", w.channel(c).stats()));
    }
    for &h in hosts {
        out.push_str(&format!(
            "{h:?} iq len={} drops={} peak={}\n",
            w.host(h).input_queue_len(),
            w.host(h).input_queue_drops(),
            w.host(h).input_queue_peak(),
        ));
    }
    out
}

/// Paper topology + beacons + scripted pings, run in two segments with an
/// optional TNC mode flip in between (exercises `sync_all` picking up
/// external mutation). Returns the fingerprint.
fn paper_run(
    driver: Driver,
    seed: u64,
    mac: MacConfig,
    beacons: &[(u64, u64)],
    ping_times: &[u64],
    flip_mode: bool,
) -> String {
    let cfg = PaperConfig {
        mac,
        ..PaperConfig::default()
    };
    let mut s = scenario::paper_topology(cfg, seed);
    let mut bids = Vec::new();
    for (i, &(start_ms, interval_ms)) in beacons.iter().enumerate() {
        bids.push(s.world.add_beacon(
            s.chan,
            BeaconConfig {
                from: Ax25Addr::parse_or_panic(&format!("BCN{i}")),
                to: Ax25Addr::parse_or_panic("QST"),
                frame_len: 64,
                mean_interval: SimDuration::from_millis(interval_ms),
                start: SimTime::from_millis(start_ms),
                mac,
            },
        ));
    }
    s.world.add_app(
        s.pc,
        Box::new(ScriptedPinger {
            dst: scenario::ETHER_HOST_IP,
            times: ping_times
                .iter()
                .map(|&ms| SimTime::from_millis(ms))
                .collect(),
            seq: 0,
        }),
    );
    driver.prepare(&mut s.world);
    driver.run_for(&mut s.world, SimDuration::from_secs(30));
    if flip_mode {
        s.world.tnc_mut(s.pc_tnc).set_mode(RxMode::Promiscuous);
    }
    driver.run_for(&mut s.world, SimDuration::from_secs(30));
    fingerprint(
        &mut s.world,
        &[s.pc_tnc, s.gw_tnc],
        &[],
        &bids,
        &[s.chan],
        &[s.pc, s.gw, s.ether_host],
    )
}

#[test]
fn paper_topology_indexed_matches_reference() {
    let mac = MacConfig::default();
    let reference = paper_run(
        Driver::Reference,
        42,
        mac,
        &[(500, 3000)],
        &[1000, 9000],
        false,
    );
    assert!(
        reference.contains("PingReply"),
        "traffic must flow:\n{reference}"
    );
    for driver in [Driver::Indexed, Driver::Wheel] {
        let got = paper_run(driver, 42, mac, &[(500, 3000)], &[1000, 9000], false);
        assert_eq!(got, reference, "{driver:?} diverged from reference");
    }
}

#[test]
fn digi_chain_indexed_matches_reference() {
    let run = |driver: Driver| {
        let mut s = scenario::digi_chain_topology(2, PaperConfig::default(), 11);
        s.world.add_app(
            s.pc,
            Box::new(ScriptedPinger {
                dst: scenario::GW_RADIO_IP,
                times: vec![SimTime::from_secs(1)],
                seq: 0,
            }),
        );
        driver.prepare(&mut s.world);
        driver.run_for(&mut s.world, SimDuration::from_secs(120));
        fingerprint(&mut s.world, &[], &[], &[], &[s.chan], &[s.pc, s.gw])
    };
    let reference = run(Driver::Reference);
    assert!(
        reference.contains("PingReply"),
        "traffic must flow:\n{reference}"
    );
    assert_eq!(run(Driver::Indexed), reference);
    assert_eq!(run(Driver::Wheel), reference);
}

/// Zero slot time makes deferring MACs re-draw on *every quiescence pass*,
/// the trickiest RNG-stream case for the dirty-set engine.
#[test]
fn zero_slot_time_rng_stream_matches() {
    let mac = MacConfig {
        slot_time: SimDuration::ZERO,
        persistence: 0.25,
        ..MacConfig::default()
    };
    let reference = paper_run(
        Driver::Reference,
        3,
        mac,
        &[(0, 1500), (200, 1500), (400, 1500)],
        &[2000],
        false,
    );
    for driver in [Driver::Indexed, Driver::Wheel] {
        let got = paper_run(
            driver,
            3,
            mac,
            &[(0, 1500), (200, 1500), (400, 1500)],
            &[2000],
            false,
        );
        assert_eq!(got, reference, "{driver:?} diverged from reference");
    }
}

proptest! {
    /// Randomized worlds: topology knobs, beacon load, scripted traffic,
    /// MAC parameters (including zero slot time), and a mid-run TNC
    /// reconfiguration — reference, heap-indexed, and wheel-indexed
    /// engines must agree byte-for-byte on events and stats.
    #[test]
    fn randomized_world_equivalence(
        seed in 0u64..1_000,
        n_beacons in 0usize..3,
        slot_ms in prop_oneof![Just(0u64), Just(40u64), Just(100u64)],
        persistence in prop_oneof![Just(0.25f64), Just(0.63f64), Just(1.0f64)],
        ping_a in 200u64..5_000,
        ping_b in 5_000u64..25_000,
        flip_mode in any::<bool>(),
    ) {
        let mac = MacConfig {
            slot_time: SimDuration::from_millis(slot_ms),
            persistence,
            ..MacConfig::default()
        };
        let beacons: Vec<(u64, u64)> = (0..n_beacons)
            .map(|i| (100 + 700 * i as u64, 2_000 + 900 * i as u64))
            .collect();
        let pings = [ping_a, ping_b];
        let reference = paper_run(Driver::Reference, seed, mac, &beacons, &pings, flip_mode);
        for driver in [Driver::Indexed, Driver::Wheel] {
            let got = paper_run(driver, seed, mac, &beacons, &pings, flip_mode);
            prop_assert_eq!(&got, &reference, "{:?} diverged from reference", driver);
        }
    }
}

/// FNV-1a over the event log of a fixed busy scenario. Pinned so that a
/// future engine change that shifts any event time or payload fails
/// loudly, even if it happens to shift all three engines the same way.
#[test]
fn golden_trace_digest() {
    let mut digests = Vec::new();
    for driver in DRIVERS {
        let log = paper_run(
            driver,
            20,
            MacConfig::default(),
            &[(300, 2500), (900, 4000)],
            &[1500, 12_000, 30_500],
            false,
        );
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in log.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        digests.push(hash);
    }
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[1], digests[2]);
    assert_eq!(
        digests[0], 15_916_838_269_407_293_022,
        "golden digest drifted — engine behaviour changed"
    );
}

/// The `engine` bench's 50-beacon world: the paper gateway with its TNC
/// promiscuous behind a 2400 Bd serial line, hearing 50 chattering
/// beacon stations. Every heard frame floods the gateway line with
/// per-character deliveries — the serial fast lane's dense band — so
/// this pins the batched path to the reference byte-for-byte, including
/// the per-character interrupt accounting the paper's §3 argument rests
/// on.
#[test]
fn promiscuous_flood_matches_reference() {
    let run = |driver: Driver| {
        let cfg = PaperConfig {
            serial_baud: 2400,
            acl: false,
            ..PaperConfig::default()
        };
        let mut s = scenario::paper_topology(cfg, 50);
        let mut bids = Vec::new();
        for i in 0..50 {
            bids.push(s.world.add_beacon(
                s.chan,
                BeaconConfig {
                    from: Ax25Addr::parse_or_panic(&format!("BG{i}")),
                    to: Ax25Addr::parse_or_panic("CHAT"),
                    frame_len: 120,
                    mean_interval: SimDuration::from_secs(60),
                    start: SimTime::from_millis(100 * i),
                    mac: MacConfig::default(),
                },
            ));
        }
        s.world.tnc_mut(s.pc_tnc).set_mode(RxMode::AddressFilter);
        driver.prepare(&mut s.world);
        driver.run_for(&mut s.world, SimDuration::from_secs(60));
        let chars = s.world.host(s.gw).cpu.stats().char_interrupts;
        let batched = s.world.sched_stats().batched_chars;
        let fp = fingerprint(
            &mut s.world,
            &[s.pc_tnc, s.gw_tnc],
            &[],
            &bids,
            &[s.chan],
            &[s.pc, s.gw, s.ether_host],
        );
        (format!("chars={chars}\n{fp}"), batched)
    };
    let (reference, _) = run(Driver::Reference);
    assert!(
        reference.starts_with("chars=") && !reference.starts_with("chars=0\n"),
        "the gateway must take per-character interrupts:\n{reference}"
    );
    let (indexed, batched) = run(Driver::Indexed);
    assert_eq!(indexed, reference, "Indexed diverged from reference");
    assert!(
        batched > 1000,
        "the serial fast lane should batch the flood (batched_chars={batched})"
    );
    let (wheel, _) = run(Driver::Wheel);
    assert_eq!(wheel, reference, "Wheel diverged from reference");
}
