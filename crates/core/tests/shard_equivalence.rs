//! Sharded-engine equivalence (DESIGN.md §11): on a multi-shard mesh the
//! windowed engine must produce byte-identical event logs and component
//! statistics at every worker count — 1, 2, 4, 8 — all equal to the
//! full-scan reference stepper. Cross-island pings force tunnel traffic
//! through the coordinator's mailboxes, so the hand-off path itself is
//! under test, including its merge order and its no-reallocation warm
//! ring.

use gateway::host::Host;
use gateway::scenario::{self, city};
use gateway::world::{App, ChanId, HostId, World};
use proptest::prelude::*;
use sim::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// An app that issues pings at scripted instants — deterministic traffic
/// with real ICMP/ARP timers behind it (same shape as the single-shard
/// suite's pinger; the core crate has no dev-dependency on `apps`).
struct ScriptedPinger {
    dst: Ipv4Addr,
    times: Vec<SimTime>,
    seq: u16,
}

impl App for ScriptedPinger {
    fn poll(&mut self, now: SimTime, host: &mut Host) {
        while self.times.first().is_some_and(|&t| t <= now) {
            self.times.remove(0);
            self.seq += 1;
            host.ping(now, self.dst, 0x15e7, self.seq, 64);
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.times.first().copied()
    }
}

/// Which engine drives the world.
#[derive(Clone, Copy, Debug)]
enum Driver {
    /// Full-scan reference stepper (windowed Scan mode on multi-shard).
    Reference,
    /// Deadline-indexed engine on `n` workers.
    Workers(usize),
}

/// Builds `mesh(gateways, hosts_per_gw, seed)` with cross-island traffic:
/// host `(g, i)` pings host `((g+1) % gateways, i)` at staggered instants,
/// and the wired internet host pings into the last island. Runs `secs`
/// simulated seconds under `driver` and returns the full fingerprint.
fn mesh_run(gateways: usize, hosts_per_gw: usize, seed: u64, secs: u64, driver: Driver) -> String {
    let mut m = scenario::mesh(gateways, hosts_per_gw, seed);
    for g in 0..gateways {
        for i in 0..hosts_per_gw {
            let t = 500 + 977 * (g * hosts_per_gw + i) as u64;
            m.world.add_app(
                m.hosts[g][i],
                Box::new(ScriptedPinger {
                    dst: city::host_ip((g + 1) % gateways, i),
                    times: vec![SimTime::from_millis(t), SimTime::from_millis(t + 15_000)],
                    seq: 0,
                }),
            );
        }
    }
    m.world.add_app(
        m.internet_host,
        Box::new(ScriptedPinger {
            dst: city::host_ip(gateways - 1, 0),
            times: vec![SimTime::from_millis(250)],
            seq: 0,
        }),
    );
    match driver {
        Driver::Reference => m
            .world
            .run_until_reference(SimTime::from_millis(secs * 1000)),
        Driver::Workers(n) => {
            m.world.set_workers(n);
            m.world.run_for(SimDuration::from_secs(secs));
        }
    }
    fingerprint(
        &mut m.world,
        &m.gateways,
        m.internet_host,
        &m.hosts,
        &m.channels,
    )
}

/// Everything observable: the event log, every host's stack counters and
/// input-queue accounting, and every channel's stats.
fn fingerprint(
    w: &mut World,
    gateways: &[HostId],
    internet_host: HostId,
    islands: &[Vec<HostId>],
    channels: &[ChanId],
) -> String {
    let mut out = String::new();
    for (h, t, e) in w.take_events() {
        out.push_str(&format!("{h:?} {t} {e:?}\n"));
    }
    let mut hosts: Vec<_> = gateways.to_vec();
    hosts.push(internet_host);
    hosts.extend(islands.iter().flatten().copied());
    for h in hosts {
        out.push_str(&format!(
            "{h:?} {:?} iq len={} drops={} peak={}\n",
            w.host(h).stack.stats(),
            w.host(h).input_queue_len(),
            w.host(h).input_queue_drops(),
            w.host(h).input_queue_peak(),
        ));
    }
    for &c in channels {
        out.push_str(&format!("{c:?} {:?}\n", w.channel(c).stats()));
    }
    out
}

fn fnv(log: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in log.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The CI smoke test check.sh gates on: two workers over three islands
/// must reproduce the reference run bit-for-bit, with traffic flowing.
#[test]
fn two_worker_digest_smoke() {
    let reference = mesh_run(3, 1, 42, 25, Driver::Reference);
    assert!(
        reference.contains("PingReply"),
        "cross-island traffic must flow:\n{reference}"
    );
    let got = mesh_run(3, 1, 42, 25, Driver::Workers(2));
    assert_eq!(
        fnv(&got),
        fnv(&reference),
        "2-worker digest diverged from reference"
    );
    assert_eq!(got, reference);
}

/// Worker-count independence: 1, 2, 4, and 8 workers all equal the
/// reference, and the run actually crossed shards through the mailboxes.
#[test]
fn worker_counts_match_reference() {
    let reference = mesh_run(4, 2, 7, 40, Driver::Reference);
    assert!(reference.contains("PingReply"), "traffic must flow");
    for workers in [1, 2, 4, 8] {
        let got = mesh_run(4, 2, 7, 40, Driver::Workers(workers));
        assert_eq!(got, reference, "{workers} workers diverged from reference");
    }
}

/// The warm hand-off ring stops reallocating: after the first half of a
/// steady ping load has sized the mailboxes, the second half pushes
/// plenty more frames without a single ring growth (§11's zero-allocation
/// contract, backed further by the `shard_sync` counting-allocator bench).
#[test]
fn mailbox_growth_stabilizes() {
    let mut m = scenario::mesh(2, 1, 11);
    for (g, island) in m.hosts.iter().enumerate() {
        m.world.add_app(
            island[0],
            Box::new(ScriptedPinger {
                dst: city::host_ip((g + 1) % 2, 0),
                times: (1..40).map(|k| SimTime::from_millis(3_000 * k)).collect(),
                seq: 0,
            }),
        );
    }
    m.world.set_workers(2);
    m.world.run_for(SimDuration::from_secs(60));
    let warm = m.world.mailbox_stats();
    assert!(warm.pushed > 0, "pings must cross shards");
    m.world.run_for(SimDuration::from_secs(60));
    let done = m.world.mailbox_stats();
    assert!(done.pushed > warm.pushed, "second half must keep pushing");
    assert_eq!(
        done.grows, warm.grows,
        "warm mailbox rings must not reallocate"
    );
    assert_eq!(done.pushed, done.popped, "every hand-off is consumed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Seed sweep: random seeds and small random meshes — every worker
    /// count's digest equals the reference digest.
    #[test]
    fn seed_sweep_digests_match(
        seed in 0u64..1_000,
        gateways in 2usize..4,
        hosts_per_gw in 1usize..3,
    ) {
        let reference = fnv(&mesh_run(gateways, hosts_per_gw, seed, 20, Driver::Reference));
        for workers in [1, 2, 4, 8] {
            let got = fnv(&mesh_run(gateways, hosts_per_gw, seed, 20, Driver::Workers(workers)));
            prop_assert_eq!(got, reference, "{} workers diverged (seed {})", workers, seed);
        }
    }
}
