//! The AX.25 "hardware address" used in ARP: callsign + digipeater path.
//!
//! §2.3: *"AX.25 addresses look like amateur radio callsigns followed by
//! a 4 bit system ID. Things are complicated by the fact that some
//! entries may contain additional callsigns for digipeaters."* An ARP
//! binding on the radio side therefore maps an IP address to a station
//! address **and the source route needed to reach it**. This module
//! defines the byte encoding of that compound address (count octet, then
//! 7 octets per address in standard shifted AX.25 form, station first).

use ax25::addr::Ax25Addr;
use ax25::{Ax25Error, MAX_DIGIPEATERS};

/// A radio-side link address: the station plus the digipeater path used
/// to reach it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ax25Hw {
    /// The destination station.
    pub station: Ax25Addr,
    /// Digipeaters to route through, in order.
    pub path: Vec<Ax25Addr>,
}

impl Ax25Hw {
    /// A direct (no-digipeater) address.
    pub fn direct(station: Ax25Addr) -> Ax25Hw {
        Ax25Hw {
            station,
            path: Vec::new(),
        }
    }

    /// An address via the given digipeater path.
    ///
    /// # Panics
    ///
    /// Panics if the path exceeds [`MAX_DIGIPEATERS`].
    pub fn via(station: Ax25Addr, path: &[Ax25Addr]) -> Ax25Hw {
        assert!(path.len() <= MAX_DIGIPEATERS, "path too long");
        Ax25Hw {
            station,
            path: path.to_vec(),
        }
    }

    /// Encodes to the ARP hardware-address bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 7 * (1 + self.path.len()));
        out.push(1 + self.path.len() as u8);
        out.extend_from_slice(&self.station.encode(false, self.path.is_empty()));
        for (i, digi) in self.path.iter().enumerate() {
            let last = i == self.path.len() - 1;
            out.extend_from_slice(&digi.encode(false, last));
        }
        out
    }

    /// Decodes ARP hardware-address bytes.
    pub fn decode(bytes: &[u8]) -> Result<Ax25Hw, Ax25Error> {
        let Some((&count, rest)) = bytes.split_first() else {
            return Err(Ax25Error::Malformed("empty hardware address"));
        };
        let count = count as usize;
        if count == 0 || count > 1 + MAX_DIGIPEATERS {
            return Err(Ax25Error::Malformed("hardware address count"));
        }
        if rest.len() != count * 7 {
            return Err(Ax25Error::Malformed("hardware address length"));
        }
        let (station, _, _) = Ax25Addr::decode(&rest[0..7])?;
        let mut path = Vec::with_capacity(count - 1);
        for i in 1..count {
            let (digi, _, _) = Ax25Addr::decode(&rest[i * 7..(i + 1) * 7])?;
            path.push(digi);
        }
        Ok(Ax25Hw { station, path })
    }
}

impl std::fmt::Display for Ax25Hw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.station)?;
        for p in &self.path {
            write!(f, " via {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ax25Addr {
        Ax25Addr::parse_or_panic(s)
    }

    #[test]
    fn direct_roundtrip() {
        let hw = Ax25Hw::direct(a("N7AKR-1"));
        let bytes = hw.encode();
        assert_eq!(bytes.len(), 8);
        assert_eq!(Ax25Hw::decode(&bytes).unwrap(), hw);
    }

    #[test]
    fn path_roundtrip() {
        let hw = Ax25Hw::via(a("KB7DZ"), &[a("WA6BEV-1"), a("K3MC-2")]);
        let bytes = hw.encode();
        assert_eq!(bytes.len(), 1 + 3 * 7);
        let back = Ax25Hw::decode(&bytes).unwrap();
        assert_eq!(back, hw);
        assert_eq!(back.to_string(), "KB7DZ via WA6BEV-1 via K3MC-2");
    }

    #[test]
    fn max_path_roundtrip() {
        let path: Vec<Ax25Addr> = (0..MAX_DIGIPEATERS).map(|i| a(&format!("D{i}"))).collect();
        let hw = Ax25Hw::via(a("DST"), &path);
        assert_eq!(Ax25Hw::decode(&hw.encode()).unwrap(), hw);
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(Ax25Hw::decode(&[]).is_err());
        assert!(Ax25Hw::decode(&[0]).is_err());
        assert!(Ax25Hw::decode(&[2, 0, 0, 0]).is_err(), "length mismatch");
        assert!(Ax25Hw::decode(&[15]).is_err(), "count over maximum");
    }

    #[test]
    #[should_panic]
    fn oversize_path_panics() {
        let path: Vec<Ax25Addr> = (0..9).map(|i| a(&format!("D{i}"))).collect();
        let _ = Ax25Hw::via(a("DST"), &path);
    }
}
