//! §4.3's access-control table.
//!
//! FCC rules require that *"any communication must be initiated by
//! licensed amateurs"*. The paper's design: *"maintain a table of
//! authorized addresses on the non-amateur side of the gateway …
//! Whenever a packet is received on the amateur side destined for a
//! non-amateur host, an entry is made in the table, enabling the
//! non-amateur host to send packets in the other direction. After a
//! certain period of time, these entries are removed if packets have not
//! been received from the amateur side."* The proposed ICMP extensions
//! (force-remove and authenticated add) are implemented too.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use netstack::icmp::{GateAuth, IcmpMessage};
use netstack::ip::Ipv4Packet;
use netstack::route::Prefix;
use sim::{SimDuration, SimTime};

/// ACL policy parameters.
#[derive(Debug, Clone)]
pub struct AclConfig {
    /// The amateur network (44/8 in the paper).
    pub amateur_net: Prefix,
    /// How long an entry lives without amateur-side refresh.
    pub entry_ttl: SimDuration,
    /// Control operators authorized to manage entries from the
    /// non-amateur side: callsign → password.
    pub operators: HashMap<String, String>,
}

impl Default for AclConfig {
    fn default() -> Self {
        AclConfig {
            amateur_net: Prefix::amprnet(),
            entry_ttl: SimDuration::from_secs(600),
            operators: HashMap::new(),
        }
    }
}

/// ACL counters, reported by experiment E5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AclStats {
    /// Amateur→foreign packets that opened or refreshed an entry.
    pub openings: u64,
    /// Foreign→amateur packets allowed by a live entry.
    pub allowed_inbound: u64,
    /// Foreign→amateur packets denied (no entry).
    pub denied_inbound: u64,
    /// Entries removed by TTL expiry.
    pub expired: u64,
    /// Entries removed by GateClose.
    pub forced_closed: u64,
    /// Entries added by authorized GateOpen.
    pub opened_by_message: u64,
    /// Control messages rejected for bad/missing credentials.
    pub auth_failures: u64,
}

/// The verdict on one forwarded packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AclVerdict {
    /// Forward it.
    Allow,
    /// Drop it (and, per taste, send ICMP admin-prohibited).
    Deny,
}

/// Outcome of a gateway-control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOutcome {
    /// The table was updated.
    Applied,
    /// Credentials were missing or wrong.
    AuthFailed,
    /// Nothing to do (e.g. closing a nonexistent entry).
    NoEntry,
}

/// The access-control table of the gateway.
///
/// # Examples
///
/// ```
/// use gateway::acl::{AclConfig, AclVerdict, GatewayAcl};
/// use netstack::ip::{Ipv4Packet, Proto};
/// use sim::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut acl = GatewayAcl::new(AclConfig::default());
/// let amateur = Ipv4Addr::new(44, 24, 0, 5);
/// let foreign = Ipv4Addr::new(128, 95, 1, 4);
/// let inbound = Ipv4Packet::new(foreign, amateur, Proto::Tcp, vec![]);
/// // Unsolicited inbound is denied …
/// assert_eq!(acl.check(SimTime::ZERO, &inbound), AclVerdict::Deny);
/// // … until the amateur side initiates.
/// let outbound = Ipv4Packet::new(amateur, foreign, Proto::Tcp, vec![]);
/// acl.check(SimTime::ZERO, &outbound);
/// assert_eq!(acl.check(SimTime::ZERO, &inbound), AclVerdict::Allow);
/// ```
#[derive(Debug)]
pub struct GatewayAcl {
    cfg: AclConfig,
    /// (amateur host, foreign host) → expiry.
    table: HashMap<(Ipv4Addr, Ipv4Addr), SimTime>,
    stats: AclStats,
}

impl GatewayAcl {
    /// Creates an empty table ("initially the table starts off empty").
    pub fn new(cfg: AclConfig) -> GatewayAcl {
        GatewayAcl {
            cfg,
            table: HashMap::new(),
            stats: AclStats::default(),
        }
    }

    /// True if `ip` is on the amateur side.
    pub fn is_amateur(&self, ip: Ipv4Addr) -> bool {
        self.cfg.amateur_net.contains(ip)
    }

    /// Judges a packet the gateway is about to forward, updating the
    /// table per the paper's rules.
    pub fn check(&mut self, now: SimTime, packet: &Ipv4Packet) -> AclVerdict {
        let src_am = self.is_amateur(packet.src);
        let dst_am = self.is_amateur(packet.dst);
        match (src_am, dst_am) {
            // Amateur-initiated: open/refresh the return path.
            (true, false) => {
                self.stats.openings += 1;
                self.table
                    .insert((packet.src, packet.dst), now + self.cfg.entry_ttl);
                AclVerdict::Allow
            }
            // Inbound to the amateur side: allowed only pairwise.
            (false, true) => match self.table.get(&(packet.dst, packet.src)) {
                Some(expiry) if *expiry > now => {
                    self.stats.allowed_inbound += 1;
                    AclVerdict::Allow
                }
                Some(_) => {
                    self.table.remove(&(packet.dst, packet.src));
                    self.stats.expired += 1;
                    self.stats.denied_inbound += 1;
                    AclVerdict::Deny
                }
                None => {
                    self.stats.denied_inbound += 1;
                    AclVerdict::Deny
                }
            },
            // Amateur↔amateur (digipeating through the gateway's subnets)
            // and foreign↔foreign transit are not this table's concern.
            _ => AclVerdict::Allow,
        }
    }

    fn auth_ok(&self, from_amateur_side: bool, auth: &Option<GateAuth>) -> bool {
        if from_amateur_side {
            // §4.3: messages from the amateur side are inherently from a
            // licensed operator (the FCC identification requirement).
            return true;
        }
        match auth {
            Some(a) => self
                .cfg
                .operators
                .get(&a.callsign)
                .is_some_and(|pw| *pw == a.password),
            None => false,
        }
    }

    /// Applies a gateway-control ICMP message (§4.3's proposed
    /// extensions). `from_amateur_side` is judged by the ingress
    /// interface, not the claimed source address.
    pub fn on_gate_message(
        &mut self,
        now: SimTime,
        from_amateur_side: bool,
        msg: &IcmpMessage,
    ) -> GateOutcome {
        match msg {
            IcmpMessage::GateOpen {
                amateur,
                foreign,
                ttl_secs,
                auth,
            } => {
                if !self.auth_ok(from_amateur_side, auth) {
                    self.stats.auth_failures += 1;
                    return GateOutcome::AuthFailed;
                }
                self.stats.opened_by_message += 1;
                let ttl = SimDuration::from_secs(u64::from(*ttl_secs));
                self.table.insert((*amateur, *foreign), now + ttl);
                GateOutcome::Applied
            }
            IcmpMessage::GateClose {
                amateur,
                foreign,
                auth,
            } => {
                if !self.auth_ok(from_amateur_side, auth) {
                    self.stats.auth_failures += 1;
                    return GateOutcome::AuthFailed;
                }
                if self.table.remove(&(*amateur, *foreign)).is_some() {
                    self.stats.forced_closed += 1;
                    GateOutcome::Applied
                } else {
                    GateOutcome::NoEntry
                }
            }
            _ => GateOutcome::NoEntry,
        }
    }

    /// Removes expired entries ("after a certain period of time, these
    /// entries are removed"); returns how many were dropped.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.table.len();
        self.table.retain(|_, expiry| *expiry > now);
        let dropped = before - self.table.len();
        self.stats.expired += dropped as u64;
        dropped
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> AclStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::ip::Proto;

    fn amateur(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(44, 24, 0, n)
    }

    fn foreign(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(128, 95, 1, n)
    }

    fn pkt(src: Ipv4Addr, dst: Ipv4Addr) -> Ipv4Packet {
        Ipv4Packet::new(src, dst, Proto::Tcp, vec![0; 8])
    }

    fn acl_with_op() -> GatewayAcl {
        let mut cfg = AclConfig::default();
        cfg.operators
            .insert("N7AKR".to_string(), "secret".to_string());
        GatewayAcl::new(cfg)
    }

    #[test]
    fn unsolicited_inbound_is_denied() {
        let mut acl = acl_with_op();
        let v = acl.check(SimTime::ZERO, &pkt(foreign(4), amateur(5)));
        assert_eq!(v, AclVerdict::Deny);
        assert_eq!(acl.stats().denied_inbound, 1);
    }

    #[test]
    fn amateur_initiation_opens_the_return_path() {
        let mut acl = acl_with_op();
        let now = SimTime::ZERO;
        assert_eq!(
            acl.check(now, &pkt(amateur(5), foreign(4))),
            AclVerdict::Allow
        );
        assert_eq!(
            acl.check(now, &pkt(foreign(4), amateur(5))),
            AclVerdict::Allow
        );
        // Pairwise only: another foreign host is still blocked.
        assert_eq!(
            acl.check(now, &pkt(foreign(9), amateur(5))),
            AclVerdict::Deny
        );
        // And another amateur host is not opened either.
        assert_eq!(
            acl.check(now, &pkt(foreign(4), amateur(6))),
            AclVerdict::Deny
        );
    }

    #[test]
    fn entries_expire_without_refresh() {
        let mut acl = acl_with_op();
        let t0 = SimTime::ZERO;
        acl.check(t0, &pkt(amateur(5), foreign(4)));
        let before = t0 + SimDuration::from_secs(599);
        assert_eq!(
            acl.check(before, &pkt(foreign(4), amateur(5))),
            AclVerdict::Allow
        );
        let after = t0 + SimDuration::from_secs(601);
        assert_eq!(
            acl.check(after, &pkt(foreign(4), amateur(5))),
            AclVerdict::Deny
        );
    }

    #[test]
    fn amateur_traffic_refreshes_ttl() {
        let mut acl = acl_with_op();
        let t0 = SimTime::ZERO;
        acl.check(t0, &pkt(amateur(5), foreign(4)));
        let t1 = t0 + SimDuration::from_secs(500);
        acl.check(t1, &pkt(amateur(5), foreign(4))); // refresh
        let t2 = t0 + SimDuration::from_secs(900); // 400s after refresh
        assert_eq!(
            acl.check(t2, &pkt(foreign(4), amateur(5))),
            AclVerdict::Allow
        );
    }

    #[test]
    fn expire_sweeps_the_table() {
        let mut acl = acl_with_op();
        let t0 = SimTime::ZERO;
        acl.check(t0, &pkt(amateur(5), foreign(4)));
        acl.check(t0, &pkt(amateur(6), foreign(4)));
        assert_eq!(acl.len(), 2);
        assert_eq!(acl.expire(t0 + SimDuration::from_secs(700)), 2);
        assert!(acl.is_empty());
    }

    #[test]
    fn gate_close_from_amateur_side_needs_no_auth() {
        let mut acl = acl_with_op();
        let now = SimTime::ZERO;
        acl.check(now, &pkt(amateur(5), foreign(4)));
        let msg = IcmpMessage::GateClose {
            amateur: amateur(5),
            foreign: foreign(4),
            auth: None,
        };
        assert_eq!(acl.on_gate_message(now, true, &msg), GateOutcome::Applied);
        assert_eq!(
            acl.check(now, &pkt(foreign(4), amateur(5))),
            AclVerdict::Deny
        );
        assert_eq!(acl.stats().forced_closed, 1);
    }

    #[test]
    fn gate_messages_from_foreign_side_require_credentials() {
        let mut acl = acl_with_op();
        let now = SimTime::ZERO;
        let open = |auth| IcmpMessage::GateOpen {
            amateur: amateur(5),
            foreign: foreign(4),
            ttl_secs: 300,
            auth,
        };
        assert_eq!(
            acl.on_gate_message(now, false, &open(None)),
            GateOutcome::AuthFailed
        );
        assert_eq!(
            acl.on_gate_message(
                now,
                false,
                &open(Some(GateAuth {
                    callsign: "N7AKR".into(),
                    password: "wrong".into()
                }))
            ),
            GateOutcome::AuthFailed
        );
        assert_eq!(acl.stats().auth_failures, 2);
        assert_eq!(
            acl.on_gate_message(
                now,
                false,
                &open(Some(GateAuth {
                    callsign: "N7AKR".into(),
                    password: "secret".into()
                }))
            ),
            GateOutcome::Applied
        );
        assert_eq!(
            acl.check(now, &pkt(foreign(4), amateur(5))),
            AclVerdict::Allow
        );
    }

    #[test]
    fn gate_open_honours_requested_ttl() {
        let mut acl = acl_with_op();
        let now = SimTime::ZERO;
        let msg = IcmpMessage::GateOpen {
            amateur: amateur(5),
            foreign: foreign(4),
            ttl_secs: 60,
            auth: None,
        };
        acl.on_gate_message(now, true, &msg);
        let at59 = now + SimDuration::from_secs(59);
        assert_eq!(
            acl.check(at59, &pkt(foreign(4), amateur(5))),
            AclVerdict::Allow
        );
        let at61 = now + SimDuration::from_secs(61);
        assert_eq!(
            acl.check(at61, &pkt(foreign(4), amateur(5))),
            AclVerdict::Deny
        );
    }

    #[test]
    fn close_of_missing_entry_reports_no_entry() {
        let mut acl = acl_with_op();
        let msg = IcmpMessage::GateClose {
            amateur: amateur(5),
            foreign: foreign(4),
            auth: None,
        };
        assert_eq!(
            acl.on_gate_message(SimTime::ZERO, true, &msg),
            GateOutcome::NoEntry
        );
    }

    #[test]
    fn non_gateway_traffic_is_ignored_by_the_table() {
        let mut acl = acl_with_op();
        let now = SimTime::ZERO;
        assert_eq!(
            acl.check(now, &pkt(amateur(1), amateur(2))),
            AclVerdict::Allow
        );
        assert_eq!(
            acl.check(now, &pkt(foreign(1), foreign(2))),
            AclVerdict::Allow
        );
        assert!(acl.is_empty());
    }
}
