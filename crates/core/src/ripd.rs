//! The RIP44 route-exchange service: the user-space daemon a gateway runs
//! so AMPRnet subnet routes spread without manual tables.
//!
//! §4.2 of the paper: the Internet routes all of net 44 to one gateway, so
//! cross-subnet traffic detours through it no matter where the subnets
//! actually are. [`Rip44Service`] is the fix's moving part — each gateway
//! periodically broadcasts the subnets it serves ([`encap::rip`] wire
//! format) and listens for its peers' broadcasts, feeding what it hears
//! into an [`encap::EncapTable`] with expiry and hold-down. Depending on
//! [`LearnMode`], the learned mappings become:
//!
//! * tunnel endpoints ([`LearnMode::Tunnel`]) — the table is installed as
//!   the stack's [`TunnelMap`](netstack::stack::TunnelMap), so a wired
//!   gateway wraps 44.x traffic in IPIP straight to the nearest peer; or
//! * routes ([`LearnMode::Routes`]) — learned prefixes go into the routing
//!   table as [`RouteSource::Learned`](netstack::route::RouteSource)
//!   entries that override the static aggregate by longest-prefix match
//!   and fall away again when the announcements stop.
//!
//! Timer contract (DESIGN.md §7): all wake-ups surface through
//! [`App::next_deadline`] — the jittered announce timer and the earliest
//! table expiry — so the deadline scheduler drives the daemon exactly when
//! something is due; expiry happens *at* the deadline, never lazily on
//! lookup.

use std::cell::RefCell;
use std::rc::Rc;

use encap::rip::{Announcer, RipEntry, RipUpdate, METRIC_INFINITY, RIP44_PORT};
use encap::table::{EncapTable, LearnOutcome, SharedEncapTable};
use netstack::stack::{IfaceId, StackAction, UdpId};
use netstack::Prefix;
use sim::trace::{Category, Trace};
use sim::wire::Codec;
use sim::{SimDuration, SimRng, SimTime};

use crate::host::Host;
use crate::world::App;

/// Tunable knobs for one service instance.
#[derive(Debug, Clone)]
pub struct RipConfig {
    /// UDP port announcements travel on.
    pub port: u16,
    /// Mean period between announcements.
    pub announce_interval: SimDuration,
    /// Fractional timer jitter (see [`Announcer`]).
    pub jitter: f64,
    /// Lifetime granted to a learned entry per announcement heard.
    pub route_ttl: SimDuration,
    /// Hold-down after an expiry, during which re-learns are rejected.
    pub holddown: SimDuration,
    /// Seed for this daemon's private jitter RNG.
    pub seed: u64,
}

impl Default for RipConfig {
    fn default() -> RipConfig {
        RipConfig {
            port: RIP44_PORT,
            announce_interval: SimDuration::from_secs(30),
            jitter: 0.15,
            route_ttl: SimDuration::from_secs(90),
            holddown: SimDuration::from_secs(60),
            seed: 0x5234,
        }
    }
}

/// What the service does with announcements it hears.
#[derive(Debug, Clone, Copy)]
pub enum LearnMode {
    /// Announce only; ignore everything heard.
    None,
    /// Install learned prefixes as [`Learned`] routes via the announcing
    /// gateway, out `iface` (radio hosts learning their nearest gateway).
    ///
    /// [`Learned`]: netstack::route::RouteSource::Learned
    Routes {
        /// Interface the learned routes point out of.
        iface: IfaceId,
    },
    /// Install the encap table as the stack's tunnel map (wired gateways
    /// that IPIP-encapsulate toward their peers).
    Tunnel,
}

/// Counters for one service instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct RipdStats {
    /// Announcement datagrams broadcast.
    pub sent: u64,
    /// Well-formed updates heard from peers.
    pub heard: u64,
    /// Datagrams on our port that failed to decode.
    pub bad: u64,
}

/// One subnet set announced out one interface.
#[derive(Debug, Clone)]
pub struct AnnounceSet {
    /// Interface the broadcast goes out of (its address becomes the
    /// update's `origin`, i.e. the tunnel endpoint peers will use).
    pub iface: IfaceId,
    /// The subnets and metrics to announce.
    pub entries: Vec<RipEntry>,
}

/// The RIP44 daemon, installed on a host as an [`App`]. See the module
/// docs.
pub struct Rip44Service {
    cfg: RipConfig,
    announce: Vec<AnnounceSet>,
    learn: LearnMode,
    table: SharedEncapTable,
    udp: Option<UdpId>,
    announcer: Announcer,
    rng: SimRng,
    stats: RipdStats,
    trace: Rc<RefCell<Trace>>,
    /// Prefixes this instance announces itself — never learned back.
    own: Vec<Prefix>,
}

impl Rip44Service {
    /// Creates a service announcing `announce` and handling heard updates
    /// per `learn`.
    pub fn new(cfg: RipConfig, announce: Vec<AnnounceSet>, learn: LearnMode) -> Rip44Service {
        let own = announce
            .iter()
            .flat_map(|a| a.entries.iter().map(|e| e.prefix))
            .collect();
        Rip44Service {
            announcer: Announcer::new(cfg.announce_interval, cfg.jitter),
            table: SharedEncapTable::new(EncapTable::new(cfg.holddown)),
            rng: SimRng::seed_from(cfg.seed),
            cfg,
            announce,
            learn,
            udp: None,
            stats: RipdStats::default(),
            trace: Rc::new(RefCell::new(Trace::disabled())),
            own,
        }
    }

    /// A handle to the encap table, for assertions and for wiring the
    /// same table into other components before the world starts.
    pub fn table(&self) -> SharedEncapTable {
        self.table.clone()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RipdStats {
        self.stats
    }

    /// Turns on tracing ([`Category::Rip44`] / [`Category::Encap`]) and
    /// returns the shared handle to read it from outside the world.
    pub fn enable_trace(&mut self) -> Rc<RefCell<Trace>> {
        self.trace = Rc::new(RefCell::new(Trace::enabled()));
        self.trace.clone()
    }

    fn record(&self, now: SimTime, cat: Category, host: &Host, msg: String) {
        let mut t = self.trace.borrow_mut();
        if t.is_enabled() {
            t.record(now, cat, host.name.clone(), msg);
        }
    }

    /// Applies one heard update. Learning feeds the encap table (expiry +
    /// hold-down) and, in [`LearnMode::Routes`], mirrors accepted entries
    /// into the routing table.
    fn on_update(&mut self, now: SimTime, update: RipUpdate, host: &mut Host) {
        self.stats.heard += 1;
        let mut news = false;
        for e in update.entries {
            // Never learn our own announcements (reflected or relayed),
            // and treat infinity as a withdrawal we simply don't believe
            // in yet (expiry handles dead gateways).
            if self.own.contains(&e.prefix) || e.metric >= METRIC_INFINITY {
                continue;
            }
            let metric = e.metric.saturating_add(1).min(METRIC_INFINITY);
            let outcome = self
                .table
                .with(|t| t.learn(now, e.prefix, update.origin, metric, self.cfg.route_ttl));
            match outcome {
                LearnOutcome::New | LearnOutcome::Updated => {
                    news = true;
                    if let LearnMode::Routes { iface } = self.learn {
                        host.stack.routes_mut().add_learned(
                            e.prefix,
                            Some(update.origin),
                            iface,
                            metric,
                        );
                    }
                    self.record(
                        now,
                        Category::Rip44,
                        host,
                        format!("learned {} via {} metric {metric}", e.prefix, update.origin),
                    );
                }
                LearnOutcome::Refreshed => {}
                LearnOutcome::HeldDown => {
                    self.record(
                        now,
                        Category::Rip44,
                        host,
                        format!("held down {} from {}", e.prefix, update.origin),
                    );
                }
                LearnOutcome::Worse => {}
            }
        }
        if news {
            // Triggered update: hearing news pulls our own next
            // announcement earlier so second-order listeners converge
            // without waiting a full period.
            self.announcer.trigger(now, &mut self.rng);
        }
    }
}

impl App for Rip44Service {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.udp = host.stack.udp_bind(self.cfg.port).ok();
        self.announcer.start(now, &mut self.rng);
        if let LearnMode::Tunnel = self.learn {
            host.stack.set_tunnel_map(Box::new(self.table.clone()));
        }
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        let StackAction::UdpReadable(id) = event else {
            return;
        };
        if Some(*id) != self.udp {
            return;
        }
        while let Some((_src, _port, payload)) = host.stack.udp_recv(*id) {
            match RipUpdate::decode(payload.as_slice()) {
                Ok(update) => self.on_update(now, update, host),
                Err(_) => self.stats.bad += 1,
            }
        }
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        // Expire exactly at deadlines. This runs even while the host is
        // down so the timers keep moving.
        let dead = self.table.with(|t| {
            if t.next_deadline().is_some_and(|d| d <= now) {
                t.expire(now)
            } else {
                Vec::new()
            }
        });
        for e in &dead {
            if let LearnMode::Routes { .. } = self.learn {
                host.stack.routes_mut().remove_learned(e.subnet);
            }
            self.record(
                now,
                Category::Encap,
                host,
                format!("expired {} via {} (hold-down begins)", e.subnet, e.endpoint),
            );
        }
        // Announce when due; a dead host's daemon is dead with it.
        if self.announcer.due(now, &mut self.rng) && !host.is_down() {
            if let Some(udp) = self.udp {
                for set in &self.announce {
                    let origin = host.stack.iface(set.iface).addr;
                    let update = RipUpdate {
                        origin,
                        entries: set.entries.clone(),
                    };
                    host.udp_broadcast(now, udp, set.iface, self.cfg.port, update.encode());
                    self.stats.sent += 1;
                    self.record(
                        now,
                        Category::Rip44,
                        host,
                        format!("announced {} subnet(s) from {origin}", set.entries.len()),
                    );
                }
            }
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        let expiry = self.table.with(|t| t.next_deadline());
        match (self.announcer.next_deadline(), expiry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{EtherIfConfig, HostConfig};
    use crate::world::World;
    use ether::MacAddr;
    use std::net::Ipv4Addr;

    fn wired_host(name: &str, last: u8) -> HostConfig {
        let mut cfg = HostConfig::named(name);
        cfg.ether = Some(EtherIfConfig {
            mac: MacAddr::local(last as u16),
            ip: Ipv4Addr::new(128, 95, 1, last),
            prefix_len: 24,
        });
        cfg
    }

    fn east_prefix() -> Prefix {
        Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16)
    }

    /// Two wired hosts: one announces a subnet, the other learns it as a
    /// tunnel endpoint, and the entry expires once announcements stop.
    #[test]
    fn announcement_learn_expiry_cycle() {
        let mut w = World::new(9);
        let seg = w.add_segment(sim::Bandwidth::ETHERNET_10M);
        let announcer = w.add_host(wired_host("east-gw", 101));
        let listener = w.add_host(wired_host("int", 4));
        w.attach_ether(announcer, seg);
        w.attach_ether(listener, seg);

        let a_if = w.host(announcer).ether_iface().unwrap();
        let cfg = RipConfig {
            announce_interval: SimDuration::from_secs(10),
            route_ttl: SimDuration::from_secs(25),
            holddown: SimDuration::from_secs(20),
            ..RipConfig::default()
        };
        w.add_app(
            announcer,
            Box::new(Rip44Service::new(
                cfg.clone(),
                vec![AnnounceSet {
                    iface: a_if,
                    entries: vec![RipEntry {
                        prefix: east_prefix(),
                        metric: 1,
                    }],
                }],
                LearnMode::None,
            )),
        );
        let svc = Rip44Service::new(cfg, Vec::new(), LearnMode::Tunnel);
        let table = svc.table();
        w.add_app(listener, Box::new(svc));

        w.run_for(SimDuration::from_secs(30));
        let entries: Vec<_> = table.with(|t| t.entries().to_vec());
        assert_eq!(entries.len(), 1, "subnet learned");
        assert_eq!(entries[0].subnet, east_prefix());
        assert_eq!(entries[0].endpoint, Ipv4Addr::new(128, 95, 1, 101));
        assert_eq!(entries[0].metric, 2, "announced 1 + one hop");

        // Kill the announcer: the entry must expire within one TTL and
        // enter hold-down.
        w.host_mut(announcer).set_down(true);
        w.run_for(SimDuration::from_secs(26));
        assert!(table.with(|t| t.entries().is_empty()), "entry expired");
        assert!(table.stats().expired >= 1);
    }

    /// Routes mode installs and withdraws learned routes in the routing
    /// table, leaving static routes alone.
    #[test]
    fn routes_mode_mirrors_table_into_routes() {
        let mut w = World::new(11);
        let seg = w.add_segment(sim::Bandwidth::ETHERNET_10M);
        let announcer = w.add_host(wired_host("east-gw", 101));
        let listener = w.add_host(wired_host("int", 4));
        w.attach_ether(announcer, seg);
        w.attach_ether(listener, seg);

        let a_if = w.host(announcer).ether_iface().unwrap();
        let l_if = w.host(listener).ether_iface().unwrap();
        // Static aggregate on the listener, like the real world's lone
        // class-A route.
        w.host_mut(listener).stack.routes_mut().add(
            Prefix::amprnet(),
            Some(Ipv4Addr::new(128, 95, 1, 100)),
            l_if,
        );
        let cfg = RipConfig {
            announce_interval: SimDuration::from_secs(10),
            route_ttl: SimDuration::from_secs(25),
            ..RipConfig::default()
        };
        w.add_app(
            announcer,
            Box::new(Rip44Service::new(
                cfg.clone(),
                vec![AnnounceSet {
                    iface: a_if,
                    entries: vec![RipEntry {
                        prefix: east_prefix(),
                        metric: 1,
                    }],
                }],
                LearnMode::None,
            )),
        );
        w.add_app(
            listener,
            Box::new(Rip44Service::new(
                cfg,
                Vec::new(),
                LearnMode::Routes { iface: l_if },
            )),
        );

        w.run_for(SimDuration::from_secs(30));
        let east_dst = Ipv4Addr::new(44, 56, 0, 5);
        let r = w.host(listener).stack.routes().lookup_route(east_dst);
        let r = r.expect("learned route present");
        assert_eq!(r.prefix, east_prefix(), "LPM beats the /8 aggregate");
        assert_eq!(r.via, Some(Ipv4Addr::new(128, 95, 1, 101)));

        // Announcements stop; the learned route expires and the aggregate
        // takes over again.
        w.host_mut(announcer).set_down(true);
        w.run_for(SimDuration::from_secs(26));
        let r = w.host(listener).stack.routes().lookup_route(east_dst);
        assert_eq!(r.expect("aggregate remains").prefix, Prefix::amprnet());
    }
}
