//! The Ethernet (DEQNA-style) driver: the gateway's other leg.
//!
//! §2.2: the packet radio driver "supports the same calls as the drivers
//! for other network devices such as the DEQNA". This is that DEQNA-side
//! driver: Ethernet encapsulation plus the *untouched* Ethernet ARP that
//! the paper was careful not to modify ("because we did not want to
//! modify the code for our system that is used on the Ethernet side of
//! the gateway").

use ether::{EtherFrame, EtherType, MacAddr};
use netstack::arp::{hw_type, ArpPacket};
use netstack::ip::Ipv4Packet;
use sim::{FrameSink, SimTime};
use std::net::Ipv4Addr;

use crate::arp_engine::{ArpConfig, ArpEngine, Resolution};
use crate::ifnet::IfNet;

/// Driver counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct EtherDrvStats {
    /// Frames received.
    pub frames_in: u64,
    /// IP packets passed up.
    pub ip_in: u64,
    /// ARP packets consumed.
    pub arp_in: u64,
    /// Frames with unhandled EtherTypes.
    pub other_in: u64,
    /// IP packets transmitted.
    pub ip_out: u64,
}

/// The Ethernet driver for one NIC.
#[derive(Debug)]
pub struct EtherDriver {
    /// The `if_net` entry ("qe0").
    pub ifnet: IfNet,
    mac: MacAddr,
    arp: ArpEngine,
    stats: EtherDrvStats,
}

impl EtherDriver {
    /// Creates the driver for a NIC with address `mac` numbered `my_ip`.
    pub fn new(mac: MacAddr, my_ip: Ipv4Addr, arp: ArpConfig) -> EtherDriver {
        EtherDriver {
            ifnet: IfNet::new("qe0", ether::MTU),
            mac,
            arp: ArpEngine::new(hw_type::ETHERNET, mac.octets().to_vec(), my_ip, arp),
            stats: EtherDrvStats::default(),
        }
    }

    /// The NIC's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Driver counters.
    pub fn stats(&self) -> EtherDrvStats {
        self.stats
    }

    /// The driver's ARP engine.
    pub fn arp_mut(&mut self) -> &mut ArpEngine {
        &mut self.arp
    }

    /// Processes a received frame. Returns the decapsulated IP packet
    /// bytes (if any); frames the driver wants transmitted (ARP replies,
    /// released holds) are emitted into `tx`.
    pub fn input(
        &mut self,
        now: SimTime,
        frame: &EtherFrame,
        tx: &mut impl FrameSink<EtherFrame>,
    ) -> Option<Vec<u8>> {
        self.stats.frames_in += 1;
        self.ifnet.stats.ipackets += 1;
        match frame.ethertype {
            EtherType::Ipv4 => {
                self.stats.ip_in += 1;
                Some(frame.payload.clone())
            }
            EtherType::Arp => {
                self.stats.arp_in += 1;
                let Ok(arp) = ArpPacket::decode(&frame.payload) else {
                    self.ifnet.stats.ierrors += 1;
                    return None;
                };
                let (reply, released) = self.arp.on_arp(now, &arp);
                if let Some(reply) = reply {
                    let dst = mac_from_bytes(&reply.target_hw);
                    let f = self.build_frame(dst, EtherType::Arp, reply.encode());
                    tx.emit(f);
                }
                for (hw, packet) in released {
                    let dst = mac_from_bytes(&hw);
                    self.stats.ip_out += 1;
                    let f = self.build_frame(dst, EtherType::Ipv4, packet.encode());
                    tx.emit(f);
                }
                None
            }
            EtherType::Other(_) => {
                self.stats.other_in += 1;
                None
            }
        }
    }

    /// Outputs an IP packet toward `next_hop`, resolving its MAC; frames
    /// to transmit (possibly an ARP request while the packet waits) are
    /// emitted into `tx`. A broadcast next hop (RIP44 announcements)
    /// bypasses ARP and goes straight to the all-ones MAC.
    pub fn output(
        &mut self,
        now: SimTime,
        packet: Ipv4Packet,
        next_hop: Ipv4Addr,
        tx: &mut impl FrameSink<EtherFrame>,
    ) {
        if next_hop == Ipv4Addr::BROADCAST {
            self.stats.ip_out += 1;
            let f = self.build_frame(MacAddr::BROADCAST, EtherType::Ipv4, packet.encode());
            tx.emit(f);
            return;
        }
        match self.arp.resolve(now, next_hop, packet) {
            Resolution::Send(hw, packet) => {
                self.stats.ip_out += 1;
                let dst = mac_from_bytes(&hw);
                let f = self.build_frame(dst, EtherType::Ipv4, packet.encode());
                tx.emit(f);
            }
            Resolution::Pending(Some(request)) => {
                let f = self.build_frame(MacAddr::BROADCAST, EtherType::Arp, request.encode());
                tx.emit(f);
            }
            Resolution::Pending(None) => {}
            Resolution::Dropped => {
                self.ifnet.stats.oerrors += 1;
            }
        }
    }

    /// Periodic ARP maintenance; emits requests to retransmit into `tx`.
    pub fn age_arp(&mut self, now: SimTime, tx: &mut impl FrameSink<EtherFrame>) {
        for r in self.arp.age(now, sim::SimDuration::from_secs(30)) {
            let f = self.build_frame(MacAddr::BROADCAST, EtherType::Arp, r.encode());
            tx.emit(f);
        }
    }

    fn build_frame(&mut self, dst: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> EtherFrame {
        self.ifnet.stats.opackets += 1;
        EtherFrame::new(dst, self.mac, ethertype, payload)
    }
}

fn mac_from_bytes(bytes: &[u8]) -> MacAddr {
    let mut octets = [0u8; 6];
    let n = bytes.len().min(6);
    octets[..n].copy_from_slice(&bytes[..n]);
    MacAddr::new(octets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::ip::Proto;

    fn ipa(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(128, 95, 1, n)
    }

    fn driver() -> EtherDriver {
        EtherDriver::new(MacAddr::local(1), ipa(100), ArpConfig::default())
    }

    #[test]
    fn ip_frames_pass_up() {
        let mut drv = driver();
        let p = Ipv4Packet::new(ipa(4), ipa(100), Proto::Udp, vec![1; 10]);
        let f = EtherFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            EtherType::Ipv4,
            p.encode(),
        );
        let mut tx: Vec<EtherFrame> = Vec::new();
        let ip = drv.input(SimTime::ZERO, &f, &mut tx);
        assert!(tx.is_empty());
        assert_eq!(ip.unwrap(), p.encode());
        assert_eq!(drv.stats().ip_in, 1);
    }

    #[test]
    fn arp_request_answered_and_cache_primed() {
        let mut drv = driver();
        let req = ArpPacket::request(
            hw_type::ETHERNET,
            MacAddr::local(2).octets().to_vec(),
            ipa(4),
            ipa(100),
        );
        let f = EtherFrame::new(
            MacAddr::BROADCAST,
            MacAddr::local(2),
            EtherType::Arp,
            req.encode(),
        );
        let mut tx: Vec<EtherFrame> = Vec::new();
        let ip = drv.input(SimTime::ZERO, &f, &mut tx);
        assert!(ip.is_none());
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].dst, MacAddr::local(2));
        assert_eq!(tx[0].ethertype, EtherType::Arp);
        // Now output to that host is a cache hit.
        let p = Ipv4Packet::new(ipa(100), ipa(4), Proto::Udp, vec![0; 4]);
        let mut frames: Vec<EtherFrame> = Vec::new();
        drv.output(SimTime::ZERO, p, ipa(4), &mut frames);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].ethertype, EtherType::Ipv4);
        assert_eq!(frames[0].dst, MacAddr::local(2));
    }

    #[test]
    fn unresolved_output_broadcasts_request_then_releases() {
        let mut drv = driver();
        let p = Ipv4Packet::new(ipa(100), ipa(4), Proto::Udp, vec![9; 8]);
        let mut frames: Vec<EtherFrame> = Vec::new();
        drv.output(SimTime::ZERO, p.clone(), ipa(4), &mut frames);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].dst, MacAddr::BROADCAST);
        assert_eq!(frames[0].ethertype, EtherType::Arp);
        // Reply releases the packet.
        let req = ArpPacket::decode(&frames[0].payload).unwrap();
        let reply = req.reply_to(MacAddr::local(7).octets().to_vec());
        let rf = EtherFrame::new(
            MacAddr::local(1),
            MacAddr::local(7),
            EtherType::Arp,
            reply.encode(),
        );
        let mut tx: Vec<EtherFrame> = Vec::new();
        let _ = drv.input(SimTime::ZERO, &rf, &mut tx);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].dst, MacAddr::local(7));
        assert_eq!(tx[0].payload, p.encode());
    }

    #[test]
    fn unknown_ethertype_counted() {
        let mut drv = driver();
        let f = EtherFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            EtherType::Other(0x6004),
            vec![0; 10],
        );
        let mut tx: Vec<EtherFrame> = Vec::new();
        let ip = drv.input(SimTime::ZERO, &f, &mut tx);
        assert!(ip.is_none() && tx.is_empty());
        assert_eq!(drv.stats().other_in, 1);
    }
}
