//! The `if_net` structure and the bounded BSD-style interface queue.
//!
//! §2.2: *"In order to get the kernel to recognize the packet radio
//! interface, we had to create and initialize a structure of the type
//! if_net. The if_net structure contains pointers to the procedures used
//! to initialize the interface, send packets, change parameters, and
//! perform other operations."* In Rust, the procedure pointers become the
//! driver types themselves; what survives here is the interface metadata,
//! its counters, and the bounded `ifqueue` whose drops under load are
//! part of §4.1's story ("since these retransmissions are queued at the
//! gateway, they delay other packets").

use std::collections::VecDeque;

use sim::SimTime;

/// 4.3BSD's default interface queue depth.
pub const IFQ_MAXLEN: usize = 50;

/// Interface-level counters (the fields `netstat -i` would show).
#[derive(Debug, Clone, Copy, Default)]
pub struct IfStats {
    /// Packets received.
    pub ipackets: u64,
    /// Input errors (undecodable frames, bad checksums).
    pub ierrors: u64,
    /// Packets sent.
    pub opackets: u64,
    /// Output errors.
    pub oerrors: u64,
    /// Input-queue drops (queue full).
    pub iqdrops: u64,
}

/// The interface metadata block.
#[derive(Debug, Clone)]
pub struct IfNet {
    /// Interface name, e.g. `"pr0"` or `"qe0"`.
    pub name: String,
    /// Link MTU.
    pub mtu: usize,
    /// Up/down flag.
    pub up: bool,
    /// Counters.
    pub stats: IfStats,
}

impl IfNet {
    /// Creates an up interface.
    pub fn new(name: &str, mtu: usize) -> IfNet {
        IfNet {
            name: name.to_string(),
            mtu,
            up: true,
            stats: IfStats::default(),
        }
    }
}

/// A bounded FIFO of work items with ready times — the `ifqueue`.
///
/// Items become visible to [`IfQueue::pop_due`] only once the simulated
/// clock passes their `ready` stamp (the CPU model sets that to the
/// moment protocol processing would actually run).
#[derive(Debug)]
pub struct IfQueue<T> {
    items: VecDeque<(SimTime, T)>,
    max: usize,
    drops: u64,
    /// High-water mark, for the queueing statistics in E3.
    peak: usize,
}

impl<T> IfQueue<T> {
    /// Creates a queue bounded at `max` items.
    pub fn new(max: usize) -> IfQueue<T> {
        IfQueue {
            items: VecDeque::new(),
            max,
            drops: 0,
            peak: 0,
        }
    }

    /// Enqueues an item that becomes processable at `ready`; returns
    /// `false` (and counts a drop) if the queue is full.
    pub fn push(&mut self, ready: SimTime, item: T) -> bool {
        if self.items.len() >= self.max {
            self.drops += 1;
            return false;
        }
        self.items.push_back((ready, item));
        self.peak = self.peak.max(self.items.len());
        true
    }

    /// Pops the next item whose ready time has passed. Items are strictly
    /// FIFO: a due item behind a not-yet-due one waits (the queue models
    /// one CPU working in order).
    pub fn pop_due(&mut self, now: SimTime) -> Option<T> {
        match self.items.front() {
            Some((ready, _)) if *ready <= now => self.items.pop_front().map(|(_, t)| t),
            _ => None,
        }
    }

    /// The head item's ready time.
    pub fn next_ready(&self) -> Option<SimTime> {
        self.items.front().map(|(t, _)| *t)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of items dropped for overflow.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Deepest the queue has been.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SimDuration;

    #[test]
    fn fifo_respects_ready_times() {
        let mut q = IfQueue::new(10);
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        assert!(q.push(t1, "late"));
        assert!(q.push(t0, "early-but-behind"));
        // Head not ready yet: nothing pops, even though the second item's
        // stamp has passed.
        assert_eq!(q.pop_due(t0), None);
        assert_eq!(q.next_ready(), Some(t1));
        assert_eq!(q.pop_due(t1), Some("late"));
        assert_eq!(q.pop_due(t1), Some("early-but-behind"));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q = IfQueue::new(2);
        let t = SimTime::ZERO;
        assert!(q.push(t, 1));
        assert!(q.push(t, 2));
        assert!(!q.push(t, 3));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut q = IfQueue::new(100);
        let t = SimTime::ZERO;
        for i in 0..7 {
            q.push(t, i);
        }
        for _ in 0..3 {
            q.pop_due(t);
        }
        q.push(t, 99);
        assert_eq!(q.peak(), 7);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn ifnet_defaults() {
        let ifn = IfNet::new("pr0", 256);
        assert!(ifn.up);
        assert_eq!(ifn.mtu, 256);
        assert_eq!(ifn.stats.ipackets, 0);
    }
}
