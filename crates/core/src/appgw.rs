//! §2.4's future work: the application-layer gateway.
//!
//! *"Packets that are received from the TNC that are not of type IP can
//! be placed on the input queue for the appropriate tty line. A user
//! program can then read from this line, and maintain the state required
//! to keep track of AX.25 level … connections. Data can then be passed to
//! a pseudo terminal to support remote login…"*
//!
//! [`AppGateway`] is that user program: it reads the driver's tty divert
//! queue, runs one AX.25 connected-mode state machine per remote station,
//! and bridges each session onto a TCP connection to a configured
//! service (a telnet-style login host on the Internet side). Non-IP
//! terminal users thus reach IP services without running IP — the
//! paper's answer to "isolating themselves from the users that can't run
//! IP" (§1).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use ax25::addr::Ax25Addr;
use ax25::conn::{ConnConfig, ConnEvent, Connection};
use netstack::stack::{SockId, StackAction};
use sim::SimTime;

use crate::host::Host;
use crate::world::App;

/// Statistics for the application gateway.
#[derive(Debug, Clone, Default)]
pub struct AppGwReport {
    /// AX.25 sessions accepted.
    pub sessions_accepted: u64,
    /// Octets bridged radio→TCP.
    pub bytes_to_tcp: u64,
    /// Octets bridged TCP→radio.
    pub bytes_to_radio: u64,
    /// Sessions that ended.
    pub sessions_closed: u64,
}

struct Session {
    conn: Connection,
    sock: Option<SockId>,
    sock_connected: bool,
    /// Radio data buffered until the TCP side connects.
    pending_to_tcp: Vec<u8>,
}

/// The §2.4 application-layer gateway, run as an [`App`] on the gateway
/// host.
pub struct AppGateway {
    my_call: Ax25Addr,
    /// Where bridged sessions connect (e.g. the Ethernet host's telnet).
    target: (Ipv4Addr, u16),
    conn_cfg: ConnConfig,
    sessions: HashMap<Ax25Addr, Session>,
    /// Shared report for inspection after a run.
    pub report: std::rc::Rc<std::cell::RefCell<AppGwReport>>,
}

impl AppGateway {
    /// Creates a gateway bridging AX.25 sessions to `target`.
    pub fn new(my_call: Ax25Addr, target: (Ipv4Addr, u16)) -> AppGateway {
        AppGateway {
            my_call,
            target,
            conn_cfg: ConnConfig::default(),
            sessions: HashMap::new(),
            report: std::rc::Rc::new(std::cell::RefCell::new(AppGwReport::default())),
        }
    }

    /// A handle to the report, valid after the world runs.
    pub fn report_handle(&self) -> std::rc::Rc<std::cell::RefCell<AppGwReport>> {
        self.report.clone()
    }

    fn drive_conn_events(
        &mut self,
        now: SimTime,
        peer: Ax25Addr,
        events: Vec<ConnEvent>,
        host: &mut Host,
    ) {
        for ev in events {
            match ev {
                ConnEvent::SendFrame(frame) => {
                    host.send_raw_ax25(now, &frame);
                }
                ConnEvent::Established => {
                    self.report.borrow_mut().sessions_accepted += 1;
                    // Open the TCP leg.
                    if let Some(session) = self.sessions.get_mut(&peer) {
                        if session.sock.is_none() {
                            if let Ok(sock) = host.tcp_connect(now, self.target.0, self.target.1) {
                                session.sock = Some(sock);
                            }
                        }
                    }
                }
                ConnEvent::Data(data) => {
                    if let Some(session) = self.sessions.get_mut(&peer) {
                        if session.sock_connected {
                            if let Some(sock) = session.sock {
                                self.report.borrow_mut().bytes_to_tcp += data.len() as u64;
                                host.tcp_send(now, sock, &data);
                            }
                        } else {
                            session.pending_to_tcp.extend_from_slice(&data);
                        }
                    }
                }
                ConnEvent::Released(_) => {
                    self.report.borrow_mut().sessions_closed += 1;
                    if let Some(session) = self.sessions.remove(&peer) {
                        if let Some(sock) = session.sock {
                            host.tcp_close(now, sock);
                        }
                    }
                }
            }
        }
    }

    fn session_for_sock(&mut self, sock: SockId) -> Option<Ax25Addr> {
        self.sessions
            .iter()
            .find(|(_, s)| s.sock == Some(sock))
            .map(|(peer, _)| *peer)
    }
}

impl App for AppGateway {
    fn poll(&mut self, now: SimTime, host: &mut Host) {
        // Read the tty divert queue: the §2.4 user program's read loop.
        for frame in host.take_tty_frames() {
            let peer = frame.source;
            if !self.sessions.contains_key(&peer) {
                self.sessions.insert(
                    peer,
                    Session {
                        conn: Connection::new(self.my_call, peer, self.conn_cfg),
                        sock: None,
                        sock_connected: false,
                        pending_to_tcp: Vec::new(),
                    },
                );
            }
            let events = self
                .sessions
                .get_mut(&peer)
                .expect("just inserted")
                .conn
                .on_frame(now, &frame);
            self.drive_conn_events(now, peer, events, host);
        }
        // Fire AX.25 timers (sorted: HashMap order must not leak into the
        // simulation).
        let mut due: Vec<Ax25Addr> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.conn.next_deadline().is_some_and(|t| t <= now))
            .map(|(p, _)| *p)
            .collect();
        due.sort();
        for peer in due {
            let events = self
                .sessions
                .get_mut(&peer)
                .expect("present")
                .conn
                .on_timer(now);
            self.drive_conn_events(now, peer, events, host);
        }
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpConnected(sock) => {
                if let Some(peer) = self.session_for_sock(*sock) {
                    let session = self.sessions.get_mut(&peer).expect("present");
                    session.sock_connected = true;
                    let pending = std::mem::take(&mut session.pending_to_tcp);
                    if !pending.is_empty() {
                        self.report.borrow_mut().bytes_to_tcp += pending.len() as u64;
                        host.tcp_send(now, *sock, &pending);
                    }
                }
            }
            StackAction::TcpReadable(sock) => {
                if let Some(peer) = self.session_for_sock(*sock) {
                    let data = host.tcp_recv(now, *sock);
                    if !data.is_empty() {
                        self.report.borrow_mut().bytes_to_radio += data.len() as u64;
                        let session = self.sessions.get_mut(&peer).expect("present");
                        let events = session.conn.send(now, &data);
                        self.drive_conn_events(now, peer, events, host);
                    }
                }
            }
            StackAction::TcpPeerClosed(sock) | StackAction::TcpClosed { sock, .. } => {
                if let Some(peer) = self.session_for_sock(*sock) {
                    let session = self.sessions.get_mut(&peer).expect("present");
                    let events = session.conn.disconnect(now);
                    self.drive_conn_events(now, peer, events, host);
                }
            }
            _ => {}
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.sessions
            .values()
            .filter_map(|s| s.conn.next_deadline())
            .min()
    }
}
