//! Canned topologies, starting with the paper's own setup.
//!
//! The flagship layout reproduces Figure 1 plus the department Ethernet:
//!
//! ```text
//!  PC (KB7DZ, 44.24.0.5)                    MicroVAX gateway
//!   └─ DZ serial ─ KISS TNC ─ 1200 b/s ─ TNC ─ DZ serial ─┤ N7AKR-1
//!                              radio                      │ 44.24.0.28 (pr0)
//!                                                         │ 128.95.1.100 (qe0)
//!                                    10 Mb/s Ethernet ────┤
//!                                                         └─ vax2 (128.95.1.4)
//! ```
//!
//! The gateway's radio address 44.24.0.28 is the paper's own (§2.3: "the
//! packet radio interface was enabled at the Internet address of
//! 44.24.0.28").

use std::net::Ipv4Addr;

use ax25::addr::Ax25Addr;
use ether::MacAddr;
use netstack::route::{Prefix, Route, RouteSource};
use radio::csma::MacConfig;
use radio::tnc::RxMode;
use sim::Bandwidth;

use crate::cpu::CpuConfig;
use crate::host::{EtherIfConfig, HostConfig, RadioIfConfig};
use crate::hwaddr::Ax25Hw;
use crate::ripd::RipConfig;
use crate::world::{ChanId, HostId, SegId, ShardId, TncId, World};

/// The gateway's radio-side address (the paper's actual assignment).
pub const GW_RADIO_IP: Ipv4Addr = Ipv4Addr::new(44, 24, 0, 28);
/// The gateway's Ethernet-side address.
pub const GW_ETHER_IP: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 100);
/// The isolated PC's AMPRnet address.
pub const PC_IP: Ipv4Addr = Ipv4Addr::new(44, 24, 0, 5);
/// The Ethernet host's address.
pub const ETHER_HOST_IP: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 4);

/// Tunables for the paper topology.
#[derive(Debug, Clone)]
pub struct PaperConfig {
    /// Radio channel bit rate (1200 bit/s in 1988).
    pub radio_rate: Bandwidth,
    /// Host⇄TNC serial speed.
    pub serial_baud: u32,
    /// TNC receive mode (§3's contrast).
    pub tnc_mode: RxMode,
    /// CSMA parameters.
    pub mac: MacConfig,
    /// CPU cost model for the gateway and PC.
    pub cpu: CpuConfig,
    /// Install §4.3 access control on the gateway — the filter engine
    /// in its gateway posture ([`filter::FilterConfig::gateway`]): the
    /// soft-state gate with default TTL and auto-open, no extra rules.
    pub acl: bool,
    /// Install an explicit packet-filter engine configuration on the
    /// gateway (DESIGN.md §13). Supersedes `acl` when set — carries the
    /// §4.3 gate plus compiled rules, the per-flow decision cache, and
    /// rate limiting, enforced at the driver hooks.
    pub filter: Option<filter::FilterConfig>,
    /// Enable RFC 1144 VJ header compression on the radio link (both the
    /// PC and the gateway; they must agree on the slot count). `None` —
    /// the default — reproduces the paper's uncompressed link and keeps
    /// the E1–E12 goldens byte-identical.
    pub vj: Option<vj::VjConfig>,
    /// Clamp every host's TCP MSS to its egress/ingress MTU minus 40
    /// (radio: 256 → 216) so locally originated TCP never fragments.
    pub clamp_mss: bool,
}

impl Default for PaperConfig {
    fn default() -> Self {
        PaperConfig {
            radio_rate: Bandwidth::RADIO_1200,
            serial_baud: 9600,
            tnc_mode: RxMode::Promiscuous,
            mac: MacConfig::default(),
            cpu: CpuConfig::default(),
            acl: true,
            filter: None,
            vj: None,
            clamp_mss: false,
        }
    }
}

/// The built paper topology.
pub struct PaperScenario {
    /// The world.
    pub world: World,
    /// The radio channel.
    pub chan: ChanId,
    /// The Ethernet segment.
    pub seg: SegId,
    /// The isolated PC.
    pub pc: HostId,
    /// The MicroVAX gateway.
    pub gw: HostId,
    /// A host on the department Ethernet.
    pub ether_host: HostId,
    /// The PC's TNC.
    pub pc_tnc: TncId,
    /// The gateway's TNC.
    pub gw_tnc: TncId,
}

/// Builds the paper's Figure-1 topology.
///
/// # Examples
///
/// ```
/// use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
/// use sim::SimDuration;
///
/// let mut s = paper_topology(PaperConfig::default(), 42);
/// let now = s.world.now;
/// s.world.host_mut(s.pc).ping(now, ETHER_HOST_IP, 1, 1, 32);
/// s.world.run_for(SimDuration::from_secs(60));
/// // The gateway forwarded the request and the reply.
/// assert!(s.world.host(s.gw).stack.stats().forwarded >= 2);
/// ```
pub fn paper_topology(cfg: PaperConfig, seed: u64) -> PaperScenario {
    let mut world = World::new(seed);
    let chan = world.add_channel(cfg.radio_rate);
    let seg = world.add_segment(Bandwidth::ETHERNET_10M);

    // The isolated PC: "connected to only a power outlet and a radio".
    let mut pc_cfg = HostConfig::named("pc");
    pc_cfg.cpu = cfg.cpu;
    pc_cfg.stack.clamp_mss = cfg.clamp_mss;
    pc_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("KB7DZ"),
        ip: PC_IP,
        prefix_len: 16,
    });
    let pc = world.add_host(pc_cfg);
    let pc_tnc = world.attach_radio(pc, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);

    // The MicroVAX gateway.
    let mut gw_cfg = HostConfig::named("gw");
    gw_cfg.cpu = cfg.cpu;
    gw_cfg.stack.forwarding = true;
    gw_cfg.stack.clamp_mss = cfg.clamp_mss;
    gw_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("N7AKR-1"),
        ip: GW_RADIO_IP,
        prefix_len: 16,
    });
    gw_cfg.ether = Some(EtherIfConfig {
        mac: MacAddr::local(1),
        ip: GW_ETHER_IP,
        prefix_len: 24,
    });
    if let Some(f) = cfg.filter {
        gw_cfg.filter = Some(f);
    } else if cfg.acl {
        gw_cfg.filter = Some(filter::FilterConfig::gateway());
    }
    let gw = world.add_host(gw_cfg);
    let gw_tnc = world.attach_radio(gw, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);
    world.attach_ether(gw, seg);

    // A host on the department Ethernet.
    let mut eh_cfg = HostConfig::named("vax2");
    eh_cfg.cpu = CpuConfig::free(); // not the machine under study
    eh_cfg.stack.clamp_mss = cfg.clamp_mss;
    eh_cfg.ether = Some(EtherIfConfig {
        mac: MacAddr::local(2),
        ip: ETHER_HOST_IP,
        prefix_len: 24,
    });
    let ether_host = world.add_host(eh_cfg);
    world.attach_ether(ether_host, seg);

    // Routing: "the routing table of another system on our Ethernet was
    // modified so it knew that 44.24.0.28 was the address of a gateway to
    // net 44" (§2.3).
    let pc_if = world.host(pc).radio_iface().expect("pc radio");
    world
        .host_mut(pc)
        .stack
        .routes_mut()
        .add(Prefix::default_route(), Some(GW_RADIO_IP), pc_if);
    let eh_if = world.host(ether_host).ether_iface().expect("vax2 ether");
    world
        .host_mut(ether_host)
        .stack
        .routes_mut()
        .add(Prefix::amprnet(), Some(GW_ETHER_IP), eh_if);

    // VJ header compression is a per-link agreement: both radio drivers
    // get matching slot tables, or neither does.
    if let Some(vj_cfg) = cfg.vj {
        for h in [pc, gw] {
            world
                .host_mut(h)
                .pr_driver_mut()
                .expect("radio host")
                .enable_vj(vj_cfg);
        }
    }

    PaperScenario {
        world,
        chan,
        seg,
        pc,
        gw,
        ether_host,
        pc_tnc,
        gw_tnc,
    }
}

/// A PC and a gateway joined by a chain of `n` digipeaters (experiment
/// E7). Source routing is seeded as static ARP entries on both ends, per
/// §2.3's digipeater-path ARP entries.
pub struct DigiScenario {
    /// The world.
    pub world: World,
    /// The radio channel.
    pub chan: ChanId,
    /// The PC end.
    pub pc: HostId,
    /// The gateway end.
    pub gw: HostId,
}

/// Builds a digipeater-chain topology with hidden ends: the PC and the
/// far host only hear their adjacent digipeaters, so every frame must
/// traverse the whole chain.
pub fn digi_chain_topology(n: usize, cfg: PaperConfig, seed: u64) -> DigiScenario {
    assert!(n <= ax25::MAX_DIGIPEATERS);
    let mut world = World::new(seed);
    let chan = world.add_channel(cfg.radio_rate);

    let mut pc_cfg = HostConfig::named("pc");
    pc_cfg.cpu = cfg.cpu;
    pc_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("KB7DZ"),
        ip: PC_IP,
        prefix_len: 16,
    });
    let pc = world.add_host(pc_cfg);
    world.attach_radio(pc, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);

    let mut gw_cfg = HostConfig::named("gw");
    gw_cfg.cpu = cfg.cpu;
    gw_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("N7AKR-1"),
        ip: GW_RADIO_IP,
        prefix_len: 16,
    });
    let gw = world.add_host(gw_cfg);
    world.attach_radio(gw, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);

    let digis: Vec<Ax25Addr> = (0..n)
        .map(|i| Ax25Addr::parse_or_panic(&format!("DIGI-{}", i + 1)))
        .collect();
    for &d in &digis {
        world.add_digipeater(chan, d, cfg.mac);
    }

    // Static ARP entries with the digipeater path, both directions.
    let fwd = Ax25Hw::via(Ax25Addr::parse_or_panic("N7AKR-1"), &digis);
    let mut rev_path = digis.clone();
    rev_path.reverse();
    let rev = Ax25Hw::via(Ax25Addr::parse_or_panic("KB7DZ"), &rev_path);
    world
        .host_mut(pc)
        .pr_driver_mut()
        .expect("radio")
        .arp_mut()
        .insert_static(GW_RADIO_IP, fwd.encode());
    world
        .host_mut(gw)
        .pr_driver_mut()
        .expect("radio")
        .arp_mut()
        .insert_static(PC_IP, rev.encode());

    if n > 0 {
        // Hide the ends from each other so the chain is load-bearing:
        // stations are added in order pc(0), gw(1), digis(2..2+n).
        let c = world.channel_mut(chan);
        let pc_sta = radio::channel::StationId(0);
        let gw_sta = radio::channel::StationId(1);
        c.set_hears(pc_sta, gw_sta, false);
        c.set_hears(gw_sta, pc_sta, false);
        // Each end hears only its adjacent digipeater; digipeaters hear
        // their neighbours (a line topology).
        for i in 0..n {
            let d_sta = radio::channel::StationId(2 + i);
            if i != 0 {
                c.set_hears(pc_sta, d_sta, false);
                c.set_hears(d_sta, pc_sta, false);
            }
            if i != n - 1 {
                c.set_hears(gw_sta, d_sta, false);
                c.set_hears(d_sta, gw_sta, false);
            }
            for j in 0..n {
                let e_sta = radio::channel::StationId(2 + j);
                if i.abs_diff(j) > 1 {
                    c.set_hears(d_sta, e_sta, false);
                }
            }
        }
    }

    DigiScenario {
        world,
        chan,
        pc,
        gw,
    }
}

/// Addresses used by the three-gateway AMPRnet mesh topology.
pub mod mesh_addrs {
    use std::net::Ipv4Addr;

    /// A distant Internet host (knows only the 44/8 aggregate).
    pub const INTERNET_HOST: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 4);
    /// West gateway, Ethernet side — where the lone class-A route points.
    pub const WEST_GW_ETHER: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 100);
    /// East gateway, Ethernet side.
    pub const EAST_GW_ETHER: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 101);
    /// Gulf gateway, Ethernet side.
    pub const GULF_GW_ETHER: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 102);
    /// West gateway, radio side (the paper's own 44.24.0.28).
    pub const WEST_GW_RADIO: Ipv4Addr = Ipv4Addr::new(44, 24, 0, 28);
    /// East gateway, radio side.
    pub const EAST_GW_RADIO: Ipv4Addr = Ipv4Addr::new(44, 56, 0, 28);
    /// Gulf gateway, radio side.
    pub const GULF_GW_RADIO: Ipv4Addr = Ipv4Addr::new(44, 88, 0, 28);
    /// A host on the east radio subnet.
    pub const EAST_HOST: Ipv4Addr = Ipv4Addr::new(44, 56, 0, 5);
    /// A host on the gulf radio subnet.
    pub const GULF_HOST: Ipv4Addr = Ipv4Addr::new(44, 88, 0, 5);
    /// The east subnet.
    pub const EAST_SUBNET: (Ipv4Addr, u8) = (Ipv4Addr::new(44, 56, 0, 0), 16);
    /// The west subnet.
    pub const WEST_SUBNET: (Ipv4Addr, u8) = (Ipv4Addr::new(44, 24, 0, 0), 16);
    /// The gulf subnet.
    pub const GULF_SUBNET: (Ipv4Addr, u8) = (Ipv4Addr::new(44, 88, 0, 0), 16);
}

/// The built three-gateway mesh (see [`three_gateway`]).
pub struct MeshScenario {
    /// The world.
    pub world: World,
    /// The shared radio channel (split into regions by hearing).
    pub chan: ChanId,
    /// The Internet segment all gateways sit on.
    pub seg: SegId,
    /// The distant Internet host.
    pub internet_host: HostId,
    /// West gateway (owner of the class-A aggregate).
    pub west_gw: HostId,
    /// East gateway.
    pub east_gw: HostId,
    /// Gulf gateway.
    pub gulf_gw: HostId,
    /// Radio host on the east subnet.
    pub east_host: HostId,
    /// Radio host on the gulf subnet.
    pub gulf_host: HostId,
    /// The west gateway's encap table (what it learned from its peers).
    pub west_tunnels: encap::table::SharedEncapTable,
    /// The east gateway's encap table.
    pub east_tunnels: encap::table::SharedEncapTable,
    /// The gulf gateway's encap table.
    pub gulf_tunnels: encap::table::SharedEncapTable,
}

/// Builds the §4.2 endgame: three gateways to net 44 on one Internet
/// segment, exchanging subnet routes with [`Rip44Service`] and carrying
/// cross-gateway traffic in IPIP tunnels.
///
/// ```text
///                          "Internet" Ethernet segment
///  internet-host ───┬───────────────┬───────────────┬─────
///               west-gw          east-gw         gulf-gw      (RIP44 + IPIP)
///  44.24/16 radio ──┘       44.56/16 ┴ radio  44.88/16 ┴ radio
///                 BBONE ─ bridges west↔east    east-host      gulf-host
/// ```
///
/// The Internet still holds only the class-A aggregate (44/8 → west-gw):
/// that is §4.2's unfixable premise. What RIP44 fixes is the *gateways'*
/// view — west-gw learns 44.56/16 → east-gw and wraps such traffic in
/// IPIP across the Ethernet instead of relaying cross-country over the
/// BBONE RF backbone. Radio hosts run the same daemon in
/// [`LearnMode::Routes`], learning their default route from their
/// gateway's radio-side announcements; a deliberately worse static
/// default via the backbone remains as the fallback when the learned one
/// expires.
///
/// [`Rip44Service`]: crate::ripd::Rip44Service
/// [`LearnMode::Routes`]: crate::ripd::LearnMode::Routes
pub fn three_gateway(cfg: &PaperConfig, rip: RipConfig, seed: u64) -> MeshScenario {
    use crate::ripd::{AnnounceSet, LearnMode, Rip44Service};
    use encap::rip::RipEntry;
    use mesh_addrs as a;

    let mut world = World::new(seed);
    let chan = world.add_channel(cfg.radio_rate);
    let seg = world.add_segment(Bandwidth::ETHERNET_10M);

    let mut ih = HostConfig::named("internet-host");
    ih.cpu = CpuConfig::free();
    ih.ether = Some(EtherIfConfig {
        mac: MacAddr::local(10),
        ip: a::INTERNET_HOST,
        prefix_len: 24,
    });
    let internet_host = world.add_host(ih);
    world.attach_ether(internet_host, seg);

    let mut gw_ids = Vec::new();
    for (i, (name, call, radio_ip, ether_ip)) in [
        ("west-gw", "N7AKR-1", a::WEST_GW_RADIO, a::WEST_GW_ETHER),
        ("east-gw", "W2GW", a::EAST_GW_RADIO, a::EAST_GW_ETHER),
        ("gulf-gw", "W5GW", a::GULF_GW_RADIO, a::GULF_GW_ETHER),
    ]
    .into_iter()
    .enumerate()
    {
        let mut gc = HostConfig::named(name);
        gc.cpu = cfg.cpu;
        gc.stack.forwarding = true;
        gc.stack.ipip = true;
        gc.radio = Some(RadioIfConfig {
            call: Ax25Addr::parse_or_panic(call),
            ip: radio_ip,
            prefix_len: 16,
        });
        gc.ether = Some(EtherIfConfig {
            mac: MacAddr::local(11 + i as u16),
            ip: ether_ip,
            prefix_len: 24,
        });
        let gw = world.add_host(gc);
        world.attach_radio(gw, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);
        world.attach_ether(gw, seg);
        gw_ids.push(gw);
    }
    let (west_gw, east_gw, gulf_gw) = (gw_ids[0], gw_ids[1], gw_ids[2]);

    let mut host_ids = Vec::new();
    for (name, call, ip) in [
        ("east-host", "KA2EH", a::EAST_HOST),
        ("gulf-host", "KD5GH", a::GULF_HOST),
    ] {
        let mut hc = HostConfig::named(name);
        hc.cpu = cfg.cpu;
        hc.radio = Some(RadioIfConfig {
            call: Ax25Addr::parse_or_panic(call),
            ip,
            prefix_len: 16,
        });
        let h = world.add_host(hc);
        world.attach_radio(h, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);
        host_ids.push(h);
    }
    let (east_host, gulf_host) = (host_ids[0], host_ids[1]);

    // The cross-country RF backbone digipeater, bridging west and east.
    let bbone = Ax25Addr::parse_or_panic("BBONE");
    world.add_digipeater(chan, bbone, cfg.mac);

    // Hearing matrix. Station order: west_gw=0, east_gw=1, gulf_gw=2,
    // east_host=3, gulf_host=4, BBONE=5. Regions: west {0}, east {1,3},
    // gulf {2,4}; BBONE hears west and east (the fallback bridge), the
    // gulf region is reachable only through its gateway.
    {
        use radio::channel::StationId;
        let region = |s: usize| match s {
            0 => 0,
            1 | 3 => 1,
            2 | 4 => 2,
            _ => 3,
        };
        let c = world.channel_mut(chan);
        for x in 0..6usize {
            for y in (x + 1)..6 {
                let ok = region(x) == region(y)
                    || (y == 5 && region(x) != 2)
                    || (x == 5 && region(y) != 2);
                if !ok {
                    c.set_hears(StationId(x), StationId(y), false);
                    c.set_hears(StationId(y), StationId(x), false);
                }
            }
        }
    }

    // Static routing: the Internet knows one route to net 44 (§4.2), and
    // the west gateway's only non-tunnel path east is the RF backbone.
    let ih_if = world.host(internet_host).ether_iface().unwrap();
    world.host_mut(internet_host).stack.routes_mut().add(
        Prefix::amprnet(),
        Some(a::WEST_GW_ETHER),
        ih_if,
    );
    let wg_radio = world.host(west_gw).radio_iface().unwrap();
    world.host_mut(west_gw).stack.routes_mut().add(
        Prefix::new(a::EAST_SUBNET.0, a::EAST_SUBNET.1),
        None,
        wg_radio,
    );
    world
        .host_mut(west_gw)
        .pr_driver_mut()
        .unwrap()
        .arp_mut()
        .insert_static(
            a::EAST_HOST,
            Ax25Hw::via(Ax25Addr::parse_or_panic("KA2EH"), &[bbone]).encode(),
        );
    // The east host's fallback default: the west gateway via the
    // backbone, at a metric the learned route always beats.
    let eh_if = world.host(east_host).radio_iface().unwrap();
    world.host_mut(east_host).stack.routes_mut().insert(Route {
        prefix: Prefix::default_route(),
        via: Some(a::WEST_GW_RADIO),
        iface: eh_if,
        source: RouteSource::Static,
        metric: 10,
    });
    world
        .host_mut(east_host)
        .pr_driver_mut()
        .unwrap()
        .arp_mut()
        .insert_static(
            a::WEST_GW_RADIO,
            Ax25Hw::via(Ax25Addr::parse_or_panic("N7AKR-1"), &[bbone]).encode(),
        );

    // The daemons. Each gateway announces its subnet on the wire (tunnel
    // endpoints for its peers) and a default route on its radio; radio
    // hosts learn that default as a route.
    let mut tables = Vec::new();
    for (i, (&gw, subnet)) in gw_ids
        .iter()
        .zip([a::WEST_SUBNET, a::EAST_SUBNET, a::GULF_SUBNET])
        .enumerate()
    {
        let ether_if = world.host(gw).ether_iface().unwrap();
        let radio_if = world.host(gw).radio_iface().unwrap();
        let svc = Rip44Service::new(
            RipConfig {
                seed: rip.seed.wrapping_add(i as u64),
                ..rip.clone()
            },
            vec![
                AnnounceSet {
                    iface: ether_if,
                    entries: vec![RipEntry {
                        prefix: Prefix::new(subnet.0, subnet.1),
                        metric: 1,
                    }],
                },
                AnnounceSet {
                    iface: radio_if,
                    entries: vec![RipEntry {
                        prefix: Prefix::default_route(),
                        metric: 1,
                    }],
                },
            ],
            LearnMode::Tunnel,
        );
        tables.push(svc.table());
        world.add_app(gw, Box::new(svc));
    }
    for (i, &h) in host_ids.iter().enumerate() {
        let radio_if = world.host(h).radio_iface().unwrap();
        let svc = Rip44Service::new(
            RipConfig {
                seed: rip.seed.wrapping_add(10 + i as u64),
                ..rip.clone()
            },
            Vec::new(),
            LearnMode::Routes { iface: radio_if },
        );
        world.add_app(h, Box::new(svc));
    }

    let gulf_tunnels = tables.pop().unwrap();
    let east_tunnels = tables.pop().unwrap();
    let west_tunnels = tables.pop().unwrap();
    MeshScenario {
        world,
        chan,
        seg,
        internet_host,
        west_gw,
        east_gw,
        gulf_gw,
        east_host,
        gulf_host,
        west_tunnels,
        east_tunnels,
        gulf_tunnels,
    }
}

// --- City-scale mesh (E15) ---------------------------------------------

/// Address and callsign scheme for [`mesh`] topologies.
///
/// Gateway `g` serves radio subnet `44.(g>>8).(g&255).0/24` — itself at
/// host octet 1, attached host `i` at octet `2 + i` — and sits on the
/// shared Ethernet as `10.(g>>8).(g&255).1/8`. The wired internet host is
/// `10.255.255.1`.
pub mod city {
    use std::net::Ipv4Addr;

    /// The wired-internet host on the Ethernet.
    pub const INTERNET_IP: Ipv4Addr = Ipv4Addr::new(10, 255, 255, 1);

    /// Gateway `g`'s radio-side address.
    pub fn gw_radio_ip(g: usize) -> Ipv4Addr {
        Ipv4Addr::new(44, (g >> 8) as u8, (g & 0xff) as u8, 1)
    }

    /// Gateway `g`'s Ethernet-side address.
    pub fn gw_ether_ip(g: usize) -> Ipv4Addr {
        Ipv4Addr::new(10, (g >> 8) as u8, (g & 0xff) as u8, 1)
    }

    /// Radio host `i` behind gateway `g`.
    pub fn host_ip(g: usize, i: usize) -> Ipv4Addr {
        Ipv4Addr::new(44, (g >> 8) as u8, (g & 0xff) as u8, (2 + i) as u8)
    }

    /// Gateway `g`'s callsign (`GW0042`).
    pub fn gw_call(g: usize) -> String {
        format!("GW{g:04}")
    }

    /// Radio host `(g, i)`'s callsign (`H04207`).
    pub fn host_call(g: usize, i: usize) -> String {
        format!("H{g:03}{i:02}")
    }
}

/// The full-mesh encapsulation table a [`mesh`] gateway carries: every
/// other gateway's subnet maps O(1) — by arithmetic on the destination's
/// middle octets — to that gateway's Ethernet address. Static tunnels
/// stand in for §4.2's RIP exchange at city scale, where a thousand
/// gateways' periodic broadcasts would swamp both the simulated Ethernet
/// and the benchmark's purpose (measuring the engine, not RIP chatter).
#[derive(Debug, Clone)]
pub struct StaticTunnels {
    own: usize,
    gateways: usize,
}

impl netstack::stack::TunnelMap for StaticTunnels {
    fn endpoint(&mut self, dst: Ipv4Addr) -> Option<Ipv4Addr> {
        let o = dst.octets();
        if o[0] != 44 {
            return None;
        }
        let g = (usize::from(o[1]) << 8) | usize::from(o[2]);
        if g == self.own || g >= self.gateways {
            return None;
        }
        Some(city::gw_ether_ip(g))
    }
}

/// A built [`mesh`] topology.
pub struct MeshNet {
    /// The world (one shard per gateway).
    pub world: World,
    /// The shared Ethernet segment.
    pub seg: SegId,
    /// The wired-internet host (shard 0, Ethernet only).
    pub internet_host: HostId,
    /// Gateway `g`, living in shard `g`.
    pub gateways: Vec<HostId>,
    /// Gateway `g`'s radio channel.
    pub channels: Vec<ChanId>,
    /// `hosts[g][i]` — radio host `i` behind gateway `g`.
    pub hosts: Vec<Vec<HostId>>,
}

impl MeshNet {
    /// Number of radio islands (= shards = gateways).
    pub fn islands(&self) -> usize {
        self.gateways.len()
    }

    /// The radio hosts behind gateway `g`, in address order
    /// (`44.x.y.2 ..`).
    pub fn island_hosts(&self, g: usize) -> &[HostId] {
        &self.hosts[g]
    }

    /// Radio host `(g, i)`'s IP address.
    pub fn host_addr(&self, g: usize, i: usize) -> Ipv4Addr {
        city::host_ip(g, i)
    }

    /// Gateway `g`'s host id.
    pub fn gateway(&self, g: usize) -> HostId {
        self.gateways[g]
    }

    /// Gateway `g`'s `(radio, ether)` addresses.
    pub fn gateway_addrs(&self, g: usize) -> (Ipv4Addr, Ipv4Addr) {
        (city::gw_radio_ip(g), city::gw_ether_ip(g))
    }

    /// Island `g`'s radio channel.
    pub fn island_channel(&self, g: usize) -> ChanId {
        self.channels[g]
    }

    /// Every radio host with its coordinates: `(island, slot, id,
    /// address)`, islands then slots in order. The handle fleet
    /// builders attach through instead of reaching into [`World`]
    /// internals.
    pub fn iter_hosts(&self) -> impl Iterator<Item = (usize, usize, HostId, Ipv4Addr)> + '_ {
        self.hosts.iter().enumerate().flat_map(|(g, island)| {
            island
                .iter()
                .enumerate()
                .map(move |(i, &h)| (g, i, h, city::host_ip(g, i)))
        })
    }
}

/// Optional extras for [`mesh_with`] (E18's forwarding-plane benchmark).
#[derive(Debug, Clone, Default)]
pub struct MeshOptions {
    /// Give every gateway a RIP-learned-style `/24` route to each other
    /// island's radio subnet, via that island's gateway Ethernet address
    /// ([`netstack::route::RouteSource::Learned`], metric 2). The tunnel
    /// map still wins for cross-island traffic — these routes are the
    /// table *load* a converged RIP44 exchange would leave behind, so a
    /// 500-island mesh carries ~500-route gateway tables and every
    /// per-packet lookup (tunnel-endpoint included) pays longest-prefix
    /// match over them.
    pub full_tables: bool,
    /// Per-destination next-hop cache on the gateways: `2^bits` slots,
    /// `0` (the default) disables it and keeps E15/E16 byte-identical.
    pub fwd_cache_bits: u8,
}

/// Builds the city-scale AMPRnet of EXPERIMENTS.md E15: `gateways` radio
/// islands — one 1200 b/s channel, one MicroVAX gateway, `hosts_per_gw`
/// PCs each — joined by one department Ethernet carrying IPIP tunnels
/// between every gateway pair, plus a wired internet host routing net 44
/// via gateway 0 (§4.2's aggregate-route premise).
///
/// Each island is its own shard, so the sharded engine steps islands in
/// parallel; only tunnel traffic crosses shard boundaries. Routing is
/// static ([`StaticTunnels`]); the MAC keeps its nonzero default slot
/// time, which the DESIGN.md §11 digest-equivalence contract requires.
/// No traffic is installed — callers attach their own apps.
pub fn mesh(gateways: usize, hosts_per_gw: usize, seed: u64) -> MeshNet {
    mesh_with(gateways, hosts_per_gw, seed, MeshOptions::default())
}

/// [`mesh`] with [`MeshOptions`]: full learned route tables and/or the
/// gateways' next-hop cache, for the E18 forwarding-plane measurements.
pub fn mesh_with(gateways: usize, hosts_per_gw: usize, seed: u64, opts: MeshOptions) -> MeshNet {
    assert!((1..=1000).contains(&gateways), "1..=1000 gateways");
    assert!(hosts_per_gw <= 97, "host octets run 44.x.y.2 ..= 44.x.y.99");
    let cfg = PaperConfig::default();
    let mut world = World::new(seed);
    let seg = world.add_segment(Bandwidth::ETHERNET_10M);

    let mut gw_ids = Vec::with_capacity(gateways);
    let mut chans = Vec::with_capacity(gateways);
    let mut hosts = Vec::with_capacity(gateways);
    for g in 0..gateways {
        let shard = if g == 0 {
            ShardId::ZERO
        } else {
            world.add_shard()
        };
        let chan = world.add_channel_in(shard, cfg.radio_rate);

        let mut gc = HostConfig::named(&city::gw_call(g));
        gc.cpu = cfg.cpu;
        gc.stack.forwarding = true;
        gc.stack.ipip = true;
        gc.stack.fwd_cache_bits = opts.fwd_cache_bits;
        gc.radio = Some(RadioIfConfig {
            call: Ax25Addr::parse_or_panic(&city::gw_call(g)),
            ip: city::gw_radio_ip(g),
            prefix_len: 24,
        });
        gc.ether = Some(EtherIfConfig {
            mac: MacAddr::local((1 + g) as u16),
            ip: city::gw_ether_ip(g),
            prefix_len: 8,
        });
        let gw = world.add_host_in(shard, gc);
        world.attach_radio(gw, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);
        world.attach_ether(gw, seg);
        world
            .host_mut(gw)
            .stack
            .set_tunnel_map(Box::new(StaticTunnels { own: g, gateways }));
        if opts.full_tables {
            let ether_if = world.host(gw).ether_iface().expect("gateway ether");
            let routes = world.host_mut(gw).stack.routes_mut();
            for p in 0..gateways {
                if p == g {
                    continue;
                }
                routes.insert(Route {
                    prefix: Prefix::new(city::gw_radio_ip(p), 24),
                    via: Some(city::gw_ether_ip(p)),
                    iface: ether_if,
                    source: RouteSource::Learned,
                    metric: 2,
                });
            }
        }

        let mut island = Vec::with_capacity(hosts_per_gw);
        for i in 0..hosts_per_gw {
            let mut hc = HostConfig::named(&city::host_call(g, i));
            hc.cpu = cfg.cpu;
            hc.radio = Some(RadioIfConfig {
                call: Ax25Addr::parse_or_panic(&city::host_call(g, i)),
                ip: city::host_ip(g, i),
                prefix_len: 24,
            });
            let h = world.add_host_in(shard, hc);
            world.attach_radio(h, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);
            let h_if = world.host(h).radio_iface().expect("radio host");
            world.host_mut(h).stack.routes_mut().add(
                Prefix::default_route(),
                Some(city::gw_radio_ip(g)),
                h_if,
            );
            island.push(h);
        }
        gw_ids.push(gw);
        chans.push(chan);
        hosts.push(island);
    }

    // The wired internet: one free-CPU host holding §4.2's aggregate —
    // all of net 44 via a single gateway.
    let mut ih = HostConfig::named("internet");
    ih.cpu = CpuConfig::free();
    ih.ether = Some(EtherIfConfig {
        mac: MacAddr::local(0),
        ip: city::INTERNET_IP,
        prefix_len: 8,
    });
    let internet_host = world.add_host(ih);
    world.attach_ether(internet_host, seg);
    let ih_if = world.host(internet_host).ether_iface().expect("ether host");
    world.host_mut(internet_host).stack.routes_mut().add(
        Prefix::amprnet(),
        Some(city::gw_ether_ip(0)),
        ih_if,
    );

    MeshNet {
        world,
        seg,
        internet_host,
        gateways: gw_ids,
        channels: chans,
        hosts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::stack::StackAction;
    use sim::{SimDuration, SimTime};

    #[test]
    fn digi_chain_ping_traverses_the_chain() {
        let mut s = digi_chain_topology(2, PaperConfig::default(), 3);
        let now = s.world.now;
        s.world.host_mut(s.pc).ping(now, GW_RADIO_IP, 5, 1, 16);
        s.world.run_for(SimDuration::from_secs(120));
        let events = s.world.take_events();
        let rtt = events
            .iter()
            .find_map(|(h, t, e)| match e {
                StackAction::PingReply { id: 5, .. } if *h == s.pc => Some(*t),
                _ => None,
            })
            .expect("reply via digipeaters");
        // Each direction crosses the channel 3 times (pc->d1->d2->gw).
        assert!(rtt > SimTime::from_secs(2), "rtt {rtt}");
    }

    fn mesh_rip() -> RipConfig {
        RipConfig {
            announce_interval: SimDuration::from_secs(10),
            route_ttl: SimDuration::from_secs(25),
            holddown: SimDuration::from_secs(20),
            ..RipConfig::default()
        }
    }

    fn mesh_config() -> PaperConfig {
        PaperConfig {
            acl: false,
            ..PaperConfig::default()
        }
    }

    #[test]
    fn mesh_converges_to_ipip_tunnels() {
        let mut s = three_gateway(&mesh_config(), mesh_rip(), 7);
        // Let the gateways exchange a couple of announcement rounds.
        s.world.run_for(SimDuration::from_secs(25));
        let learned: Vec<_> = s
            .west_tunnels
            .with(|t| t.entries().iter().map(|e| e.subnet).collect());
        assert!(
            learned.contains(&Prefix::new(
                mesh_addrs::EAST_SUBNET.0,
                mesh_addrs::EAST_SUBNET.1
            )),
            "west gateway learned the east subnet: {learned:?}"
        );
        assert!(
            learned.contains(&Prefix::new(
                mesh_addrs::GULF_SUBNET.0,
                mesh_addrs::GULF_SUBNET.1
            )),
            "west gateway learned the gulf subnet: {learned:?}"
        );
        // Now a ping from the Internet rides the tunnel: the 44/8
        // aggregate still lands it at the west gateway, which wraps it in
        // IPIP to the east gateway instead of relaying over RF.
        let now = s.world.now;
        s.world
            .host_mut(s.internet_host)
            .ping(now, mesh_addrs::EAST_HOST, 9, 2, 32);
        s.world.run_for(SimDuration::from_secs(60));
        let events = s.world.take_events();
        assert!(
            events.iter().any(|(h, _, e)| *h == s.internet_host
                && matches!(e, StackAction::PingReply { id: 9, .. })),
            "ping answered"
        );
        // (The first echo request can die in the cold ARP queue, so ask
        // only that the survivors rode the tunnel.)
        assert!(
            s.world.host(s.west_gw).stack.stats().ipip_out >= 1,
            "west gateway encapsulated"
        );
        assert!(
            s.world.host(s.east_gw).stack.stats().ipip_in >= 1,
            "east gateway decapsulated"
        );
        assert!(s.west_tunnels.stats().hits >= 1, "table hit counted");
    }

    #[test]
    fn mesh_falls_back_to_rf_backbone_when_gateway_dies() {
        let mut s = three_gateway(&mesh_config(), mesh_rip(), 8);
        s.world.run_for(SimDuration::from_secs(25));
        assert!(s
            .west_tunnels
            .with(|t| t.lookup(mesh_addrs::EAST_HOST).is_some()));

        // Kill the east gateway: its announcements stop, so the west
        // gateway's tunnel entry and the east host's learned default must
        // both expire (within one TTL) and traffic must fall back to the
        // static aggregate path over the BBONE digipeater.
        s.world.host_mut(s.east_gw).set_down(true);
        s.world.run_for(SimDuration::from_secs(26));
        assert!(
            s.west_tunnels
                .with(|t| t.lookup(mesh_addrs::EAST_HOST).is_none()),
            "tunnel entry expired"
        );
        let r = s
            .world
            .host(s.east_host)
            .stack
            .routes()
            .lookup_route(mesh_addrs::INTERNET_HOST)
            .expect("fallback default");
        assert_eq!(r.via, Some(mesh_addrs::WEST_GW_RADIO), "static fallback");

        let ipip_before = s.world.host(s.west_gw).stack.stats().ipip_out;
        let now = s.world.now;
        s.world
            .host_mut(s.internet_host)
            .ping(now, mesh_addrs::EAST_HOST, 10, 2, 32);
        s.world.run_for(SimDuration::from_secs(120));
        let events = s.world.take_events();
        assert!(
            events.iter().any(|(h, _, e)| *h == s.internet_host
                && matches!(e, StackAction::PingReply { id: 10, .. })),
            "ping still answered via the RF backbone"
        );
        assert_eq!(
            s.world.host(s.west_gw).stack.stats().ipip_out,
            ipip_before,
            "no new encapsulations toward the dead gateway"
        );
    }

    #[test]
    fn zero_digi_chain_still_works_direct() {
        let mut s = digi_chain_topology(0, PaperConfig::default(), 3);
        let now = s.world.now;
        s.world.host_mut(s.pc).ping(now, GW_RADIO_IP, 5, 1, 16);
        s.world.run_for(SimDuration::from_secs(60));
        let events = s.world.take_events();
        assert!(events
            .iter()
            .any(|(h, _, e)| matches!(e, StackAction::PingReply { .. }) && *h == s.pc));
    }
}
