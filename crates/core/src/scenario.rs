//! Canned topologies, starting with the paper's own setup.
//!
//! The flagship layout reproduces Figure 1 plus the department Ethernet:
//!
//! ```text
//!  PC (KB7DZ, 44.24.0.5)                    MicroVAX gateway
//!   └─ DZ serial ─ KISS TNC ─ 1200 b/s ─ TNC ─ DZ serial ─┤ N7AKR-1
//!                              radio                      │ 44.24.0.28 (pr0)
//!                                                         │ 128.95.1.100 (qe0)
//!                                    10 Mb/s Ethernet ────┤
//!                                                         └─ vax2 (128.95.1.4)
//! ```
//!
//! The gateway's radio address 44.24.0.28 is the paper's own (§2.3: "the
//! packet radio interface was enabled at the Internet address of
//! 44.24.0.28").

use std::net::Ipv4Addr;

use ax25::addr::Ax25Addr;
use ether::MacAddr;
use netstack::route::Prefix;
use radio::csma::MacConfig;
use radio::tnc::RxMode;
use sim::Bandwidth;

use crate::acl::AclConfig;
use crate::cpu::CpuConfig;
use crate::host::{EtherIfConfig, HostConfig, RadioIfConfig};
use crate::world::{ChanId, HostId, SegId, TncId, World};

/// The gateway's radio-side address (the paper's actual assignment).
pub const GW_RADIO_IP: Ipv4Addr = Ipv4Addr::new(44, 24, 0, 28);
/// The gateway's Ethernet-side address.
pub const GW_ETHER_IP: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 100);
/// The isolated PC's AMPRnet address.
pub const PC_IP: Ipv4Addr = Ipv4Addr::new(44, 24, 0, 5);
/// The Ethernet host's address.
pub const ETHER_HOST_IP: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 4);

/// Tunables for the paper topology.
#[derive(Debug, Clone)]
pub struct PaperConfig {
    /// Radio channel bit rate (1200 bit/s in 1988).
    pub radio_rate: Bandwidth,
    /// Host⇄TNC serial speed.
    pub serial_baud: u32,
    /// TNC receive mode (§3's contrast).
    pub tnc_mode: RxMode,
    /// CSMA parameters.
    pub mac: MacConfig,
    /// CPU cost model for the gateway and PC.
    pub cpu: CpuConfig,
    /// Install the §4.3 access-control table on the gateway.
    pub acl: bool,
}

impl Default for PaperConfig {
    fn default() -> Self {
        PaperConfig {
            radio_rate: Bandwidth::RADIO_1200,
            serial_baud: 9600,
            tnc_mode: RxMode::Promiscuous,
            mac: MacConfig::default(),
            cpu: CpuConfig::default(),
            acl: true,
        }
    }
}

/// The built paper topology.
pub struct PaperScenario {
    /// The world.
    pub world: World,
    /// The radio channel.
    pub chan: ChanId,
    /// The Ethernet segment.
    pub seg: SegId,
    /// The isolated PC.
    pub pc: HostId,
    /// The MicroVAX gateway.
    pub gw: HostId,
    /// A host on the department Ethernet.
    pub ether_host: HostId,
    /// The PC's TNC.
    pub pc_tnc: TncId,
    /// The gateway's TNC.
    pub gw_tnc: TncId,
}

/// Builds the paper's Figure-1 topology.
///
/// # Examples
///
/// ```
/// use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
/// use sim::SimDuration;
///
/// let mut s = paper_topology(PaperConfig::default(), 42);
/// let now = s.world.now;
/// s.world.host_mut(s.pc).ping(now, ETHER_HOST_IP, 1, 1, 32);
/// s.world.run_for(SimDuration::from_secs(60));
/// // The gateway forwarded the request and the reply.
/// assert!(s.world.host(s.gw).stack.stats().forwarded >= 2);
/// ```
pub fn paper_topology(cfg: PaperConfig, seed: u64) -> PaperScenario {
    let mut world = World::new(seed);
    let chan = world.add_channel(cfg.radio_rate);
    let seg = world.add_segment(Bandwidth::ETHERNET_10M);

    // The isolated PC: "connected to only a power outlet and a radio".
    let mut pc_cfg = HostConfig::named("pc");
    pc_cfg.cpu = cfg.cpu;
    pc_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("KB7DZ"),
        ip: PC_IP,
        prefix_len: 16,
    });
    let pc = world.add_host(pc_cfg);
    let pc_tnc = world.attach_radio(pc, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);

    // The MicroVAX gateway.
    let mut gw_cfg = HostConfig::named("gw");
    gw_cfg.cpu = cfg.cpu;
    gw_cfg.stack.forwarding = true;
    gw_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("N7AKR-1"),
        ip: GW_RADIO_IP,
        prefix_len: 16,
    });
    gw_cfg.ether = Some(EtherIfConfig {
        mac: MacAddr::local(1),
        ip: GW_ETHER_IP,
        prefix_len: 24,
    });
    if cfg.acl {
        gw_cfg.acl = Some(AclConfig::default());
    }
    let gw = world.add_host(gw_cfg);
    let gw_tnc = world.attach_radio(gw, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);
    world.attach_ether(gw, seg);

    // A host on the department Ethernet.
    let mut eh_cfg = HostConfig::named("vax2");
    eh_cfg.cpu = CpuConfig::free(); // not the machine under study
    eh_cfg.ether = Some(EtherIfConfig {
        mac: MacAddr::local(2),
        ip: ETHER_HOST_IP,
        prefix_len: 24,
    });
    let ether_host = world.add_host(eh_cfg);
    world.attach_ether(ether_host, seg);

    // Routing: "the routing table of another system on our Ethernet was
    // modified so it knew that 44.24.0.28 was the address of a gateway to
    // net 44" (§2.3).
    let pc_if = world.host(pc).radio_iface().expect("pc radio");
    world
        .host_mut(pc)
        .stack
        .routes_mut()
        .add(Prefix::default_route(), Some(GW_RADIO_IP), pc_if);
    let eh_if = world.host(ether_host).ether_iface().expect("vax2 ether");
    world
        .host_mut(ether_host)
        .stack
        .routes_mut()
        .add(Prefix::amprnet(), Some(GW_ETHER_IP), eh_if);

    PaperScenario {
        world,
        chan,
        seg,
        pc,
        gw,
        ether_host,
        pc_tnc,
        gw_tnc,
    }
}

/// A PC and a gateway joined by a chain of `n` digipeaters (experiment
/// E7). Source routing is seeded as static ARP entries on both ends, per
/// §2.3's digipeater-path ARP entries.
pub struct DigiScenario {
    /// The world.
    pub world: World,
    /// The radio channel.
    pub chan: ChanId,
    /// The PC end.
    pub pc: HostId,
    /// The gateway end.
    pub gw: HostId,
}

/// Builds a digipeater-chain topology with hidden ends: the PC and the
/// far host only hear their adjacent digipeaters, so every frame must
/// traverse the whole chain.
pub fn digi_chain_topology(n: usize, cfg: PaperConfig, seed: u64) -> DigiScenario {
    assert!(n <= ax25::MAX_DIGIPEATERS);
    let mut world = World::new(seed);
    let chan = world.add_channel(cfg.radio_rate);

    let mut pc_cfg = HostConfig::named("pc");
    pc_cfg.cpu = cfg.cpu;
    pc_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("KB7DZ"),
        ip: PC_IP,
        prefix_len: 16,
    });
    let pc = world.add_host(pc_cfg);
    world.attach_radio(pc, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);

    let mut gw_cfg = HostConfig::named("gw");
    gw_cfg.cpu = cfg.cpu;
    gw_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("N7AKR-1"),
        ip: GW_RADIO_IP,
        prefix_len: 16,
    });
    let gw = world.add_host(gw_cfg);
    world.attach_radio(gw, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);

    let digis: Vec<Ax25Addr> = (0..n)
        .map(|i| Ax25Addr::parse_or_panic(&format!("DIGI-{}", i + 1)))
        .collect();
    for &d in &digis {
        world.add_digipeater(chan, d, cfg.mac);
    }

    // Static ARP entries with the digipeater path, both directions.
    use crate::hwaddr::Ax25Hw;
    let fwd = Ax25Hw::via(Ax25Addr::parse_or_panic("N7AKR-1"), &digis);
    let mut rev_path = digis.clone();
    rev_path.reverse();
    let rev = Ax25Hw::via(Ax25Addr::parse_or_panic("KB7DZ"), &rev_path);
    world
        .host_mut(pc)
        .pr_driver_mut()
        .expect("radio")
        .arp_mut()
        .insert_static(GW_RADIO_IP, fwd.encode());
    world
        .host_mut(gw)
        .pr_driver_mut()
        .expect("radio")
        .arp_mut()
        .insert_static(PC_IP, rev.encode());

    if n > 0 {
        // Hide the ends from each other so the chain is load-bearing:
        // stations are added in order pc(0), gw(1), digis(2..2+n).
        let c = world.channel_mut(chan);
        let pc_sta = radio::channel::StationId(0);
        let gw_sta = radio::channel::StationId(1);
        c.set_hears(pc_sta, gw_sta, false);
        c.set_hears(gw_sta, pc_sta, false);
        // Each end hears only its adjacent digipeater; digipeaters hear
        // their neighbours (a line topology).
        for i in 0..n {
            let d_sta = radio::channel::StationId(2 + i);
            if i != 0 {
                c.set_hears(pc_sta, d_sta, false);
                c.set_hears(d_sta, pc_sta, false);
            }
            if i != n - 1 {
                c.set_hears(gw_sta, d_sta, false);
                c.set_hears(d_sta, gw_sta, false);
            }
            for j in 0..n {
                let e_sta = radio::channel::StationId(2 + j);
                if i.abs_diff(j) > 1 {
                    c.set_hears(d_sta, e_sta, false);
                }
            }
        }
    }

    DigiScenario {
        world,
        chan,
        pc,
        gw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::stack::StackAction;
    use sim::{SimDuration, SimTime};

    #[test]
    fn digi_chain_ping_traverses_the_chain() {
        let mut s = digi_chain_topology(2, PaperConfig::default(), 3);
        let now = s.world.now;
        s.world.host_mut(s.pc).ping(now, GW_RADIO_IP, 5, 1, 16);
        s.world.run_for(SimDuration::from_secs(120));
        let events = s.world.take_events();
        let rtt = events
            .iter()
            .find_map(|(h, t, e)| match e {
                StackAction::PingReply { id: 5, .. } if *h == s.pc => Some(*t),
                _ => None,
            })
            .expect("reply via digipeaters");
        // Each direction crosses the channel 3 times (pc->d1->d2->gw).
        assert!(rtt > SimTime::from_secs(2), "rtt {rtt}");
    }

    #[test]
    fn zero_digi_chain_still_works_direct() {
        let mut s = digi_chain_topology(0, PaperConfig::default(), 3);
        let now = s.world.now;
        s.world.host_mut(s.pc).ping(now, GW_RADIO_IP, 5, 1, 16);
        s.world.run_for(SimDuration::from_secs(60));
        let events = s.world.take_events();
        assert!(events
            .iter()
            .any(|(h, _, e)| matches!(e, StackAction::PingReply { .. }) && *h == s.pc));
    }
}
