//! The host CPU cost model.
//!
//! §2.2 of the paper: *"For each character in the packet, the tty driver
//! calls the packet radio interrupt handler to process the character."*
//! On a MicroVAX II a DZ-style serial line interrupts once per character;
//! with a promiscuous TNC (§3) every frame on the channel — wanted or not
//! — turns into a burst of such interrupts plus packet-level protocol
//! work. This model charges those costs against a single serially-busy
//! CPU so the gateway's forwarding latency genuinely degrades as the
//! subnet load climbs (experiment E2).
//!
//! Defaults are calibrated to the era: several hundred microseconds per
//! character interrupt (DZ11s were notorious CPU hogs) and a couple of
//! milliseconds of protocol processing per packet.

use sim::{SimDuration, SimTime};

/// CPU cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct CpuConfig {
    /// Cost of one serial-character interrupt.
    pub char_cost: SimDuration,
    /// Cost of protocol processing for one packet.
    pub packet_cost: SimDuration,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            char_cost: SimDuration::from_micros(600),
            packet_cost: SimDuration::from_millis(2),
        }
    }
}

impl CpuConfig {
    /// A free CPU, for experiments that want pure link behaviour.
    pub fn free() -> CpuConfig {
        CpuConfig {
            char_cost: SimDuration::ZERO,
            packet_cost: SimDuration::ZERO,
        }
    }
}

/// CPU utilization counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuStats {
    /// Character interrupts serviced.
    pub char_interrupts: u64,
    /// Packets processed.
    pub packets: u64,
    /// Total busy time accumulated.
    pub busy_ns: u64,
}

/// A single serially-busy CPU.
///
/// # Examples
///
/// ```
/// use gateway::cpu::{Cpu, CpuConfig};
/// use sim::{SimDuration, SimTime};
///
/// let mut cpu = Cpu::new(CpuConfig {
///     char_cost: SimDuration::from_micros(600),
///     packet_cost: SimDuration::from_millis(2),
/// });
/// let t1 = cpu.charge_char(SimTime::ZERO);
/// let t2 = cpu.charge_packet(SimTime::ZERO);
/// assert!(t2 > t1, "work queues behind the interrupt");
/// ```
#[derive(Debug)]
pub struct Cpu {
    cfg: CpuConfig,
    busy_until: SimTime,
    stats: CpuStats,
}

impl Cpu {
    /// Creates an idle CPU.
    pub fn new(cfg: CpuConfig) -> Cpu {
        Cpu {
            cfg,
            busy_until: SimTime::ZERO,
            stats: CpuStats::default(),
        }
    }

    /// The model parameters.
    pub fn config(&self) -> CpuConfig {
        self.cfg
    }

    /// Charges one character interrupt arriving at `now`; returns when
    /// its processing completes.
    pub fn charge_char(&mut self, now: SimTime) -> SimTime {
        self.stats.char_interrupts += 1;
        self.charge(now, self.cfg.char_cost)
    }

    /// Charges one packet's protocol processing; returns completion time.
    pub fn charge_packet(&mut self, now: SimTime) -> SimTime {
        self.stats.packets += 1;
        self.charge(now, self.cfg.packet_cost)
    }

    fn charge(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let start = self.busy_until.max(now);
        self.busy_until = start + cost;
        self.stats.busy_ns += cost.as_nanos();
        self.busy_until
    }

    /// When the CPU drains its current backlog.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// True if the CPU has queued work at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.busy_until > now
    }

    /// Counters.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// Fraction of `[SimTime::ZERO, now]` the CPU spent busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_nanos();
        if span == 0 {
            0.0
        } else {
            (self.stats.busy_ns as f64 / span as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(char_us: u64, pkt_us: u64) -> CpuConfig {
        CpuConfig {
            char_cost: SimDuration::from_micros(char_us),
            packet_cost: SimDuration::from_micros(pkt_us),
        }
    }

    #[test]
    fn idle_cpu_processes_immediately() {
        let mut cpu = Cpu::new(cfg(100, 1000));
        let done = cpu.charge_char(SimTime::from_millis(10));
        assert_eq!(
            done,
            SimTime::from_millis(10) + SimDuration::from_micros(100)
        );
    }

    #[test]
    fn backlog_serializes_work() {
        let mut cpu = Cpu::new(cfg(100, 1000));
        let t = SimTime::ZERO;
        let d1 = cpu.charge_char(t);
        let d2 = cpu.charge_char(t);
        let d3 = cpu.charge_packet(t);
        assert_eq!(d1, SimTime::from_micros(100));
        assert_eq!(d2, SimTime::from_micros(200));
        assert_eq!(d3, SimTime::from_micros(1200));
        assert!(cpu.is_busy(SimTime::from_micros(500)));
        assert!(!cpu.is_busy(d3));
    }

    #[test]
    fn gap_lets_cpu_idle() {
        let mut cpu = Cpu::new(cfg(100, 0));
        cpu.charge_char(SimTime::ZERO);
        let later = SimTime::from_secs(1);
        let done = cpu.charge_char(later);
        assert_eq!(done, later + SimDuration::from_micros(100));
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut cpu = Cpu::new(cfg(0, 500_000)); // 0.5s per packet
        cpu.charge_packet(SimTime::ZERO);
        let u = cpu.utilization(SimTime::from_secs(1));
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn free_cpu_costs_nothing() {
        let mut cpu = Cpu::new(CpuConfig::free());
        let done = cpu.charge_packet(SimTime::from_secs(5));
        assert_eq!(done, SimTime::from_secs(5));
        assert_eq!(cpu.stats().packets, 1);
    }
}
