//! The host CPU cost model.
//!
//! §2.2 of the paper: *"For each character in the packet, the tty driver
//! calls the packet radio interrupt handler to process the character."*
//! On a MicroVAX II a DZ-style serial line interrupts once per character;
//! with a promiscuous TNC (§3) every frame on the channel — wanted or not
//! — turns into a burst of such interrupts plus packet-level protocol
//! work. This model charges those costs against a single serially-busy
//! CPU so the gateway's forwarding latency genuinely degrades as the
//! subnet load climbs (experiment E2).
//!
//! Defaults are calibrated to the era: several hundred microseconds per
//! character interrupt (DZ11s were notorious CPU hogs) and a couple of
//! milliseconds of protocol processing per packet.

use sim::{SimDuration, SimTime};

/// CPU cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct CpuConfig {
    /// Cost of one serial-character interrupt.
    pub char_cost: SimDuration,
    /// Cost of protocol processing for one packet.
    pub packet_cost: SimDuration,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            char_cost: SimDuration::from_micros(600),
            packet_cost: SimDuration::from_millis(2),
        }
    }
}

impl CpuConfig {
    /// A free CPU, for experiments that want pure link behaviour.
    pub fn free() -> CpuConfig {
        CpuConfig {
            char_cost: SimDuration::ZERO,
            packet_cost: SimDuration::ZERO,
        }
    }
}

/// CPU utilization counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuStats {
    /// Character interrupts serviced.
    pub char_interrupts: u64,
    /// Packets processed.
    pub packets: u64,
    /// Total busy time accumulated.
    pub busy_ns: u64,
}

/// A single serially-busy CPU.
///
/// # Examples
///
/// ```
/// use gateway::cpu::{Cpu, CpuConfig};
/// use sim::{SimDuration, SimTime};
///
/// let mut cpu = Cpu::new(CpuConfig {
///     char_cost: SimDuration::from_micros(600),
///     packet_cost: SimDuration::from_millis(2),
/// });
/// let t1 = cpu.charge_char(SimTime::ZERO);
/// let t2 = cpu.charge_packet(SimTime::ZERO);
/// assert!(t2 > t1, "work queues behind the interrupt");
/// ```
#[derive(Debug)]
pub struct Cpu {
    cfg: CpuConfig,
    busy_until: SimTime,
    stats: CpuStats,
}

impl Cpu {
    /// Creates an idle CPU.
    pub fn new(cfg: CpuConfig) -> Cpu {
        Cpu {
            cfg,
            busy_until: SimTime::ZERO,
            stats: CpuStats::default(),
        }
    }

    /// The model parameters.
    pub fn config(&self) -> CpuConfig {
        self.cfg
    }

    /// Charges one character interrupt arriving at `now`; returns when
    /// its processing completes.
    pub fn charge_char(&mut self, now: SimTime) -> SimTime {
        self.stats.char_interrupts += 1;
        self.charge(now, self.cfg.char_cost)
    }

    /// Charges one packet's protocol processing; returns completion time.
    pub fn charge_packet(&mut self, now: SimTime) -> SimTime {
        self.stats.packets += 1;
        self.charge(now, self.cfg.packet_cost)
    }

    /// Charges `n` character interrupts all arriving at `now`; returns when
    /// the last one completes.
    ///
    /// Exactly equivalent to `n` successive [`charge_char`](Cpu::charge_char)
    /// calls at the same instant — sequential charges at one `now` collapse
    /// to `busy = max(busy, now) + n·cost` — so the batched serial receive
    /// path keeps the §3 cost model bit-identical while paying the
    /// accounting in one step.
    pub fn charge_chars(&mut self, now: SimTime, n: u64) -> SimTime {
        if n == 0 {
            return self.busy_until;
        }
        self.stats.char_interrupts += n;
        let cost = self.cfg.char_cost;
        let start = self.busy_until.max(now);
        self.busy_until = start + cost * n;
        self.stats.busy_ns += cost.as_nanos() * n;
        self.busy_until
    }

    /// Charges `n` character interrupts arriving back-to-back at uniform
    /// spacing: character `i` at `t0 + i·char_time`. Returns when the last
    /// completes.
    ///
    /// Exactly equivalent to the per-character sequence
    /// `charge_char(t0 + i·char_time)` for `i in 0..n`: unrolling the
    /// recurrence `busy = max(busy, tᵢ) + c` gives
    /// `max(busy₀ + n·c, max_j(tⱼ + (n−j)·c))`, and the inner term is
    /// monotone in `j`, so only the first or last arrival can dominate.
    /// This is the world's serial fast lane charging a whole quiet run of
    /// line-paced deliveries in one call.
    pub fn charge_chars_paced(&mut self, t0: SimTime, char_time: SimDuration, n: u64) -> SimTime {
        if n == 0 {
            return self.busy_until;
        }
        self.stats.char_interrupts += n;
        let c = self.cfg.char_cost;
        let backlogged = self.busy_until + c * n;
        let paced = if char_time >= c {
            // The CPU drains between arrivals: the last character's own
            // service time dominates.
            t0 + char_time * (n - 1) + c
        } else {
            // Arrivals outpace service: work queues from the first one.
            t0 + c * n
        };
        self.busy_until = backlogged.max(paced);
        self.stats.busy_ns += c.as_nanos() * n;
        self.busy_until
    }

    fn charge(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let start = self.busy_until.max(now);
        self.busy_until = start + cost;
        self.stats.busy_ns += cost.as_nanos();
        self.busy_until
    }

    /// When the CPU drains its current backlog.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// True if the CPU has queued work at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.busy_until > now
    }

    /// Counters.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// Fraction of `[SimTime::ZERO, now]` the CPU spent busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_nanos();
        if span == 0 {
            0.0
        } else {
            (self.stats.busy_ns as f64 / span as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(char_us: u64, pkt_us: u64) -> CpuConfig {
        CpuConfig {
            char_cost: SimDuration::from_micros(char_us),
            packet_cost: SimDuration::from_micros(pkt_us),
        }
    }

    #[test]
    fn idle_cpu_processes_immediately() {
        let mut cpu = Cpu::new(cfg(100, 1000));
        let done = cpu.charge_char(SimTime::from_millis(10));
        assert_eq!(
            done,
            SimTime::from_millis(10) + SimDuration::from_micros(100)
        );
    }

    #[test]
    fn backlog_serializes_work() {
        let mut cpu = Cpu::new(cfg(100, 1000));
        let t = SimTime::ZERO;
        let d1 = cpu.charge_char(t);
        let d2 = cpu.charge_char(t);
        let d3 = cpu.charge_packet(t);
        assert_eq!(d1, SimTime::from_micros(100));
        assert_eq!(d2, SimTime::from_micros(200));
        assert_eq!(d3, SimTime::from_micros(1200));
        assert!(cpu.is_busy(SimTime::from_micros(500)));
        assert!(!cpu.is_busy(d3));
    }

    #[test]
    fn gap_lets_cpu_idle() {
        let mut cpu = Cpu::new(cfg(100, 0));
        cpu.charge_char(SimTime::ZERO);
        let later = SimTime::from_secs(1);
        let done = cpu.charge_char(later);
        assert_eq!(done, later + SimDuration::from_micros(100));
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut cpu = Cpu::new(cfg(0, 500_000)); // 0.5s per packet
        cpu.charge_packet(SimTime::ZERO);
        let u = cpu.utilization(SimTime::from_secs(1));
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn charge_chars_matches_iterated_charge_char() {
        for (head_start_us, n) in [(0u64, 1u64), (0, 7), (5000, 3), (50, 12)] {
            let mut bulk = Cpu::new(cfg(600, 2000));
            let mut scalar = Cpu::new(cfg(600, 2000));
            let warm = SimTime::from_micros(head_start_us);
            if head_start_us > 0 {
                bulk.charge_packet(SimTime::ZERO);
                scalar.charge_packet(SimTime::ZERO);
            }
            let now = warm;
            let mut last = SimTime::ZERO;
            for _ in 0..n {
                last = scalar.charge_char(now);
            }
            assert_eq!(bulk.charge_chars(now, n), last, "{head_start_us} {n}");
            assert_eq!(bulk.busy_until(), scalar.busy_until());
            assert_eq!(bulk.stats().char_interrupts, scalar.stats().char_interrupts);
            assert_eq!(bulk.stats().busy_ns, scalar.stats().busy_ns);
        }
    }

    #[test]
    fn charge_chars_paced_matches_iterated_charge_char() {
        // Every regime: CPU drains between chars (char_time > cost), work
        // queues (char_time < cost), exact pacing, and a busy head start
        // that out-lasts part of the run.
        for (char_us, spacing_us, backlog_us, n) in [
            (600u64, 1042u64, 0u64, 8u64),
            (600, 1042, 20_000, 8),
            (600, 300, 0, 5),
            (600, 600, 1000, 4),
            (600, 1042, 3000, 1),
        ] {
            let mut bulk = Cpu::new(cfg(char_us, backlog_us));
            let mut scalar = Cpu::new(cfg(char_us, backlog_us));
            if backlog_us > 0 {
                bulk.charge_packet(SimTime::ZERO);
                scalar.charge_packet(SimTime::ZERO);
            }
            let t0 = SimTime::from_micros(500);
            let ct = SimDuration::from_micros(spacing_us);
            let mut last = SimTime::ZERO;
            for i in 0..n {
                last = scalar.charge_char(t0 + ct * i);
            }
            assert_eq!(
                bulk.charge_chars_paced(t0, ct, n),
                last,
                "{char_us} {spacing_us} {backlog_us} {n}"
            );
            assert_eq!(bulk.busy_until(), scalar.busy_until());
            assert_eq!(bulk.stats().busy_ns, scalar.stats().busy_ns);
        }
    }

    #[test]
    fn zero_chars_charge_nothing() {
        let mut cpu = Cpu::new(cfg(600, 0));
        let before = cpu.busy_until();
        assert_eq!(cpu.charge_chars(SimTime::from_secs(1), 0), before);
        assert_eq!(
            cpu.charge_chars_paced(SimTime::from_secs(1), SimDuration::from_micros(1042), 0),
            before
        );
        assert_eq!(cpu.stats().char_interrupts, 0);
        assert_eq!(cpu.busy_until(), before, "no floor to now without work");
    }

    #[test]
    fn free_cpu_costs_nothing() {
        let mut cpu = Cpu::new(CpuConfig::free());
        let done = cpu.charge_packet(SimTime::from_secs(5));
        assert_eq!(done, SimTime::from_secs(5));
        assert_eq!(cpu.stats().packets, 1);
    }
}
