//! The event-driven testbed: hosts, serial lines, TNCs, radio channels,
//! digipeaters, Ethernet segments, and applications under one clock.
//!
//! The world advances by repeatedly finding the earliest deadline any
//! component has self-reported, jumping the clock there, and then letting
//! every due component act — routing its outputs (serial characters,
//! radio receptions, Ethernet deliveries, host link output, stack events)
//! until the instant is quiescent. All components are sans-io state
//! machines from the substrate crates; this module is the only place
//! where they touch.

use ax25::addr::Ax25Addr;
use ether::{NicId, Segment};
use netstack::stack::StackAction;
use radio::channel::{Channel, StationId};
use radio::csma::MacConfig;
use radio::digi::Digipeater;
use radio::tnc::{RxMode, Tnc, TncConfig};
use radio::traffic::{BeaconConfig, BeaconStation};
use serial::{End, SerialConfig, SerialLine};
use sim::trace::Trace;
use sim::{Bandwidth, SimRng, SimTime};

use crate::host::{Host, HostConfig, HostOut};

/// Handle to a radio channel in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChanId(usize);

/// Handle to an Ethernet segment in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegId(usize);

/// Handle to a host in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostId(usize);

/// Handle to a TNC in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TncId(usize);

/// Handle to a digipeater in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DigiId(usize);

/// Handle to a background traffic station in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BeaconId(usize);

/// An application running "on" a host, driven by stack events.
///
/// Implementations live in the `apps` crate; the world calls these hooks
/// with the owning [`Host`] borrowed mutably so the app can use the
/// socket API directly.
pub trait App {
    /// Called once when the world first runs.
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        let _ = (now, host);
    }

    /// Called for every stack event on the owning host.
    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        let _ = (now, event, host);
    }

    /// Called on every quiescence pass and at [`App::next_deadline`].
    fn poll(&mut self, now: SimTime, host: &mut Host) {
        let _ = (now, host);
    }

    /// An optional wake-up time (timers, scripted actions).
    fn next_deadline(&self) -> Option<SimTime> {
        None
    }
}

struct TncEntry {
    tnc: Tnc,
    chan: ChanId,
    line: usize,
}

struct DigiEntry {
    digi: Digipeater,
    chan: ChanId,
}

struct BeaconEntry {
    beacon: BeaconStation,
    chan: ChanId,
}

struct HostEntry {
    host: Host,
    /// Serial line index whose A end this host holds.
    serial: Option<usize>,
    /// Ethernet attachment.
    nic: Option<(SegId, NicId)>,
}

struct AppEntry {
    host: HostId,
    app: Box<dyn App>,
    started: bool,
}

/// The simulation world. See the [module docs](self).
pub struct World {
    /// Current simulated time.
    pub now: SimTime,
    rng: SimRng,
    /// Optional event trace (disabled by default).
    pub trace: Trace,
    channels: Vec<Channel>,
    segments: Vec<Segment>,
    lines: Vec<SerialLine>,
    tncs: Vec<TncEntry>,
    digis: Vec<DigiEntry>,
    beacons: Vec<BeaconEntry>,
    hosts: Vec<HostEntry>,
    apps: Vec<AppEntry>,
    /// Recorded (host, time, event) triples when enabled.
    pub record_events: bool,
    events: Vec<(HostId, SimTime, StackAction)>,
}

impl World {
    /// Creates an empty world with a deterministic seed.
    pub fn new(seed: u64) -> World {
        World {
            now: SimTime::ZERO,
            rng: SimRng::seed_from(seed),
            trace: Trace::disabled(),
            channels: Vec::new(),
            segments: Vec::new(),
            lines: Vec::new(),
            tncs: Vec::new(),
            digis: Vec::new(),
            beacons: Vec::new(),
            hosts: Vec::new(),
            apps: Vec::new(),
            record_events: true,
            events: Vec::new(),
        }
    }

    // --- Topology building -------------------------------------------------

    /// Adds a radio channel.
    pub fn add_channel(&mut self, rate: Bandwidth) -> ChanId {
        self.channels.push(Channel::new(rate));
        ChanId(self.channels.len() - 1)
    }

    /// Adds a radio channel with byte errors.
    pub fn add_noisy_channel(&mut self, rate: Bandwidth, byte_error_rate: f64) -> ChanId {
        let rng = self.rng.fork();
        self.channels
            .push(Channel::new(rate).with_byte_errors(byte_error_rate, rng));
        ChanId(self.channels.len() - 1)
    }

    /// Adds an Ethernet segment.
    pub fn add_segment(&mut self, rate: Bandwidth) -> SegId {
        self.segments.push(Segment::new(rate));
        SegId(self.segments.len() - 1)
    }

    /// Adds a host (attach its links separately).
    pub fn add_host(&mut self, cfg: HostConfig) -> HostId {
        self.hosts.push(HostEntry {
            host: Host::new(cfg),
            serial: None,
            nic: None,
        });
        HostId(self.hosts.len() - 1)
    }

    /// Attaches a host's radio interface to `chan` through a serial line
    /// at `baud` and a TNC in `mode` with `mac` parameters.
    ///
    /// # Panics
    ///
    /// Panics if the host has no radio interface.
    pub fn attach_radio(
        &mut self,
        host: HostId,
        chan: ChanId,
        baud: u32,
        mode: RxMode,
        mac: MacConfig,
    ) -> TncId {
        let call = self.hosts[host.0]
            .host
            .callsign()
            .expect("host has no radio interface");
        let line_idx = self.lines.len();
        self.lines.push(SerialLine::new(SerialConfig::baud(baud)));
        self.hosts[host.0].serial = Some(line_idx);
        let station = self.channels[chan.0].add_station();
        let cfg = TncConfig::new(call).with_mode(mode).with_mac(mac);
        self.tncs.push(TncEntry {
            tnc: Tnc::new(cfg, station),
            chan,
            line: line_idx,
        });
        TncId(self.tncs.len() - 1)
    }

    /// Attaches a host's Ethernet interface to `seg`.
    ///
    /// # Panics
    ///
    /// Panics if the host has no Ethernet interface.
    pub fn attach_ether(&mut self, host: HostId, seg: SegId) {
        let mac = self.hosts[host.0]
            .host
            .mac()
            .expect("host has no Ethernet interface");
        let nic = self.segments[seg.0].attach(mac);
        self.hosts[host.0].nic = Some((seg, nic));
    }

    /// Adds a standalone digipeater station on `chan`.
    pub fn add_digipeater(&mut self, chan: ChanId, call: Ax25Addr, mac: MacConfig) -> DigiId {
        let station = self.channels[chan.0].add_station();
        self.digis.push(DigiEntry {
            digi: Digipeater::new(call, station, mac),
            chan,
        });
        DigiId(self.digis.len() - 1)
    }

    /// Adds a background traffic station on `chan`.
    pub fn add_beacon(&mut self, chan: ChanId, cfg: BeaconConfig) -> BeaconId {
        let station = self.channels[chan.0].add_station();
        let rng = self.rng.fork();
        self.beacons.push(BeaconEntry {
            beacon: BeaconStation::new(cfg, station, rng),
            chan,
        });
        BeaconId(self.beacons.len() - 1)
    }

    /// Installs an application on a host.
    pub fn add_app(&mut self, host: HostId, app: Box<dyn App>) {
        self.apps.push(AppEntry {
            host,
            app,
            started: false,
        });
    }

    // --- Access ---------------------------------------------------------------

    /// A host, immutably.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0].host
    }

    /// A host, mutably (socket operations, route edits…).
    pub fn host_mut(&mut self, id: HostId) -> &mut Host {
        &mut self.hosts[id.0].host
    }

    /// A radio channel.
    pub fn channel(&self, id: ChanId) -> &Channel {
        &self.channels[id.0]
    }

    /// A radio channel, mutably (hearing matrix edits).
    pub fn channel_mut(&mut self, id: ChanId) -> &mut Channel {
        &mut self.channels[id.0]
    }

    /// An Ethernet segment.
    pub fn segment(&self, id: SegId) -> &Segment {
        &self.segments[id.0]
    }

    /// A TNC.
    pub fn tnc(&self, id: TncId) -> &Tnc {
        &self.tncs[id.0].tnc
    }

    /// A TNC, mutably (mode switches).
    pub fn tnc_mut(&mut self, id: TncId) -> &mut Tnc {
        &mut self.tncs[id.0].tnc
    }

    /// A digipeater.
    pub fn digipeater(&self, id: DigiId) -> &Digipeater {
        &self.digis[id.0].digi
    }

    /// A background station.
    pub fn beacon(&self, id: BeaconId) -> &BeaconStation {
        &self.beacons[id.0].beacon
    }

    /// The serial line attached to a host, if any.
    pub fn host_serial_line(&self, id: HostId) -> Option<&SerialLine> {
        self.hosts[id.0].serial.map(|i| &self.lines[i])
    }

    /// Drains recorded stack events.
    pub fn take_events(&mut self) -> Vec<(HostId, SimTime, StackAction)> {
        std::mem::take(&mut self.events)
    }

    /// Recorded events, in place.
    pub fn events(&self) -> &[(HostId, SimTime, StackAction)] {
        &self.events
    }

    // --- Running -----------------------------------------------------------------

    /// The earliest self-reported deadline of any component.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        let mut fold = |t: Option<SimTime>| {
            if let Some(t) = t {
                best = Some(best.map_or(t, |b: SimTime| b.min(t)));
            }
        };
        for l in &self.lines {
            fold(l.next_deadline());
        }
        for c in &self.channels {
            fold(c.next_deadline());
        }
        for s in &self.segments {
            fold(s.next_deadline());
        }
        for t in &self.tncs {
            fold(t.tnc.next_deadline());
        }
        for d in &self.digis {
            fold(d.digi.next_deadline());
        }
        for b in &self.beacons {
            fold(b.beacon.next_deadline());
        }
        for h in &self.hosts {
            fold(h.host.next_deadline());
        }
        for a in &self.apps {
            fold(a.app.next_deadline());
        }
        best
    }

    /// Runs the world up to (and including) deadlines at `t`; the clock
    /// finishes exactly at `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.start_apps();
        self.settle();
        while let Some(d) = self.next_deadline() {
            if d > t {
                break;
            }
            self.now = self.now.max(d);
            self.settle();
        }
        self.now = self.now.max(t);
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: sim::SimDuration) {
        self.run_until(self.now + d);
    }

    /// Runs until no component has any pending work (or `limit` passes).
    pub fn run_until_idle(&mut self, limit: SimTime) {
        self.start_apps();
        self.settle();
        while let Some(d) = self.next_deadline() {
            if d > limit {
                break;
            }
            self.now = self.now.max(d);
            self.settle();
        }
    }

    fn start_apps(&mut self) {
        let now = self.now;
        let mut apps = std::mem::take(&mut self.apps);
        for entry in &mut apps {
            if !entry.started {
                entry.started = true;
                entry.app.on_start(now, &mut self.hosts[entry.host.0].host);
            }
        }
        self.apps = apps;
    }

    /// Processes everything due at `self.now` until the instant is quiet.
    fn settle(&mut self) {
        let now = self.now;
        for _pass in 0..10_000 {
            let mut progressed = false;

            // 1. Serial lines: finish due characters, route rx bytes.
            for li in 0..self.lines.len() {
                if self.lines[li].next_deadline().is_some_and(|t| t <= now) {
                    self.lines[li].advance(now);
                }
                // Host side (End::A).
                let host_bytes = self.lines[li].take_rx(End::A);
                if !host_bytes.is_empty() {
                    progressed = true;
                    if let Some(h) = self.hosts.iter_mut().find(|h| h.serial == Some(li)) {
                        h.host.on_serial_bytes(now, &host_bytes);
                    }
                }
                // TNC side (End::B).
                let tnc_bytes = self.lines[li].take_rx(End::B);
                if !tnc_bytes.is_empty() {
                    progressed = true;
                    if let Some(t) = self.tncs.iter_mut().find(|t| t.line == li) {
                        for b in tnc_bytes {
                            t.tnc.on_serial_byte(b);
                        }
                    }
                }
            }

            // 2. Radio channels: completed transmissions become receptions.
            for ci in 0..self.channels.len() {
                if self.channels[ci].next_deadline().is_none_or(|t| t > now) {
                    continue;
                }
                let receptions = self.channels[ci].advance(now);
                if !receptions.is_empty() {
                    progressed = true;
                }
                for rx in receptions {
                    self.route_reception(now, ChanId(ci), rx.to, &rx);
                }
            }

            // 3. MAC polls (TNCs, digipeaters, beacons).
            for t in &mut self.tncs {
                t.tnc.poll(now, &mut self.channels[t.chan.0], &mut self.rng);
            }
            for d in &mut self.digis {
                d.digi
                    .poll(now, &mut self.channels[d.chan.0], &mut self.rng);
            }
            for b in &mut self.beacons {
                b.beacon.poll(now, &mut self.channels[b.chan.0]);
            }

            // 4. Ethernet segments.
            for si in 0..self.segments.len() {
                if self.segments[si].next_deadline().is_none_or(|t| t > now) {
                    continue;
                }
                let deliveries = self.segments[si].advance(now);
                if !deliveries.is_empty() {
                    progressed = true;
                }
                for (nic, frame) in deliveries {
                    if let Some(h) = self
                        .hosts
                        .iter_mut()
                        .find(|h| h.nic == Some((SegId(si), nic)))
                    {
                        h.host.on_ether_frame(now, &frame);
                    }
                }
            }

            // 5. Hosts: CPU-gated stack work, then route their output.
            for hi in 0..self.hosts.len() {
                if self.hosts[hi]
                    .host
                    .next_deadline()
                    .is_some_and(|t| t <= now)
                {
                    self.hosts[hi].host.advance(now);
                }
                progressed |= self.flush_host(now, HostId(hi));
            }

            // 6. Applications.
            progressed |= self.run_apps(now);

            if !progressed {
                return;
            }
        }
        panic!("world did not settle at {now}");
    }

    fn route_reception(
        &mut self,
        now: SimTime,
        chan: ChanId,
        to: StationId,
        rx: &radio::channel::Reception,
    ) {
        if self.trace.is_enabled() {
            self.trace.record(
                now,
                sim::trace::Category::Radio,
                format!("sta{}", to.0),
                format!(
                    "heard {}B from sta{}{}",
                    rx.data.len(),
                    rx.from.0,
                    if rx.corrupted { " (corrupted)" } else { "" }
                ),
            );
        }
        for t in &mut self.tncs {
            if t.chan == chan && t.tnc.station() == to {
                if let Some(bytes) = t.tnc.on_reception(rx) {
                    if self.trace.is_enabled() {
                        self.trace.record(
                            now,
                            sim::trace::Category::Kiss,
                            format!("tnc:{}", t.tnc.addr()),
                            format!("passed {}B frame up the serial line", bytes.len()),
                        );
                    }
                    self.lines[t.line].send(now, End::B, &bytes);
                }
                return;
            }
        }
        for d in &mut self.digis {
            if d.chan == chan && d.digi.station() == to {
                d.digi.on_reception(rx);
                return;
            }
        }
        // Beacons ignore receptions.
    }

    /// Routes a host's outbox and records/dispatches its events.
    fn flush_host(&mut self, now: SimTime, id: HostId) -> bool {
        let mut progressed = false;
        let outs = self.hosts[id.0].host.take_outbox();
        let serial = self.hosts[id.0].serial;
        let nic = self.hosts[id.0].nic;
        for out in outs {
            progressed = true;
            match out {
                HostOut::SerialTx(bytes) => {
                    if let Some(li) = serial {
                        self.lines[li].send(now, End::A, &bytes);
                    }
                }
                HostOut::EtherTx(frame) => {
                    if let Some((seg, nic)) = nic {
                        self.segments[seg.0].send(now, nic, frame);
                    }
                }
            }
        }
        let events = self.hosts[id.0].host.take_events();
        if !events.is_empty() {
            progressed = true;
            let mut apps = std::mem::take(&mut self.apps);
            for ev in events {
                if self.trace.is_enabled() {
                    self.trace.record(
                        now,
                        sim::trace::Category::App,
                        self.hosts[id.0].host.name.clone(),
                        format!("{ev:?}"),
                    );
                }
                for entry in apps.iter_mut().filter(|a| a.host == id) {
                    entry.app.on_event(now, &ev, &mut self.hosts[id.0].host);
                }
                if self.record_events {
                    self.events.push((id, now, ev));
                }
            }
            self.apps = apps;
        }
        progressed
    }

    fn run_apps(&mut self, now: SimTime) -> bool {
        let mut progressed = false;
        let mut apps = std::mem::take(&mut self.apps);
        for entry in &mut apps {
            entry.app.poll(now, &mut self.hosts[entry.host.0].host);
        }
        self.apps = apps;
        // App activity shows up as host outbox/event work.
        for hi in 0..self.hosts.len() {
            progressed |= self.flush_host(now, HostId(hi));
        }
        progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use sim::SimDuration;

    #[test]
    fn paper_topology_ping_pc_to_ether_host() {
        let mut s = scenario::paper_topology(scenario::PaperConfig::default(), 42);
        let eth_ip = s
            .world
            .host(s.ether_host)
            .stack
            .iface(s.world.host(s.ether_host).ether_iface().unwrap())
            .addr;
        let now = s.world.now;
        s.world.host_mut(s.pc).ping(now, eth_ip, 7, 1, 32);
        s.world.run_for(SimDuration::from_secs(60));
        let events = s.world.take_events();
        let reply = events.iter().find_map(|(h, t, e)| match e {
            StackAction::PingReply { id: 7, seq: 1, .. } if *h == s.pc => Some(*t),
            _ => None,
        });
        let rtt = reply.expect("ping reply must arrive");
        // At 1200 bit/s the ~90-byte request takes >0.5s each way.
        assert!(rtt > SimTime::from_millis(500), "rtt {rtt}");
        assert!(rtt < SimTime::from_secs(20), "rtt {rtt}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut s = scenario::paper_topology(scenario::PaperConfig::default(), 7);
            let eth_ip = scenario::ETHER_HOST_IP;
            let now = s.world.now;
            s.world.host_mut(s.pc).ping(now, eth_ip, 1, 1, 64);
            s.world.run_for(SimDuration::from_secs(60));
            s.world
                .take_events()
                .iter()
                .filter_map(|(_, t, e)| match e {
                    StackAction::PingReply { .. } => Some(t.as_nanos()),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
