//! The event-driven testbed: hosts, serial lines, TNCs, radio channels,
//! digipeaters, Ethernet segments, and applications under one clock.
//!
//! The world is partitioned into **shards** ([`crate::shard`]): each shard
//! owns a closed island of components — radio channels plus their attached
//! hosts, TNCs, digipeaters, beacons, and apps — with its own
//! deadline-indexed calendar, dirty set, RNG stream, and clock. Ethernet
//! segments are the only cross-shard links; the world coordinator owns
//! them and moves frames between shards through per-shard mailboxes.
//!
//! A single-shard world (the default — every builder call without an
//! explicit shard lands in shard 0) runs exactly the pre-shard engine:
//! the shard is handed the segments directly and steps to the limit in
//! one call. A multi-shard world runs **windows** of conservative
//! lookahead: each window covers `(w_prev, w_end]` where `w_end` is the
//! earliest pending event plus the cross-shard latency `LOOKAHEAD`;
//! every shard steps its own window independently (in parallel on a
//! worker pool when [`World::set_workers`] asked for one), and the
//! coordinator applies deferred Ethernet traffic between windows in
//! deterministic `(time, shard, seq)` order — so results are identical
//! at every worker count. DESIGN.md §11 has the full contract.
//!
//! The previous engine — scan every component for its deadline on every
//! event, re-poll everything every pass — is retained verbatim as the
//! *reference stepper* ([`World::run_until_reference`]) so equivalence
//! tests and the `engine` benchmarks can prove the indexed scheduler
//! produces identical event sequences, faster.
//!
//! All components are sans-io state machines from the substrate crates;
//! this module is the only place where they touch.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use ax25::addr::Ax25Addr;
use ether::{EtherFrame, NicId, Segment};
use netstack::stack::StackAction;
use radio::channel::Channel;
use radio::csma::MacConfig;
use radio::digi::Digipeater;
use radio::tnc::{RxMode, Tnc, TncConfig};
use radio::traffic::{BeaconConfig, BeaconStation};
use serial::{SerialConfig, SerialLine};
use sim::sched::{SchedStats, Scheduler};
use sim::trace::Trace;
use sim::{Bandwidth, SimDuration, SimRng, SimTime};

use crate::host::{Host, HostConfig};
use crate::shard::{
    AppEntry, BeaconEntry, DigiEntry, HostEntry, Segs, ShardBox, ShardData, TncEntry,
};

/// The conservative cross-shard lookahead: a frame leaving a shard for
/// the Ethernet backbone is applied to the segment `LOOKAHEAD` after its
/// emission instant. At 1200–9600 b/s radio timescales one millisecond is
/// far below any observable protocol timer, and it is what lets every
/// shard step a whole window without seeing its neighbors (DESIGN.md
/// §11). Single-shard worlds bypass it entirely.
pub const LOOKAHEAD: SimDuration = SimDuration::from_millis(1);

/// Handle to a shard of the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardId(usize);

impl ShardId {
    /// Shard 0, which every world starts with.
    pub const ZERO: ShardId = ShardId(0);

    /// The shard's index (shard 0 always exists).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a radio channel in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChanId(usize);

/// Handle to an Ethernet segment in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegId(usize);

/// Handle to a host in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostId(usize);

impl HostId {
    pub(crate) fn from_raw(i: usize) -> HostId {
        HostId(i)
    }
}

/// Handle to a TNC in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TncId(usize);

/// Handle to a digipeater in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DigiId(usize);

/// Handle to a background traffic station in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BeaconId(usize);

/// An application running "on" a host, driven by stack events.
///
/// Implementations live in the `apps` crate; the world calls these hooks
/// with the owning [`Host`] borrowed mutably so the app can use the
/// socket API directly.
///
/// Scheduler contract: `poll` is guaranteed to be called at
/// [`App::next_deadline`], after any `on_event`, and whenever the owning
/// host was touched at the current instant. Polls at other times may or
/// may not happen, so a `poll` that acts without a due deadline, a fresh
/// event, or new host state will not run deterministically — expose a
/// deadline instead.
pub trait App {
    /// Called once when the world first runs.
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        let _ = (now, host);
    }

    /// Called for every stack event on the owning host.
    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        let _ = (now, event, host);
    }

    /// Called on quiescence passes where the app is due or its host was
    /// touched, and at [`App::next_deadline`].
    fn poll(&mut self, now: SimTime, host: &mut Host) {
        let _ = (now, host);
    }

    /// An optional wake-up time (timers, scripted actions).
    fn next_deadline(&self) -> Option<SimTime> {
        None
    }
}

/// Which stepping engine a run call drives.
#[derive(Clone, Copy)]
enum Mode {
    /// Deadline-indexed calendar + dirty-set quiescence (production).
    Indexed,
    /// Full scan + re-poll-everything quiescence (executable spec).
    Scan,
}

/// A deferred cross-shard Ethernet send waiting for its effect time.
/// Ordered by `(effect, shard, seq)` — the deterministic merge order at
/// shard boundaries, independent of which worker stepped which shard.
struct PendingSend {
    effect: SimTime,
    shard: u32,
    seq: u64,
    seg: usize,
    nic: NicId,
    frame: EtherFrame,
}

impl PendingSend {
    fn key(&self) -> (SimTime, u32, u64) {
        (self.effect, self.shard, self.seq)
    }
}

impl PartialEq for PendingSend {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for PendingSend {}

impl PartialOrd for PendingSend {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingSend {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// The simulation world. See the [module docs](self).
pub struct World {
    /// Current simulated time.
    pub now: SimTime,
    /// Optional event trace (disabled by default; multi-shard worlds
    /// trace shard 0's island).
    pub trace: Trace,
    /// Recorded (host, time, event) triples when enabled.
    pub record_events: bool,
    shards: Vec<ShardBox>,
    /// Ethernet segments: world-owned, the cross-shard links.
    segments: Vec<Segment>,
    /// Per segment: which shard-local host each NIC delivers to.
    seg_hosts: Vec<HashMap<NicId, (u32, u32)>>,
    /// Global handle → (shard, local index) maps.
    chan_map: Vec<(u32, u32)>,
    host_map: Vec<(u32, u32)>,
    tnc_map: Vec<(u32, u32)>,
    digi_map: Vec<(u32, u32)>,
    beacon_map: Vec<(u32, u32)>,
    events: Vec<(HostId, SimTime, StackAction)>,
    /// Worker threads for multi-shard runs (1 = step shards serially).
    workers: usize,
    /// Timer-wheel granularity applied to every shard's calendar.
    wheel: Option<SimDuration>,
    /// In-flight cross-shard sends, min-ordered by `(effect, shard, seq)`.
    pending: BinaryHeap<Reverse<PendingSend>>,
    /// Recycled delivery frames (§11 zero-alloc hand-off pool).
    spare_frames: Vec<EtherFrame>,
    /// Shards hold `Rc` graphs; the world must stay on one thread (worker
    /// threads only ever live *inside* a `drive` call).
    _not_send: PhantomData<Rc<()>>,
}

impl World {
    /// Creates an empty world with a deterministic seed (one shard).
    pub fn new(seed: u64) -> World {
        World {
            now: SimTime::ZERO,
            trace: Trace::disabled(),
            record_events: true,
            shards: vec![ShardBox::new(ShardData::new(SimRng::seed_from(seed)))],
            segments: Vec::new(),
            seg_hosts: Vec::new(),
            chan_map: Vec::new(),
            host_map: Vec::new(),
            tnc_map: Vec::new(),
            digi_map: Vec::new(),
            beacon_map: Vec::new(),
            events: Vec::new(),
            workers: 1,
            wheel: None,
            pending: BinaryHeap::new(),
            spare_frames: Vec::new(),
            _not_send: PhantomData,
        }
    }

    /// Switches every shard's calendar to the hierarchical timer-wheel
    /// backend with the given slot granularity (one millisecond suits the
    /// 9600 Bd per-character band). Takes effect at the next run call,
    /// which rebuilds the index; pop order is identical to the heap
    /// backend.
    pub fn use_timer_wheel(&mut self, granularity: SimDuration) {
        self.wheel = Some(granularity);
        for sb in &mut self.shards {
            sb.get_mut().set_sched(Scheduler::with_wheel(granularity));
        }
    }

    /// Scheduler work counters (pops, re-keys, tombstone skips, component
    /// polls, instants, batched serial characters), summed over shards.
    pub fn sched_stats(&self) -> SchedStats {
        let mut total = SchedStats::default();
        for sb in &self.shards {
            let s = sb.get().sched_stats();
            total.pops += s.pops;
            total.rekeys += s.rekeys;
            total.unchanged += s.unchanged;
            total.tombstone_skips += s.tombstone_skips;
            total.polled += s.polled;
            total.instants += s.instants;
            total.batched_chars += s.batched_chars;
        }
        total
    }

    /// Cross-shard mailbox counters (pushes, pops, ring growths, peak
    /// occupancy), summed over every shard's inbound `ether_in` ring.
    /// `grows` stabilizing while `pushed` keeps climbing is the §11
    /// zero-allocation hand-off contract, asserted by the `shard_sync`
    /// bench.
    pub fn mailbox_stats(&self) -> sim::mailbox::MailboxStats {
        let mut total = sim::mailbox::MailboxStats::default();
        for sb in &self.shards {
            let s = sb.get().ether_in.stats();
            total.pushed += s.pushed;
            total.popped += s.popped;
            total.grows += s.grows;
            total.peak = total.peak.max(s.peak);
        }
        total
    }

    /// Sets the worker-thread count for multi-shard runs. `1` steps
    /// shards serially on the caller's thread; results are identical at
    /// every count. Single-shard worlds ignore it.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    // --- Topology building -------------------------------------------------

    /// Adds a shard: an independently stepped island of components.
    /// Components must be shard-closed — a radio channel and everything
    /// attached to it live in one shard; only Ethernet segments may span
    /// shards.
    pub fn add_shard(&mut self) -> ShardId {
        let rng = self.shards[0].get_mut().rng.fork();
        let mut sh = ShardData::new(rng);
        if let Some(g) = self.wheel {
            sh.set_sched(Scheduler::with_wheel(g));
        }
        self.shards.push(ShardBox::new(sh));
        ShardId(self.shards.len() - 1)
    }

    /// Adds a radio channel (shard 0).
    pub fn add_channel(&mut self, rate: Bandwidth) -> ChanId {
        self.add_channel_in(ShardId(0), rate)
    }

    /// Adds a radio channel to a shard.
    pub fn add_channel_in(&mut self, shard: ShardId, rate: Bandwidth) -> ChanId {
        let sh = self.shards[shard.0].get_mut();
        sh.channels.push(Channel::new(rate));
        self.chan_map
            .push((shard.0 as u32, (sh.channels.len() - 1) as u32));
        ChanId(self.chan_map.len() - 1)
    }

    /// Adds a radio channel with byte errors (shard 0).
    pub fn add_noisy_channel(&mut self, rate: Bandwidth, byte_error_rate: f64) -> ChanId {
        self.add_noisy_channel_in(ShardId(0), rate, byte_error_rate)
    }

    /// Adds a radio channel with byte errors to a shard. The error RNG
    /// forks from shard 0's build-time stream regardless of the target
    /// shard, so topology construction order alone fixes every stream.
    pub fn add_noisy_channel_in(
        &mut self,
        shard: ShardId,
        rate: Bandwidth,
        byte_error_rate: f64,
    ) -> ChanId {
        let rng = self.shards[0].get_mut().rng.fork();
        let sh = self.shards[shard.0].get_mut();
        sh.channels
            .push(Channel::new(rate).with_byte_errors(byte_error_rate, rng));
        self.chan_map
            .push((shard.0 as u32, (sh.channels.len() - 1) as u32));
        ChanId(self.chan_map.len() - 1)
    }

    /// Adds an Ethernet segment (world-owned; hosts from any shard may
    /// attach).
    pub fn add_segment(&mut self, rate: Bandwidth) -> SegId {
        self.segments.push(Segment::new(rate));
        self.seg_hosts.push(HashMap::new());
        SegId(self.segments.len() - 1)
    }

    /// Adds a host (shard 0; attach its links separately).
    pub fn add_host(&mut self, cfg: HostConfig) -> HostId {
        self.add_host_in(ShardId(0), cfg)
    }

    /// Adds a host to a shard.
    pub fn add_host_in(&mut self, shard: ShardId, cfg: HostConfig) -> HostId {
        let gid = self.host_map.len();
        let sh = self.shards[shard.0].get_mut();
        sh.hosts.push(HostEntry {
            host: Host::new(cfg),
            serial: None,
            nic: None,
        });
        sh.host_gids.push(gid);
        self.host_map
            .push((shard.0 as u32, (sh.hosts.len() - 1) as u32));
        HostId(gid)
    }

    /// Attaches a host's radio interface to `chan` through a serial line
    /// at `baud` and a TNC in `mode` with `mac` parameters.
    ///
    /// # Panics
    ///
    /// Panics if the host has no radio interface, or if the host and
    /// channel live in different shards (radio links are shard-internal).
    pub fn attach_radio(
        &mut self,
        host: HostId,
        chan: ChanId,
        baud: u32,
        mode: RxMode,
        mac: MacConfig,
    ) -> TncId {
        let (hs, hl) = self.host_map[host.0];
        let (cs, cl) = self.chan_map[chan.0];
        assert_eq!(
            hs, cs,
            "attach_radio: host (shard {hs}) and channel (shard {cs}) must share a shard"
        );
        let sh = self.shards[hs as usize].get_mut();
        let call = sh.hosts[hl as usize]
            .host
            .callsign()
            .expect("host has no radio interface");
        let line_idx = sh.lines.len();
        sh.lines.push(SerialLine::new(SerialConfig::baud(baud)));
        sh.hosts[hl as usize].serial = Some(line_idx);
        let station = sh.channels[cl as usize].add_station();
        let cfg = TncConfig::new(call).with_mode(mode).with_mac(mac);
        sh.tncs.push(TncEntry {
            tnc: Tnc::new(cfg, station),
            chan: cl as usize,
            line: line_idx,
        });
        self.tnc_map.push((hs, (sh.tncs.len() - 1) as u32));
        TncId(self.tnc_map.len() - 1)
    }

    /// Attaches a host's Ethernet interface to `seg`.
    ///
    /// # Panics
    ///
    /// Panics if the host has no Ethernet interface.
    pub fn attach_ether(&mut self, host: HostId, seg: SegId) {
        let (hs, hl) = self.host_map[host.0];
        let sh = self.shards[hs as usize].get_mut();
        let mac = sh.hosts[hl as usize]
            .host
            .mac()
            .expect("host has no Ethernet interface");
        let nic = self.segments[seg.0].attach(mac);
        sh.hosts[hl as usize].nic = Some((seg.0, nic));
        self.seg_hosts[seg.0].insert(nic, (hs, hl));
    }

    /// Adds a standalone digipeater station on `chan`.
    pub fn add_digipeater(&mut self, chan: ChanId, call: Ax25Addr, mac: MacConfig) -> DigiId {
        let (cs, cl) = self.chan_map[chan.0];
        let sh = self.shards[cs as usize].get_mut();
        let station = sh.channels[cl as usize].add_station();
        sh.digis.push(DigiEntry {
            digi: Digipeater::new(call, station, mac),
            chan: cl as usize,
        });
        self.digi_map.push((cs, (sh.digis.len() - 1) as u32));
        DigiId(self.digi_map.len() - 1)
    }

    /// Adds a background traffic station on `chan`. Its RNG forks from
    /// shard 0's build-time stream (see [`World::add_noisy_channel_in`]).
    pub fn add_beacon(&mut self, chan: ChanId, cfg: BeaconConfig) -> BeaconId {
        let rng = self.shards[0].get_mut().rng.fork();
        let (cs, cl) = self.chan_map[chan.0];
        let sh = self.shards[cs as usize].get_mut();
        let station = sh.channels[cl as usize].add_station();
        sh.beacons.push(BeaconEntry {
            beacon: BeaconStation::new(cfg, station, rng),
            chan: cl as usize,
        });
        self.beacon_map.push((cs, (sh.beacons.len() - 1) as u32));
        BeaconId(self.beacon_map.len() - 1)
    }

    /// Installs an application on a host (same shard as the host).
    pub fn add_app(&mut self, host: HostId, app: Box<dyn App>) {
        let (hs, hl) = self.host_map[host.0];
        let sh = self.shards[hs as usize].get_mut();
        sh.apps.push(AppEntry {
            host: hl as usize,
            app,
            started: false,
        });
    }

    // --- Access ---------------------------------------------------------------

    /// A host, immutably.
    pub fn host(&self, id: HostId) -> &Host {
        let (s, l) = self.host_map[id.0];
        &self.shards[s as usize].get().hosts[l as usize].host
    }

    /// A host, mutably (socket operations, route edits…).
    pub fn host_mut(&mut self, id: HostId) -> &mut Host {
        let (s, l) = self.host_map[id.0];
        &mut self.shards[s as usize].get_mut().hosts[l as usize].host
    }

    /// A radio channel.
    pub fn channel(&self, id: ChanId) -> &Channel {
        let (s, l) = self.chan_map[id.0];
        &self.shards[s as usize].get().channels[l as usize]
    }

    /// A radio channel, mutably (hearing matrix edits).
    pub fn channel_mut(&mut self, id: ChanId) -> &mut Channel {
        let (s, l) = self.chan_map[id.0];
        &mut self.shards[s as usize].get_mut().channels[l as usize]
    }

    /// An Ethernet segment.
    pub fn segment(&self, id: SegId) -> &Segment {
        &self.segments[id.0]
    }

    /// A TNC.
    pub fn tnc(&self, id: TncId) -> &Tnc {
        let (s, l) = self.tnc_map[id.0];
        &self.shards[s as usize].get().tncs[l as usize].tnc
    }

    /// A TNC, mutably (mode switches).
    pub fn tnc_mut(&mut self, id: TncId) -> &mut Tnc {
        let (s, l) = self.tnc_map[id.0];
        &mut self.shards[s as usize].get_mut().tncs[l as usize].tnc
    }

    /// A digipeater.
    pub fn digipeater(&self, id: DigiId) -> &Digipeater {
        let (s, l) = self.digi_map[id.0];
        &self.shards[s as usize].get().digis[l as usize].digi
    }

    /// A background station.
    pub fn beacon(&self, id: BeaconId) -> &BeaconStation {
        let (s, l) = self.beacon_map[id.0];
        &self.shards[s as usize].get().beacons[l as usize].beacon
    }

    /// The serial line attached to a host, if any.
    pub fn host_serial_line(&self, id: HostId) -> Option<&SerialLine> {
        let (s, l) = self.host_map[id.0];
        let sh = self.shards[s as usize].get();
        sh.hosts[l as usize].serial.map(|i| &sh.lines[i])
    }

    /// Drains recorded stack events.
    pub fn take_events(&mut self) -> Vec<(HostId, SimTime, StackAction)> {
        std::mem::take(&mut self.events)
    }

    /// Recorded events, in place.
    pub fn events(&self) -> &[(HostId, SimTime, StackAction)] {
        &self.events
    }

    // --- Running -----------------------------------------------------------------

    /// The earliest self-reported deadline of any component, by scanning
    /// every component (the reference stepper's view of time; the indexed
    /// run loop reads the calendars instead).
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        let mut fold = |t: Option<SimTime>| {
            if let Some(t) = t {
                best = Some(best.map_or(t, |b: SimTime| b.min(t)));
            }
        };
        for sb in &self.shards {
            fold(sb.get().scan_next_deadline(None));
        }
        for s in &self.segments {
            fold(s.next_deadline());
        }
        fold(self.pending.peek().map(|r| r.0.effect));
        best
    }

    /// Runs the world up to (and including) deadlines at `t`; the clock
    /// finishes exactly at `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.drive(t, Mode::Indexed, true);
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now + d);
    }

    /// Runs until no component has any pending work (or `limit` passes).
    /// A deadline exactly at `limit` is processed.
    pub fn run_until_idle(&mut self, limit: SimTime) {
        self.drive(limit, Mode::Indexed, false);
    }

    // --- Reference stepper --------------------------------------------------
    //
    // The pre-index engine, kept verbatim in `shard.rs`: scan every
    // component for the earliest deadline, then re-poll everything until
    // quiescent. The equivalence tests pin the indexed scheduler against
    // it, and the `engine` benchmarks measure the speedup. Not for mixed
    // use with the indexed run methods on the same World instance within
    // a run — pick one driver per world. On a multi-shard world the
    // reference runs the same lookahead windows (serially), so it is also
    // the spec for the parallel engine's merge order.

    /// Reference (full-scan) equivalent of [`World::run_until`].
    #[doc(hidden)]
    pub fn run_until_reference(&mut self, t: SimTime) {
        self.drive(t, Mode::Scan, true);
    }

    /// Reference (full-scan) equivalent of [`World::run_until_idle`].
    #[doc(hidden)]
    pub fn run_until_idle_reference(&mut self, limit: SimTime) {
        self.drive(limit, Mode::Scan, false);
    }

    /// The shared run epilogue behind all four public run methods: pick
    /// the engine (`mode`), run to `limit`, and either clamp the clock to
    /// exactly `limit` (`run_until`) or leave it at the last processed
    /// instant (`run_until_idle`).
    fn drive(&mut self, limit: SimTime, mode: Mode, clamp: bool) {
        if self.shards.len() == 1 {
            self.drive_single(limit, mode, clamp);
        } else {
            self.drive_sharded(limit, mode, clamp);
        }
    }

    /// Single-shard fast path: hand the shard the segments and step to
    /// the limit in one call — the exact pre-shard engine, no windows, no
    /// lookahead.
    fn drive_single(&mut self, limit: SimTime, mode: Mode, clamp: bool) {
        let sh = self.shards[0].get_mut();
        sh.now = self.now;
        sh.record_events = self.record_events;
        std::mem::swap(&mut sh.trace, &mut self.trace);
        let mut segs: Segs = Some(&mut self.segments);
        sh.start_apps();
        match mode {
            Mode::Indexed => {
                sh.sync_all(&mut segs);
                sh.settle_dirty(false, &mut segs);
                sh.run_window_indexed(limit, &mut segs);
            }
            Mode::Scan => {
                sh.settle_scan(&mut segs);
                sh.run_window_scan(limit, &mut segs);
            }
        }
        std::mem::swap(&mut sh.trace, &mut self.trace);
        self.now = if clamp { sh.now.max(limit) } else { sh.now };
        self.events.append(&mut sh.events);
    }

    /// Multi-shard windowed run. Shards settle their entry instant, then
    /// the coordinator loops lookahead windows until nothing is due at or
    /// before `limit`; see `Engine`.
    fn drive_sharded(&mut self, limit: SimTime, mode: Mode, clamp: bool) {
        std::mem::swap(&mut self.shards[0].get_mut().trace, &mut self.trace);
        for sb in &mut self.shards {
            let sh = sb.get_mut();
            sh.now = self.now;
            sh.record_events = self.record_events;
            sh.start_apps();
            let mut segs: Segs = None;
            match mode {
                Mode::Indexed => {
                    sh.sync_all(&mut segs);
                    sh.settle_dirty(false, &mut segs);
                }
                Mode::Scan => sh.settle_scan(&mut segs),
            }
        }
        let shards = std::mem::take(&mut self.shards);
        let mut segments = std::mem::take(&mut self.segments);
        let seg_hosts = std::mem::take(&mut self.seg_hosts);
        let mut pending = std::mem::take(&mut self.pending);
        let mut spare = std::mem::take(&mut self.spare_frames);
        let mut events = std::mem::take(&mut self.events);
        let workers = self.workers.min(shards.len());
        {
            let mut eng = Engine {
                shards: &shards,
                segments: &mut segments,
                seg_hosts: &seg_hosts,
                pending: &mut pending,
                spare: &mut spare,
                events: &mut events,
                mode,
                limit,
            };
            // Entry settles may already have emitted cross-shard traffic.
            eng.collect();
            if workers <= 1 {
                eng.run_serial();
            } else {
                eng.run_parallel(workers);
            }
        }
        self.shards = shards;
        self.segments = segments;
        self.seg_hosts = seg_hosts;
        self.pending = pending;
        self.spare_frames = spare;
        self.events = events;
        std::mem::swap(&mut self.shards[0].get_mut().trace, &mut self.trace);
        let mut now = self.now;
        for sb in &mut self.shards {
            now = now.max(sb.get_mut().now);
        }
        self.now = if clamp { now.max(limit) } else { now };
    }
}

/// Steps one shard through one window (deferred-Ethernet mode).
fn step_shard(sh: &mut ShardData, w_end: SimTime, mode: Mode) {
    let mut segs: Segs = None;
    match mode {
        Mode::Indexed => sh.run_window_indexed(w_end, &mut segs),
        Mode::Scan => sh.run_window_scan(w_end, &mut segs),
    }
}

/// The multi-shard window coordinator. Per window:
///
/// 1. `t_next` = the earliest pending thing anywhere (shard events,
///    queued deliveries, segment completions, deferred sends);
///    stop when it passes the limit.
/// 2. `w_end = min(limit, t_next + LOOKAHEAD)`.
/// 3. `apply_ether(w_end)`: replay deferred sends and segment
///    completions up to `w_end` in global time order (completions
///    before same-time sends, send ties by `(shard, seq)`, completion
///    ties by segment index), queuing deliveries into shard mailboxes
///    at their exact times. Sends emitted *during* a window get effect
///    `≥ w_end` (the lookahead guarantee), so this phase never misses
///    one.
/// 4. Step every shard to `w_end` — independently, in parallel if asked;
///    shards see only their mailbox, never the segments.
/// 5. `collect()`: gather emitted sends into the pending heap, append
///    shard events (stable-sorted by time; windows never interleave
///    times), and recycle spent delivery frames.
struct Engine<'a> {
    shards: &'a [ShardBox],
    segments: &'a mut Vec<Segment>,
    seg_hosts: &'a [HashMap<NicId, (u32, u32)>],
    pending: &'a mut BinaryHeap<Reverse<PendingSend>>,
    spare: &'a mut Vec<EtherFrame>,
    events: &'a mut Vec<(HostId, SimTime, StackAction)>,
    mode: Mode,
    limit: SimTime,
}

// The coordinator's `steal` calls are the other half of the `shard::cell`
// contract: every call site is a coordinator phase (workers parked at the
// barrier or never spawned) or a ticket-claimed stepping phase.
#[allow(unsafe_code)]
impl Engine<'_> {
    /// The earliest pending event in the whole world.
    fn t_next(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        let mut fold = |t: Option<SimTime>| {
            if let Some(t) = t {
                best = Some(best.map_or(t, |b: SimTime| b.min(t)));
            }
        };
        for sb in self.shards {
            // SAFETY: coordinator phase — workers are parked at the
            // barrier (or do not exist), so no shard is claimed.
            let sh = unsafe { sb.steal() };
            fold(match self.mode {
                Mode::Indexed => sh.next_event_indexed(),
                Mode::Scan => sh.scan_next_deadline(None),
            });
        }
        for s in self.segments.iter() {
            fold(s.next_deadline());
        }
        fold(self.pending.peek().map(|r| r.0.effect));
        best
    }

    /// Replays deferred sends and segment completions with time ≤ `upto`
    /// in global time order, queuing deliveries into shard mailboxes at
    /// their exact completion times. Afterwards every segment deadline
    /// and pending send is > `upto`, and every mailbox is stamped in
    /// nondecreasing order.
    fn apply_ether(&mut self, upto: SimTime) {
        loop {
            let comp = self
                .segments
                .iter()
                .enumerate()
                .filter_map(|(si, s)| s.next_deadline().map(|t| (t, si)))
                .min()
                .filter(|&(t, _)| t <= upto);
            let send = self
                .pending
                .peek()
                .map(|r| r.0.effect)
                .filter(|&t| t <= upto);
            match (comp, send) {
                (None, None) => return,
                // Completions apply before same-time sends: in the
                // single-shard engine the segment advances (settle step 4)
                // before hosts flush new sends (step 5) at one instant.
                (Some((c, si)), send) if send.is_none_or(|e| c <= e) => {
                    let shards = self.shards;
                    let seg_hosts = &self.seg_hosts[si];
                    let spare = &mut *self.spare;
                    // `c` is the global minimum, so exactly the one
                    // completion at `c` fires (a chained next frame
                    // finishes strictly later) — every delivery below
                    // happens at `c`.
                    self.segments[si].advance_with(c, |nic, frame| {
                        if let Some(&(s, l)) = seg_hosts.get(&nic) {
                            let mut buf = spare.pop().unwrap_or_else(EtherFrame::empty);
                            frame.clone_into(&mut buf);
                            // SAFETY: coordinator phase (as in `t_next`).
                            let sh = unsafe { shards[s as usize].steal() };
                            sh.ether_in.push((c, l as usize, buf));
                        }
                    });
                }
                _ => {
                    let Reverse(p) = self.pending.pop().expect("send was peeked");
                    self.segments[p.seg].send(p.effect, p.nic, p.frame);
                }
            }
        }
    }

    /// Gathers every shard's window output: deferred sends → pending
    /// heap, events → world log (stable-sorted by time; shard order
    /// breaks ties), consumed delivery frames → spare pool.
    fn collect(&mut self) {
        let tail = self.events.len();
        for (si, sb) in self.shards.iter().enumerate() {
            // SAFETY: coordinator phase (as in `t_next`).
            let sh = unsafe { sb.steal() };
            for of in sh.ether_out.drain(..) {
                self.pending.push(Reverse(PendingSend {
                    effect: of.time + LOOKAHEAD,
                    shard: si as u32,
                    seq: of.seq,
                    seg: of.seg,
                    nic: of.nic,
                    frame: of.frame,
                }));
            }
            self.events.append(&mut sh.events);
            self.spare.append(&mut sh.spent);
        }
        self.events[tail..].sort_by_key(|e| e.1);
    }

    /// The window loop, stepping shards on the caller's thread.
    fn run_serial(&mut self) {
        loop {
            let Some(tn) = self.t_next() else { return };
            if tn > self.limit {
                return;
            }
            let w_end = (tn + LOOKAHEAD).min(self.limit);
            self.apply_ether(w_end);
            for sb in self.shards {
                // SAFETY: serial stepping — no other claimant exists.
                let sh = unsafe { sb.steal() };
                step_shard(sh, w_end, self.mode);
            }
            self.collect();
        }
    }

    /// The window loop on a worker pool: `workers − 1` spawned threads
    /// plus the coordinator claim shards through an atomic ticket; two
    /// barrier waits bound each window (coordinator phases in between).
    fn run_parallel(&mut self, workers: usize) {
        let shards = self.shards;
        let mode = self.mode;
        let nshards = shards.len();
        // (window end, shut down) — written by the coordinator before the
        // opening barrier of each window.
        let spec: Mutex<(SimTime, bool)> = Mutex::new((SimTime::ZERO, false));
        let barrier = Barrier::new(workers);
        let ticket = AtomicUsize::new(0);
        let claim_and_step = |w_end: SimTime| loop {
            let i = ticket.fetch_add(1, Ordering::Relaxed);
            if i >= nshards {
                break;
            }
            // SAFETY: the ticket hands each shard to exactly one thread;
            // the barriers on both sides of the stepping phase order it
            // with every coordinator access.
            let sh = unsafe { shards[i].steal() };
            step_shard(sh, w_end, mode);
        };
        std::thread::scope(|scope| {
            for _ in 1..workers {
                let spec = &spec;
                let barrier = &barrier;
                let claim_and_step = &claim_and_step;
                scope.spawn(move || loop {
                    barrier.wait();
                    let (w_end, done) = *spec.lock().expect("window spec lock");
                    if done {
                        return;
                    }
                    claim_and_step(w_end);
                    barrier.wait();
                });
            }
            while let Some(tn) = self.t_next() {
                if tn > self.limit {
                    break;
                }
                let w_end = (tn + LOOKAHEAD).min(self.limit);
                self.apply_ether(w_end);
                *spec.lock().expect("window spec lock") = (w_end, false);
                ticket.store(0, Ordering::Relaxed);
                barrier.wait();
                claim_and_step(w_end);
                barrier.wait();
                self.collect();
            }
            spec.lock().expect("window spec lock").1 = true;
            barrier.wait();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use sim::SimDuration;

    #[test]
    fn paper_topology_ping_pc_to_ether_host() {
        let mut s = scenario::paper_topology(scenario::PaperConfig::default(), 42);
        let eth_ip = s
            .world
            .host(s.ether_host)
            .stack
            .iface(s.world.host(s.ether_host).ether_iface().unwrap())
            .addr;
        let now = s.world.now;
        s.world.host_mut(s.pc).ping(now, eth_ip, 7, 1, 32);
        s.world.run_for(SimDuration::from_secs(60));
        let events = s.world.take_events();
        let reply = events.iter().find_map(|(h, t, e)| match e {
            StackAction::PingReply { id: 7, seq: 1, .. } if *h == s.pc => Some(*t),
            _ => None,
        });
        let rtt = reply.expect("ping reply must arrive");
        // At 1200 bit/s the ~90-byte request takes >0.5s each way.
        assert!(rtt > SimTime::from_millis(500), "rtt {rtt}");
        assert!(rtt < SimTime::from_secs(20), "rtt {rtt}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut s = scenario::paper_topology(scenario::PaperConfig::default(), 7);
            let eth_ip = scenario::ETHER_HOST_IP;
            let now = s.world.now;
            s.world.host_mut(s.pc).ping(now, eth_ip, 1, 1, 64);
            s.world.run_for(SimDuration::from_secs(60));
            s.world
                .take_events()
                .iter()
                .filter_map(|(_, t, e)| match e {
                    StackAction::PingReply { .. } => Some(t.as_nanos()),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    /// A scripted test app: polls are recorded, and it exposes a fixed
    /// deadline schedule.
    struct Recorder {
        deadlines: Vec<SimTime>,
        fired: std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>,
    }

    impl App for Recorder {
        fn poll(&mut self, now: SimTime, _host: &mut Host) {
            while self.deadlines.first().is_some_and(|&d| d <= now) {
                self.deadlines.remove(0);
                self.fired.borrow_mut().push(now);
            }
        }

        fn next_deadline(&self) -> Option<SimTime> {
            self.deadlines.first().copied()
        }
    }

    fn recorder_world(
        deadlines: Vec<SimTime>,
    ) -> (World, std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>) {
        let mut w = World::new(1);
        let h = w.add_host(crate::host::HostConfig::named("lone"));
        let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        w.add_app(
            h,
            Box::new(Recorder {
                deadlines,
                fired: fired.clone(),
            }),
        );
        (w, fired)
    }

    /// Satellite: `run_until_idle` processes a deadline exactly at
    /// `limit` (the loop breaks only on `d > limit`).
    #[test]
    fn run_until_idle_processes_deadline_exactly_at_limit() {
        let limit = SimTime::from_secs(5);
        let (mut w, fired) = recorder_world(vec![
            SimTime::from_secs(1),
            limit,
            limit + SimDuration::from_nanos(1),
        ]);
        w.run_until_idle(limit);
        assert_eq!(*fired.borrow(), vec![SimTime::from_secs(1), limit]);
        // The past-limit deadline was not processed and the clock did not
        // jump to `limit`.
        assert_eq!(w.now, limit);
    }

    /// Satellite: app `poll` hooks still fire on the final instant of
    /// `run_until` (deadline == t).
    #[test]
    fn app_poll_fires_on_final_instant_of_run_until() {
        let t = SimTime::from_secs(3);
        let (mut w, fired) = recorder_world(vec![t]);
        w.run_until(t);
        assert_eq!(*fired.borrow(), vec![t]);
        assert_eq!(w.now, t);
    }

    /// Reference agrees with both tests above.
    #[test]
    fn reference_processes_deadline_at_limit_identically() {
        let limit = SimTime::from_secs(5);
        let (mut w, fired) = recorder_world(vec![
            SimTime::from_secs(1),
            limit,
            limit + SimDuration::from_nanos(1),
        ]);
        w.run_until_idle_reference(limit);
        assert_eq!(*fired.borrow(), vec![SimTime::from_secs(1), limit]);
    }
}
