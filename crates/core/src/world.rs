//! The event-driven testbed: hosts, serial lines, TNCs, radio channels,
//! digipeaters, Ethernet segments, and applications under one clock.
//!
//! The world advances on a **deadline-indexed calendar** ([`sim::sched`]):
//! every component registers its self-reported `next_deadline()` under a
//! [`Key`], the run loop pops the earliest entries, marks exactly those
//! components **dirty**, and the quiescence pass re-polls only dirty
//! components — when a component emits output routed to another, only the
//! receiver is marked dirty. Untouched components are never visited. The
//! scheduler contract (who must be marked dirty when, deadline-change
//! reporting, tie-break order) is documented in DESIGN.md §6.
//!
//! The previous engine — scan every component for its deadline on every
//! event, re-poll everything every pass — is retained verbatim as the
//! *reference stepper* ([`World::run_until_reference`]) so equivalence
//! tests and the `engine` benchmarks can prove the indexed scheduler
//! produces identical event sequences, faster.
//!
//! All components are sans-io state machines from the substrate crates;
//! this module is the only place where they touch.

use ax25::addr::Ax25Addr;
use ether::{NicId, Segment};
use netstack::stack::StackAction;
use radio::channel::{Channel, StationId};
use radio::csma::MacConfig;
use radio::digi::Digipeater;
use radio::tnc::{RxMode, Tnc, TncConfig};
use radio::traffic::{BeaconConfig, BeaconStation};
use serial::{End, SerialConfig, SerialLine};
use sim::sched::{SchedStats, Scheduler};
use sim::trace::Trace;
use sim::{Bandwidth, SimDuration, SimRng, SimTime};

use crate::host::{Host, HostConfig, HostOut};

/// Handle to a radio channel in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChanId(usize);

/// Handle to an Ethernet segment in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegId(usize);

/// Handle to a host in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostId(usize);

/// Handle to a TNC in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TncId(usize);

/// Handle to a digipeater in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DigiId(usize);

/// Handle to a background traffic station in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BeaconId(usize);

/// An application running "on" a host, driven by stack events.
///
/// Implementations live in the `apps` crate; the world calls these hooks
/// with the owning [`Host`] borrowed mutably so the app can use the
/// socket API directly.
///
/// Scheduler contract: `poll` is guaranteed to be called at
/// [`App::next_deadline`], after any `on_event`, and whenever the owning
/// host was touched at the current instant. Polls at other times may or
/// may not happen, so a `poll` that acts without a due deadline, a fresh
/// event, or new host state will not run deterministically — expose a
/// deadline instead.
pub trait App {
    /// Called once when the world first runs.
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        let _ = (now, host);
    }

    /// Called for every stack event on the owning host.
    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        let _ = (now, event, host);
    }

    /// Called on quiescence passes where the app is due or its host was
    /// touched, and at [`App::next_deadline`].
    fn poll(&mut self, now: SimTime, host: &mut Host) {
        let _ = (now, host);
    }

    /// An optional wake-up time (timers, scripted actions).
    fn next_deadline(&self) -> Option<SimTime> {
        None
    }
}

struct TncEntry {
    tnc: Tnc,
    chan: ChanId,
    line: usize,
}

struct DigiEntry {
    digi: Digipeater,
    chan: ChanId,
}

struct BeaconEntry {
    beacon: BeaconStation,
    chan: ChanId,
}

struct HostEntry {
    host: Host,
    /// Serial line index whose A end this host holds.
    serial: Option<usize>,
    /// Ethernet attachment.
    nic: Option<(SegId, NicId)>,
}

struct AppEntry {
    host: HostId,
    app: Box<dyn App>,
    started: bool,
}

/// A component key in the deadline index and dirty set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Line(usize),
    Chan(usize),
    Seg(usize),
    Tnc(usize),
    Digi(usize),
    Beacon(usize),
    Host(usize),
    App(usize),
}

/// One category's dirty members: a flag per component for O(1) dedup,
/// plus the list of marked indices so the settle pass visits only dirty
/// components instead of sweeping every flag.
#[derive(Default)]
struct DirtyCat {
    flags: Vec<bool>,
    list: Vec<usize>,
}

impl DirtyCat {
    fn reset(&mut self, n: usize) {
        self.flags.clear();
        self.flags.resize(n, true);
        self.list.clear();
        self.list.extend(0..n);
    }

    fn reset_clear(&mut self, n: usize) {
        self.flags.clear();
        self.flags.resize(n, false);
        self.list.clear();
    }

    /// Marks `i`; returns whether it was newly marked.
    fn mark(&mut self, i: usize) -> bool {
        if self.flags[i] {
            false
        } else {
            self.flags[i] = true;
            self.list.push(i);
            true
        }
    }

    /// Drains the current marks into `todo`, sorted ascending (component
    /// index order — the deterministic processing order), clearing the
    /// flags. Marks made while processing land in the next drain.
    fn drain_into(&mut self, todo: &mut Vec<usize>) -> usize {
        todo.clear();
        todo.append(&mut self.list);
        todo.sort_unstable();
        for &i in todo.iter() {
            self.flags[i] = false;
        }
        todo.len()
    }
}

/// Per-category dirty sets with an exact total count, so the run loop can
/// tell in O(1) whether any work is pending.
#[derive(Default)]
struct DirtySet {
    lines: DirtyCat,
    chans: DirtyCat,
    segs: DirtyCat,
    tncs: DirtyCat,
    digis: DirtyCat,
    beacons: DirtyCat,
    hosts: DirtyCat,
    apps: DirtyCat,
    count: usize,
}

impl DirtySet {
    fn cat(&mut self, key: Key) -> (&mut DirtyCat, usize) {
        match key {
            Key::Line(i) => (&mut self.lines, i),
            Key::Chan(i) => (&mut self.chans, i),
            Key::Seg(i) => (&mut self.segs, i),
            Key::Tnc(i) => (&mut self.tncs, i),
            Key::Digi(i) => (&mut self.digis, i),
            Key::Beacon(i) => (&mut self.beacons, i),
            Key::Host(i) => (&mut self.hosts, i),
            Key::App(i) => (&mut self.apps, i),
        }
    }

    fn mark(&mut self, key: Key) {
        let (cat, i) = self.cat(key);
        if cat.mark(i) {
            self.count += 1;
        }
    }

    /// Marks every component of every category dirty.
    fn mark_all(&mut self, sizes: [usize; 8]) {
        let [l, c, s, t, d, b, h, a] = sizes;
        self.lines.reset(l);
        self.chans.reset(c);
        self.segs.reset(s);
        self.tncs.reset(t);
        self.digis.reset(d);
        self.beacons.reset(b);
        self.hosts.reset(h);
        self.apps.reset(a);
        self.count = l + c + s + t + d + b + h + a;
    }
}

/// World-side mirror of each component's currently registered deadline.
/// Most re-registrations after a poll are no-ops (the deadline did not
/// move); comparing against this dense cache answers that in one vector
/// load instead of a calendar map lookup.
#[derive(Default)]
struct CalCache {
    lines: Vec<Option<SimTime>>,
    chans: Vec<Option<SimTime>>,
    segs: Vec<Option<SimTime>>,
    tncs: Vec<Option<SimTime>>,
    digis: Vec<Option<SimTime>>,
    beacons: Vec<Option<SimTime>>,
    hosts: Vec<Option<SimTime>>,
    apps: Vec<Option<SimTime>>,
}

impl CalCache {
    fn reset(&mut self, sizes: [usize; 8]) {
        let [l, c, s, t, d, b, h, a] = sizes;
        for (v, n) in [
            (&mut self.lines, l),
            (&mut self.chans, c),
            (&mut self.segs, s),
            (&mut self.tncs, t),
            (&mut self.digis, d),
            (&mut self.beacons, b),
            (&mut self.hosts, h),
            (&mut self.apps, a),
        ] {
            v.clear();
            v.resize(n, None);
        }
    }

    fn slot(&mut self, key: Key) -> &mut Option<SimTime> {
        match key {
            Key::Line(i) => &mut self.lines[i],
            Key::Chan(i) => &mut self.chans[i],
            Key::Seg(i) => &mut self.segs[i],
            Key::Tnc(i) => &mut self.tncs[i],
            Key::Digi(i) => &mut self.digis[i],
            Key::Beacon(i) => &mut self.beacons[i],
            Key::Host(i) => &mut self.hosts[i],
            Key::App(i) => &mut self.apps[i],
        }
    }
}

/// The simulation world. See the [module docs](self).
pub struct World {
    /// Current simulated time.
    pub now: SimTime,
    rng: SimRng,
    /// Optional event trace (disabled by default).
    pub trace: Trace,
    channels: Vec<Channel>,
    segments: Vec<Segment>,
    lines: Vec<SerialLine>,
    tncs: Vec<TncEntry>,
    digis: Vec<DigiEntry>,
    beacons: Vec<BeaconEntry>,
    hosts: Vec<HostEntry>,
    apps: Vec<AppEntry>,
    /// Recorded (host, time, event) triples when enabled.
    pub record_events: bool,
    events: Vec<(HostId, SimTime, StackAction)>,
    /// The deadline-indexed calendar.
    sched: Scheduler<Key>,
    dirty: DirtySet,
    /// Routing maps rebuilt by `sync_all` (first match, like the
    /// reference stepper's linear `find`).
    line_host: Vec<Option<usize>>,
    line_tnc: Vec<Option<usize>>,
    chan_tncs: Vec<Vec<usize>>,
    chan_digis: Vec<Vec<usize>>,
    chan_beacons: Vec<Vec<usize>>,
    host_apps: Vec<Vec<usize>>,
    /// Hosts to flush after the app-poll step of the current pass.
    flush_after_apps: DirtyCat,
    cal: CalCache,
    /// Reusable buffer for draining dirty lists in index order.
    scratch: Vec<usize>,
    /// Reusable buffer for batched serial runs in the fast lane.
    run_scratch: Vec<u8>,
}

impl World {
    /// Creates an empty world with a deterministic seed.
    pub fn new(seed: u64) -> World {
        World {
            now: SimTime::ZERO,
            rng: SimRng::seed_from(seed),
            trace: Trace::disabled(),
            channels: Vec::new(),
            segments: Vec::new(),
            lines: Vec::new(),
            tncs: Vec::new(),
            digis: Vec::new(),
            beacons: Vec::new(),
            hosts: Vec::new(),
            apps: Vec::new(),
            record_events: true,
            events: Vec::new(),
            sched: Scheduler::new(),
            dirty: DirtySet::default(),
            line_host: Vec::new(),
            line_tnc: Vec::new(),
            chan_tncs: Vec::new(),
            chan_digis: Vec::new(),
            chan_beacons: Vec::new(),
            host_apps: Vec::new(),
            flush_after_apps: DirtyCat::default(),
            cal: CalCache::default(),
            scratch: Vec::new(),
            run_scratch: Vec::new(),
        }
    }

    /// Switches the calendar to the hierarchical timer-wheel backend with
    /// the given slot granularity (one millisecond suits the 9600 Bd
    /// per-character band). Takes effect at the next run call, which
    /// rebuilds the index; pop order is identical to the heap backend.
    pub fn use_timer_wheel(&mut self, granularity: SimDuration) {
        self.sched = Scheduler::with_wheel(granularity);
    }

    /// Scheduler work counters (pops, re-keys, tombstone skips, component
    /// polls, instants, batched serial characters).
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats()
    }

    // --- Topology building -------------------------------------------------

    /// Adds a radio channel.
    pub fn add_channel(&mut self, rate: Bandwidth) -> ChanId {
        self.channels.push(Channel::new(rate));
        ChanId(self.channels.len() - 1)
    }

    /// Adds a radio channel with byte errors.
    pub fn add_noisy_channel(&mut self, rate: Bandwidth, byte_error_rate: f64) -> ChanId {
        let rng = self.rng.fork();
        self.channels
            .push(Channel::new(rate).with_byte_errors(byte_error_rate, rng));
        ChanId(self.channels.len() - 1)
    }

    /// Adds an Ethernet segment.
    pub fn add_segment(&mut self, rate: Bandwidth) -> SegId {
        self.segments.push(Segment::new(rate));
        SegId(self.segments.len() - 1)
    }

    /// Adds a host (attach its links separately).
    pub fn add_host(&mut self, cfg: HostConfig) -> HostId {
        self.hosts.push(HostEntry {
            host: Host::new(cfg),
            serial: None,
            nic: None,
        });
        HostId(self.hosts.len() - 1)
    }

    /// Attaches a host's radio interface to `chan` through a serial line
    /// at `baud` and a TNC in `mode` with `mac` parameters.
    ///
    /// # Panics
    ///
    /// Panics if the host has no radio interface.
    pub fn attach_radio(
        &mut self,
        host: HostId,
        chan: ChanId,
        baud: u32,
        mode: RxMode,
        mac: MacConfig,
    ) -> TncId {
        let call = self.hosts[host.0]
            .host
            .callsign()
            .expect("host has no radio interface");
        let line_idx = self.lines.len();
        self.lines.push(SerialLine::new(SerialConfig::baud(baud)));
        self.hosts[host.0].serial = Some(line_idx);
        let station = self.channels[chan.0].add_station();
        let cfg = TncConfig::new(call).with_mode(mode).with_mac(mac);
        self.tncs.push(TncEntry {
            tnc: Tnc::new(cfg, station),
            chan,
            line: line_idx,
        });
        TncId(self.tncs.len() - 1)
    }

    /// Attaches a host's Ethernet interface to `seg`.
    ///
    /// # Panics
    ///
    /// Panics if the host has no Ethernet interface.
    pub fn attach_ether(&mut self, host: HostId, seg: SegId) {
        let mac = self.hosts[host.0]
            .host
            .mac()
            .expect("host has no Ethernet interface");
        let nic = self.segments[seg.0].attach(mac);
        self.hosts[host.0].nic = Some((seg, nic));
    }

    /// Adds a standalone digipeater station on `chan`.
    pub fn add_digipeater(&mut self, chan: ChanId, call: Ax25Addr, mac: MacConfig) -> DigiId {
        let station = self.channels[chan.0].add_station();
        self.digis.push(DigiEntry {
            digi: Digipeater::new(call, station, mac),
            chan,
        });
        DigiId(self.digis.len() - 1)
    }

    /// Adds a background traffic station on `chan`.
    pub fn add_beacon(&mut self, chan: ChanId, cfg: BeaconConfig) -> BeaconId {
        let station = self.channels[chan.0].add_station();
        let rng = self.rng.fork();
        self.beacons.push(BeaconEntry {
            beacon: BeaconStation::new(cfg, station, rng),
            chan,
        });
        BeaconId(self.beacons.len() - 1)
    }

    /// Installs an application on a host.
    pub fn add_app(&mut self, host: HostId, app: Box<dyn App>) {
        self.apps.push(AppEntry {
            host,
            app,
            started: false,
        });
    }

    // --- Access ---------------------------------------------------------------

    /// A host, immutably.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0].host
    }

    /// A host, mutably (socket operations, route edits…).
    pub fn host_mut(&mut self, id: HostId) -> &mut Host {
        &mut self.hosts[id.0].host
    }

    /// A radio channel.
    pub fn channel(&self, id: ChanId) -> &Channel {
        &self.channels[id.0]
    }

    /// A radio channel, mutably (hearing matrix edits).
    pub fn channel_mut(&mut self, id: ChanId) -> &mut Channel {
        &mut self.channels[id.0]
    }

    /// An Ethernet segment.
    pub fn segment(&self, id: SegId) -> &Segment {
        &self.segments[id.0]
    }

    /// A TNC.
    pub fn tnc(&self, id: TncId) -> &Tnc {
        &self.tncs[id.0].tnc
    }

    /// A TNC, mutably (mode switches).
    pub fn tnc_mut(&mut self, id: TncId) -> &mut Tnc {
        &mut self.tncs[id.0].tnc
    }

    /// A digipeater.
    pub fn digipeater(&self, id: DigiId) -> &Digipeater {
        &self.digis[id.0].digi
    }

    /// A background station.
    pub fn beacon(&self, id: BeaconId) -> &BeaconStation {
        &self.beacons[id.0].beacon
    }

    /// The serial line attached to a host, if any.
    pub fn host_serial_line(&self, id: HostId) -> Option<&SerialLine> {
        self.hosts[id.0].serial.map(|i| &self.lines[i])
    }

    /// Drains recorded stack events.
    pub fn take_events(&mut self) -> Vec<(HostId, SimTime, StackAction)> {
        std::mem::take(&mut self.events)
    }

    /// Recorded events, in place.
    pub fn events(&self) -> &[(HostId, SimTime, StackAction)] {
        &self.events
    }

    // --- Running -----------------------------------------------------------------

    /// The earliest self-reported deadline of any component, by scanning
    /// every component (the reference stepper's view of time; the indexed
    /// run loop reads the calendar instead).
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        let mut fold = |t: Option<SimTime>| {
            if let Some(t) = t {
                best = Some(best.map_or(t, |b: SimTime| b.min(t)));
            }
        };
        for l in &self.lines {
            fold(l.next_deadline());
        }
        for c in &self.channels {
            fold(c.next_deadline());
        }
        for s in &self.segments {
            fold(s.next_deadline());
        }
        for t in &self.tncs {
            fold(t.tnc.next_deadline());
        }
        for d in &self.digis {
            fold(d.digi.next_deadline());
        }
        for b in &self.beacons {
            fold(b.beacon.next_deadline());
        }
        for h in &self.hosts {
            fold(h.host.next_deadline());
        }
        for a in &self.apps {
            fold(a.app.next_deadline());
        }
        best
    }

    /// Runs the world up to (and including) deadlines at `t`; the clock
    /// finishes exactly at `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.run_indexed(t);
        self.now = self.now.max(t);
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now + d);
    }

    /// Runs until no component has any pending work (or `limit` passes).
    /// A deadline exactly at `limit` is processed.
    pub fn run_until_idle(&mut self, limit: SimTime) {
        self.run_indexed(limit);
    }

    /// The indexed run loop: pop due keys from the calendar, mark them
    /// dirty, settle the instant over dirty components only.
    fn run_indexed(&mut self, t: SimTime) {
        self.start_apps();
        self.sync_all();
        self.settle_dirty(false);
        let mut popped: Vec<Key> = Vec::new();
        while let Some(d) = self.sched.peek_time() {
            if d > t {
                break;
            }
            if d > self.now {
                self.now = d;
                self.sched.stats_mut().instants += 1;
            }
            popped.clear();
            let k = self.sched.pop().expect("peeked entry pops").1;
            *self.cal.slot(k) = None;
            popped.push(k);
            while self.sched.peek_time().is_some_and(|pt| pt <= self.now) {
                let k = self.sched.pop().expect("peeked entry pops").1;
                *self.cal.slot(k) = None;
                popped.push(k);
            }
            // Dense per-character band: a lone serial-line deadline with no
            // other pending work takes the batched fast lane.
            if popped.len() == 1 && self.dirty.count == 0 {
                if let Key::Line(li) = popped[0] {
                    self.serial_fast_lane(li, t);
                    continue;
                }
            }
            for &key in &popped {
                self.dirty.mark(key);
            }
            self.settle_dirty(false);
        }
    }

    /// Rebuilds the routing maps, registers every component's current
    /// deadline, and marks everything dirty — run-call entry is the one
    /// moment external mutations (via `host_mut`, `tnc_mut`, new
    /// components…) can have happened without the world noticing.
    fn sync_all(&mut self) {
        self.line_host = vec![None; self.lines.len()];
        for (hi, h) in self.hosts.iter().enumerate() {
            if let Some(li) = h.serial {
                if self.line_host[li].is_none() {
                    self.line_host[li] = Some(hi);
                }
            }
        }
        self.line_tnc = vec![None; self.lines.len()];
        for (ti, t) in self.tncs.iter().enumerate() {
            if self.line_tnc[t.line].is_none() {
                self.line_tnc[t.line] = Some(ti);
            }
        }
        self.chan_tncs = vec![Vec::new(); self.channels.len()];
        for (ti, t) in self.tncs.iter().enumerate() {
            self.chan_tncs[t.chan.0].push(ti);
        }
        self.chan_digis = vec![Vec::new(); self.channels.len()];
        for (di, d) in self.digis.iter().enumerate() {
            self.chan_digis[d.chan.0].push(di);
        }
        self.chan_beacons = vec![Vec::new(); self.channels.len()];
        for (bi, b) in self.beacons.iter().enumerate() {
            self.chan_beacons[b.chan.0].push(bi);
        }
        self.host_apps = vec![Vec::new(); self.hosts.len()];
        for (ai, a) in self.apps.iter().enumerate() {
            self.host_apps[a.host.0].push(ai);
        }
        self.flush_after_apps.reset_clear(self.hosts.len());
        self.cal.reset([
            self.lines.len(),
            self.channels.len(),
            self.segments.len(),
            self.tncs.len(),
            self.digis.len(),
            self.beacons.len(),
            self.hosts.len(),
            self.apps.len(),
        ]);
        self.dirty.mark_all([
            self.lines.len(),
            self.channels.len(),
            self.segments.len(),
            self.tncs.len(),
            self.digis.len(),
            self.beacons.len(),
            self.hosts.len(),
            self.apps.len(),
        ]);
        for li in 0..self.lines.len() {
            self.reg_line(li);
        }
        for ci in 0..self.channels.len() {
            self.reg_chan(ci);
        }
        for si in 0..self.segments.len() {
            self.reg_seg(si);
        }
        for ti in 0..self.tncs.len() {
            self.reg_tnc(ti);
        }
        for di in 0..self.digis.len() {
            self.reg_digi(di);
        }
        for bi in 0..self.beacons.len() {
            self.reg_beacon(bi);
        }
        for hi in 0..self.hosts.len() {
            self.reg_host(hi);
        }
        for ai in 0..self.apps.len() {
            self.reg_app(ai);
        }
    }

    // Deadline-change reporting: re-register a component after anything
    // may have moved its deadline. Unchanged deadlines are a no-op.

    fn reg_line(&mut self, li: usize) {
        let d = self.lines[li].next_deadline();
        match self.cal.lines.get_mut(li) {
            // Cache hit: the calendar already holds this deadline.
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            // Reference stepper: sync_all never sized the cache.
            None => {}
        }
        self.sched.set_deadline(Key::Line(li), d);
    }

    fn reg_chan(&mut self, ci: usize) {
        let d = self.channels[ci].next_deadline();
        match self.cal.chans.get_mut(ci) {
            // Cache hit: the calendar already holds this deadline.
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            // Reference stepper: sync_all never sized the cache.
            None => {}
        }
        self.sched.set_deadline(Key::Chan(ci), d);
    }

    fn reg_seg(&mut self, si: usize) {
        let d = self.segments[si].next_deadline();
        match self.cal.segs.get_mut(si) {
            // Cache hit: the calendar already holds this deadline.
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            // Reference stepper: sync_all never sized the cache.
            None => {}
        }
        self.sched.set_deadline(Key::Seg(si), d);
    }

    fn reg_tnc(&mut self, ti: usize) {
        let d = self.tncs[ti].tnc.next_deadline();
        match self.cal.tncs.get_mut(ti) {
            // Cache hit: the calendar already holds this deadline.
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            // Reference stepper: sync_all never sized the cache.
            None => {}
        }
        self.sched.set_deadline(Key::Tnc(ti), d);
    }

    fn reg_digi(&mut self, di: usize) {
        let d = self.digis[di].digi.next_deadline();
        match self.cal.digis.get_mut(di) {
            // Cache hit: the calendar already holds this deadline.
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            // Reference stepper: sync_all never sized the cache.
            None => {}
        }
        self.sched.set_deadline(Key::Digi(di), d);
    }

    fn reg_beacon(&mut self, bi: usize) {
        let d = self.beacons[bi].beacon.next_deadline();
        match self.cal.beacons.get_mut(bi) {
            // Cache hit: the calendar already holds this deadline.
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            // Reference stepper: sync_all never sized the cache.
            None => {}
        }
        self.sched.set_deadline(Key::Beacon(bi), d);
    }

    fn reg_host(&mut self, hi: usize) {
        let d = self.hosts[hi].host.next_deadline();
        match self.cal.hosts.get_mut(hi) {
            // Cache hit: the calendar already holds this deadline.
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            // Reference stepper: sync_all never sized the cache.
            None => {}
        }
        self.sched.set_deadline(Key::Host(hi), d);
    }

    fn reg_app(&mut self, ai: usize) {
        let d = self.apps[ai].app.next_deadline();
        match self.cal.apps.get_mut(ai) {
            // Cache hit: the calendar already holds this deadline.
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            // Reference stepper: sync_all never sized the cache.
            None => {}
        }
        self.sched.set_deadline(Key::App(ai), d);
    }

    /// Marks every app on host `hi` dirty (the host was touched, so apps
    /// watching its state — windows, tty queue — must get a poll).
    fn mark_apps(&mut self, hi: usize) {
        for i in 0..self.host_apps[hi].len() {
            let ai = self.host_apps[hi][i];
            self.dirty.mark(Key::App(ai));
        }
    }

    /// Batched serial delivery (the lone-line instant). Advances character
    /// by character at exact completion times with **zero calendar traffic
    /// per byte**, as long as each delivered character is *quiet*: the
    /// receiver's deadline, pending output, tty queue, and (TNC side)
    /// frame/param counters are unchanged — i.e. only the per-character
    /// interrupt accounting happened, which stays per-byte (§3). The first
    /// non-quiet character (frame boundary, param command) falls back to a
    /// full settle at its exact instant.
    fn serial_fast_lane(&mut self, li: usize, limit: SimTime) {
        let host_idx = self.line_host[li];
        let tnc_idx = self.line_tnc[li];
        let mut run_buf = std::mem::take(&mut self.run_scratch);
        loop {
            let mut quiet = true;
            // Run batching: when one direction carries a clean burst, pull
            // every character up to (and including) the next FEND in a
            // single call and hand the whole slice to the receiver's bulk
            // path. Characters before a FEND are provably quiet — they can
            // only be buffered — so the one quiet check at the run's end
            // observes everything the per-character loop would have.
            // Counter bookkeeping matches that loop exactly: `m` batched
            // characters and `m − 1` further time instants (the first was
            // counted when this deadline popped).
            if let Some(run) = self.lines[li].take_run(
                self.now,
                limit,
                self.sched.peek_time(),
                kiss::FEND,
                &mut run_buf,
            ) {
                let m = run_buf.len() as u64;
                self.sched.stats_mut().batched_chars += m;
                self.sched.stats_mut().instants += m - 1;
                self.now = run.t_last;
                match run.to {
                    End::A => {
                        if let Some(hi) = host_idx {
                            let char_time = self.lines[li].config().char_time();
                            let h = &mut self.hosts[hi].host;
                            let before_dl = h.next_deadline();
                            let before_tty = h.tty_len();
                            h.on_serial_run(run.t0, char_time, &run_buf);
                            if h.has_pending_output()
                                || h.next_deadline() != before_dl
                                || h.tty_len() != before_tty
                            {
                                self.dirty.mark(Key::Host(hi));
                                self.mark_apps(hi);
                                quiet = false;
                            }
                        }
                    }
                    End::B => {
                        if let Some(ti) = tnc_idx {
                            let t = &mut self.tncs[ti].tnc;
                            let before_dl = t.next_deadline();
                            let s = t.stats();
                            let before = (s.from_host, s.params);
                            t.on_serial_bytes(&run_buf);
                            let s = t.stats();
                            if (s.from_host, s.params) != before || t.next_deadline() != before_dl {
                                self.dirty.mark(Key::Tnc(ti));
                                quiet = false;
                            }
                        }
                    }
                }
            } else {
                // Per-character reference path: noisy or bidirectional
                // lines, or an undrained FIFO.
                self.lines[li].advance(self.now);
                let host_bytes = self.lines[li].take_rx(End::A);
                if !host_bytes.is_empty() {
                    self.sched.stats_mut().batched_chars += host_bytes.len() as u64;
                    if let Some(hi) = host_idx {
                        let h = &mut self.hosts[hi].host;
                        let before_dl = h.next_deadline();
                        let before_tty = h.tty_len();
                        h.on_serial_bytes(self.now, &host_bytes);
                        if h.has_pending_output()
                            || h.next_deadline() != before_dl
                            || h.tty_len() != before_tty
                        {
                            self.dirty.mark(Key::Host(hi));
                            self.mark_apps(hi);
                            quiet = false;
                        }
                    }
                }
                let tnc_bytes = self.lines[li].take_rx(End::B);
                if !tnc_bytes.is_empty() {
                    self.sched.stats_mut().batched_chars += tnc_bytes.len() as u64;
                    if let Some(ti) = tnc_idx {
                        let t = &mut self.tncs[ti].tnc;
                        let before_dl = t.next_deadline();
                        let s = t.stats();
                        let before = (s.from_host, s.params);
                        for &b in &tnc_bytes {
                            t.on_serial_byte(b);
                        }
                        let s = t.stats();
                        if (s.from_host, s.params) != before || t.next_deadline() != before_dl {
                            self.dirty.mark(Key::Tnc(ti));
                            quiet = false;
                        }
                    }
                }
            }
            let line_dl = self.lines[li].next_deadline();
            if !quiet {
                // The delivery that broke quiescence counts as this
                // instant's first-pass progress, as it did when the
                // reference stepper delivered it inside `settle`.
                self.reg_line(li);
                self.run_scratch = run_buf;
                self.settle_dirty(true);
                return;
            }
            if let Some(dl) = line_dl {
                // Keep batching while the line is strictly the next event.
                if dl <= limit && self.sched.peek_time().is_none_or(|o| dl < o) {
                    self.now = dl;
                    self.sched.stats_mut().instants += 1;
                    continue;
                }
            }
            self.reg_line(li);
            self.run_scratch = run_buf;
            return;
        }
    }

    fn start_apps(&mut self) {
        let now = self.now;
        let mut apps = std::mem::take(&mut self.apps);
        for entry in &mut apps {
            if !entry.started {
                entry.started = true;
                entry.app.on_start(now, &mut self.hosts[entry.host.0].host);
            }
        }
        self.apps = apps;
    }

    /// Processes everything dirty at `self.now` until the instant is
    /// quiet, visiting categories in the same fixed order as the
    /// reference stepper: lines → channels → MACs → segments → hosts →
    /// apps. `initial_progress` seeds the first pass's progress flag when
    /// the caller already made progress at this instant (the fast lane's
    /// bail-out delivery).
    fn settle_dirty(&mut self, initial_progress: bool) {
        let now = self.now;
        let mut first = initial_progress;
        let mut todo = std::mem::take(&mut self.scratch);
        for _pass in 0..10_000 {
            let mut progressed = std::mem::take(&mut first);
            let mut polled: u64 = 0;

            // 1. Serial lines: finish due characters, route rx bytes.
            todo.clear();
            if !self.dirty.lines.list.is_empty() {
                self.dirty.count -= self.dirty.lines.drain_into(&mut todo);
            }
            for &li in &todo {
                polled += 1;
                if self.lines[li].next_deadline().is_some_and(|t| t <= now) {
                    self.lines[li].advance(now);
                }
                // Host side (End::A).
                let host_bytes = self.lines[li].take_rx(End::A);
                if !host_bytes.is_empty() {
                    progressed = true;
                    if let Some(hi) = self.line_host[li] {
                        self.hosts[hi].host.on_serial_bytes(now, &host_bytes);
                        self.dirty.mark(Key::Host(hi));
                        self.mark_apps(hi);
                    }
                }
                // TNC side (End::B).
                let tnc_bytes = self.lines[li].take_rx(End::B);
                if !tnc_bytes.is_empty() {
                    progressed = true;
                    if let Some(ti) = self.line_tnc[li] {
                        for &b in &tnc_bytes {
                            self.tncs[ti].tnc.on_serial_byte(b);
                        }
                        self.dirty.mark(Key::Tnc(ti));
                    }
                }
                self.reg_line(li);
            }

            // 2. Radio channels: completed transmissions become
            // receptions, and the carrier drops — wake the stations whose
            // queued frames were blocked only on carrier sense (everyone
            // else has a registered deadline of their own, or nothing to
            // send; a carrier turning *busy* never enables a send).
            todo.clear();
            if !self.dirty.chans.list.is_empty() {
                self.dirty.count -= self.dirty.chans.drain_into(&mut todo);
            }
            for &ci in &todo {
                polled += 1;
                if self.channels[ci].next_deadline().is_some_and(|t| t <= now) {
                    let receptions = self.channels[ci].advance(now);
                    if !receptions.is_empty() {
                        progressed = true;
                    }
                    for rx in receptions {
                        self.route_reception(now, ChanId(ci), rx.to, &rx);
                    }
                    for i in 0..self.chan_tncs[ci].len() {
                        let ti = self.chan_tncs[ci][i];
                        if self.tncs[ti].tnc.waiting_on_carrier() {
                            self.dirty.mark(Key::Tnc(ti));
                        }
                    }
                    for i in 0..self.chan_digis[ci].len() {
                        let di = self.chan_digis[ci][i];
                        if self.digis[di].digi.waiting_on_carrier() {
                            self.dirty.mark(Key::Digi(di));
                        }
                    }
                    for i in 0..self.chan_beacons[ci].len() {
                        let bi = self.chan_beacons[ci][i];
                        if self.beacons[bi].beacon.waiting_on_carrier() {
                            self.dirty.mark(Key::Beacon(bi));
                        }
                    }
                }
                self.reg_chan(ci);
            }

            // 3. MAC polls (TNCs, digipeaters, beacons), in the reference
            // stepper's category/index order so shared-RNG draws match. A
            // MAC still due at this instant (zero slot time) is re-marked
            // so it re-draws each pass, exactly like the re-poll-all
            // reference.
            todo.clear();
            if !self.dirty.tncs.list.is_empty() {
                self.dirty.count -= self.dirty.tncs.drain_into(&mut todo);
            }
            for &ti in &todo {
                polled += 1;
                let ci = self.tncs[ti].chan.0;
                let entry = &mut self.tncs[ti];
                entry.tnc.poll(now, &mut self.channels[ci], &mut self.rng);
                if entry.tnc.next_deadline().is_some_and(|d| d <= now) {
                    self.dirty.mark(Key::Tnc(ti));
                }
                self.reg_tnc(ti);
                self.reg_chan(ci);
            }
            todo.clear();
            if !self.dirty.digis.list.is_empty() {
                self.dirty.count -= self.dirty.digis.drain_into(&mut todo);
            }
            for &di in &todo {
                polled += 1;
                let ci = self.digis[di].chan.0;
                let entry = &mut self.digis[di];
                entry.digi.poll(now, &mut self.channels[ci], &mut self.rng);
                if entry.digi.next_deadline().is_some_and(|d| d <= now) {
                    self.dirty.mark(Key::Digi(di));
                }
                self.reg_digi(di);
                self.reg_chan(ci);
            }
            todo.clear();
            if !self.dirty.beacons.list.is_empty() {
                self.dirty.count -= self.dirty.beacons.drain_into(&mut todo);
            }
            for &bi in &todo {
                polled += 1;
                let ci = self.beacons[bi].chan.0;
                let entry = &mut self.beacons[bi];
                entry.beacon.poll(now, &mut self.channels[ci]);
                if entry.beacon.next_deadline().is_some_and(|d| d <= now) {
                    self.dirty.mark(Key::Beacon(bi));
                }
                self.reg_beacon(bi);
                self.reg_chan(ci);
            }

            // 4. Ethernet segments.
            todo.clear();
            if !self.dirty.segs.list.is_empty() {
                self.dirty.count -= self.dirty.segs.drain_into(&mut todo);
            }
            for &si in &todo {
                polled += 1;
                if self.segments[si].next_deadline().is_some_and(|t| t <= now) {
                    let deliveries = self.segments[si].advance(now);
                    if !deliveries.is_empty() {
                        progressed = true;
                    }
                    for (nic, frame) in deliveries {
                        if let Some(hi) = self
                            .hosts
                            .iter()
                            .position(|h| h.nic == Some((SegId(si), nic)))
                        {
                            self.hosts[hi].host.on_ether_frame(now, &frame);
                            self.dirty.mark(Key::Host(hi));
                            self.mark_apps(hi);
                        }
                    }
                }
                self.reg_seg(si);
            }

            // 5. Hosts: CPU-gated stack work, then route their output.
            todo.clear();
            if !self.dirty.hosts.list.is_empty() {
                self.dirty.count -= self.dirty.hosts.drain_into(&mut todo);
            }
            for &hi in &todo {
                polled += 1;
                if self.hosts[hi]
                    .host
                    .next_deadline()
                    .is_some_and(|t| t <= now)
                {
                    self.hosts[hi].host.advance(now);
                    self.mark_apps(hi);
                }
                if self.flush_host(now, HostId(hi)) {
                    progressed = true;
                    // on_event handlers may have queued more output and
                    // changed app state; catch both this instant.
                    self.dirty.mark(Key::Host(hi));
                    self.mark_apps(hi);
                    self.flush_after_apps.mark(hi);
                }
                self.reg_host(hi);
            }

            // 6. Applications: poll dirty apps in index order, then flush
            // their hosts in host-index order (the reference polls all
            // apps, then flushes all hosts).
            todo.clear();
            if !self.dirty.apps.list.is_empty() {
                self.dirty.count -= self.dirty.apps.drain_into(&mut todo);
            }
            for &ai in &todo {
                polled += 1;
                let hi = self.apps[ai].host.0;
                let entry = &mut self.apps[ai];
                entry.app.poll(now, &mut self.hosts[hi].host);
                self.reg_app(ai);
                self.flush_after_apps.mark(hi);
            }
            todo.clear();
            if !self.flush_after_apps.list.is_empty() {
                self.flush_after_apps.drain_into(&mut todo);
            }
            for &hi in &todo {
                if self.flush_host(now, HostId(hi)) {
                    progressed = true;
                    self.dirty.mark(Key::Host(hi));
                    self.mark_apps(hi);
                }
                self.reg_host(hi);
            }

            self.sched.stats_mut().polled += polled;
            if !progressed {
                self.scratch = todo;
                return;
            }
        }
        panic!("world did not settle at {now}");
    }

    // --- Reference stepper --------------------------------------------------
    //
    // The pre-index engine, kept verbatim: scan every component for the
    // earliest deadline, then re-poll everything until quiescent. The
    // equivalence tests pin the indexed scheduler against it, and the
    // `engine` benchmarks measure the speedup. Not for mixed use with the
    // indexed run methods on the same World instance within a run — pick
    // one driver per world.

    /// Reference (full-scan) equivalent of [`World::run_until`].
    #[doc(hidden)]
    pub fn run_until_reference(&mut self, t: SimTime) {
        self.start_apps();
        self.settle_scan();
        while let Some(d) = self.next_deadline() {
            if d > t {
                break;
            }
            self.now = self.now.max(d);
            self.settle_scan();
        }
        self.now = self.now.max(t);
    }

    /// Reference (full-scan) equivalent of [`World::run_until_idle`].
    #[doc(hidden)]
    pub fn run_until_idle_reference(&mut self, limit: SimTime) {
        self.start_apps();
        self.settle_scan();
        while let Some(d) = self.next_deadline() {
            if d > limit {
                break;
            }
            self.now = self.now.max(d);
            self.settle_scan();
        }
    }

    /// Processes everything due at `self.now` until the instant is quiet,
    /// visiting every component on every pass.
    fn settle_scan(&mut self) {
        let now = self.now;
        for _pass in 0..10_000 {
            let mut progressed = false;

            // 1. Serial lines: finish due characters, route rx bytes.
            for li in 0..self.lines.len() {
                if self.lines[li].next_deadline().is_some_and(|t| t <= now) {
                    self.lines[li].advance(now);
                }
                // Host side (End::A).
                let host_bytes = self.lines[li].take_rx(End::A);
                if !host_bytes.is_empty() {
                    progressed = true;
                    if let Some(h) = self.hosts.iter_mut().find(|h| h.serial == Some(li)) {
                        h.host.on_serial_bytes(now, &host_bytes);
                    }
                }
                // TNC side (End::B).
                let tnc_bytes = self.lines[li].take_rx(End::B);
                if !tnc_bytes.is_empty() {
                    progressed = true;
                    if let Some(t) = self.tncs.iter_mut().find(|t| t.line == li) {
                        for b in tnc_bytes {
                            t.tnc.on_serial_byte(b);
                        }
                    }
                }
            }

            // 2. Radio channels: completed transmissions become receptions.
            for ci in 0..self.channels.len() {
                if self.channels[ci].next_deadline().is_none_or(|t| t > now) {
                    continue;
                }
                let receptions = self.channels[ci].advance(now);
                if !receptions.is_empty() {
                    progressed = true;
                }
                for rx in receptions {
                    self.route_reception(now, ChanId(ci), rx.to, &rx);
                }
            }

            // 3. MAC polls (TNCs, digipeaters, beacons).
            for t in &mut self.tncs {
                t.tnc.poll(now, &mut self.channels[t.chan.0], &mut self.rng);
            }
            for d in &mut self.digis {
                d.digi
                    .poll(now, &mut self.channels[d.chan.0], &mut self.rng);
            }
            for b in &mut self.beacons {
                b.beacon.poll(now, &mut self.channels[b.chan.0]);
            }

            // 4. Ethernet segments.
            for si in 0..self.segments.len() {
                if self.segments[si].next_deadline().is_none_or(|t| t > now) {
                    continue;
                }
                let deliveries = self.segments[si].advance(now);
                if !deliveries.is_empty() {
                    progressed = true;
                }
                for (nic, frame) in deliveries {
                    if let Some(h) = self
                        .hosts
                        .iter_mut()
                        .find(|h| h.nic == Some((SegId(si), nic)))
                    {
                        h.host.on_ether_frame(now, &frame);
                    }
                }
            }

            // 5. Hosts: CPU-gated stack work, then route their output.
            for hi in 0..self.hosts.len() {
                if self.hosts[hi]
                    .host
                    .next_deadline()
                    .is_some_and(|t| t <= now)
                {
                    self.hosts[hi].host.advance(now);
                }
                progressed |= self.flush_host(now, HostId(hi));
            }

            // 6. Applications.
            progressed |= self.run_apps(now);

            if !progressed {
                return;
            }
        }
        panic!("world did not settle at {now}");
    }

    // --- Shared routing (both steppers) -------------------------------------

    fn route_reception(
        &mut self,
        now: SimTime,
        chan: ChanId,
        to: StationId,
        rx: &radio::channel::Reception,
    ) {
        if self.trace.is_enabled() {
            self.trace.record(
                now,
                sim::trace::Category::Radio,
                format!("sta{}", to.0),
                format!(
                    "heard {}B from sta{}{}",
                    rx.data.len(),
                    rx.from.0,
                    if rx.corrupted { " (corrupted)" } else { "" }
                ),
            );
        }
        for i in 0..self.tncs.len() {
            if self.tncs[i].chan == chan && self.tncs[i].tnc.station() == to {
                if let Some(bytes) = self.tncs[i].tnc.on_reception(rx) {
                    if self.trace.is_enabled() {
                        self.trace.record(
                            now,
                            sim::trace::Category::Kiss,
                            format!("tnc:{}", self.tncs[i].tnc.addr()),
                            format!("passed {}B frame up the serial line", bytes.len()),
                        );
                    }
                    let li = self.tncs[i].line;
                    self.lines[li].send(now, End::B, &bytes);
                    self.reg_line(li);
                }
                return;
            }
        }
        for d in &mut self.digis {
            if d.chan == chan && d.digi.station() == to {
                d.digi.on_reception(rx);
                return;
            }
        }
        // Beacons ignore receptions.
    }

    /// Routes a host's outbox and records/dispatches its events. Links the
    /// host pushed output into get their new deadlines registered here, so
    /// both steppers keep the calendar coherent.
    fn flush_host(&mut self, now: SimTime, id: HostId) -> bool {
        let mut progressed = false;
        let outs = self.hosts[id.0].host.take_outbox();
        let serial = self.hosts[id.0].serial;
        let nic = self.hosts[id.0].nic;
        for out in outs {
            progressed = true;
            match out {
                HostOut::SerialTx(bytes) => {
                    if let Some(li) = serial {
                        self.lines[li].send(now, End::A, &bytes);
                        self.reg_line(li);
                    }
                }
                HostOut::EtherTx(frame) => {
                    if let Some((seg, nic)) = nic {
                        self.segments[seg.0].send(now, nic, frame);
                        self.reg_seg(seg.0);
                    }
                }
            }
        }
        let events = self.hosts[id.0].host.take_events();
        if !events.is_empty() {
            progressed = true;
            let mut apps = std::mem::take(&mut self.apps);
            for ev in events {
                if self.trace.is_enabled() {
                    self.trace.record(
                        now,
                        sim::trace::Category::App,
                        self.hosts[id.0].host.name.clone(),
                        format!("{ev:?}"),
                    );
                }
                for entry in apps.iter_mut().filter(|a| a.host == id) {
                    entry.app.on_event(now, &ev, &mut self.hosts[id.0].host);
                }
                if self.record_events {
                    self.events.push((id, now, ev));
                }
            }
            self.apps = apps;
        }
        progressed
    }

    /// Reference-stepper app step: poll every app, then flush every host.
    fn run_apps(&mut self, now: SimTime) -> bool {
        let mut progressed = false;
        let mut apps = std::mem::take(&mut self.apps);
        for entry in &mut apps {
            entry.app.poll(now, &mut self.hosts[entry.host.0].host);
        }
        self.apps = apps;
        // App activity shows up as host outbox/event work.
        for hi in 0..self.hosts.len() {
            progressed |= self.flush_host(now, HostId(hi));
        }
        progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use sim::SimDuration;

    #[test]
    fn paper_topology_ping_pc_to_ether_host() {
        let mut s = scenario::paper_topology(scenario::PaperConfig::default(), 42);
        let eth_ip = s
            .world
            .host(s.ether_host)
            .stack
            .iface(s.world.host(s.ether_host).ether_iface().unwrap())
            .addr;
        let now = s.world.now;
        s.world.host_mut(s.pc).ping(now, eth_ip, 7, 1, 32);
        s.world.run_for(SimDuration::from_secs(60));
        let events = s.world.take_events();
        let reply = events.iter().find_map(|(h, t, e)| match e {
            StackAction::PingReply { id: 7, seq: 1, .. } if *h == s.pc => Some(*t),
            _ => None,
        });
        let rtt = reply.expect("ping reply must arrive");
        // At 1200 bit/s the ~90-byte request takes >0.5s each way.
        assert!(rtt > SimTime::from_millis(500), "rtt {rtt}");
        assert!(rtt < SimTime::from_secs(20), "rtt {rtt}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut s = scenario::paper_topology(scenario::PaperConfig::default(), 7);
            let eth_ip = scenario::ETHER_HOST_IP;
            let now = s.world.now;
            s.world.host_mut(s.pc).ping(now, eth_ip, 1, 1, 64);
            s.world.run_for(SimDuration::from_secs(60));
            s.world
                .take_events()
                .iter()
                .filter_map(|(_, t, e)| match e {
                    StackAction::PingReply { .. } => Some(t.as_nanos()),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    /// A scripted test app: polls are recorded, and it exposes a fixed
    /// deadline schedule.
    struct Recorder {
        deadlines: Vec<SimTime>,
        fired: std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>,
    }

    impl App for Recorder {
        fn poll(&mut self, now: SimTime, _host: &mut Host) {
            while self.deadlines.first().is_some_and(|&d| d <= now) {
                self.deadlines.remove(0);
                self.fired.borrow_mut().push(now);
            }
        }

        fn next_deadline(&self) -> Option<SimTime> {
            self.deadlines.first().copied()
        }
    }

    fn recorder_world(
        deadlines: Vec<SimTime>,
    ) -> (World, std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>) {
        let mut w = World::new(1);
        let h = w.add_host(crate::host::HostConfig::named("lone"));
        let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        w.add_app(
            h,
            Box::new(Recorder {
                deadlines,
                fired: fired.clone(),
            }),
        );
        (w, fired)
    }

    /// Satellite: `run_until_idle` processes a deadline exactly at
    /// `limit` (the loop breaks only on `d > limit`).
    #[test]
    fn run_until_idle_processes_deadline_exactly_at_limit() {
        let limit = SimTime::from_secs(5);
        let (mut w, fired) = recorder_world(vec![
            SimTime::from_secs(1),
            limit,
            limit + SimDuration::from_nanos(1),
        ]);
        w.run_until_idle(limit);
        assert_eq!(*fired.borrow(), vec![SimTime::from_secs(1), limit]);
        // The past-limit deadline was not processed and the clock did not
        // jump to `limit`.
        assert_eq!(w.now, limit);
    }

    /// Satellite: app `poll` hooks still fire on the final instant of
    /// `run_until` (deadline == t).
    #[test]
    fn app_poll_fires_on_final_instant_of_run_until() {
        let t = SimTime::from_secs(3);
        let (mut w, fired) = recorder_world(vec![t]);
        w.run_until(t);
        assert_eq!(*fired.borrow(), vec![t]);
        assert_eq!(w.now, t);
    }

    /// Reference agrees with both tests above.
    #[test]
    fn reference_processes_deadline_at_limit_identically() {
        let limit = SimTime::from_secs(5);
        let (mut w, fired) = recorder_world(vec![
            SimTime::from_secs(1),
            limit,
            limit + SimDuration::from_nanos(1),
        ]);
        w.run_until_idle_reference(limit);
        assert_eq!(*fired.borrow(), vec![SimTime::from_secs(1), limit]);
    }
}
