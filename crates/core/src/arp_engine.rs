//! The per-driver ARP resolver.
//!
//! §2.3: *"ARP lookup occurs at layer two, and thus, gets called inside
//! either the Ethernet driver, or the AX.25 driver. The routing tables at
//! the IP layer determine which driver is called. Since the ARP lookup
//! occurs inside our code, a separate routine that deals specifically
//! with AX.25 addresses can be called."* Each driver owns one
//! [`ArpEngine`]; the engine is agnostic to the hardware-address format
//! (opaque bytes — [`crate::hwaddr`] for AX.25, a MAC for Ethernet) and
//! provides the classic cache + pending-packet-queue + request/retry
//! machinery of RFC 826 implementations.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use netstack::arp::{ArpOp, ArpPacket};
use netstack::ip::Ipv4Packet;
use sim::{SimDuration, SimTime};

/// Engine parameters.
#[derive(Debug, Clone, Copy)]
pub struct ArpConfig {
    /// Cache entry lifetime.
    pub entry_ttl: SimDuration,
    /// Gap between repeated requests for the same address.
    pub retry_interval: SimDuration,
    /// Packets held per unresolved address (4.3BSD held exactly one).
    pub max_held: usize,
}

impl Default for ArpConfig {
    fn default() -> Self {
        ArpConfig {
            entry_ttl: SimDuration::from_secs(20 * 60),
            retry_interval: SimDuration::from_secs(5),
            max_held: 4,
        }
    }
}

/// Engine counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArpStats {
    /// Cache hits on resolve.
    pub hits: u64,
    /// Resolve calls that had to queue the packet.
    pub misses: u64,
    /// Requests transmitted.
    pub requests_sent: u64,
    /// Replies transmitted.
    pub replies_sent: u64,
    /// Entries learned or refreshed from traffic.
    pub learned: u64,
    /// Held packets dropped (queue full or entry never resolved).
    pub held_dropped: u64,
}

#[derive(Debug)]
struct CacheEntry {
    hw: Vec<u8>,
    expires: SimTime,
}

#[derive(Debug)]
struct Waiting {
    packets: Vec<Ipv4Packet>,
    last_request: Option<SimTime>,
}

/// What to do with a packet handed to [`ArpEngine::resolve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Transmit the packet to this hardware address.
    Send(Vec<u8>, Ipv4Packet),
    /// The packet is held; transmit this ARP request (if `Some`).
    Pending(Option<ArpPacket>),
    /// The packet was dropped (hold queue full).
    Dropped,
}

/// A link-type-agnostic ARP resolver for one interface.
#[derive(Debug)]
pub struct ArpEngine {
    cfg: ArpConfig,
    hw_type: u16,
    my_hw: Vec<u8>,
    my_ip: Ipv4Addr,
    cache: HashMap<Ipv4Addr, CacheEntry>,
    waiting: HashMap<Ipv4Addr, Waiting>,
    stats: ArpStats,
}

impl ArpEngine {
    /// Creates an engine for an interface with hardware address `my_hw`
    /// (already encoded) and protocol address `my_ip`.
    pub fn new(hw_type: u16, my_hw: Vec<u8>, my_ip: Ipv4Addr, cfg: ArpConfig) -> ArpEngine {
        ArpEngine {
            cfg,
            hw_type,
            my_hw,
            my_ip,
            cache: HashMap::new(),
            waiting: HashMap::new(),
            stats: ArpStats::default(),
        }
    }

    /// Installs a permanent (never-expiring) entry; the paper's gateway
    /// seeds digipeater paths this way, since a path cannot be learned
    /// from a broadcast reply alone.
    pub fn insert_static(&mut self, ip: Ipv4Addr, hw: Vec<u8>) {
        self.cache.insert(
            ip,
            CacheEntry {
                hw,
                expires: SimTime::MAX,
            },
        );
    }

    /// Installs or refreshes a dynamically learned entry with the normal
    /// TTL (the driver uses this for path-aware AX.25 addresses that the
    /// flat ARP wire format cannot carry).
    pub fn insert_learned(&mut self, now: SimTime, ip: Ipv4Addr, hw: Vec<u8>) {
        self.stats.learned += 1;
        self.cache.insert(
            ip,
            CacheEntry {
                hw,
                expires: now + self.cfg.entry_ttl,
            },
        );
    }

    /// Releases any packets held for `ip` (paired with
    /// [`ArpEngine::insert_learned`]).
    pub fn release_held(&mut self, ip: Ipv4Addr) -> Vec<Ipv4Packet> {
        self.waiting
            .remove(&ip)
            .map(|w| w.packets)
            .unwrap_or_default()
    }

    /// Looks up an address without side effects.
    pub fn lookup(&self, now: SimTime, ip: Ipv4Addr) -> Option<&[u8]> {
        self.cache
            .get(&ip)
            .filter(|e| e.expires > now)
            .map(|e| e.hw.as_slice())
    }

    /// Resolves `next_hop` for `packet`: either releases it with a
    /// hardware address, or holds it and (rate-limited) asks who-has.
    pub fn resolve(&mut self, now: SimTime, next_hop: Ipv4Addr, packet: Ipv4Packet) -> Resolution {
        if let Some(entry) = self.cache.get(&next_hop) {
            if entry.expires > now {
                self.stats.hits += 1;
                return Resolution::Send(entry.hw.clone(), packet);
            }
            self.cache.remove(&next_hop);
        }
        self.stats.misses += 1;
        let w = self.waiting.entry(next_hop).or_insert(Waiting {
            packets: Vec::new(),
            last_request: None,
        });
        if w.packets.len() >= self.cfg.max_held {
            self.stats.held_dropped += 1;
            return Resolution::Dropped;
        }
        w.packets.push(packet);
        let ask = match w.last_request {
            None => true,
            Some(at) => now.saturating_since(at) >= self.cfg.retry_interval,
        };
        if ask {
            w.last_request = Some(now);
            self.stats.requests_sent += 1;
            Resolution::Pending(Some(ArpPacket::request(
                self.hw_type,
                self.my_hw.clone(),
                self.my_ip,
                next_hop,
            )))
        } else {
            Resolution::Pending(None)
        }
    }

    /// Processes an incoming ARP packet. Returns an optional reply to
    /// transmit and any held packets now released as `(hw, packet)`.
    pub fn on_arp(
        &mut self,
        now: SimTime,
        arp: &ArpPacket,
    ) -> (Option<ArpPacket>, Vec<(Vec<u8>, Ipv4Packet)>) {
        if arp.hw != self.hw_type {
            return (None, Vec::new());
        }
        let mut released = Vec::new();
        // RFC 826 merge: refresh if we know the sender; add if we are the
        // target (or we were waiting on them).
        let for_us = arp.target_ip == self.my_ip;
        let known = self.cache.contains_key(&arp.sender_ip);
        let wanted = self.waiting.contains_key(&arp.sender_ip);
        if for_us || known || wanted {
            self.stats.learned += 1;
            self.cache.insert(
                arp.sender_ip,
                CacheEntry {
                    hw: arp.sender_hw.clone(),
                    expires: now + self.cfg.entry_ttl,
                },
            );
            if let Some(w) = self.waiting.remove(&arp.sender_ip) {
                for p in w.packets {
                    released.push((arp.sender_hw.clone(), p));
                }
            }
        }
        let reply = if for_us && arp.op == ArpOp::Request {
            self.stats.replies_sent += 1;
            Some(arp.reply_to(self.my_hw.clone()))
        } else {
            None
        };
        (reply, released)
    }

    /// Re-issues requests for stale waits and drops hopeless ones; call
    /// periodically (e.g. once a second).
    pub fn age(&mut self, now: SimTime, give_up_after: SimDuration) -> Vec<ArpPacket> {
        let mut requests = Vec::new();
        let mut dead = Vec::new();
        // Deterministic iteration order: HashMap order varies between
        // processes, and the simulation must not.
        let mut entries: Vec<(&Ipv4Addr, &mut Waiting)> = self.waiting.iter_mut().collect();
        entries.sort_by_key(|(ip, _)| u32::from(**ip));
        for (ip, w) in entries {
            let last = w.last_request.unwrap_or(SimTime::ZERO);
            if now.saturating_since(last) >= give_up_after {
                dead.push(*ip);
            } else if now.saturating_since(last) >= self.cfg.retry_interval {
                w.last_request = Some(now);
                requests.push(ArpPacket::request(
                    self.hw_type,
                    self.my_hw.clone(),
                    self.my_ip,
                    *ip,
                ));
            }
        }
        for ip in dead {
            if let Some(w) = self.waiting.remove(&ip) {
                self.stats.held_dropped += w.packets.len() as u64;
            }
        }
        self.stats.requests_sent += requests.len() as u64;
        requests
    }

    /// Counters.
    pub fn stats(&self) -> ArpStats {
        self.stats
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of addresses with packets waiting on resolution.
    pub fn pending_resolutions(&self) -> usize {
        self.waiting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::arp::hw_type;
    use netstack::ip::Proto;

    fn ipa(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(44, 24, 0, n)
    }

    fn pkt(dst: Ipv4Addr) -> Ipv4Packet {
        Ipv4Packet::new(ipa(28), dst, Proto::Udp, vec![1, 2, 3])
    }

    fn engine() -> ArpEngine {
        ArpEngine::new(hw_type::AX25, b"GW".to_vec(), ipa(28), ArpConfig::default())
    }

    #[test]
    fn miss_queues_and_requests_then_reply_releases() {
        let mut e = engine();
        let now = SimTime::ZERO;
        let r = e.resolve(now, ipa(5), pkt(ipa(5)));
        let Resolution::Pending(Some(req)) = r else {
            panic!("{r:?}");
        };
        assert_eq!(req.target_ip, ipa(5));
        assert_eq!(req.op, ArpOp::Request);
        // Reply arrives.
        let reply = ArpPacket {
            hw: hw_type::AX25,
            op: ArpOp::Reply,
            sender_hw: b"PC".to_vec(),
            sender_ip: ipa(5),
            target_hw: b"GW".to_vec(),
            target_ip: ipa(28),
        };
        let (resp, released) = e.on_arp(now, &reply);
        assert!(resp.is_none());
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].0, b"PC".to_vec());
        // Next resolve is a hit.
        let r = e.resolve(now, ipa(5), pkt(ipa(5)));
        assert!(matches!(r, Resolution::Send(hw, _) if hw == b"PC".to_vec()));
        assert_eq!(e.stats().hits, 1);
    }

    #[test]
    fn repeated_misses_rate_limit_requests() {
        let mut e = engine();
        let now = SimTime::ZERO;
        assert!(matches!(
            e.resolve(now, ipa(5), pkt(ipa(5))),
            Resolution::Pending(Some(_))
        ));
        assert!(matches!(
            e.resolve(now + SimDuration::from_secs(1), ipa(5), pkt(ipa(5))),
            Resolution::Pending(None)
        ));
        assert!(matches!(
            e.resolve(now + SimDuration::from_secs(6), ipa(5), pkt(ipa(5))),
            Resolution::Pending(Some(_))
        ));
        assert_eq!(e.stats().requests_sent, 2);
    }

    #[test]
    fn hold_queue_bounded() {
        let mut e = engine();
        let now = SimTime::ZERO;
        for _ in 0..4 {
            let r = e.resolve(now, ipa(5), pkt(ipa(5)));
            assert!(matches!(r, Resolution::Pending(_)));
        }
        assert_eq!(e.resolve(now, ipa(5), pkt(ipa(5))), Resolution::Dropped);
        assert_eq!(e.stats().held_dropped, 1);
    }

    #[test]
    fn request_for_us_draws_reply_and_learns() {
        let mut e = engine();
        let req = ArpPacket::request(hw_type::AX25, b"PC".to_vec(), ipa(5), ipa(28));
        let (reply, released) = e.on_arp(SimTime::ZERO, &req);
        let reply = reply.expect("must answer who-has for our IP");
        assert_eq!(reply.op, ArpOp::Reply);
        assert_eq!(reply.sender_hw, b"GW".to_vec());
        assert_eq!(reply.target_ip, ipa(5));
        assert!(released.is_empty());
        // We learned the asker.
        assert_eq!(e.lookup(SimTime::ZERO, ipa(5)), Some(b"PC".as_ref()));
    }

    #[test]
    fn request_not_for_us_is_not_answered_or_learned() {
        let mut e = engine();
        let req = ArpPacket::request(hw_type::AX25, b"PC".to_vec(), ipa(5), ipa(99));
        let (reply, _) = e.on_arp(SimTime::ZERO, &req);
        assert!(reply.is_none());
        assert_eq!(e.lookup(SimTime::ZERO, ipa(5)), None);
    }

    #[test]
    fn wrong_hw_type_ignored() {
        let mut e = engine();
        let req = ArpPacket::request(hw_type::ETHERNET, vec![1; 6], ipa(5), ipa(28));
        let (reply, released) = e.on_arp(SimTime::ZERO, &req);
        assert!(reply.is_none());
        assert!(released.is_empty());
    }

    #[test]
    fn entries_expire() {
        let mut e = engine();
        let now = SimTime::ZERO;
        e.on_arp(
            now,
            &ArpPacket::request(hw_type::AX25, b"PC".to_vec(), ipa(5), ipa(28)),
        );
        assert!(e.lookup(now, ipa(5)).is_some());
        let later = now + SimDuration::from_secs(21 * 60);
        assert!(e.lookup(later, ipa(5)).is_none());
        // Resolve after expiry re-queues.
        assert!(matches!(
            e.resolve(later, ipa(5), pkt(ipa(5))),
            Resolution::Pending(Some(_))
        ));
    }

    #[test]
    fn static_entries_never_expire() {
        let mut e = engine();
        e.insert_static(ipa(7), b"DIGIPATH".to_vec());
        let far = SimTime::from_secs(1_000_000);
        assert_eq!(e.lookup(far, ipa(7)), Some(b"DIGIPATH".as_ref()));
    }

    #[test]
    fn age_retries_then_gives_up() {
        let mut e = engine();
        let t0 = SimTime::ZERO;
        e.resolve(t0, ipa(5), pkt(ipa(5)));
        let t1 = t0 + SimDuration::from_secs(6);
        let reqs = e.age(t1, SimDuration::from_secs(30));
        assert_eq!(reqs.len(), 1);
        let t2 = t1 + SimDuration::from_secs(31);
        let reqs = e.age(t2, SimDuration::from_secs(30));
        assert!(reqs.is_empty());
        assert_eq!(e.stats().held_dropped, 1);
    }
}
