//! A complete simulated machine: stack + drivers + CPU + queues.
//!
//! Three shapes of host appear in the paper, and all three are
//! configurations of this one type:
//!
//! * the **isolated PC** "connected to only a power outlet and a radio"
//!   (§2.3) — a radio interface only;
//! * ordinary **Ethernet hosts** on the department LAN and beyond;
//! * the **MicroVAX gateway** itself — both interfaces, IP forwarding,
//!   and the §4.3 access-control table.
//!
//! The receive path is CPU-gated to reproduce §3: every serial character
//! costs an interrupt, every packet costs protocol time, and IP inputs
//! wait in a bounded `ifqueue` until the simulated CPU gets to them.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::net::Ipv4Addr;
use std::rc::Rc;

use ax25::addr::Ax25Addr;
use ax25::frame::Frame;
use ether::{EtherFrame, MacAddr};
use filter::{FilterConfig, FilterEngine, FilterNote, FilterStats};
use netstack::icmp::IcmpMessage;
use netstack::stack::{IfaceConfig, IfaceId, NetStack, SockId, StackAction, StackConfig};
use netstack::NetError;
use sim::{PacketBuf, SimTime, SinkFn};
use socket::{Readiness, SockError, SocketHandle, SocketTable};

use crate::arp_engine::ArpConfig;
use crate::cpu::{Cpu, CpuConfig};
use crate::etherdrv::EtherDriver;
use crate::ifnet::{IfQueue, IFQ_MAXLEN};
use crate::prdriver::{PacketRadioDriver, PrConfig, PrEvent, AX25_MTU};

/// Radio interface parameters for a host.
#[derive(Debug, Clone)]
pub struct RadioIfConfig {
    /// The station callsign.
    pub call: Ax25Addr,
    /// The interface's AMPRnet address.
    pub ip: Ipv4Addr,
    /// Subnet prefix length.
    pub prefix_len: u8,
}

/// Ethernet interface parameters for a host.
#[derive(Debug, Clone)]
pub struct EtherIfConfig {
    /// The NIC's MAC address.
    pub mac: MacAddr,
    /// The interface's IP address.
    pub ip: Ipv4Addr,
    /// Subnet prefix length.
    pub prefix_len: u8,
}

/// Full host configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Hostname for traces.
    pub name: String,
    /// Stack configuration (forwarding on for gateways).
    pub stack: StackConfig,
    /// CPU cost model.
    pub cpu: CpuConfig,
    /// Radio interface, if any.
    pub radio: Option<RadioIfConfig>,
    /// Ethernet interface, if any.
    pub ether: Option<EtherIfConfig>,
    /// The compiled packet-filter engine (DESIGN.md §13), carrying the
    /// §4.3 gate plus compiled rules, the decision cache, and rate
    /// limiting, evaluated at the driver hooks (and at the forwarding
    /// step on hosts with no radio driver to hook).
    pub filter: Option<FilterConfig>,
}

impl HostConfig {
    /// A named host with no interfaces (add them via the fields).
    pub fn named(name: &str) -> HostConfig {
        HostConfig {
            name: name.to_string(),
            stack: StackConfig::default(),
            cpu: CpuConfig::default(),
            radio: None,
            ether: None,
            filter: None,
        }
    }
}

/// Link-layer output produced by a host, routed by the world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostOut {
    /// Bytes for the serial line to the TNC (a pooled transmit buffer).
    SerialTx(sim::PacketBuf),
    /// A frame for the Ethernet segment.
    EtherTx(EtherFrame),
}

/// A simulated machine.
#[derive(Debug)]
pub struct Host {
    /// Hostname.
    pub name: String,
    /// The TCP/IP stack.
    pub stack: NetStack,
    /// The BSD-flavored descriptor layer over `stack` (DESIGN.md §10): apps
    /// that speak sockets go through the `sock_*` wrappers below.
    pub sockets: SocketTable,
    /// The CPU cost model.
    pub cpu: Cpu,
    pr: Option<(IfaceId, PacketRadioDriver)>,
    eth: Option<(IfaceId, EtherDriver)>,
    /// The packet-filter engine, shared with the radio driver's hooks.
    filter: Option<Rc<RefCell<FilterEngine>>>,
    /// The bounded IP input queue (CPU-gated).
    input_queue: IfQueue<(IfaceId, Vec<u8>)>,
    /// Non-IP frames diverted for user programs (§2.4).
    tty_queue: VecDeque<Frame>,
    outbox: Vec<HostOut>,
    events: Vec<StackAction>,
    last_arp_age: SimTime,
    /// Powered off (E12's gateway kill): all link input is dropped and no
    /// deadlines are reported until the host comes back up.
    down: bool,
}

impl Host {
    /// Builds a host from its configuration.
    pub fn new(cfg: HostConfig) -> Host {
        let mut stack = NetStack::new(cfg.stack);
        let filter = cfg
            .filter
            .map(|f| Rc::new(RefCell::new(FilterEngine::new(f))));
        let pr = cfg.radio.map(|r| {
            let iface = stack.add_iface(IfaceConfig {
                name: "pr0".into(),
                addr: r.ip,
                prefix_len: r.prefix_len,
                mtu: AX25_MTU,
            });
            let mut drv = PacketRadioDriver::new(
                PrConfig {
                    my_call: r.call,
                    broadcast: vec![Ax25Addr::broadcast()],
                    arp: ArpConfig::default(),
                },
                r.ip,
            );
            if let Some(f) = &filter {
                drv.set_filter(Rc::clone(f));
            }
            (iface, drv)
        });
        let eth = cfg.ether.map(|e| {
            let iface = stack.add_iface(IfaceConfig {
                name: "qe0".into(),
                addr: e.ip,
                prefix_len: e.prefix_len,
                mtu: ether::MTU,
            });
            (iface, EtherDriver::new(e.mac, e.ip, ArpConfig::default()))
        });
        Host {
            name: cfg.name,
            stack,
            sockets: SocketTable::new(),
            cpu: Cpu::new(cfg.cpu),
            pr,
            eth,
            filter,
            input_queue: IfQueue::new(IFQ_MAXLEN),
            tty_queue: VecDeque::new(),
            outbox: Vec::new(),
            events: Vec::new(),
            last_arp_age: SimTime::ZERO,
            down: false,
        }
    }

    /// The radio interface id, if the host has one.
    pub fn radio_iface(&self) -> Option<IfaceId> {
        self.pr.as_ref().map(|(i, _)| *i)
    }

    /// The Ethernet interface id, if the host has one.
    pub fn ether_iface(&self) -> Option<IfaceId> {
        self.eth.as_ref().map(|(i, _)| *i)
    }

    /// The packet radio driver, if present.
    pub fn pr_driver(&self) -> Option<&PacketRadioDriver> {
        self.pr.as_ref().map(|(_, d)| d)
    }

    /// Mutable packet radio driver (static ARP entries, etc.).
    pub fn pr_driver_mut(&mut self) -> Option<&mut PacketRadioDriver> {
        self.pr.as_mut().map(|(_, d)| d)
    }

    /// The Ethernet driver, if present.
    pub fn ether_driver(&self) -> Option<&EtherDriver> {
        self.eth.as_ref().map(|(_, d)| d)
    }

    /// The packet-filter engine, if one is installed.
    pub fn filter_engine(&self) -> Option<&Rc<RefCell<FilterEngine>>> {
        self.filter.as_ref()
    }

    /// Filter counters, if a filter is installed.
    pub fn filter_stats(&self) -> Option<FilterStats> {
        self.filter.as_ref().map(|f| f.borrow().stats())
    }

    /// Turns per-decision filter logging on or off (driven by the
    /// world's trace state; decisions drain into the gateway-policy
    /// trace category).
    pub fn set_filter_logging(&mut self, on: bool) {
        if let Some(f) = &self.filter {
            f.borrow_mut().set_logging(on);
        }
    }

    /// Drains logged filter decisions (empty without a filter or with
    /// logging off).
    pub fn take_filter_notes(&mut self) -> Vec<FilterNote> {
        self.filter
            .as_ref()
            .map_or_else(Vec::new, |f| f.borrow_mut().take_notes())
    }

    /// The station callsign, if the host has a radio.
    pub fn callsign(&self) -> Option<Ax25Addr> {
        self.pr.as_ref().map(|(_, d)| d.my_call())
    }

    /// The NIC MAC, if the host has Ethernet.
    pub fn mac(&self) -> Option<MacAddr> {
        self.eth.as_ref().map(|(_, d)| d.mac())
    }

    /// Input-queue depth (for E3's gateway-queue measurements).
    pub fn input_queue_len(&self) -> usize {
        self.input_queue.len()
    }

    /// Input-queue drop count.
    pub fn input_queue_drops(&self) -> u64 {
        self.input_queue.drops()
    }

    /// Input-queue high-water mark.
    pub fn input_queue_peak(&self) -> usize {
        self.input_queue.peak()
    }

    // --- Power -------------------------------------------------------------

    /// Powers the host down or back up (E12 kills a gateway mid-run this
    /// way). While down, link input is discarded, queued work is dropped,
    /// and [`Host::next_deadline`] reports nothing — the machine is dark.
    /// The TNC is a separately powered box and keeps running; only this
    /// host stops. Coming back up starts from cold queues (in-flight state
    /// such as TCP connections and ARP caches is *not* cleared, matching
    /// a crash-resume of soft state held in the stack).
    pub fn set_down(&mut self, down: bool) {
        if down && !self.down {
            self.input_queue = IfQueue::new(IFQ_MAXLEN);
            self.tty_queue.clear();
            self.outbox.clear();
            self.events.clear();
        }
        self.down = down;
    }

    /// True while powered down.
    pub fn is_down(&self) -> bool {
        self.down
    }

    // --- Link input ---------------------------------------------------------

    /// Receives serial characters from the TNC (the tty interrupt path).
    ///
    /// All characters are charged at `now`, through the batched deframer:
    /// behavior and §3 accounting are bit-identical to the old per-byte
    /// loop — character interrupts are charged in segments so each
    /// completed frame's packet processing starts exactly when its closing
    /// `FEND`'s interrupt retires.
    pub fn on_serial_bytes(&mut self, now: SimTime, bytes: &[u8]) {
        if self.down {
            return;
        }
        let Some((iface, drv)) = self.pr.as_mut() else {
            // No radio driver: the tty still takes every interrupt.
            self.cpu.charge_chars(now, bytes.len() as u64);
            return;
        };
        let iface = *iface;
        let cpu = &mut self.cpu;
        let input_queue = &mut self.input_queue;
        let tty_queue = &mut self.tty_queue;
        let outbox = &mut self.outbox;
        let mut charged = 0usize;
        let mut iqdrops = 0u64;
        drv.rint_slice(
            now,
            bytes,
            &mut SinkFn(|t| outbox.push(HostOut::SerialTx(t))),
            |idx, event| {
                let after_char = cpu.charge_chars(now, (idx + 1 - charged) as u64);
                charged = idx + 1;
                match event {
                    PrEvent::IpPacket(ip_bytes) => {
                        let ready = cpu.charge_packet(after_char);
                        if !input_queue.push(ready, (iface, ip_bytes)) {
                            iqdrops += 1;
                        }
                    }
                    PrEvent::Divert(frame) => {
                        tty_queue.push_back(frame);
                    }
                }
            },
        );
        self.cpu.charge_chars(now, (bytes.len() - charged) as u64);
        if iqdrops > 0 {
            drv.ifnet.stats.iqdrops += iqdrops;
        }
    }

    /// Receives one line-paced run of serial characters: character `i`
    /// arrives at `t0 + i·char_time`.
    ///
    /// This is the world's serial fast lane handing over a whole quiet run
    /// of back-to-back deliveries in one call. It is exactly equivalent to
    /// calling [`on_serial_bytes`](Host::on_serial_bytes) per character at
    /// its own arrival instant, **provided** no byte before the last can
    /// complete a frame — the caller guarantees that by ending runs at
    /// `FEND` bytes (only a `FEND` can close a frame).
    pub fn on_serial_run(&mut self, t0: SimTime, char_time: sim::SimDuration, bytes: &[u8]) {
        if self.down || bytes.is_empty() {
            return;
        }
        let n = bytes.len() as u64;
        let Some((iface, drv)) = self.pr.as_mut() else {
            self.cpu.charge_chars_paced(t0, char_time, n);
            return;
        };
        let iface = *iface;
        let after_last = self.cpu.charge_chars_paced(t0, char_time, n);
        let t_last = t0 + char_time * (n - 1);
        let cpu = &mut self.cpu;
        let input_queue = &mut self.input_queue;
        let tty_queue = &mut self.tty_queue;
        let outbox = &mut self.outbox;
        let mut iqdrops = 0u64;
        drv.rint_slice(
            t_last,
            bytes,
            &mut SinkFn(|t| outbox.push(HostOut::SerialTx(t))),
            |idx, event| {
                debug_assert_eq!(idx, bytes.len() - 1, "runs must end at frame boundaries");
                match event {
                    PrEvent::IpPacket(ip_bytes) => {
                        let ready = cpu.charge_packet(after_last);
                        if !input_queue.push(ready, (iface, ip_bytes)) {
                            iqdrops += 1;
                        }
                    }
                    PrEvent::Divert(frame) => {
                        tty_queue.push_back(frame);
                    }
                }
            },
        );
        if iqdrops > 0 {
            drv.ifnet.stats.iqdrops += iqdrops;
        }
    }

    /// Receives a frame from the Ethernet segment (DMA: packet cost only).
    pub fn on_ether_frame(&mut self, now: SimTime, frame: &EtherFrame) {
        if self.down {
            return;
        }
        let Some((iface, ref mut drv)) = self.eth else {
            return;
        };
        let outbox = &mut self.outbox;
        let ip = drv.input(
            now,
            frame,
            &mut SinkFn(|f| outbox.push(HostOut::EtherTx(f))),
        );
        if let Some(ip_bytes) = ip {
            let ready = self.cpu.charge_packet(now);
            if !self.input_queue.push(ready, (iface, ip_bytes)) {
                drv.ifnet.stats.iqdrops += 1;
            }
        }
    }

    // --- Progress ------------------------------------------------------------

    /// The earliest time this host has self-scheduled work.
    pub fn next_deadline(&self) -> Option<SimTime> {
        if self.down {
            return None;
        }
        let mut best: Option<SimTime> = None;
        let mut fold = |t: Option<SimTime>| {
            best = match (best, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        fold(self.stack.next_deadline());
        fold(self.sockets.next_deadline());
        fold(self.input_queue.next_ready());
        if let Some(f) = &self.filter {
            fold(f.borrow().next_deadline());
        }
        let arp_pending = self
            .pr
            .as_ref()
            .map(|(_, d)| d.arp().pending_resolutions() > 0)
            .unwrap_or(false);
        if arp_pending {
            fold(Some(self.last_arp_age + sim::SimDuration::from_secs(1)));
        }
        best
    }

    /// Advances the host to `now`: drains due input-queue items through
    /// the stack, fires stack timers, ages ARP.
    pub fn advance(&mut self, now: SimTime) {
        if self.down {
            return;
        }
        while let Some((iface, bytes)) = self.input_queue.pop_due(now) {
            let actions = self.stack.input(now, iface, &bytes);
            self.handle_actions(now, actions);
        }
        let actions = self.stack.poll(now);
        self.handle_actions(now, actions);
        if self.sockets.next_deadline().is_some_and(|t| t <= now) {
            self.sockets.on_deadline(&mut self.stack, now);
            let out = self.stack.drain_actions();
            self.handle_actions(now, out);
        }
        if let Some(f) = &self.filter {
            let mut f = f.borrow_mut();
            if f.next_deadline().is_some_and(|t| t <= now) {
                f.expire(now);
            }
        }
        if now.saturating_since(self.last_arp_age) >= sim::SimDuration::from_secs(1) {
            self.last_arp_age = now;
            let outbox = &mut self.outbox;
            if let Some((_, drv)) = &mut self.pr {
                drv.age_arp(now, &mut SinkFn(|t| outbox.push(HostOut::SerialTx(t))));
            }
            if let Some((_, drv)) = &mut self.eth {
                drv.age_arp(now, &mut SinkFn(|f| outbox.push(HostOut::EtherTx(f))));
            }
        }
    }

    /// True if link-layer output or stack events are waiting to be taken.
    ///
    /// The world's batched serial fast lane uses this to detect that a
    /// delivered character produced work beyond the per-character
    /// accounting (i.e. a complete frame reached the stack).
    pub fn has_pending_output(&self) -> bool {
        !self.outbox.is_empty() || !self.events.is_empty()
    }

    /// Takes pending link-layer output.
    pub fn take_outbox(&mut self) -> Vec<HostOut> {
        std::mem::take(&mut self.outbox)
    }

    /// Takes application-visible stack events.
    pub fn take_events(&mut self) -> Vec<StackAction> {
        std::mem::take(&mut self.events)
    }

    /// Takes diverted non-IP frames (the §2.4 tty queue).
    pub fn take_tty_frames(&mut self) -> Vec<Frame> {
        self.tty_queue.drain(..).collect()
    }

    /// Number of diverted frames waiting in the tty queue. Diverted frames
    /// produce no stack event and no deadline, so the world watches this
    /// count to know an app needs a poll.
    pub fn tty_len(&self) -> usize {
        self.tty_queue.len()
    }

    // --- User-level operations ---------------------------------------------

    /// Handles stack actions: egress goes to drivers, forwards pass the
    /// filter engine, app events accumulate for [`Host::take_events`].
    pub fn handle_actions(&mut self, now: SimTime, actions: Vec<StackAction>) {
        let mut work: VecDeque<StackAction> = actions.into();
        while let Some(act) = work.pop_front() {
            // The socket table observes every action (accept queues,
            // connect completion, latched errors) before it is consumed.
            self.sockets.on_action(&self.stack, &act);
            match act {
                StackAction::Egress {
                    iface,
                    next_hop,
                    packet,
                } => {
                    self.route_output(now, iface, next_hop, packet);
                }
                StackAction::ForwardNeeded { ingress, packet } => {
                    let allow = match &self.filter {
                        Some(f) => {
                            // A radio-equipped host already judged this
                            // packet at the driver's rint hook and will
                            // judge the egress side at the output hook;
                            // evaluating here too would double-charge token
                            // buckets and double-refresh gate entries. Only
                            // hosts with no radio police the forwarding
                            // step itself.
                            self.pr.is_some()
                                || f.borrow_mut()
                                    .eval(now, &filter::PacketMeta::of(&packet))
                                    .is_allow()
                        }
                        None => true,
                    };
                    if allow {
                        self.stack.forward(packet);
                        work.extend(self.stack.drain_actions());
                    }
                    let _ = ingress;
                }
                StackAction::GateControl {
                    from,
                    ingress,
                    message,
                } => {
                    let from_amateur_side = Some(ingress) == self.pr.as_ref().map(|(i, _)| *i);
                    if let Some(f) = &self.filter {
                        f.borrow_mut()
                            .on_gate_message(now, from_amateur_side, &message);
                    }
                    // Keep it visible to tests/apps as well.
                    self.events.push(StackAction::GateControl {
                        from,
                        ingress,
                        message,
                    });
                }
                other => self.events.push(other),
            }
        }
    }

    fn route_output(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        next_hop: Ipv4Addr,
        packet: netstack::ip::Ipv4Packet,
    ) {
        let outbox = &mut self.outbox;
        if let Some((pr_if, drv)) = &mut self.pr {
            if *pr_if == iface {
                drv.output(
                    now,
                    packet,
                    next_hop,
                    &mut SinkFn(|t| outbox.push(HostOut::SerialTx(t))),
                );
                return;
            }
        }
        if let Some((eth_if, drv)) = &mut self.eth {
            if *eth_if == iface {
                drv.output(
                    now,
                    packet,
                    next_hop,
                    &mut SinkFn(|f| outbox.push(HostOut::EtherTx(f))),
                );
            }
        }
    }

    /// Runs one stack operation and routes whatever actions it produced.
    /// Every user-level wrapper below funnels through this: op, drain,
    /// handle.
    fn run_stack_op<R>(&mut self, now: SimTime, op: impl FnOnce(&mut NetStack) -> R) -> R {
        let r = op(&mut self.stack);
        let out = self.stack.drain_actions();
        self.handle_actions(now, out);
        r
    }

    /// Sends a ping.
    pub fn ping(&mut self, now: SimTime, dst: Ipv4Addr, id: u16, seq: u16, len: usize) {
        self.run_stack_op(now, |st| st.ping(dst, id, seq, len));
    }

    /// Opens a TCP connection.
    pub fn tcp_connect(
        &mut self,
        now: SimTime,
        dst: Ipv4Addr,
        port: u16,
    ) -> Result<SockId, NetError> {
        self.run_stack_op(now, |st| st.tcp_connect(now, dst, port))
    }

    /// Opens a TCP connection with an explicit TCP configuration.
    pub fn tcp_connect_with(
        &mut self,
        now: SimTime,
        dst: Ipv4Addr,
        port: u16,
        cfg: netstack::tcp::TcpConfig,
    ) -> Result<SockId, NetError> {
        self.run_stack_op(now, |st| st.tcp_connect_with(now, dst, port, cfg))
    }

    /// Sends on a TCP socket; returns octets accepted.
    pub fn tcp_send(&mut self, now: SimTime, sock: SockId, data: &[u8]) -> usize {
        self.run_stack_op(now, |st| st.tcp_send(now, sock, data))
    }

    /// Reads from a TCP socket.
    pub fn tcp_recv(&mut self, now: SimTime, sock: SockId) -> Vec<u8> {
        self.run_stack_op(now, |st| st.tcp_recv(now, sock))
    }

    /// Closes a TCP socket's send side.
    pub fn tcp_close(&mut self, now: SimTime, sock: SockId) {
        self.run_stack_op(now, |st| st.tcp_close(now, sock));
    }

    /// Sends a UDP datagram from a bound socket.
    pub fn udp_send(
        &mut self,
        now: SimTime,
        udp: netstack::stack::UdpId,
        dst: Ipv4Addr,
        port: u16,
        payload: Vec<u8>,
    ) {
        self.run_stack_op(now, |st| st.udp_send(udp, dst, port, payload));
    }

    /// Broadcasts a UDP datagram on one interface (the RIP44 announcement
    /// path): no route lookup, the link layer sends to the all-stations
    /// address.
    pub fn udp_broadcast(
        &mut self,
        now: SimTime,
        udp: netstack::stack::UdpId,
        iface: IfaceId,
        dst_port: u16,
        payload: Vec<u8>,
    ) {
        self.run_stack_op(now, |st| {
            st.udp_send_broadcast(udp, iface, dst_port, payload)
        });
    }

    /// Sends a §4.3 gateway-control message toward `dst`.
    pub fn send_gate_message(&mut self, now: SimTime, dst: Ipv4Addr, msg: IcmpMessage) {
        self.run_stack_op(now, |st| st.send_icmp(dst, msg));
    }

    // --- Socket layer (DESIGN.md §10) ----------------------------------------
    //
    // The BSD-flavored verbs: each runs a `SocketTable` operation against
    // this host's stack and routes whatever actions it provoked, exactly
    // like the raw wrappers above.

    /// Runs one socket-table operation and routes the resulting actions.
    fn run_sock_op<R>(
        &mut self,
        now: SimTime,
        op: impl FnOnce(&mut SocketTable, &mut NetStack) -> R,
    ) -> R {
        let r = op(&mut self.sockets, &mut self.stack);
        let out = self.stack.drain_actions();
        self.handle_actions(now, out);
        r
    }

    /// `socket`+`bind`+`listen`: passive TCP socket on `port`, with an
    /// optional accept-queue bound (overflow SYNs are refused with RST).
    pub fn sock_listen(
        &mut self,
        now: SimTime,
        port: u16,
        backlog: Option<usize>,
    ) -> Result<SocketHandle, SockError> {
        self.run_sock_op(now, |so, st| so.listen(st, port, backlog))
    }

    /// Active open; the handle turns WRITABLE on handshake completion or
    /// ERROR-ready on refusal/unreachable/timeout.
    pub fn sock_connect(
        &mut self,
        now: SimTime,
        dst: Ipv4Addr,
        port: u16,
    ) -> Result<SocketHandle, SockError> {
        self.run_sock_op(now, |so, st| so.connect(st, now, dst, port))
    }

    /// Pops one completed connection off a listener.
    pub fn sock_accept(
        &mut self,
        now: SimTime,
        h: SocketHandle,
    ) -> Result<SocketHandle, SockError> {
        self.run_sock_op(now, |so, st| so.accept(st, h))
    }

    /// Queues bytes on a stream; `Ok(n)` is the count accepted.
    pub fn sock_send(
        &mut self,
        now: SimTime,
        h: SocketHandle,
        data: &[u8],
    ) -> Result<usize, SockError> {
        self.run_sock_op(now, |so, st| so.send(st, now, h, data))
    }

    /// Drains readable bytes; `Ok(empty)` is EOF.
    pub fn sock_recv(&mut self, now: SimTime, h: SocketHandle) -> Result<Vec<u8>, SockError> {
        self.run_sock_op(now, |so, st| so.recv(st, now, h))
    }

    /// Half-close: sends FIN, keeps the read side open.
    pub fn sock_shutdown(&mut self, now: SimTime, h: SocketHandle) -> Result<(), SockError> {
        self.run_sock_op(now, |so, st| so.shutdown(st, now, h))
    }

    /// Releases the handle (orderly close for streams still open).
    pub fn sock_close(&mut self, now: SimTime, h: SocketHandle) {
        self.run_sock_op(now, |so, st| so.close(st, now, h));
    }

    /// `socket`+`bind` for datagrams.
    pub fn sock_bind_udp(&mut self, now: SimTime, port: u16) -> Result<SocketHandle, SockError> {
        self.run_sock_op(now, |so, st| so.bind_udp(st, port))
    }

    /// Sends one datagram.
    pub fn sock_send_to(
        &mut self,
        now: SimTime,
        h: SocketHandle,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Result<(), SockError> {
        self.run_sock_op(now, |so, st| so.send_to(st, h, dst, dst_port, payload))
    }

    /// Pops one received datagram (pooled payload buffer).
    pub fn sock_recv_from(
        &mut self,
        h: SocketHandle,
    ) -> Result<(Ipv4Addr, u16, PacketBuf), SockError> {
        self.sockets.recv_from(&mut self.stack, h)
    }

    /// Readiness mask for one handle (pure, no side effects).
    pub fn sock_poll(&self, h: SocketHandle) -> Readiness {
        self.sockets.poll(&self.stack, h)
    }

    /// `select(2)`: the ready subset of `handles`.
    pub fn sock_select(&self, handles: &[SocketHandle]) -> Vec<(SocketHandle, Readiness)> {
        self.sockets.select(&self.stack, handles)
    }

    /// Room in a stream's send buffer (bulk senders pump on WRITABLE).
    pub fn sock_send_capacity(&self, h: SocketHandle) -> usize {
        self.sockets.send_capacity(&self.stack, h)
    }

    /// Flips a handle between blocking and nonblocking notification.
    pub fn sock_set_nonblocking(&mut self, h: SocketHandle, on: bool) -> Result<(), SockError> {
        self.sockets.set_nonblocking(h, on)
    }

    /// The latched asynchronous error, if any.
    pub fn sock_error(&self, h: SocketHandle) -> Option<SockError> {
        self.sockets.take_error(h)
    }

    /// The remote end of a connected stream.
    pub fn sock_peer(&self, h: SocketHandle) -> Option<(Ipv4Addr, u16)> {
        self.sockets.peer_addr(&self.stack, h)
    }

    /// Sends a raw AX.25 frame from "user space" via the radio driver
    /// (the §2.4 path back down the tty).
    pub fn send_raw_ax25(&mut self, _now: SimTime, frame: &Frame) {
        if let Some((_, drv)) = &mut self.pr {
            let outbox = &mut self.outbox;
            drv.send_raw_frame(frame, &mut SinkFn(|t| outbox.push(HostOut::SerialTx(t))));
        }
    }

    /// Injects an IP packet into the host's input path, as if it had
    /// arrived on the radio interface. Used by user-space encapsulation
    /// services (the NET/ROM router) that receive IP datagrams through
    /// the tty divert queue.
    pub fn inject_ip(&mut self, now: SimTime, bytes: Vec<u8>) {
        if self.down {
            return;
        }
        let Some(iface) = self.radio_iface().or_else(|| self.ether_iface()) else {
            return;
        };
        let ready = self.cpu.charge_packet(now);
        if !self.input_queue.push(ready, (iface, bytes)) {
            if let Some((_, drv)) = &mut self.pr {
                drv.ifnet.stats.iqdrops += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ax25::frame::Pid;
    use netstack::ip::{Ipv4Packet, Proto};

    fn a(s: &str) -> Ax25Addr {
        Ax25Addr::parse_or_panic(s)
    }

    fn radio_host(name: &str, call: &str, ip: [u8; 4]) -> Host {
        let mut cfg = HostConfig::named(name);
        cfg.radio = Some(RadioIfConfig {
            call: a(call),
            ip: Ipv4Addr::from(ip),
            prefix_len: 16,
        });
        Host::new(cfg)
    }

    #[test]
    fn serial_ip_frame_is_cpu_gated_through_the_ifqueue() {
        let mut h = radio_host("pc", "KB7DZ", [44, 24, 0, 5]);
        let ip = Ipv4Packet::new(
            Ipv4Addr::new(44, 24, 0, 28),
            Ipv4Addr::new(44, 24, 0, 5),
            Proto::Icmp,
            netstack::icmp::IcmpMessage::EchoRequest {
                id: 1,
                seq: 1,
                payload: vec![0; 8],
            }
            .encode(),
        );
        let frame = Frame::ui(a("KB7DZ"), a("N7AKR-1"), Pid::Ip, ip.encode());
        let wire = kiss::encode(0, kiss::Command::Data, &frame.encode());
        let now = SimTime::ZERO;
        h.on_serial_bytes(now, &wire);
        assert_eq!(h.input_queue_len(), 1);
        // Not processed until the CPU is done.
        h.advance(now);
        assert_eq!(h.stack.stats().ip_in, 0);
        let ready = h.next_deadline().expect("queued work");
        assert!(ready > now, "CPU gating delays processing");
        h.advance(ready);
        assert_eq!(h.stack.stats().ip_in, 1);
        // It was an echo request: a reply is in the outbox as serial bytes.
        let out = h.take_outbox();
        assert!(!out.is_empty());
        assert!(matches!(out[0], HostOut::SerialTx(_)));
    }

    #[test]
    fn divert_frames_reach_the_tty_queue() {
        let mut h = radio_host("pc", "KB7DZ", [44, 24, 0, 5]);
        let frame = Frame::ui(a("KB7DZ"), a("W1GOH"), Pid::Text, b"hello om".to_vec());
        let wire = kiss::encode(0, kiss::Command::Data, &frame.encode());
        h.on_serial_bytes(SimTime::ZERO, &wire);
        let frames = h.take_tty_frames();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].info, b"hello om");
    }

    #[test]
    fn raw_ax25_send_goes_out_the_serial_port() {
        let mut h = radio_host("pc", "KB7DZ", [44, 24, 0, 5]);
        let frame = Frame::ui(a("W1GOH"), a("KB7DZ"), Pid::Text, b"cq".to_vec());
        h.send_raw_ax25(SimTime::ZERO, &frame);
        let out = h.take_outbox();
        let [HostOut::SerialTx(bytes)] = &out[..] else {
            panic!("{out:?}");
        };
        let frames = kiss::decode_stream(bytes);
        assert_eq!(Frame::decode(&frames[0].payload).unwrap(), frame);
    }

    #[test]
    fn ping_from_radio_host_emits_arp_first() {
        let mut h = radio_host("pc", "KB7DZ", [44, 24, 0, 5]);
        h.ping(SimTime::ZERO, Ipv4Addr::new(44, 24, 0, 28), 1, 1, 32);
        let out = h.take_outbox();
        assert_eq!(out.len(), 1);
        let HostOut::SerialTx(bytes) = &out[0] else {
            panic!()
        };
        let frames = kiss::decode_stream(bytes);
        let f = Frame::decode(&frames[0].payload).unwrap();
        assert_eq!(f.pid, Some(Pid::Arp));
        assert_eq!(f.dest, Ax25Addr::broadcast());
    }

    #[test]
    fn filter_polices_forward_step_on_radioless_forwarders() {
        // A forwarder with no radio driver has no rint/output hooks, so
        // the §4.3 gate is enforced at the forwarding step itself.
        let mut cfg = HostConfig::named("gw");
        cfg.stack.forwarding = true;
        cfg.ether = Some(EtherIfConfig {
            mac: MacAddr::local(1),
            ip: Ipv4Addr::new(128, 95, 1, 100),
            prefix_len: 24,
        });
        cfg.filter = Some(FilterConfig::gateway());
        let mut gw = Host::new(cfg);
        // Unsolicited foreign->amateur packet arrives on Ethernet.
        let p = Ipv4Packet::new(
            Ipv4Addr::new(128, 95, 1, 4),
            Ipv4Addr::new(44, 24, 0, 5),
            Proto::Udp,
            vec![0; 8],
        );
        let eth_if = gw.ether_iface().unwrap();
        let actions = gw.stack.input(SimTime::ZERO, eth_if, &p.encode());
        gw.handle_actions(SimTime::ZERO, actions);
        assert!(gw.take_outbox().is_empty(), "denied: nothing forwarded");
        let fs = gw.filter_stats().unwrap();
        assert_eq!(fs.gate_denied, 1);
        assert_eq!(fs.denied, 1);
        assert_eq!(gw.stack.stats().forwarded, 0);
    }

    #[test]
    fn filter_engine_polices_transit_at_the_driver_hooks() {
        let mut cfg = HostConfig::named("gw");
        cfg.stack.forwarding = true;
        cfg.radio = Some(RadioIfConfig {
            call: a("N7AKR-1"),
            ip: Ipv4Addr::new(44, 24, 0, 28),
            prefix_len: 16,
        });
        cfg.ether = Some(EtherIfConfig {
            mac: MacAddr::local(1),
            ip: Ipv4Addr::new(128, 95, 1, 100),
            prefix_len: 24,
        });
        cfg.filter = Some(FilterConfig::gateway());
        let mut gw = Host::new(cfg);
        let now = SimTime::ZERO;
        // Unsolicited foreign->amateur transit: the forward step lets it
        // through (the radio driver polices), the output hook denies it
        // before ARP — nothing transmitted, no resolution broadcast.
        let p = netstack::ip::Ipv4Packet::new(
            Ipv4Addr::new(128, 95, 1, 4),
            Ipv4Addr::new(44, 24, 0, 5),
            Proto::Udp,
            vec![0; 8],
        );
        let eth_if = gw.ether_iface().unwrap();
        let actions = gw.stack.input(now, eth_if, &p.encode());
        gw.handle_actions(now, actions);
        assert!(gw.take_outbox().is_empty(), "denied: nothing transmitted");
        let drv = gw.pr_driver().unwrap();
        assert_eq!(drv.stats().filter_drop_out, 1);
        assert_eq!(drv.arp().pending_resolutions(), 0, "no ARP for drops");
        let fs = gw.filter_stats().unwrap();
        assert_eq!(fs.gate_denied, 1);

        // An amateur-side datagram arriving over the radio opens the
        // gate (judged at rint), after which the same foreign packet
        // transits.
        let am = netstack::ip::Ipv4Packet::new(
            Ipv4Addr::new(44, 24, 0, 5),
            Ipv4Addr::new(128, 95, 1, 4),
            Proto::Udp,
            vec![0; 8],
        );
        let frame = Frame::ui(a("N7AKR-1"), a("KB7DZ"), ax25::frame::Pid::Ip, am.encode());
        let wire = kiss::encode(0, kiss::Command::Data, &frame.encode());
        gw.on_serial_bytes(now, &wire);
        let ready = gw.next_deadline().expect("queued work");
        gw.advance(ready);
        assert_eq!(gw.filter_stats().unwrap().gate_opened, 1);
        let actions = gw.stack.input(ready, eth_if, &p.encode());
        gw.handle_actions(ready, actions);
        let out = gw.take_outbox();
        assert!(
            out.iter().any(|o| matches!(o, HostOut::SerialTx(_))),
            "admitted transit reaches the radio (ARP or data): {out:?}"
        );
    }

    #[test]
    fn ether_host_shape() {
        let mut cfg = HostConfig::named("vax2");
        cfg.ether = Some(EtherIfConfig {
            mac: MacAddr::local(9),
            ip: Ipv4Addr::new(128, 95, 1, 4),
            prefix_len: 24,
        });
        let mut h = Host::new(cfg);
        assert!(h.radio_iface().is_none());
        assert!(h.ether_iface().is_some());
        assert_eq!(h.mac(), Some(MacAddr::local(9)));
        // Pinging a neighbour emits an Ethernet ARP broadcast.
        h.ping(SimTime::ZERO, Ipv4Addr::new(128, 95, 1, 1), 1, 1, 8);
        let out = h.take_outbox();
        let [HostOut::EtherTx(f)] = &out[..] else {
            panic!("{out:?}");
        };
        assert_eq!(f.ethertype, ether::EtherType::Arp);
        assert!(f.dst.is_broadcast());
    }

    #[test]
    fn on_serial_run_matches_per_character_delivery() {
        // A paced run (one call) against per-character on_serial_bytes at
        // each arrival instant: same queue state, same CPU accounting.
        let ip = Ipv4Packet::new(
            Ipv4Addr::new(44, 24, 0, 28),
            Ipv4Addr::new(44, 24, 0, 5),
            Proto::Udp,
            vec![3; 24],
        );
        let frame = Frame::ui(a("KB7DZ"), a("N7AKR-1"), Pid::Ip, ip.encode());
        let wire = kiss::encode(0, kiss::Command::Data, &frame.encode());
        let t0 = SimTime::from_millis(7);
        let ct = sim::SimDuration::from_micros(1042); // 9600 baud
        let mut bulk = radio_host("pc", "KB7DZ", [44, 24, 0, 5]);
        bulk.on_serial_run(t0, ct, &wire);
        let mut scalar = radio_host("pc", "KB7DZ", [44, 24, 0, 5]);
        for (i, &b) in wire.iter().enumerate() {
            scalar.on_serial_bytes(t0 + ct * (i as u64), &[b]);
        }
        assert_eq!(bulk.cpu.busy_until(), scalar.cpu.busy_until());
        assert_eq!(bulk.cpu.stats().busy_ns, scalar.cpu.stats().busy_ns);
        assert_eq!(
            bulk.cpu.stats().char_interrupts,
            scalar.cpu.stats().char_interrupts
        );
        assert_eq!(bulk.input_queue_len(), scalar.input_queue_len());
        assert_eq!(bulk.next_deadline(), scalar.next_deadline());
        let s = bulk.pr_driver().unwrap().stats();
        let r = scalar.pr_driver().unwrap().stats();
        assert_eq!(s.rint_chars, r.rint_chars);
        assert_eq!(s.ip_in, r.ip_in);
    }

    #[test]
    fn input_queue_overflow_drops() {
        let mut h = radio_host("pc", "KB7DZ", [44, 24, 0, 5]);
        let ip = Ipv4Packet::new(
            Ipv4Addr::new(44, 24, 0, 28),
            Ipv4Addr::new(44, 24, 0, 5),
            Proto::Udp,
            vec![0; 8],
        );
        let frame = Frame::ui(a("KB7DZ"), a("N7AKR-1"), Pid::Ip, ip.encode());
        let wire = kiss::encode(0, kiss::Command::Data, &frame.encode());
        // Never advance: the queue (IFQ_MAXLEN=50) fills and then drops.
        for _ in 0..60 {
            h.on_serial_bytes(SimTime::ZERO, &wire);
        }
        assert_eq!(h.input_queue_len(), IFQ_MAXLEN);
        assert_eq!(h.input_queue_drops(), 10);
        assert_eq!(h.pr_driver().unwrap().ifnet.stats.iqdrops, 10);
    }
}
