//! The packet radio pseudo-device driver — the heart of the paper.
//!
//! §2.2: *"a pseudo-device driver for the packet radio controller was
//! implemented … Since the packet controller does not sit on the bus,
//! communication with it is through a serial line, and hence the driver
//! is a pseudo-driver."* The pieces reproduced here, faithfully:
//!
//! * [`PacketRadioDriver::rint`] — the per-character receive interrupt
//!   handler, *"the most difficult routine to write"*: characters are
//!   buffered as they arrive, *"escaped frame end characters that are
//!   embedded in the packet are decoded"* on the fly (the incremental
//!   KISS deframer), and on the final frame end the header is checked —
//!   recipient callsign must be *"either its own, or the broadcast
//!   address"* — and the protocol ID field demultiplexed: IP packets go
//!   up to the IP input queue, anything else is diverted to a tty-style
//!   queue a user program can read (§2.4's application-gateway hook).
//! * [`PacketRadioDriver::output`] — encapsulates IP packets in AX.25 UI
//!   frames and KISS-frames them for the serial line, resolving the
//!   destination with the driver's own AX.25 ARP (digipeater paths
//!   included).

use ax25::addr::Ax25Addr;
use ax25::frame::{Frame, FrameHeader, Pid};
use filter::{FilterEngine, PacketMeta};
use kiss::{Command, Deframer};
use netstack::arp::{hw_type, ArpPacket};
use netstack::ip::Ipv4Packet;
use sim::{BufPool, FrameSink, PoolStats, SimTime};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

use crate::arp_engine::{ArpConfig, ArpEngine, Resolution};
use crate::hwaddr::Ax25Hw;
use crate::ifnet::IfNet;
use vj::{VjCompressor, VjConfig, VjDecompressor, VjOutcome};

/// AX.25 interface MTU: the default N1 info-field limit.
pub const AX25_MTU: usize = 256;

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct PrConfig {
    /// This station's callsign (the interface's link address).
    pub my_call: Ax25Addr,
    /// Destination addresses accepted as broadcast.
    pub broadcast: Vec<Ax25Addr>,
    /// ARP engine parameters.
    pub arp: ArpConfig,
}

impl PrConfig {
    /// A driver for `my_call` accepting `QST` broadcasts.
    pub fn new(my_call: Ax25Addr) -> PrConfig {
        PrConfig {
            my_call,
            broadcast: vec![Ax25Addr::broadcast()],
            arp: ArpConfig::default(),
        }
    }
}

/// Driver counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrStats {
    /// Characters pushed through the interrupt handler.
    pub rint_chars: u64,
    /// Complete frames assembled.
    pub frames_in: u64,
    /// Frames discarded: not our callsign or broadcast.
    pub not_for_us: u64,
    /// Frames discarded: still carrying an untraversed digipeater path.
    pub not_repeated: u64,
    /// Frames discarded: undecodable AX.25.
    pub bad_frames: u64,
    /// IP packets passed up.
    pub ip_in: u64,
    /// ARP packets consumed.
    pub arp_in: u64,
    /// Non-IP frames diverted to the tty queue (§2.4).
    pub diverted: u64,
    /// IP packets encapsulated and transmitted.
    pub ip_out: u64,
    /// Info-field bytes of transmitted IP-bearing frames (after any VJ
    /// compression) — the TCP/IP bytes actually put on the air.
    pub ip_bytes_out: u64,
    /// VJ frames (PID 0x06/0x07) dropped by the decompressor: tossed
    /// while awaiting a refresh, or failing reconstruction.
    pub vj_drop: u64,
    /// Inbound IP packets dropped by the packet-filter engine before
    /// reaching the input queue (DESIGN.md §13).
    pub filter_drop_in: u64,
    /// Outbound IP packets dropped by the packet-filter engine before
    /// ARP resolution.
    pub filter_drop_out: u64,
}

/// What `rint` hands the rest of the kernel when a frame completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrEvent {
    /// An encapsulated IP packet (raw bytes for the IP input queue).
    IpPacket(Vec<u8>),
    /// A non-IP frame for the tty divert queue (§2.4).
    Divert(Frame),
}

/// The packet radio pseudo-device driver.
#[derive(Debug)]
pub struct PacketRadioDriver {
    /// The `if_net` entry ("pr0").
    pub ifnet: IfNet,
    cfg: PrConfig,
    deframer: Deframer,
    arp: ArpEngine,
    stats: PrStats,
    /// Pool backing every transmitted serial frame: once the driver has
    /// warmed up, transmissions recycle buffers instead of allocating.
    pool: BufPool,
    /// RFC 1144 header compression state, when enabled on this link.
    vj: Option<VjLink>,
    /// The packet-filter engine, shared with the owning host so driver
    /// hooks and the host's forward/control paths see one table
    /// (DESIGN.md §13). `None` means no policy: zero per-packet cost.
    filter: Option<Rc<RefCell<FilterEngine>>>,
}

/// Both halves of the RFC 1144 state for one radio link: this station
/// compresses what it transmits and decompresses what it hears.
#[derive(Debug)]
struct VjLink {
    comp: VjCompressor,
    decomp: VjDecompressor,
}

impl PacketRadioDriver {
    /// Creates the driver for an interface numbered `my_ip`.
    pub fn new(cfg: PrConfig, my_ip: Ipv4Addr) -> PacketRadioDriver {
        let my_hw = Ax25Hw::direct(cfg.my_call).encode();
        let arp = ArpEngine::new(hw_type::AX25, my_hw, my_ip, cfg.arp);
        PacketRadioDriver {
            ifnet: IfNet::new("pr0", AX25_MTU),
            cfg,
            deframer: Deframer::new(),
            arp,
            stats: PrStats::default(),
            // Worst case, every payload byte is a FEND/FESC escape: header
            // + MTU, doubled, plus delimiters.
            pool: BufPool::new(2 * (AX25_MTU + 72) + 3),
            vj: None,
            filter: None,
        }
    }

    /// Installs the packet-filter engine on this interface. Inbound IP
    /// frames are judged in `rint` before their info field is even
    /// copied out of the deframer buffer — a denied flood costs the
    /// fast-path classification and nothing else — and outbound packets
    /// are judged in [`output`](PacketRadioDriver::output) before ARP
    /// resolution, so denied traffic never generates ARP queries.
    pub fn set_filter(&mut self, engine: Rc<RefCell<FilterEngine>>) {
        self.filter = Some(engine);
    }

    /// Turns on RFC 1144 TCP/IP header compression for this link (both
    /// directions). Must be enabled with the same `cfg.slots` at every
    /// station sharing the link; with it off, PIDs 0x06/0x07 divert to
    /// the §2.4 tty queue like any other unknown protocol.
    pub fn enable_vj(&mut self, cfg: VjConfig) {
        self.vj = Some(VjLink {
            comp: VjCompressor::new(cfg),
            decomp: VjDecompressor::new(cfg),
        });
    }

    /// Whether VJ compression is active on this link.
    pub fn vj_enabled(&self) -> bool {
        self.vj.is_some()
    }

    /// Compressor/decompressor counters, when VJ is enabled.
    pub fn vj_stats(&self) -> Option<(vj::VjCompStats, vj::VjDecompStats)> {
        self.vj.as_ref().map(|l| (l.comp.stats(), l.decomp.stats()))
    }

    /// The interface's callsign.
    pub fn my_call(&self) -> Ax25Addr {
        self.cfg.my_call
    }

    /// Driver counters.
    pub fn stats(&self) -> PrStats {
        self.stats
    }

    /// The driver's ARP engine (for static digipeater-path entries, per
    /// §2.3's "some entries may contain additional callsigns for
    /// digipeaters").
    pub fn arp_mut(&mut self) -> &mut ArpEngine {
        &mut self.arp
    }

    /// The ARP engine, read-only.
    pub fn arp(&self) -> &ArpEngine {
        &self.arp
    }

    /// Accepts an additional destination address as broadcast (e.g. the
    /// `NODES` address a NET/ROM router listens to).
    pub fn add_broadcast_addr(&mut self, addr: Ax25Addr) {
        if !self.cfg.broadcast.contains(&addr) {
            self.cfg.broadcast.push(addr);
        }
    }

    /// Allocation counters for the transmit buffer pool (reported by the
    /// E2 harness alongside the §3 CPU figures).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    // --- Receive path ------------------------------------------------------

    /// The per-character receive interrupt handler.
    ///
    /// Feed one serial character; when it completes a frame, the
    /// classified result comes back, and any frames the driver itself
    /// wants transmitted (ARP replies, packets released by an ARP
    /// resolution) are emitted into `tx` as KISS-framed serial buffers.
    ///
    /// The fast path is allocation-free: mid-frame characters only touch
    /// the deframer's reusable buffer, and a completed frame is classified
    /// from an [`FrameHeader::peek`] of the wire bytes — a frame addressed
    /// to another station (§3: under a promiscuous TNC, *most* frames) is
    /// counted and dropped without the heap ever being involved. Only
    /// frames the driver accepts pay for a full [`Frame::decode`].
    pub fn rint(&mut self, now: SimTime, byte: u8, tx: &mut impl FrameSink) -> Option<PrEvent> {
        self.stats.rint_chars += 1;
        // Detach the deframer so the completed frame (which borrows the
        // deframer's buffer) can be classified against `&mut self`.
        let mut deframer = std::mem::replace(&mut self.deframer, Deframer::placeholder());
        let event = deframer
            .push(byte)
            .and_then(|kiss_frame| self.classify_frame(now, kiss_frame, tx));
        self.deframer = deframer;
        event
    }

    /// The batched receive interrupt handler: a whole run of serial
    /// characters through the bulk KISS deframer in one call.
    ///
    /// Behavior is identical to feeding each byte through
    /// [`rint`](PacketRadioDriver::rint) — same events (delivered through
    /// `on_event` with the slice index of the frame's closing `FEND`), same
    /// transmissions, and the same per-character interrupt *accounting*
    /// ([`PrStats::rint_chars`] counts every byte, so the paper's §3 cost
    /// model is unchanged) — but clean frame bodies are located with
    /// word-at-a-time scanning and copied in bulk instead of stepping the
    /// per-byte state machine.
    ///
    /// `now` stamps every frame completed in this slice (ARP learning);
    /// callers that need exact per-frame timestamps end each batch at a
    /// frame boundary, as the `gateway::world` serial fast lane does.
    pub fn rint_slice(
        &mut self,
        now: SimTime,
        bytes: &[u8],
        tx: &mut impl FrameSink,
        mut on_event: impl FnMut(usize, PrEvent),
    ) {
        self.stats.rint_chars += bytes.len() as u64;
        let mut deframer = std::mem::replace(&mut self.deframer, Deframer::placeholder());
        deframer.push_slice(bytes, |idx, kiss_frame| {
            if let Some(event) = self.classify_frame(now, kiss_frame, tx) {
                on_event(idx, event);
            }
        });
        self.deframer = deframer;
    }

    /// Classifies one completed KISS frame: the §2.2 address filter and
    /// PID demultiplex shared by the per-character and batched handlers.
    fn classify_frame(
        &mut self,
        now: SimTime,
        kiss_frame: kiss::KissFrameRef<'_>,
        tx: &mut impl FrameSink,
    ) -> Option<PrEvent> {
        if kiss_frame.command != Command::Data {
            return None;
        }
        self.stats.frames_in += 1;
        let payload = kiss_frame.payload;
        let hdr = match FrameHeader::peek(payload) {
            Ok(h) => h,
            Err(_) => {
                self.stats.bad_frames += 1;
                self.ifnet.stats.ierrors += 1;
                return None;
            }
        };
        // A frame still being digipeated is not ours to consume even if
        // our callsign is the final destination.
        if !hdr.fully_repeated {
            self.stats.not_repeated += 1;
            return None;
        }
        let for_us = hdr.dest == self.cfg.my_call || self.cfg.broadcast.contains(&hdr.dest);
        if !for_us {
            self.stats.not_for_us += 1;
            return None;
        }
        self.ifnet.stats.ipackets += 1;
        match hdr.pid {
            Some(Pid::Ip) => {
                self.stats.ip_in += 1;
                // The filter judges the datagram in place, before the
                // info field is copied, before ARP learns anything from
                // the frame: a denied flood teaches us nothing and
                // costs no allocation.
                if !self.inbound_allowed(now, &payload[hdr.info_start..]) {
                    return None;
                }
                if hdr.num_digipeaters == 0 {
                    // Direct traffic: hand the info field up without even
                    // materializing a Frame.
                    return Some(PrEvent::IpPacket(payload[hdr.info_start..].to_vec()));
                }
                // Digipeated traffic: glean a path-aware ARP entry (§2.3) —
                // the sender is reachable back through the reversed relay
                // list, which no broadcast ARP could teach us across the
                // hidden segment. This needs the digipeater list, so decode
                // fully (peek already validated, so this cannot fail).
                let frame = Frame::decode(payload).expect("peek-validated frame");
                if let Some(src_ip) = ip_source(&frame.info) {
                    let path: Vec<Ax25Addr> =
                        frame.digipeaters.iter().rev().map(|d| d.addr).collect();
                    let hw = Ax25Hw::via(frame.source, &path);
                    self.arp.insert_learned(now, src_ip, hw.encode());
                    for p in self.arp.release_held(src_ip) {
                        self.encapsulate_ip(&p, &hw, tx);
                    }
                }
                Some(PrEvent::IpPacket(frame.info))
            }
            Some(Pid::UncompressedTcp) if self.vj.is_some() => {
                // RFC 1144 refresh: the full datagram with the protocol
                // byte carrying the slot number. Re-seed the decompressor
                // and hand the restored datagram up.
                let mut bytes = payload[hdr.info_start..].to_vec();
                let link = self.vj.as_mut().expect("guarded");
                match link.decomp.refresh(&mut bytes) {
                    Ok(()) => {
                        self.stats.ip_in += 1;
                        if !self.inbound_allowed(now, &bytes) {
                            return None;
                        }
                        Some(PrEvent::IpPacket(bytes))
                    }
                    Err(_) => {
                        self.stats.vj_drop += 1;
                        None
                    }
                }
            }
            Some(Pid::CompressedTcp) if self.vj.is_some() => {
                let link = self.vj.as_mut().expect("guarded");
                let mut out = Vec::new();
                match link.decomp.decompress(&payload[hdr.info_start..], &mut out) {
                    Ok(()) => {
                        self.stats.ip_in += 1;
                        if !self.inbound_allowed(now, &out) {
                            return None;
                        }
                        Some(PrEvent::IpPacket(out))
                    }
                    Err(_) => {
                        // Tossed or failed reconstruction: drop here and
                        // let TCP's retransmission (sent as a refresh)
                        // resynchronise the slot.
                        self.stats.vj_drop += 1;
                        None
                    }
                }
            }
            Some(Pid::Arp) => {
                self.stats.arp_in += 1;
                // §2.3: ARP entries "may contain additional callsigns for
                // digipeaters". A digipeated request teaches us the
                // reverse path to the sender, so only the originating
                // station needs manual path configuration.
                let (info, reverse_path) = if hdr.num_digipeaters == 0 {
                    (payload[hdr.info_start..].to_vec(), Vec::new())
                } else {
                    let frame = Frame::decode(payload).expect("peek-validated frame");
                    let path = frame.digipeaters.iter().rev().map(|d| d.addr).collect();
                    (frame.info, path)
                };
                self.handle_arp_info(now, &info, hdr.source, &reverse_path, tx);
                None
            }
            _ => {
                // "Packets that are received from the TNC that are not of
                // type IP can be placed on the input queue for the
                // appropriate tty line." (§2.4)
                self.stats.diverted += 1;
                let frame = Frame::decode(payload).expect("peek-validated frame");
                Some(PrEvent::Divert(frame))
            }
        }
    }

    /// Judges an inbound IP datagram against the installed filter,
    /// counting the drop. Malformed headers pass through unjudged — the
    /// stack's own input validation owns that accounting.
    #[inline]
    fn inbound_allowed(&mut self, now: SimTime, ip_bytes: &[u8]) -> bool {
        let Some(engine) = &self.filter else {
            return true;
        };
        let Some(meta) = PacketMeta::parse(ip_bytes) else {
            return true;
        };
        if engine.borrow_mut().eval(now, &meta).is_allow() {
            true
        } else {
            self.stats.filter_drop_in += 1;
            false
        }
    }

    fn handle_arp_info(
        &mut self,
        now: SimTime,
        info: &[u8],
        link_source: Ax25Addr,
        reverse_path: &[Ax25Addr],
        tx: &mut impl FrameSink,
    ) {
        let Ok(arp) = ArpPacket::decode(info) else {
            self.stats.bad_frames += 1;
            return;
        };
        // When the frame was digipeated, the sender's usable hardware
        // address is its link address plus the reversed relay path — the
        // flat ARP wire format cannot carry that, so the path-aware entry
        // is learned here, out of band.
        let path_override = (!reverse_path.is_empty()
            && reverse_path.len() <= ax25::MAX_DIGIPEATERS
            && Ax25Hw::decode(&arp.sender_hw)
                .map(|hw| hw.station == link_source)
                .unwrap_or(false))
        .then(|| Ax25Hw::via(link_source, reverse_path));

        let (reply, released) = self.arp.on_arp(now, &arp);
        let mut released: Vec<(Vec<u8>, netstack::ip::Ipv4Packet)> = released;
        if let Some(hw) = &path_override {
            self.arp.insert_learned(now, arp.sender_ip, hw.encode());
            for p in self.arp.release_held(arp.sender_ip) {
                released.push((hw.encode(), p));
            }
        }
        if let Some(reply) = reply {
            // Reply directly to the asker, via the learned path if any.
            let dest_hw = match &path_override {
                Some(hw) => Some(hw.clone()),
                None => Ax25Hw::decode(&reply.target_hw).ok(),
            };
            if let Some(hw) = dest_hw {
                self.encapsulate_arp(&reply, &hw, tx);
            }
        }
        for (hw_bytes, packet) in released {
            if let Ok(hw) = Ax25Hw::decode(&hw_bytes) {
                self.encapsulate_ip(&packet, &hw, tx);
            }
        }
    }

    // --- Transmit path --------------------------------------------------------

    /// Outputs an IP packet toward `next_hop`, resolving its AX.25
    /// address; KISS-framed serial bytes to transmit are emitted into `tx`
    /// (possibly an ARP request while the packet waits). A broadcast next
    /// hop (RIP44 announcements) bypasses ARP and goes out as a UI frame
    /// to the `QST` broadcast address.
    pub fn output(
        &mut self,
        now: SimTime,
        packet: Ipv4Packet,
        next_hop: Ipv4Addr,
        tx: &mut impl FrameSink,
    ) {
        if next_hop == Ipv4Addr::BROADCAST {
            self.stats.ip_out += 1;
            self.ifnet.stats.opackets += 1;
            let bytes = packet.encode();
            self.stats.ip_bytes_out += bytes.len() as u64;
            let frame = Frame::ui(Ax25Addr::broadcast(), self.cfg.my_call, Pid::Ip, bytes);
            self.emit_kiss(&frame, tx);
            return;
        }
        // Outbound policy runs before ARP: a denied packet (a spoofed
        // flood in transit toward the channel, say) must not trigger a
        // resolution broadcast or hold a pending-queue slot. Broadcast
        // announcements above are link control and bypass the filter.
        if let Some(engine) = &self.filter {
            let meta = PacketMeta::of(&packet);
            if !engine.borrow_mut().eval(now, &meta).is_allow() {
                self.stats.filter_drop_out += 1;
                return;
            }
        }
        match self.arp.resolve(now, next_hop, packet) {
            Resolution::Send(hw_bytes, packet) => match Ax25Hw::decode(&hw_bytes) {
                Ok(hw) => self.encapsulate_ip(&packet, &hw, tx),
                Err(_) => {
                    self.ifnet.stats.oerrors += 1;
                }
            },
            Resolution::Pending(Some(request)) => self.broadcast_arp(&request, tx),
            Resolution::Pending(None) => {}
            Resolution::Dropped => {
                self.ifnet.stats.oerrors += 1;
            }
        }
    }

    /// Periodic ARP maintenance; emits requests to retransmit into `tx`.
    pub fn age_arp(&mut self, now: SimTime, tx: &mut impl FrameSink) {
        for r in self.arp.age(now, sim::SimDuration::from_secs(30)) {
            self.broadcast_arp(&r, tx);
        }
    }

    /// Sends a raw AX.25 frame from "user space" (the §2.4 application
    /// gateway writing back down the tty); the KISS-framed serial buffer
    /// is emitted into `tx`.
    pub fn send_raw_frame(&mut self, frame: &Frame, tx: &mut impl FrameSink) {
        self.ifnet.stats.opackets += 1;
        let mut out = self.pool.take();
        kiss::encode_frame_into(0, Command::Data, &mut out, |esc| frame.encode_into(esc));
        tx.emit(out);
    }

    fn encapsulate_ip(&mut self, packet: &Ipv4Packet, hw: &Ax25Hw, tx: &mut impl FrameSink) {
        self.stats.ip_out += 1;
        self.ifnet.stats.opackets += 1;
        let mut bytes = packet.encode();
        // RFC 1144 classification: TCP segments shrink their header to a
        // handful of delta bytes; everything else rides PID 0xCC as ever.
        let pid = match &mut self.vj {
            Some(link) => match link.comp.compress(&mut bytes) {
                VjOutcome::Ip => Pid::Ip,
                VjOutcome::Uncompressed => Pid::UncompressedTcp,
                VjOutcome::Compressed { start } => {
                    bytes.drain(..start);
                    Pid::CompressedTcp
                }
            },
            None => Pid::Ip,
        };
        self.stats.ip_bytes_out += bytes.len() as u64;
        let frame = Frame::ui(hw.station, self.cfg.my_call, pid, bytes).via(&hw.path);
        self.emit_kiss(&frame, tx);
    }

    fn encapsulate_arp(&mut self, arp: &ArpPacket, hw: &Ax25Hw, tx: &mut impl FrameSink) {
        self.ifnet.stats.opackets += 1;
        let frame = Frame::ui(hw.station, self.cfg.my_call, Pid::Arp, arp.encode()).via(&hw.path);
        self.emit_kiss(&frame, tx);
    }

    fn broadcast_arp(&mut self, arp: &ArpPacket, tx: &mut impl FrameSink) {
        self.ifnet.stats.opackets += 1;
        let frame = Frame::ui(
            Ax25Addr::broadcast(),
            self.cfg.my_call,
            Pid::Arp,
            arp.encode(),
        );
        self.emit_kiss(&frame, tx);
    }

    /// KISS-frames an AX.25 frame into a pooled buffer and emits it: the
    /// AX.25 encoder streams through the escaper straight into the buffer,
    /// so a warmed-up pool makes this path allocation-free.
    fn emit_kiss(&mut self, frame: &Frame, tx: &mut impl FrameSink) {
        let mut out = self.pool.take();
        kiss::encode_frame_into(0, Command::Data, &mut out, |esc| frame.encode_into(esc));
        tx.emit(out);
    }
}

/// Extracts the source address of an IPv4 header without a full decode.
fn ip_source(bytes: &[u8]) -> Option<Ipv4Addr> {
    if bytes.len() < 20 || bytes[0] >> 4 != 4 {
        return None;
    }
    Some(Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::ip::Proto;

    fn a(s: &str) -> Ax25Addr {
        Ax25Addr::parse_or_panic(s)
    }

    fn gw_ip() -> Ipv4Addr {
        Ipv4Addr::new(44, 24, 0, 28)
    }

    fn pc_ip() -> Ipv4Addr {
        Ipv4Addr::new(44, 24, 0, 5)
    }

    fn driver() -> PacketRadioDriver {
        PacketRadioDriver::new(PrConfig::new(a("N7AKR-1")), gw_ip())
    }

    fn feed(drv: &mut PacketRadioDriver, bytes: &[u8]) -> (Vec<PrEvent>, Vec<sim::PacketBuf>) {
        let mut events = Vec::new();
        let mut tx = Vec::new();
        for &b in bytes {
            events.extend(drv.rint(SimTime::ZERO, b, &mut tx));
        }
        (events, tx)
    }

    fn kiss_bytes(frame: &Frame) -> Vec<u8> {
        kiss::encode(0, Command::Data, &frame.encode())
    }

    #[test]
    fn ip_frame_for_us_goes_to_ip_queue() {
        let mut drv = driver();
        let ip = Ipv4Packet::new(pc_ip(), gw_ip(), Proto::Udp, vec![9; 16]);
        let frame = Frame::ui(a("N7AKR-1"), a("KB7DZ"), Pid::Ip, ip.encode());
        let (events, tx) = feed(&mut drv, &kiss_bytes(&frame));
        assert_eq!(events, vec![PrEvent::IpPacket(ip.encode())]);
        assert!(tx.is_empty());
        assert_eq!(drv.stats().ip_in, 1);
        assert_eq!(drv.ifnet.stats.ipackets, 1);
    }

    #[test]
    fn broadcast_destination_is_accepted() {
        let mut drv = driver();
        let ip = Ipv4Packet::new(pc_ip(), gw_ip(), Proto::Udp, vec![1]);
        let frame = Frame::ui(Ax25Addr::broadcast(), a("KB7DZ"), Pid::Ip, ip.encode());
        let (events, _) = feed(&mut drv, &kiss_bytes(&frame));
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn frames_for_others_are_dropped_and_counted() {
        let mut drv = driver();
        let frame = Frame::ui(a("W1GOH"), a("KB7DZ"), Pid::Ip, vec![0x45; 21]);
        let (events, _) = feed(&mut drv, &kiss_bytes(&frame));
        assert!(events.is_empty());
        assert_eq!(drv.stats().not_for_us, 1);
        assert_eq!(drv.ifnet.stats.ipackets, 0, "not charged as input");
    }

    #[test]
    fn undigipeated_frames_are_not_consumed() {
        let mut drv = driver();
        let frame =
            Frame::ui(a("N7AKR-1"), a("KB7DZ"), Pid::Ip, vec![0x45; 21]).via(&[a("WA6BEV")]);
        let (events, _) = feed(&mut drv, &kiss_bytes(&frame));
        assert!(events.is_empty());
        assert_eq!(drv.stats().not_repeated, 1);
    }

    #[test]
    fn non_ip_frames_divert_to_tty_queue() {
        let mut drv = driver();
        let frame = Frame::ui(a("N7AKR-1"), a("KB7DZ"), Pid::Text, b"hi om".to_vec());
        let (events, _) = feed(&mut drv, &kiss_bytes(&frame));
        let [PrEvent::Divert(f)] = &events[..] else {
            panic!("{events:?}");
        };
        assert_eq!(f.info, b"hi om");
        assert_eq!(drv.stats().diverted, 1);
    }

    #[test]
    fn garbage_bytes_never_panic_and_count_errors() {
        let mut drv = driver();
        let mut wire = vec![kiss::FEND, 0x00];
        wire.extend(vec![0xAA; 30]);
        wire.push(kiss::FEND);
        let (events, _) = feed(&mut drv, &wire);
        assert!(events.is_empty());
        assert_eq!(drv.stats().bad_frames, 1);
        assert_eq!(drv.ifnet.stats.ierrors, 1);
    }

    #[test]
    fn output_unresolved_broadcasts_arp_then_sends_on_reply() {
        let mut drv = driver();
        let now = SimTime::ZERO;
        let packet = Ipv4Packet::new(gw_ip(), pc_ip(), Proto::Udp, vec![7; 32]);
        let mut tx: Vec<sim::PacketBuf> = Vec::new();
        drv.output(now, packet.clone(), pc_ip(), &mut tx);
        assert_eq!(tx.len(), 1);
        // The transmitted frame is an ARP who-has to QST.
        let frames = kiss::decode_stream(&tx[0]);
        let f = Frame::decode(&frames[0].payload).unwrap();
        assert_eq!(f.dest, Ax25Addr::broadcast());
        assert_eq!(f.pid, Some(Pid::Arp));
        let req = ArpPacket::decode(&f.info).unwrap();
        assert_eq!(req.target_ip, pc_ip());

        // The PC answers; the held packet is released.
        let pc_hw = Ax25Hw::direct(a("KB7DZ")).encode();
        let reply = req.reply_to(pc_hw);
        let reply_frame = Frame::ui(a("N7AKR-1"), a("KB7DZ"), Pid::Arp, reply.encode());
        let (events, tx) = feed(&mut drv, &kiss_bytes(&reply_frame));
        assert!(events.is_empty());
        assert_eq!(tx.len(), 1, "released IP packet transmitted");
        let frames = kiss::decode_stream(&tx[0]);
        let f = Frame::decode(&frames[0].payload).unwrap();
        assert_eq!(f.dest, a("KB7DZ"));
        assert_eq!(f.pid, Some(Pid::Ip));
        assert_eq!(f.info, packet.encode());
    }

    #[test]
    fn incoming_arp_request_is_answered_directly() {
        let mut drv = driver();
        let pc_hw = Ax25Hw::direct(a("KB7DZ")).encode();
        let req = ArpPacket::request(hw_type::AX25, pc_hw, pc_ip(), gw_ip());
        let req_frame = Frame::ui(Ax25Addr::broadcast(), a("KB7DZ"), Pid::Arp, req.encode());
        let (events, tx) = feed(&mut drv, &kiss_bytes(&req_frame));
        assert!(events.is_empty());
        assert_eq!(tx.len(), 1);
        let frames = kiss::decode_stream(&tx[0]);
        let f = Frame::decode(&frames[0].payload).unwrap();
        assert_eq!(f.dest, a("KB7DZ"), "reply is unicast to the asker");
        let rep = ArpPacket::decode(&f.info).unwrap();
        assert_eq!(rep.sender_ip, gw_ip());
        assert_eq!(
            Ax25Hw::decode(&rep.sender_hw).unwrap().station,
            a("N7AKR-1")
        );
    }

    #[test]
    fn static_digipeater_path_is_used_on_output() {
        let mut drv = driver();
        let hw = Ax25Hw::via(a("KD7NM"), &[a("WA6BEV-1"), a("K3MC")]);
        drv.arp_mut().insert_static(pc_ip(), hw.encode());
        let packet = Ipv4Packet::new(gw_ip(), pc_ip(), Proto::Udp, vec![1]);
        let mut tx: Vec<sim::PacketBuf> = Vec::new();
        drv.output(SimTime::ZERO, packet, pc_ip(), &mut tx);
        assert_eq!(tx.len(), 1);
        let frames = kiss::decode_stream(&tx[0]);
        let f = Frame::decode(&frames[0].payload).unwrap();
        assert_eq!(f.dest, a("KD7NM"));
        assert_eq!(f.digipeaters.len(), 2);
        assert_eq!(f.digipeaters[0].addr, a("WA6BEV-1"));
        assert!(!f.digipeaters[0].repeated);
    }

    #[test]
    fn raw_frames_from_user_space_are_kiss_encoded() {
        let mut drv = driver();
        let frame = Frame::ui(a("KB7DZ"), a("N7AKR-1"), Pid::Text, b"bbs".to_vec());
        let mut tx: Vec<sim::PacketBuf> = Vec::new();
        drv.send_raw_frame(&frame, &mut tx);
        let frames = kiss::decode_stream(&tx[0]);
        assert_eq!(Frame::decode(&frames[0].payload).unwrap(), frame);
    }

    #[test]
    fn digipeated_arp_request_teaches_the_reverse_path() {
        // The PC asks who-has via two digipeaters; our reply — and all
        // subsequent IP to the PC — must retrace the reversed path even
        // though we never configured it.
        let mut drv = driver();
        let pc_hw = Ax25Hw::direct(a("KB7DZ")).encode();
        let req = ArpPacket::request(hw_type::AX25, pc_hw, pc_ip(), gw_ip());
        let mut req_frame = Frame::ui(Ax25Addr::broadcast(), a("KB7DZ"), Pid::Arp, req.encode())
            .via(&[a("D1"), a("D2")]);
        for d in &mut req_frame.digipeaters {
            d.repeated = true; // fully traversed when we hear it
        }
        let (_, tx) = feed(&mut drv, &kiss_bytes(&req_frame));
        assert_eq!(tx.len(), 1, "reply goes out");
        let frames = kiss::decode_stream(&tx[0]);
        let reply = Frame::decode(&frames[0].payload).unwrap();
        assert_eq!(reply.dest, a("KB7DZ"));
        assert_eq!(
            reply.digipeaters.iter().map(|d| d.addr).collect::<Vec<_>>(),
            vec![a("D2"), a("D1")],
            "reply retraces the reversed digipeater path"
        );
        // And outgoing IP now uses the learned path too.
        let packet = Ipv4Packet::new(gw_ip(), pc_ip(), Proto::Udp, vec![1]);
        let mut tx: Vec<sim::PacketBuf> = Vec::new();
        drv.output(SimTime::ZERO, packet, pc_ip(), &mut tx);
        let frames = kiss::decode_stream(&tx[0]);
        let f = Frame::decode(&frames[0].payload).unwrap();
        assert_eq!(f.dest, a("KB7DZ"));
        assert_eq!(f.digipeaters.len(), 2);
        assert_eq!(f.digipeaters[0].addr, a("D2"));
    }

    #[test]
    fn rint_counts_every_character() {
        let mut drv = driver();
        let frame = Frame::ui(a("W1GOH"), a("KB7DZ"), Pid::Ip, vec![0x45; 21]);
        let wire = kiss_bytes(&frame);
        feed(&mut drv, &wire);
        assert_eq!(drv.stats().rint_chars, wire.len() as u64);
    }

    #[test]
    fn rint_slice_matches_per_byte_rint() {
        // A mixed stream — ours, another station's, an ARP request that
        // triggers a transmission, line noise — through both handlers, at
        // several chunkings, must yield identical events, transmissions,
        // and counters.
        let ip = Ipv4Packet::new(pc_ip(), gw_ip(), Proto::Udp, vec![9; 16]);
        let mut wire = kiss_bytes(&Frame::ui(a("N7AKR-1"), a("KB7DZ"), Pid::Ip, ip.encode()));
        wire.extend(kiss_bytes(&Frame::ui(
            a("W1GOH"),
            a("KB7DZ"),
            Pid::Ip,
            vec![0x45; 21],
        )));
        let pc_hw = Ax25Hw::direct(a("KB7DZ")).encode();
        let req = ArpPacket::request(hw_type::AX25, pc_hw, pc_ip(), gw_ip());
        wire.extend(kiss_bytes(&Frame::ui(
            Ax25Addr::broadcast(),
            a("KB7DZ"),
            Pid::Arp,
            req.encode(),
        )));
        wire.extend([0x55, 0xAA]); // trailing noise, frame left open
        let mut per_byte = driver();
        let (ref_events, ref_tx) = feed(&mut per_byte, &wire);
        for chunk in [1, 3, 7, wire.len()] {
            let mut bulk = driver();
            let mut events = Vec::new();
            let mut tx: Vec<sim::PacketBuf> = Vec::new();
            for piece in wire.chunks(chunk) {
                bulk.rint_slice(SimTime::ZERO, piece, &mut tx, |_, ev| events.push(ev));
            }
            assert_eq!(events, ref_events, "chunk {chunk}");
            assert_eq!(
                tx.iter().map(|b| b.to_vec()).collect::<Vec<_>>(),
                ref_tx.iter().map(|b| b.to_vec()).collect::<Vec<_>>(),
                "chunk {chunk}"
            );
            let (s, r) = (bulk.stats(), per_byte.stats());
            assert_eq!(s.rint_chars, r.rint_chars, "chunk {chunk}");
            assert_eq!(s.frames_in, r.frames_in, "chunk {chunk}");
            assert_eq!(s.not_for_us, r.not_for_us, "chunk {chunk}");
            assert_eq!(s.ip_in, r.ip_in, "chunk {chunk}");
            assert_eq!(s.arp_in, r.arp_in, "chunk {chunk}");
        }
    }

    #[test]
    fn rint_slice_reports_the_closing_fend_index() {
        let mut drv = driver();
        let ip = Ipv4Packet::new(pc_ip(), gw_ip(), Proto::Udp, vec![1; 8]);
        let wire = kiss_bytes(&Frame::ui(a("N7AKR-1"), a("KB7DZ"), Pid::Ip, ip.encode()));
        let mut seen = Vec::new();
        let mut tx: Vec<sim::PacketBuf> = Vec::new();
        drv.rint_slice(SimTime::ZERO, &wire, &mut tx, |idx, _| seen.push(idx));
        assert_eq!(seen, vec![wire.len() - 1]);
    }

    #[test]
    fn frames_for_others_never_touch_the_pool() {
        // The §3 promiscuous case: the channel is full of other stations'
        // traffic. The fast path must classify and drop it without ever
        // leasing (or allocating) a transmit buffer.
        let mut drv = driver();
        let mut wire = Vec::new();
        for i in 0..50 {
            let frame = Frame::ui(
                a(&format!("W{}", i % 10)),
                a("KB7DZ"),
                Pid::Ip,
                vec![0x45; 64],
            );
            wire.extend(kiss_bytes(&frame));
        }
        let (events, tx) = feed(&mut drv, &wire);
        assert!(events.is_empty());
        assert!(tx.is_empty());
        assert_eq!(drv.stats().not_for_us, 50);
        let pool = drv.pool_stats();
        assert_eq!(pool.misses.get(), 0, "fast path must not allocate buffers");
        assert_eq!(pool.hits.get(), 0, "fast path must not even lease buffers");
    }

    /// A correctly checksummed TCP/IP datagram, as the stack would emit.
    fn tcp_packet(src: Ipv4Addr, dst: Ipv4Addr, id: u16, seq: u32, body: &[u8]) -> Ipv4Packet {
        let seg = netstack::tcp::TcpSegment {
            src_port: 1024,
            dst_port: 23,
            seq,
            ack: 5000,
            flags: netstack::tcp::TcpFlags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            window: 4096,
            mss: None,
            payload: body.to_vec(),
        };
        let mut p = Ipv4Packet::new(src, dst, Proto::Tcp, seg.encode(src, dst));
        p.id = id;
        p
    }

    fn single_frame(tx: &[sim::PacketBuf]) -> Frame {
        assert_eq!(tx.len(), 1);
        let frames = kiss::decode_stream(&tx[0]);
        Frame::decode(&frames[0].payload).unwrap()
    }

    #[test]
    fn vj_link_compresses_tcp_and_rebuilds_it_byte_identically() {
        // Gateway side compresses on output; PC side decompresses in rint.
        let mut gw = driver();
        gw.enable_vj(VjConfig::default());
        let mut pc = PacketRadioDriver::new(PrConfig::new(a("KB7DZ")), pc_ip());
        pc.enable_vj(VjConfig::default());
        gw.arp_mut()
            .insert_static(pc_ip(), Ax25Hw::direct(a("KB7DZ")).encode());

        // First segment travels as an uncompressed refresh (PID 0x07)…
        let p1 = tcp_packet(gw_ip(), pc_ip(), 1, 100, b"login:");
        let mut tx: Vec<sim::PacketBuf> = Vec::new();
        gw.output(SimTime::ZERO, p1.clone(), pc_ip(), &mut tx);
        let f1 = single_frame(&tx);
        assert_eq!(f1.pid, Some(Pid::UncompressedTcp));
        let (events, _) = feed(&mut pc, &kiss_bytes(&f1));
        assert_eq!(events, vec![PrEvent::IpPacket(p1.encode())]);

        // …and the next one shrinks its 40-byte header to a few deltas.
        let p2 = tcp_packet(gw_ip(), pc_ip(), 2, 106, b"ok");
        let mut tx: Vec<sim::PacketBuf> = Vec::new();
        gw.output(SimTime::ZERO, p2.clone(), pc_ip(), &mut tx);
        let f2 = single_frame(&tx);
        assert_eq!(f2.pid, Some(Pid::CompressedTcp));
        assert!(
            f2.info.len() < p2.encode().len() - 30,
            "compressed {} vs full {}",
            f2.info.len(),
            p2.encode().len()
        );
        let (events, _) = feed(&mut pc, &kiss_bytes(&f2));
        assert_eq!(events, vec![PrEvent::IpPacket(p2.encode())]);
        assert_eq!(pc.stats().ip_in, 2);
        let (cs, ds) = gw.vj_stats().unwrap();
        assert_eq!((cs.refreshes, cs.compressed), (1, 1));
        assert_eq!(ds, vj::VjDecompStats::default(), "gw heard nothing");
        let (_, ds) = pc.vj_stats().unwrap();
        assert_eq!((ds.uncompressed_in, ds.compressed_in), (1, 1));
    }

    #[test]
    fn vj_non_tcp_and_disabled_paths_are_untouched() {
        // With VJ on, UDP still rides PID 0xCC.
        let mut gw = driver();
        gw.enable_vj(VjConfig::default());
        gw.arp_mut()
            .insert_static(pc_ip(), Ax25Hw::direct(a("KB7DZ")).encode());
        let udp = Ipv4Packet::new(gw_ip(), pc_ip(), Proto::Udp, vec![7; 16]);
        let mut tx: Vec<sim::PacketBuf> = Vec::new();
        gw.output(SimTime::ZERO, udp.clone(), pc_ip(), &mut tx);
        let f = single_frame(&tx);
        assert_eq!(f.pid, Some(Pid::Ip));
        assert_eq!(f.info, udp.encode());

        // With VJ off, inbound 0x06/0x07 divert to the §2.4 tty queue —
        // an unknown protocol, exactly like any other PID.
        let mut plain = driver();
        for pid in [Pid::CompressedTcp, Pid::UncompressedTcp] {
            let frame = Frame::ui(a("N7AKR-1"), a("KB7DZ"), pid, vec![0x0F, 0xAB, 0xCD]);
            let (events, _) = feed(&mut plain, &kiss_bytes(&frame));
            assert!(matches!(&events[..], [PrEvent::Divert(_)]), "{events:?}");
        }
        assert_eq!(plain.stats().diverted, 2);
    }

    #[test]
    fn vj_receiver_drops_desynchronised_frames_until_refresh() {
        let mut gw = driver();
        gw.enable_vj(VjConfig::default());
        let mut pc = PacketRadioDriver::new(PrConfig::new(a("KB7DZ")), pc_ip());
        pc.enable_vj(VjConfig::default());
        gw.arp_mut()
            .insert_static(pc_ip(), Ax25Hw::direct(a("KB7DZ")).encode());

        let send = |gw: &mut PacketRadioDriver, id, seq, body: &[u8]| {
            let mut tx: Vec<sim::PacketBuf> = Vec::new();
            gw.output(
                SimTime::ZERO,
                tcp_packet(gw_ip(), pc_ip(), id, seq, body),
                pc_ip(),
                &mut tx,
            );
            single_frame(&tx)
        };
        let f1 = send(&mut gw, 1, 100, b"aa");
        feed(&mut pc, &kiss_bytes(&f1));
        let _lost = send(&mut gw, 2, 102, b"bb"); // compressed, never delivered
        let f3 = send(&mut gw, 3, 104, b"cc");
        assert_eq!(f3.pid, Some(Pid::CompressedTcp));
        let (events, _) = feed(&mut pc, &kiss_bytes(&f3));
        assert!(events.is_empty(), "mis-delta'd frame must not be delivered");
        assert_eq!(pc.stats().vj_drop, 1);
        // The retransmission goes out as a refresh and resynchronises.
        let f4 = send(&mut gw, 4, 100, b"aabbcc");
        assert_eq!(f4.pid, Some(Pid::UncompressedTcp));
        let (events, _) = feed(&mut pc, &kiss_bytes(&f4));
        let expect = tcp_packet(gw_ip(), pc_ip(), 4, 100, b"aabbcc");
        assert_eq!(events, vec![PrEvent::IpPacket(expect.encode())]);
    }

    #[test]
    fn ip_bytes_out_counts_post_compression_sizes() {
        let mut gw = driver();
        gw.enable_vj(VjConfig::default());
        gw.arp_mut()
            .insert_static(pc_ip(), Ax25Hw::direct(a("KB7DZ")).encode());
        let mut total = 0u64;
        for (id, seq) in [(1u16, 100u32), (2, 101), (3, 102)] {
            let mut tx: Vec<sim::PacketBuf> = Vec::new();
            gw.output(
                SimTime::ZERO,
                tcp_packet(gw_ip(), pc_ip(), id, seq, b"x"),
                pc_ip(),
                &mut tx,
            );
            total += single_frame(&tx).info.len() as u64;
        }
        assert_eq!(gw.stats().ip_bytes_out, total);
        // One 41-byte refresh + two few-byte compressed packets.
        assert!(total < 41 + 2 * 10, "got {total}");
    }

    #[test]
    fn transmit_buffers_recycle_through_the_pool() {
        let mut drv = driver();
        let hw = Ax25Hw::direct(a("KB7DZ"));
        drv.arp_mut().insert_static(pc_ip(), hw.encode());
        for i in 0..10 {
            let packet = Ipv4Packet::new(gw_ip(), pc_ip(), Proto::Udp, vec![i; 32]);
            let mut tx: Vec<sim::PacketBuf> = Vec::new();
            drv.output(SimTime::ZERO, packet, pc_ip(), &mut tx);
            assert_eq!(tx.len(), 1);
            // tx dropped here: buffers return to the driver's pool.
        }
        let pool = drv.pool_stats();
        assert_eq!(pool.misses.get(), 1, "one backing allocation total");
        assert_eq!(pool.hits.get(), 9, "every later send reused it");
        assert_eq!(pool.high_water, 1);
    }
}
