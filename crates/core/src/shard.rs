//! Per-shard simulation state and stepping engine.
//!
//! A shard owns a closed island of components — radio channels, serial
//! lines, TNCs, digipeaters, beacons, hosts, and apps — plus its own
//! deadline calendar, dirty set, RNG stream, and clock. Everything inside
//! a shard interacts synchronously exactly as the original single-world
//! engine did; the only way in or out is the Ethernet, which the world
//! coordinator mediates between windows (DESIGN.md §11):
//!
//! * **Outbound**: in a multi-shard world a host's `EtherTx` is not
//!   applied to the segment directly; it is appended to `ether_out`
//!   stamped `(time, seq)` and the coordinator turns it into a segment
//!   send at `time + lookahead`.
//! * **Inbound**: the coordinator pre-computes segment deliveries and
//!   pushes them into `ether_in` with their exact delivery times, in
//!   nondecreasing time order; the shard consumes entries at their stamps
//!   as settle step 4 (exactly where direct segment delivery sits in the
//!   single-shard engine). Spent frames go to `spent` for the coordinator
//!   to recycle — the hand-off allocates nothing once warm.
//!
//! In a single-shard world the shard is handed the segments directly
//! (`Segs = Some(..)`) and this module's engines are byte-for-byte the
//! pre-shard `World` engines: same pass structure, same RNG draws, same
//! calendar traffic, same event streams.

use ether::{EtherFrame, NicId, Segment};
use netstack::stack::StackAction;
use radio::channel::{Channel, StationId};
use radio::digi::Digipeater;
use radio::tnc::Tnc;
use radio::traffic::BeaconStation;
use serial::{End, SerialLine};
use sim::mailbox::Mailbox;
use sim::sched::Scheduler;
use sim::trace::Trace;
use sim::{SimRng, SimTime};

use crate::host::{Host, HostOut};
use crate::world::{App, HostId};

pub(crate) use cell::ShardBox;

/// Segment access mode for a shard step: a single-shard world hands the
/// engine its segments (`Some`), a multi-shard world defers all Ethernet
/// traffic to the coordinator (`None`).
pub(crate) type Segs<'a> = Option<&'a mut Vec<Segment>>;

pub(crate) struct TncEntry {
    pub tnc: Tnc,
    /// Shard-local channel index.
    pub chan: usize,
    /// Shard-local serial-line index.
    pub line: usize,
}

pub(crate) struct DigiEntry {
    pub digi: Digipeater,
    pub chan: usize,
}

pub(crate) struct BeaconEntry {
    pub beacon: BeaconStation,
    pub chan: usize,
}

pub(crate) struct HostEntry {
    pub host: Host,
    /// Shard-local serial line whose A end this host holds.
    pub serial: Option<usize>,
    /// Ethernet attachment: world segment index + NIC.
    pub nic: Option<(usize, NicId)>,
}

pub(crate) struct AppEntry {
    /// Shard-local host index.
    pub host: usize,
    pub app: Box<dyn App>,
    pub started: bool,
}

/// A component key in the deadline index and dirty set (shard-local
/// indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Key {
    Line(usize),
    Chan(usize),
    Seg(usize),
    Tnc(usize),
    Digi(usize),
    Beacon(usize),
    Host(usize),
    App(usize),
}

/// One category's dirty members: a flag per component for O(1) dedup,
/// plus the list of marked indices so the settle pass visits only dirty
/// components instead of sweeping every flag.
#[derive(Default)]
pub(crate) struct DirtyCat {
    flags: Vec<bool>,
    list: Vec<usize>,
}

impl DirtyCat {
    fn reset(&mut self, n: usize) {
        self.flags.clear();
        self.flags.resize(n, true);
        self.list.clear();
        self.list.extend(0..n);
    }

    fn reset_clear(&mut self, n: usize) {
        self.flags.clear();
        self.flags.resize(n, false);
        self.list.clear();
    }

    /// Marks `i`; returns whether it was newly marked.
    fn mark(&mut self, i: usize) -> bool {
        if self.flags[i] {
            false
        } else {
            self.flags[i] = true;
            self.list.push(i);
            true
        }
    }

    /// Drains the current marks into `todo`, sorted ascending (component
    /// index order — the deterministic processing order), clearing the
    /// flags. Marks made while processing land in the next drain.
    fn drain_into(&mut self, todo: &mut Vec<usize>) -> usize {
        todo.clear();
        todo.append(&mut self.list);
        todo.sort_unstable();
        for &i in todo.iter() {
            self.flags[i] = false;
        }
        todo.len()
    }
}

/// Per-category dirty sets with an exact total count, so the run loop can
/// tell in O(1) whether any work is pending.
#[derive(Default)]
struct DirtySet {
    lines: DirtyCat,
    chans: DirtyCat,
    segs: DirtyCat,
    tncs: DirtyCat,
    digis: DirtyCat,
    beacons: DirtyCat,
    hosts: DirtyCat,
    apps: DirtyCat,
    count: usize,
}

impl DirtySet {
    fn cat(&mut self, key: Key) -> (&mut DirtyCat, usize) {
        match key {
            Key::Line(i) => (&mut self.lines, i),
            Key::Chan(i) => (&mut self.chans, i),
            Key::Seg(i) => (&mut self.segs, i),
            Key::Tnc(i) => (&mut self.tncs, i),
            Key::Digi(i) => (&mut self.digis, i),
            Key::Beacon(i) => (&mut self.beacons, i),
            Key::Host(i) => (&mut self.hosts, i),
            Key::App(i) => (&mut self.apps, i),
        }
    }

    fn mark(&mut self, key: Key) {
        let (cat, i) = self.cat(key);
        if cat.mark(i) {
            self.count += 1;
        }
    }

    /// Marks every component of every category dirty.
    fn mark_all(&mut self, sizes: [usize; 8]) {
        let [l, c, s, t, d, b, h, a] = sizes;
        self.lines.reset(l);
        self.chans.reset(c);
        self.segs.reset(s);
        self.tncs.reset(t);
        self.digis.reset(d);
        self.beacons.reset(b);
        self.hosts.reset(h);
        self.apps.reset(a);
        self.count = l + c + s + t + d + b + h + a;
    }
}

/// World-side mirror of each component's currently registered deadline.
/// Most re-registrations after a poll are no-ops (the deadline did not
/// move); comparing against this dense cache answers that in one vector
/// load instead of a calendar map lookup.
#[derive(Default)]
struct CalCache {
    lines: Vec<Option<SimTime>>,
    chans: Vec<Option<SimTime>>,
    segs: Vec<Option<SimTime>>,
    tncs: Vec<Option<SimTime>>,
    digis: Vec<Option<SimTime>>,
    beacons: Vec<Option<SimTime>>,
    hosts: Vec<Option<SimTime>>,
    apps: Vec<Option<SimTime>>,
}

impl CalCache {
    fn reset(&mut self, sizes: [usize; 8]) {
        let [l, c, s, t, d, b, h, a] = sizes;
        for (v, n) in [
            (&mut self.lines, l),
            (&mut self.chans, c),
            (&mut self.segs, s),
            (&mut self.tncs, t),
            (&mut self.digis, d),
            (&mut self.beacons, b),
            (&mut self.hosts, h),
            (&mut self.apps, a),
        ] {
            v.clear();
            v.resize(n, None);
        }
    }

    fn slot(&mut self, key: Key) -> &mut Option<SimTime> {
        match key {
            Key::Line(i) => &mut self.lines[i],
            Key::Chan(i) => &mut self.chans[i],
            Key::Seg(i) => &mut self.segs[i],
            Key::Tnc(i) => &mut self.tncs[i],
            Key::Digi(i) => &mut self.digis[i],
            Key::Beacon(i) => &mut self.beacons[i],
            Key::Host(i) => &mut self.hosts[i],
            Key::App(i) => &mut self.apps[i],
        }
    }
}

/// A deferred Ethernet transmission, collected by the coordinator at the
/// next window barrier. `(time, shard, seq)` orders concurrent sends
/// deterministically regardless of worker count.
pub(crate) struct OutFrame {
    /// Emission time (the host's flush instant).
    pub time: SimTime,
    /// Per-shard emission sequence number.
    pub seq: u64,
    /// World segment index.
    pub seg: usize,
    pub nic: NicId,
    pub frame: EtherFrame,
}

/// A timed cross-shard delivery: `(delivery time, local host, frame)`.
pub(crate) type InFrame = (SimTime, usize, EtherFrame);

/// One shard's components, calendar, and clock. See the module docs.
pub(crate) struct ShardData {
    pub now: SimTime,
    pub rng: SimRng,
    pub trace: Trace,
    pub channels: Vec<Channel>,
    pub lines: Vec<SerialLine>,
    pub tncs: Vec<TncEntry>,
    pub digis: Vec<DigiEntry>,
    pub beacons: Vec<BeaconEntry>,
    pub hosts: Vec<HostEntry>,
    pub apps: Vec<AppEntry>,
    /// Global `HostId` of each local host (event attribution).
    pub host_gids: Vec<usize>,
    pub record_events: bool,
    /// Events recorded this window, in shard-local time order.
    pub events: Vec<(HostId, SimTime, StackAction)>,
    /// Incoming cross-shard deliveries (multi-shard worlds only).
    pub ether_in: Mailbox<InFrame>,
    /// Outgoing deferred transmissions (multi-shard worlds only).
    pub ether_out: Vec<OutFrame>,
    /// Consumed delivery frames, returned to the coordinator's pool.
    pub spent: Vec<EtherFrame>,
    out_seq: u64,
    sched: Scheduler<Key>,
    dirty: DirtySet,
    /// Routing maps rebuilt by `sync_all` (first match, like the
    /// reference stepper's linear `find`).
    line_host: Vec<Option<usize>>,
    line_tnc: Vec<Option<usize>>,
    chan_tncs: Vec<Vec<usize>>,
    chan_digis: Vec<Vec<usize>>,
    chan_beacons: Vec<Vec<usize>>,
    host_apps: Vec<Vec<usize>>,
    /// Hosts to flush after the app-poll step of the current pass.
    flush_after_apps: DirtyCat,
    cal: CalCache,
    /// Reusable buffer for draining dirty lists in index order.
    scratch: Vec<usize>,
    /// Reusable buffer for batched serial runs in the fast lane.
    run_scratch: Vec<u8>,
    /// Reusable buffer for popped calendar keys.
    key_scratch: Vec<Key>,
}

impl ShardData {
    pub(crate) fn new(rng: SimRng) -> ShardData {
        ShardData {
            now: SimTime::ZERO,
            rng,
            trace: Trace::disabled(),
            channels: Vec::new(),
            lines: Vec::new(),
            tncs: Vec::new(),
            digis: Vec::new(),
            beacons: Vec::new(),
            hosts: Vec::new(),
            apps: Vec::new(),
            host_gids: Vec::new(),
            record_events: true,
            events: Vec::new(),
            ether_in: Mailbox::new(),
            ether_out: Vec::new(),
            spent: Vec::new(),
            out_seq: 0,
            sched: Scheduler::new(),
            dirty: DirtySet::default(),
            line_host: Vec::new(),
            line_tnc: Vec::new(),
            chan_tncs: Vec::new(),
            chan_digis: Vec::new(),
            chan_beacons: Vec::new(),
            host_apps: Vec::new(),
            flush_after_apps: DirtyCat::default(),
            cal: CalCache::default(),
            scratch: Vec::new(),
            run_scratch: Vec::new(),
            key_scratch: Vec::new(),
        }
    }

    /// Replaces the calendar backend (entries rebuild at the next sync).
    pub(crate) fn set_sched(&mut self, sched: Scheduler<Key>) {
        self.sched = sched;
    }

    pub(crate) fn sched_stats(&self) -> sim::sched::SchedStats {
        self.sched.stats()
    }

    /// The earliest thing this shard must wake for: its calendar head and
    /// any queued cross-shard delivery. (Indexed engine's view of time.)
    pub(crate) fn next_event_indexed(&mut self) -> Option<SimTime> {
        let sp = self.sched.peek_time();
        let ep = self.ether_in.peek().map(|e| e.0);
        match (sp, ep) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// The earliest self-reported deadline of any component, by scanning
    /// every component (the reference stepper's view of time).
    pub(crate) fn scan_next_deadline(&self, segs: Option<&Vec<Segment>>) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        let mut fold = |t: Option<SimTime>| {
            if let Some(t) = t {
                best = Some(best.map_or(t, |b: SimTime| b.min(t)));
            }
        };
        for l in &self.lines {
            fold(l.next_deadline());
        }
        for c in &self.channels {
            fold(c.next_deadline());
        }
        if let Some(segments) = segs {
            for s in segments {
                fold(s.next_deadline());
            }
        }
        for t in &self.tncs {
            fold(t.tnc.next_deadline());
        }
        for d in &self.digis {
            fold(d.digi.next_deadline());
        }
        for b in &self.beacons {
            fold(b.beacon.next_deadline());
        }
        for h in &self.hosts {
            fold(h.host.next_deadline());
        }
        for a in &self.apps {
            fold(a.app.next_deadline());
        }
        fold(self.ether_in.peek().map(|e| e.0));
        best
    }

    pub(crate) fn start_apps(&mut self) {
        let now = self.now;
        let mut apps = std::mem::take(&mut self.apps);
        for entry in &mut apps {
            if !entry.started {
                entry.started = true;
                entry.app.on_start(now, &mut self.hosts[entry.host].host);
            }
        }
        self.apps = apps;
    }

    /// Rebuilds the routing maps, registers every component's current
    /// deadline, and marks everything dirty — run-call entry is the one
    /// moment external mutations (via `host_mut`, `tnc_mut`, new
    /// components…) can have happened without the world noticing.
    pub(crate) fn sync_all(&mut self, segs: &mut Segs<'_>) {
        self.line_host = vec![None; self.lines.len()];
        for (hi, h) in self.hosts.iter().enumerate() {
            if let Some(li) = h.serial {
                if self.line_host[li].is_none() {
                    self.line_host[li] = Some(hi);
                }
            }
        }
        self.line_tnc = vec![None; self.lines.len()];
        for (ti, t) in self.tncs.iter().enumerate() {
            if self.line_tnc[t.line].is_none() {
                self.line_tnc[t.line] = Some(ti);
            }
        }
        self.chan_tncs = vec![Vec::new(); self.channels.len()];
        for (ti, t) in self.tncs.iter().enumerate() {
            self.chan_tncs[t.chan].push(ti);
        }
        self.chan_digis = vec![Vec::new(); self.channels.len()];
        for (di, d) in self.digis.iter().enumerate() {
            self.chan_digis[d.chan].push(di);
        }
        self.chan_beacons = vec![Vec::new(); self.channels.len()];
        for (bi, b) in self.beacons.iter().enumerate() {
            self.chan_beacons[b.chan].push(bi);
        }
        self.host_apps = vec![Vec::new(); self.hosts.len()];
        for (ai, a) in self.apps.iter().enumerate() {
            self.host_apps[a.host].push(ai);
        }
        let nsegs = segs.as_ref().map_or(0, |s| s.len());
        let sizes = [
            self.lines.len(),
            self.channels.len(),
            nsegs,
            self.tncs.len(),
            self.digis.len(),
            self.beacons.len(),
            self.hosts.len(),
            self.apps.len(),
        ];
        self.flush_after_apps.reset_clear(self.hosts.len());
        self.cal.reset(sizes);
        self.dirty.mark_all(sizes);
        for li in 0..self.lines.len() {
            self.reg_line(li);
        }
        for ci in 0..self.channels.len() {
            self.reg_chan(ci);
        }
        if let Some(segments) = segs {
            for si in 0..segments.len() {
                self.reg_seg(si, segments);
            }
        }
        for ti in 0..self.tncs.len() {
            self.reg_tnc(ti);
        }
        for di in 0..self.digis.len() {
            self.reg_digi(di);
        }
        for bi in 0..self.beacons.len() {
            self.reg_beacon(bi);
        }
        for hi in 0..self.hosts.len() {
            self.reg_host(hi);
        }
        for ai in 0..self.apps.len() {
            self.reg_app(ai);
        }
    }

    // Deadline-change reporting: re-register a component after anything
    // may have moved its deadline. Unchanged deadlines are a no-op.

    fn reg_line(&mut self, li: usize) {
        let d = self.lines[li].next_deadline();
        match self.cal.lines.get_mut(li) {
            // Cache hit: the calendar already holds this deadline.
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            // Reference stepper: sync_all never sized the cache.
            None => {}
        }
        self.sched.set_deadline(Key::Line(li), d);
    }

    fn reg_chan(&mut self, ci: usize) {
        let d = self.channels[ci].next_deadline();
        match self.cal.chans.get_mut(ci) {
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            None => {}
        }
        self.sched.set_deadline(Key::Chan(ci), d);
    }

    fn reg_seg(&mut self, si: usize, segments: &[Segment]) {
        let d = segments[si].next_deadline();
        match self.cal.segs.get_mut(si) {
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            None => {}
        }
        self.sched.set_deadline(Key::Seg(si), d);
    }

    fn reg_tnc(&mut self, ti: usize) {
        let d = self.tncs[ti].tnc.next_deadline();
        match self.cal.tncs.get_mut(ti) {
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            None => {}
        }
        self.sched.set_deadline(Key::Tnc(ti), d);
    }

    fn reg_digi(&mut self, di: usize) {
        let d = self.digis[di].digi.next_deadline();
        match self.cal.digis.get_mut(di) {
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            None => {}
        }
        self.sched.set_deadline(Key::Digi(di), d);
    }

    fn reg_beacon(&mut self, bi: usize) {
        let d = self.beacons[bi].beacon.next_deadline();
        match self.cal.beacons.get_mut(bi) {
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            None => {}
        }
        self.sched.set_deadline(Key::Beacon(bi), d);
    }

    fn reg_host(&mut self, hi: usize) {
        let d = self.hosts[hi].host.next_deadline();
        match self.cal.hosts.get_mut(hi) {
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            None => {}
        }
        self.sched.set_deadline(Key::Host(hi), d);
    }

    fn reg_app(&mut self, ai: usize) {
        let d = self.apps[ai].app.next_deadline();
        match self.cal.apps.get_mut(ai) {
            Some(slot) if *slot == d => {
                self.sched.stats_mut().unchanged += 1;
                return;
            }
            Some(slot) => *slot = d,
            None => {}
        }
        self.sched.set_deadline(Key::App(ai), d);
    }

    /// Marks every app on host `hi` dirty (the host was touched, so apps
    /// watching its state — windows, tty queue — must get a poll).
    fn mark_apps(&mut self, hi: usize) {
        for i in 0..self.host_apps[hi].len() {
            let ai = self.host_apps[hi][i];
            self.dirty.mark(Key::App(ai));
        }
    }

    /// The earliest *other* event competing with the fast lane: the
    /// calendar head and any queued cross-shard delivery.
    fn other_next(&mut self) -> Option<SimTime> {
        let sp = self.sched.peek_time();
        let ep = self.ether_in.peek().map(|e| e.0);
        match (sp, ep) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// The indexed run loop over one window: pop due keys from the
    /// calendar (and due cross-shard deliveries), mark them dirty, settle
    /// the instant over dirty components only.
    pub(crate) fn run_window_indexed(&mut self, w_end: SimTime, segs: &mut Segs<'_>) {
        let mut popped = std::mem::take(&mut self.key_scratch);
        while let Some(d) = self.next_event_indexed() {
            if d > w_end {
                break;
            }
            if d > self.now {
                self.now = d;
                self.sched.stats_mut().instants += 1;
            }
            popped.clear();
            while self.sched.peek_time().is_some_and(|pt| pt <= self.now) {
                let k = self.sched.pop().expect("peeked entry pops").1;
                *self.cal.slot(k) = None;
                popped.push(k);
            }
            // Dense per-character band: a lone serial-line deadline with no
            // other pending work takes the batched fast lane.
            if popped.len() == 1
                && self.dirty.count == 0
                && self.ether_in.peek().is_none_or(|e| e.0 > self.now)
            {
                if let Key::Line(li) = popped[0] {
                    self.key_scratch = std::mem::take(&mut popped);
                    self.serial_fast_lane(li, w_end, segs);
                    popped = std::mem::take(&mut self.key_scratch);
                    continue;
                }
            }
            for &key in &popped {
                self.dirty.mark(key);
            }
            self.settle_dirty(false, segs);
        }
        self.key_scratch = popped;
    }

    /// The reference run loop over one window: scan for the earliest
    /// deadline, advance, re-poll everything until quiescent.
    pub(crate) fn run_window_scan(&mut self, w_end: SimTime, segs: &mut Segs<'_>) {
        while let Some(d) = self.scan_next_deadline(segs.as_deref()) {
            if d > w_end {
                break;
            }
            self.now = self.now.max(d);
            self.settle_scan(segs);
        }
    }

    /// Batched serial delivery (the lone-line instant). Advances character
    /// by character at exact completion times with **zero calendar traffic
    /// per byte**, as long as each delivered character is *quiet*: the
    /// receiver's deadline, pending output, tty queue, and (TNC side)
    /// frame/param counters are unchanged — i.e. only the per-character
    /// interrupt accounting happened, which stays per-byte (§3). The first
    /// non-quiet character (frame boundary, param command) falls back to a
    /// full settle at its exact instant.
    fn serial_fast_lane(&mut self, li: usize, limit: SimTime, segs: &mut Segs<'_>) {
        let host_idx = self.line_host[li];
        let tnc_idx = self.line_tnc[li];
        let mut run_buf = std::mem::take(&mut self.run_scratch);
        loop {
            let mut quiet = true;
            // Run batching: when one direction carries a clean burst, pull
            // every character up to (and including) the next FEND in a
            // single call and hand the whole slice to the receiver's bulk
            // path. Characters before a FEND are provably quiet — they can
            // only be buffered — so the one quiet check at the run's end
            // observes everything the per-character loop would have.
            // Counter bookkeeping matches that loop exactly: `m` batched
            // characters and `m − 1` further time instants (the first was
            // counted when this deadline popped).
            let before = self.other_next();
            if let Some(run) =
                self.lines[li].take_run(self.now, limit, before, kiss::FEND, &mut run_buf)
            {
                let m = run_buf.len() as u64;
                self.sched.stats_mut().batched_chars += m;
                self.sched.stats_mut().instants += m - 1;
                self.now = run.t_last;
                match run.to {
                    End::A => {
                        if let Some(hi) = host_idx {
                            let char_time = self.lines[li].config().char_time();
                            let h = &mut self.hosts[hi].host;
                            let before_dl = h.next_deadline();
                            let before_tty = h.tty_len();
                            h.on_serial_run(run.t0, char_time, &run_buf);
                            if h.has_pending_output()
                                || h.next_deadline() != before_dl
                                || h.tty_len() != before_tty
                            {
                                self.dirty.mark(Key::Host(hi));
                                self.mark_apps(hi);
                                quiet = false;
                            }
                        }
                    }
                    End::B => {
                        if let Some(ti) = tnc_idx {
                            let t = &mut self.tncs[ti].tnc;
                            let before_dl = t.next_deadline();
                            let s = t.stats();
                            let before = (s.from_host, s.params);
                            t.on_serial_bytes(&run_buf);
                            let s = t.stats();
                            if (s.from_host, s.params) != before || t.next_deadline() != before_dl {
                                self.dirty.mark(Key::Tnc(ti));
                                quiet = false;
                            }
                        }
                    }
                }
            } else {
                // Per-character reference path: noisy or bidirectional
                // lines, or an undrained FIFO.
                self.lines[li].advance(self.now);
                let host_bytes = self.lines[li].take_rx(End::A);
                if !host_bytes.is_empty() {
                    self.sched.stats_mut().batched_chars += host_bytes.len() as u64;
                    if let Some(hi) = host_idx {
                        let h = &mut self.hosts[hi].host;
                        let before_dl = h.next_deadline();
                        let before_tty = h.tty_len();
                        h.on_serial_bytes(self.now, &host_bytes);
                        if h.has_pending_output()
                            || h.next_deadline() != before_dl
                            || h.tty_len() != before_tty
                        {
                            self.dirty.mark(Key::Host(hi));
                            self.mark_apps(hi);
                            quiet = false;
                        }
                    }
                }
                let tnc_bytes = self.lines[li].take_rx(End::B);
                if !tnc_bytes.is_empty() {
                    self.sched.stats_mut().batched_chars += tnc_bytes.len() as u64;
                    if let Some(ti) = tnc_idx {
                        let t = &mut self.tncs[ti].tnc;
                        let before_dl = t.next_deadline();
                        let s = t.stats();
                        let before = (s.from_host, s.params);
                        for &b in &tnc_bytes {
                            t.on_serial_byte(b);
                        }
                        let s = t.stats();
                        if (s.from_host, s.params) != before || t.next_deadline() != before_dl {
                            self.dirty.mark(Key::Tnc(ti));
                            quiet = false;
                        }
                    }
                }
            }
            let line_dl = self.lines[li].next_deadline();
            if !quiet {
                // The delivery that broke quiescence counts as this
                // instant's first-pass progress, as it did when the
                // reference stepper delivered it inside `settle`.
                self.reg_line(li);
                self.run_scratch = run_buf;
                self.settle_dirty(true, segs);
                return;
            }
            if let Some(dl) = line_dl {
                // Keep batching while the line is strictly the next event.
                if dl <= limit && self.other_next().is_none_or(|o| dl < o) {
                    self.now = dl;
                    self.sched.stats_mut().instants += 1;
                    continue;
                }
            }
            self.reg_line(li);
            self.run_scratch = run_buf;
            return;
        }
    }

    /// Processes everything dirty at `self.now` until the instant is
    /// quiet, visiting categories in the same fixed order as the
    /// reference stepper: lines → channels → MACs → segments → hosts →
    /// apps. `initial_progress` seeds the first pass's progress flag when
    /// the caller already made progress at this instant (the fast lane's
    /// bail-out delivery).
    pub(crate) fn settle_dirty(&mut self, initial_progress: bool, segs: &mut Segs<'_>) {
        let now = self.now;
        let mut first = initial_progress;
        let mut todo = std::mem::take(&mut self.scratch);
        for _pass in 0..10_000 {
            let mut progressed = std::mem::take(&mut first);
            let mut polled: u64 = 0;

            // 1. Serial lines: finish due characters, route rx bytes.
            todo.clear();
            if !self.dirty.lines.list.is_empty() {
                self.dirty.count -= self.dirty.lines.drain_into(&mut todo);
            }
            for &li in &todo {
                polled += 1;
                if self.lines[li].next_deadline().is_some_and(|t| t <= now) {
                    self.lines[li].advance(now);
                }
                // Host side (End::A).
                let host_bytes = self.lines[li].take_rx(End::A);
                if !host_bytes.is_empty() {
                    progressed = true;
                    if let Some(hi) = self.line_host[li] {
                        self.hosts[hi].host.on_serial_bytes(now, &host_bytes);
                        self.dirty.mark(Key::Host(hi));
                        self.mark_apps(hi);
                    }
                }
                // TNC side (End::B).
                let tnc_bytes = self.lines[li].take_rx(End::B);
                if !tnc_bytes.is_empty() {
                    progressed = true;
                    if let Some(ti) = self.line_tnc[li] {
                        for &b in &tnc_bytes {
                            self.tncs[ti].tnc.on_serial_byte(b);
                        }
                        self.dirty.mark(Key::Tnc(ti));
                    }
                }
                self.reg_line(li);
            }

            // 2. Radio channels: completed transmissions become
            // receptions, and the carrier drops — wake the stations whose
            // queued frames were blocked only on carrier sense (everyone
            // else has a registered deadline of their own, or nothing to
            // send; a carrier turning *busy* never enables a send).
            todo.clear();
            if !self.dirty.chans.list.is_empty() {
                self.dirty.count -= self.dirty.chans.drain_into(&mut todo);
            }
            for &ci in &todo {
                polled += 1;
                if self.channels[ci].next_deadline().is_some_and(|t| t <= now) {
                    let receptions = self.channels[ci].advance(now);
                    if !receptions.is_empty() {
                        progressed = true;
                    }
                    for rx in receptions {
                        self.route_reception(now, ci, rx.to, &rx);
                    }
                    for i in 0..self.chan_tncs[ci].len() {
                        let ti = self.chan_tncs[ci][i];
                        if self.tncs[ti].tnc.waiting_on_carrier() {
                            self.dirty.mark(Key::Tnc(ti));
                        }
                    }
                    for i in 0..self.chan_digis[ci].len() {
                        let di = self.chan_digis[ci][i];
                        if self.digis[di].digi.waiting_on_carrier() {
                            self.dirty.mark(Key::Digi(di));
                        }
                    }
                    for i in 0..self.chan_beacons[ci].len() {
                        let bi = self.chan_beacons[ci][i];
                        if self.beacons[bi].beacon.waiting_on_carrier() {
                            self.dirty.mark(Key::Beacon(bi));
                        }
                    }
                }
                self.reg_chan(ci);
            }

            // 3. MAC polls (TNCs, digipeaters, beacons), in the reference
            // stepper's category/index order so shared-RNG draws match. A
            // MAC still due at this instant (zero slot time) is re-marked
            // so it re-draws each pass, exactly like the re-poll-all
            // reference.
            todo.clear();
            if !self.dirty.tncs.list.is_empty() {
                self.dirty.count -= self.dirty.tncs.drain_into(&mut todo);
            }
            for &ti in &todo {
                polled += 1;
                let ci = self.tncs[ti].chan;
                let entry = &mut self.tncs[ti];
                entry.tnc.poll(now, &mut self.channels[ci], &mut self.rng);
                if entry.tnc.next_deadline().is_some_and(|d| d <= now) {
                    self.dirty.mark(Key::Tnc(ti));
                }
                self.reg_tnc(ti);
                self.reg_chan(ci);
            }
            todo.clear();
            if !self.dirty.digis.list.is_empty() {
                self.dirty.count -= self.dirty.digis.drain_into(&mut todo);
            }
            for &di in &todo {
                polled += 1;
                let ci = self.digis[di].chan;
                let entry = &mut self.digis[di];
                entry.digi.poll(now, &mut self.channels[ci], &mut self.rng);
                if entry.digi.next_deadline().is_some_and(|d| d <= now) {
                    self.dirty.mark(Key::Digi(di));
                }
                self.reg_digi(di);
                self.reg_chan(ci);
            }
            todo.clear();
            if !self.dirty.beacons.list.is_empty() {
                self.dirty.count -= self.dirty.beacons.drain_into(&mut todo);
            }
            for &bi in &todo {
                polled += 1;
                let ci = self.beacons[bi].chan;
                let entry = &mut self.beacons[bi];
                entry.beacon.poll(now, &mut self.channels[ci]);
                if entry.beacon.next_deadline().is_some_and(|d| d <= now) {
                    self.dirty.mark(Key::Beacon(bi));
                }
                self.reg_beacon(bi);
                self.reg_chan(ci);
            }

            // 4. Ethernet: direct segments (single-shard), or timed
            // cross-shard deliveries the coordinator queued (multi-shard).
            match segs {
                Some(segments) => {
                    todo.clear();
                    if !self.dirty.segs.list.is_empty() {
                        self.dirty.count -= self.dirty.segs.drain_into(&mut todo);
                    }
                    for &si in &todo {
                        polled += 1;
                        if segments[si].next_deadline().is_some_and(|t| t <= now) {
                            let deliveries = segments[si].advance(now);
                            if !deliveries.is_empty() {
                                progressed = true;
                            }
                            for (nic, frame) in deliveries {
                                if let Some(hi) =
                                    self.hosts.iter().position(|h| h.nic == Some((si, nic)))
                                {
                                    self.hosts[hi].host.on_ether_frame(now, &frame);
                                    self.dirty.mark(Key::Host(hi));
                                    self.mark_apps(hi);
                                }
                            }
                        }
                        self.reg_seg(si, segments);
                    }
                }
                None => {
                    while self.ether_in.peek().is_some_and(|e| e.0 <= now) {
                        let (_, hi, frame) = self.ether_in.pop().expect("peeked entry pops");
                        progressed = true;
                        polled += 1;
                        self.hosts[hi].host.on_ether_frame(now, &frame);
                        self.dirty.mark(Key::Host(hi));
                        self.mark_apps(hi);
                        self.spent.push(frame);
                    }
                }
            }

            // 5. Hosts: CPU-gated stack work, then route their output.
            todo.clear();
            if !self.dirty.hosts.list.is_empty() {
                self.dirty.count -= self.dirty.hosts.drain_into(&mut todo);
            }
            for &hi in &todo {
                polled += 1;
                if self.hosts[hi]
                    .host
                    .next_deadline()
                    .is_some_and(|t| t <= now)
                {
                    self.hosts[hi].host.advance(now);
                    self.mark_apps(hi);
                }
                if self.flush_host(now, hi, segs) {
                    progressed = true;
                    // on_event handlers may have queued more output and
                    // changed app state; catch both this instant.
                    self.dirty.mark(Key::Host(hi));
                    self.mark_apps(hi);
                    self.flush_after_apps.mark(hi);
                }
                self.reg_host(hi);
            }

            // 6. Applications: poll dirty apps in index order, then flush
            // their hosts in host-index order (the reference polls all
            // apps, then flushes all hosts).
            todo.clear();
            if !self.dirty.apps.list.is_empty() {
                self.dirty.count -= self.dirty.apps.drain_into(&mut todo);
            }
            for &ai in &todo {
                polled += 1;
                let hi = self.apps[ai].host;
                let entry = &mut self.apps[ai];
                entry.app.poll(now, &mut self.hosts[hi].host);
                self.reg_app(ai);
                self.flush_after_apps.mark(hi);
            }
            todo.clear();
            if !self.flush_after_apps.list.is_empty() {
                self.flush_after_apps.drain_into(&mut todo);
            }
            for &hi in &todo {
                if self.flush_host(now, hi, segs) {
                    progressed = true;
                    self.dirty.mark(Key::Host(hi));
                    self.mark_apps(hi);
                }
                self.reg_host(hi);
            }

            self.sched.stats_mut().polled += polled;
            if !progressed {
                self.scratch = todo;
                return;
            }
        }
        panic!("world did not settle at {now}");
    }

    /// Processes everything due at `self.now` until the instant is quiet,
    /// visiting every component on every pass (the reference stepper).
    pub(crate) fn settle_scan(&mut self, segs: &mut Segs<'_>) {
        let now = self.now;
        for _pass in 0..10_000 {
            let mut progressed = false;

            // 1. Serial lines: finish due characters, route rx bytes.
            for li in 0..self.lines.len() {
                if self.lines[li].next_deadline().is_some_and(|t| t <= now) {
                    self.lines[li].advance(now);
                }
                // Host side (End::A).
                let host_bytes = self.lines[li].take_rx(End::A);
                if !host_bytes.is_empty() {
                    progressed = true;
                    if let Some(h) = self.hosts.iter_mut().find(|h| h.serial == Some(li)) {
                        h.host.on_serial_bytes(now, &host_bytes);
                    }
                }
                // TNC side (End::B).
                let tnc_bytes = self.lines[li].take_rx(End::B);
                if !tnc_bytes.is_empty() {
                    progressed = true;
                    if let Some(t) = self.tncs.iter_mut().find(|t| t.line == li) {
                        for b in tnc_bytes {
                            t.tnc.on_serial_byte(b);
                        }
                    }
                }
            }

            // 2. Radio channels: completed transmissions become receptions.
            for ci in 0..self.channels.len() {
                if self.channels[ci].next_deadline().is_none_or(|t| t > now) {
                    continue;
                }
                let receptions = self.channels[ci].advance(now);
                if !receptions.is_empty() {
                    progressed = true;
                }
                for rx in receptions {
                    self.route_reception(now, ci, rx.to, &rx);
                }
            }

            // 3. MAC polls (TNCs, digipeaters, beacons).
            for t in &mut self.tncs {
                t.tnc.poll(now, &mut self.channels[t.chan], &mut self.rng);
            }
            for d in &mut self.digis {
                d.digi.poll(now, &mut self.channels[d.chan], &mut self.rng);
            }
            for b in &mut self.beacons {
                b.beacon.poll(now, &mut self.channels[b.chan]);
            }

            // 4. Ethernet: direct segments, or queued cross-shard
            // deliveries.
            match segs {
                Some(segments) => {
                    for si in 0..segments.len() {
                        if segments[si].next_deadline().is_none_or(|t| t > now) {
                            continue;
                        }
                        let deliveries = segments[si].advance(now);
                        if !deliveries.is_empty() {
                            progressed = true;
                        }
                        for (nic, frame) in deliveries {
                            if let Some(h) =
                                self.hosts.iter_mut().find(|h| h.nic == Some((si, nic)))
                            {
                                h.host.on_ether_frame(now, &frame);
                            }
                        }
                    }
                }
                None => {
                    while self.ether_in.peek().is_some_and(|e| e.0 <= now) {
                        let (_, hi, frame) = self.ether_in.pop().expect("peeked entry pops");
                        progressed = true;
                        self.hosts[hi].host.on_ether_frame(now, &frame);
                        self.spent.push(frame);
                    }
                }
            }

            // 5. Hosts: CPU-gated stack work, then route their output.
            for hi in 0..self.hosts.len() {
                if self.hosts[hi]
                    .host
                    .next_deadline()
                    .is_some_and(|t| t <= now)
                {
                    self.hosts[hi].host.advance(now);
                }
                progressed |= self.flush_host(now, hi, segs);
            }

            // 6. Applications.
            progressed |= self.run_apps(now, segs);

            if !progressed {
                return;
            }
        }
        panic!("world did not settle at {now}");
    }

    // --- Shared routing (both steppers) -------------------------------------

    fn route_reception(
        &mut self,
        now: SimTime,
        chan: usize,
        to: StationId,
        rx: &radio::channel::Reception,
    ) {
        if self.trace.is_enabled() {
            self.trace.record(
                now,
                sim::trace::Category::Radio,
                format!("sta{}", to.0),
                format!(
                    "heard {}B from sta{}{}",
                    rx.data.len(),
                    rx.from.0,
                    if rx.corrupted { " (corrupted)" } else { "" }
                ),
            );
        }
        for i in 0..self.tncs.len() {
            if self.tncs[i].chan == chan && self.tncs[i].tnc.station() == to {
                if let Some(bytes) = self.tncs[i].tnc.on_reception(rx) {
                    if self.trace.is_enabled() {
                        self.trace.record(
                            now,
                            sim::trace::Category::Kiss,
                            format!("tnc:{}", self.tncs[i].tnc.addr()),
                            format!("passed {}B frame up the serial line", bytes.len()),
                        );
                    }
                    let li = self.tncs[i].line;
                    self.lines[li].send(now, End::B, &bytes);
                    self.reg_line(li);
                }
                return;
            }
        }
        for d in &mut self.digis {
            if d.chan == chan && d.digi.station() == to {
                d.digi.on_reception(rx);
                return;
            }
        }
        // Beacons ignore receptions.
    }

    /// Routes a host's outbox and records/dispatches its events. Links the
    /// host pushed output into get their new deadlines registered here, so
    /// both steppers keep the calendar coherent. Ethernet output goes to
    /// the segment directly (single-shard) or to `ether_out` for the
    /// coordinator (multi-shard).
    fn flush_host(&mut self, now: SimTime, hi: usize, segs: &mut Segs<'_>) -> bool {
        let mut progressed = false;
        let outs = self.hosts[hi].host.take_outbox();
        let serial = self.hosts[hi].serial;
        let nic = self.hosts[hi].nic;
        for out in outs {
            progressed = true;
            match out {
                HostOut::SerialTx(bytes) => {
                    if let Some(li) = serial {
                        self.lines[li].send(now, End::A, &bytes);
                        self.reg_line(li);
                    }
                }
                HostOut::EtherTx(frame) => {
                    if let Some((seg, nic)) = nic {
                        match segs {
                            Some(segments) => {
                                segments[seg].send(now, nic, frame);
                                self.reg_seg(seg, segments);
                            }
                            None => {
                                self.out_seq += 1;
                                self.ether_out.push(OutFrame {
                                    time: now,
                                    seq: self.out_seq,
                                    seg,
                                    nic,
                                    frame,
                                });
                            }
                        }
                    }
                }
            }
        }
        if self.trace.is_enabled() && self.hosts[hi].host.filter_engine().is_some() {
            // Tracing drives the filter's decision log: flip it on the
            // first time we flush under an enabled trace, then drain
            // each decision as one gateway-policy entry.
            let host = &mut self.hosts[hi].host;
            host.set_filter_logging(true);
            let notes = host.take_filter_notes();
            if !notes.is_empty() {
                let name = self.hosts[hi].host.name.clone();
                for note in notes {
                    self.trace.record(
                        now,
                        sim::trace::Category::Acl,
                        name.clone(),
                        note.to_string(),
                    );
                }
            }
        }
        let events = self.hosts[hi].host.take_events();
        if !events.is_empty() {
            progressed = true;
            let gid = HostId::from_raw(self.host_gids[hi]);
            let mut apps = std::mem::take(&mut self.apps);
            for ev in events {
                if self.trace.is_enabled() {
                    self.trace.record(
                        now,
                        sim::trace::Category::App,
                        self.hosts[hi].host.name.clone(),
                        format!("{ev:?}"),
                    );
                }
                for entry in apps.iter_mut().filter(|a| a.host == hi) {
                    entry.app.on_event(now, &ev, &mut self.hosts[hi].host);
                }
                if self.record_events {
                    self.events.push((gid, now, ev));
                }
            }
            self.apps = apps;
        }
        progressed
    }

    /// Reference-stepper app step: poll every app, then flush every host.
    fn run_apps(&mut self, now: SimTime, segs: &mut Segs<'_>) -> bool {
        let mut progressed = false;
        let mut apps = std::mem::take(&mut self.apps);
        for entry in &mut apps {
            entry.app.poll(now, &mut self.hosts[entry.host].host);
        }
        self.apps = apps;
        // App activity shows up as host outbox/event work.
        for hi in 0..self.hosts.len() {
            progressed |= self.flush_host(now, hi, segs);
        }
        progressed
    }
}

/// The one unsafe island in the workspace: a heap-pinned shard cell that
/// can be handed to the worker pool.
mod cell {
    #![allow(unsafe_code)]

    use std::cell::UnsafeCell;

    use super::ShardData;

    /// A heap-pinned [`ShardData`] that worker threads can step.
    ///
    /// # Safety contract (DESIGN.md §11)
    ///
    /// `ShardData` is not `Send` (hosts and apps hold `Rc`/`RefCell`
    /// graphs). Sending it across threads is sound because those graphs
    /// are **shard-closed**: every `Rc` clone of state reachable from a
    /// shard's components lives inside the same shard, so moving the
    /// whole shard moves every reference with it. External handles kept
    /// by scenario builders (shared report cells, encap tables) may only
    /// be touched between run calls — `World::drive` takes `&mut World`
    /// and joins its workers before returning, which gives the required
    /// happens-before edge.
    ///
    /// Exclusivity is phase-based: during a window each shard is claimed
    /// by exactly one worker (an atomic ticket over the active list);
    /// between windows only the coordinator touches shards. Barriers
    /// separate the phases.
    pub(crate) struct ShardBox(Box<UnsafeCell<ShardData>>);

    // SAFETY: see the type-level contract above — shard graphs are
    // closed, access is exclusive per phase, and phases are separated by
    // barriers (or by &mut World outside runs).
    unsafe impl Send for ShardBox {}
    // SAFETY: &ShardBox exposes no &ShardData without `steal`, whose
    // callers uphold the exclusivity contract.
    unsafe impl Sync for ShardBox {}

    impl ShardBox {
        pub(crate) fn new(data: ShardData) -> ShardBox {
            ShardBox(Box::new(UnsafeCell::new(data)))
        }

        /// Shared read access from the owning thread.
        ///
        /// Sound because `World` is `!Send + !Sync` (it holds
        /// `PhantomData<Rc<()>>`), so `&World` — the only path here —
        /// exists on a single thread, and worker threads only live inside
        /// `World::drive`, which holds `&mut World` for its whole extent:
        /// no worker can be running while a `&World` method executes.
        pub(crate) fn get(&self) -> &ShardData {
            // SAFETY: see above — no concurrent mutator can exist.
            unsafe { &*self.0.get() }
        }

        /// Exclusive access through an exclusive handle (always safe).
        pub(crate) fn get_mut(&mut self) -> &mut ShardData {
            self.0.get_mut()
        }

        /// Exclusive access asserted by the caller.
        ///
        /// # Safety
        ///
        /// The caller must hold logical exclusivity over this shard: a
        /// worker that claimed it for the current window, or the
        /// coordinator between barriers.
        #[allow(clippy::mut_from_ref)]
        pub(crate) unsafe fn steal(&self) -> &mut ShardData {
            unsafe { &mut *self.0.get() }
        }
    }
}
