//! The paper's contribution: packet radio in the (simulated) Ultrix kernel.
//!
//! This crate is the reproduction's core. It reimplements, in user-space
//! Rust over the workspace's discrete-event substrate, the kernel work
//! Neuman & Yamamoto describe:
//!
//! * [`ifnet`] — the `if_net` structure and the bounded input queue
//!   (`ifqueue`) that 4.3BSD-derived kernels hang drivers on (§2.2: "we
//!   had to create and initialize a structure of the type if_net").
//! * [`cpu`] — the MicroVAX CPU cost model: per-character interrupt cost
//!   on the DZ line and per-packet protocol cost. This is what makes §3's
//!   "the gateway slows considerably as traffic on the packet radio
//!   subnet climbs" measurable.
//! * [`hwaddr`] — the AX.25 "hardware address" encoding used in ARP:
//!   callsign + SSID *plus an optional digipeater path*, the complication
//!   that forced the paper's authors to write separate ARP routines
//!   (§2.3).
//! * [`arp_engine`] — the per-driver ARP resolver (cache, request
//!   retries, pending-packet queue); one instance per driver, Ethernet or
//!   AX.25, "called inside either the Ethernet driver, or the AX.25
//!   driver".
//! * [`prdriver`] — **the packet radio pseudo-device driver**: the
//!   per-character `rint` interrupt handler with on-the-fly KISS
//!   unescaping, the destination-callsign check, and the PID demux that
//!   sends IP up the stack and everything else to a tty queue for user
//!   programs (§2.2, §2.4).
//! * [`etherdrv`] — the DEQNA-style Ethernet driver the gateway's other
//!   leg uses.
//! * [`host`] — a complete simulated machine: stack + drivers + CPU +
//!   tty queue, configurable as a plain host, a PC with a radio, or the
//!   MicroVAX gateway itself.
//! * [`world`] — the event-driven testbed tying hosts, serial lines,
//!   TNCs, radio channels, digipeaters, and Ethernet segments together.
//! * [`appgw`] — §2.4's future work: the application-layer gateway that
//!   bridges non-IP AX.25 connected-mode users onto TCP services.
//! * [`ripd`] — the RIP44 route-exchange daemon (§4.2's fix): gateways
//!   broadcast the subnets they serve and learn their peers' as tunnel
//!   endpoints or overriding routes, with expiry and hold-down.
//! * [`scenario`] — canned topologies (the paper's Figure 1 setup and
//!   the larger experiment layouts).

// Unsafe is denied everywhere except the one documented island in
// `shard::cell` (the worker-pool shard hand-off, DESIGN.md §11).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod appgw;
pub mod arp_engine;
pub mod cpu;
pub mod etherdrv;
pub mod host;
pub mod hwaddr;
pub mod ifnet;
pub mod prdriver;
pub mod ripd;
pub mod scenario;
mod shard;
pub mod world;

pub use host::{Host, HostConfig, HostOut};
pub use world::{HostId, ShardId, World};
