//! Single-producer / single-consumer mailboxes for cross-shard hand-off.
//!
//! The sharded engine (DESIGN.md §11) moves packets between shards through
//! per-shard mailboxes: the coordinator pushes timed deliveries in
//! nondecreasing-time order between windows, the owning shard pops them
//! while stepping. The discipline is SPSC *by phase*, not by lock: pushes
//! and pops never overlap in time (a barrier separates them), so a plain
//! ring buffer suffices. The ring keeps its capacity across windows, so a
//! warmed-up mailbox performs zero allocations per hand-off — the same
//! contract as the §6 packet pool, asserted by the `shard_sync` bench.

use std::collections::VecDeque;

/// Mailbox occupancy and growth counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MailboxStats {
    /// Entries ever pushed.
    pub pushed: u64,
    /// Entries ever popped.
    pub popped: u64,
    /// Times a push had to grow the ring (0 after warm-up).
    pub grows: u64,
    /// High-water mark of queued entries.
    pub peak: usize,
}

/// A FIFO hand-off ring with reusable capacity. See the module docs.
#[derive(Debug)]
pub struct Mailbox<T> {
    ring: VecDeque<T>,
    stats: MailboxStats,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Mailbox::new()
    }
}

impl<T> Mailbox<T> {
    /// An empty mailbox.
    pub fn new() -> Mailbox<T> {
        Mailbox {
            ring: VecDeque::new(),
            stats: MailboxStats::default(),
        }
    }

    /// An empty mailbox with room for `cap` entries before any growth.
    pub fn with_capacity(cap: usize) -> Mailbox<T> {
        Mailbox {
            ring: VecDeque::with_capacity(cap),
            stats: MailboxStats::default(),
        }
    }

    /// Appends an entry (producer side).
    pub fn push(&mut self, entry: T) {
        let cap = self.ring.capacity();
        self.ring.push_back(entry);
        if self.ring.capacity() != cap {
            self.stats.grows += 1;
        }
        self.stats.pushed += 1;
        self.stats.peak = self.stats.peak.max(self.ring.len());
    }

    /// The oldest entry, if any, without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.ring.front()
    }

    /// Removes and returns the oldest entry (consumer side).
    pub fn pop(&mut self) -> Option<T> {
        let e = self.ring.pop_front();
        if e.is_some() {
            self.stats.popped += 1;
        }
        e
    }

    /// Queued entries.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> MailboxStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_counters() {
        let mut m = Mailbox::new();
        m.push(1);
        m.push(2);
        m.push(3);
        assert_eq!(m.peek(), Some(&1));
        assert_eq!(m.pop(), Some(1));
        assert_eq!(m.pop(), Some(2));
        assert_eq!(m.pop(), Some(3));
        assert_eq!(m.pop(), None);
        let s = m.stats();
        assert_eq!((s.pushed, s.popped, s.peak), (3, 3, 3));
    }

    #[test]
    fn warm_ring_stops_growing() {
        let mut m = Mailbox::with_capacity(8);
        for round in 0..10 {
            for i in 0..8 {
                m.push(i);
            }
            while m.pop().is_some() {}
            if round == 0 {
                // Everything after the first full round reuses capacity.
                let grows = m.stats().grows;
                assert!(grows <= 1, "pre-sized ring grew {grows} times");
            }
        }
        assert!(m.stats().grows <= 1);
    }
}
