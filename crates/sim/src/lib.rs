//! Discrete-event simulation kernel for the packet-radio gateway testbed.
//!
//! This crate is the bottom-most substrate of the reproduction of
//! *Adding Packet Radio to the Ultrix Kernel* (Neuman & Yamamoto, USENIX
//! 1988). Every other crate in the workspace is written in a *sans-io*
//! style: protocol and device objects consume inputs stamped with a
//! [`SimTime`], return actions, and expose their next deadline. This crate
//! provides the pieces that glue those objects into a deterministic,
//! reproducible simulation:
//!
//! * [`time`] — virtual time ([`SimTime`]) and durations ([`SimDuration`]),
//!   plus [`Bandwidth`] for serialization-delay math.
//! * [`bytekernels`] — word-at-a-time (SWAR) byte-scanning primitives for
//!   the bulk datapath kernels (KISS deframing/escaping).
//! * [`queue`] — a cancellable, deterministic [`EventQueue`].
//! * [`fxhash`] — a fast deterministic hasher for the calendar's maps.
//! * [`sched`] — a deadline-indexed component [`Scheduler`] (lazy re-keying
//!   over the queue, optional hierarchical timer-wheel backend).
//! * [`rng`] — a seeded random-number generator ([`SimRng`]) so that every
//!   experiment run is exactly repeatable.
//! * [`stats`] — counters, online mean/variance, histograms, and time
//!   series used by the experiment harnesses.
//! * [`wire`] — bounds-checked big-endian readers and writers shared by all
//!   of the frame/packet codecs, plus the [`wire::Codec`] trait they
//!   implement.
//! * [`pktbuf`] — pooled [`PacketBuf`]s and the [`FrameSink`]/[`ByteSink`]
//!   emit traits: the zero-allocation datapath buffer contract.
//! * [`trace`] — a lightweight, in-memory event trace.
//!
//! # Examples
//!
//! ```
//! use sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "later");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytekernels;
pub mod fxhash;
pub mod mailbox;
pub mod pktbuf;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wire;

pub use mailbox::{Mailbox, MailboxStats};
pub use pktbuf::{BufPool, ByteSink, FrameSink, PacketBuf, PoolStats, SinkFn};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use sched::{SchedStats, Scheduler};
pub use time::{Bandwidth, SimDuration, SimTime};
