//! The cancellable, deterministic event queue at the heart of the simulator.
//!
//! Determinism matters: the experiment harnesses must produce identical
//! output for identical seeds. Ties in event time are therefore broken by
//! insertion order (a monotone sequence number), never by heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::fxhash::FxHashSet;

use crate::time::SimTime;

/// A handle to a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(pub(crate) u64);

/// A time-ordered queue of events of type `E`.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled. Cancellation is O(1) amortized: cancelled ids are kept in a
/// tombstone set and skipped on pop.
///
/// # Examples
///
/// ```
/// use sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let id = q.schedule(SimTime::from_secs(1), "tick");
/// q.schedule(SimTime::from_secs(2), "tock");
/// q.cancel(id);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "tock")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: FxHashSet<u64>,
    /// Seqs that are scheduled and neither fired nor cancelled.
    pending: FxHashSet<u64>,
    next_seq: u64,
    /// Tombstoned entries skipped while popping or peeking.
    tombstone_skips: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: FxHashSet::default(),
            pending: FxHashSet::default(),
            next_seq: 0,
            tombstone_skips: 0,
        }
    }

    /// Schedules `event` to fire at `time`, returning a cancellation handle.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                self.tombstone_skips += 1;
                continue;
            }
            self.pending.remove(&entry.seq);
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            match self.heap.peek() {
                None => return None,
                Some(entry) if self.cancelled.contains(&entry.seq) => {
                    let seq = entry.seq;
                    self.heap.pop();
                    self.cancelled.remove(&seq);
                    self.tombstone_skips += 1;
                }
                Some(entry) => return Some(entry.time),
            }
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total cancelled entries lazily removed during pops/peeks so far.
    pub fn tombstone_skips(&self) -> u64 {
        self.tombstone_skips
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime::from_secs(1), ());
        let _b = q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        let mut now = SimTime::ZERO;
        q.schedule(now + SimDuration::from_millis(10), 0u32);
        let mut fired = Vec::new();
        while let Some((t, ev)) = q.pop() {
            now = t;
            fired.push(ev);
            if ev < 5 {
                q.schedule(now + SimDuration::from_millis(10), ev + 1);
            }
        }
        assert_eq!(fired, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(now, SimTime::from_millis(60));
    }
}
