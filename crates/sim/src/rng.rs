//! Deterministic randomness for reproducible experiments.
//!
//! All stochastic behaviour in the testbed — CSMA persistence draws,
//! workload inter-arrival jitter, bit-error injection — flows through a
//! [`SimRng`] seeded once per run, so the same seed always produces the
//! same packet-level schedule.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded random-number generator wrapping [`rand::rngs::StdRng`].
///
/// The wrapper pins down the handful of draw shapes the simulator uses and
/// keeps the `rand` API surface out of the other crates.
///
/// # Examples
///
/// ```
/// use sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> SimRng {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// station its own stream while preserving run-level determinism.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.random::<u64>())
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random::<f64>() < p
        }
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.random_range(0..bound)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.random_range(lo..hi)
    }

    /// Uniform draw in `[0.0, 1.0)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Exponentially distributed draw with the given mean, for Poisson
    /// inter-arrival workloads.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        let u: f64 = self.inner.random::<f64>();
        // Guard against ln(0).
        -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.random_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        let i = self.inner.random_range(0..items.len());
        &items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..16).map(|_| a.below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_roughly_matches_probability() {
        let mut r = SimRng::seed_from(4);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::seed_from(6);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean = {mean}");
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.below(100), fb.below(100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(10);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::seed_from(11);
        let items = [1, 2, 3];
        for _ in 0..20 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
