//! Deterministic randomness for reproducible experiments.
//!
//! All stochastic behaviour in the testbed — CSMA persistence draws,
//! workload inter-arrival jitter, bit-error injection — flows through a
//! [`SimRng`] seeded once per run, so the same seed always produces the
//! same packet-level schedule.
//!
//! The generator is a self-contained xoshiro256++ core seeded through
//! SplitMix64, so the simulator carries no external RNG dependency and the
//! byte-for-byte schedule of a run is pinned by this file alone.

/// A seeded random-number generator (xoshiro256++ core, SplitMix64 seeding).
///
/// The wrapper pins down the handful of draw shapes the simulator uses and
/// keeps any RNG implementation detail out of the other crates.
///
/// # Examples
///
/// ```
/// use sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> SimRng {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Raw 64-bit draw: one xoshiro256++ step.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; useful for giving each
    /// station its own stream while preserving run-level determinism.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire-style rejection to keep the draw unbiased for all bounds.
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform draw in `[0.0, 1.0)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits give the full double-precision mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed draw with the given mean, for Poisson
    /// inter-arrival workloads.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        let u = self.unit();
        // Guard against ln(0).
        -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..16).map(|_| a.below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_roughly_matches_probability() {
        let mut r = SimRng::seed_from(4);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut r = SimRng::seed_from(12);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::seed_from(6);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean = {mean}");
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.below(100), fb.below(100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(10);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::seed_from(11);
        let items = [1, 2, 3];
        for _ in 0..20 {
            assert!(items.contains(r.pick(&items)));
        }
    }

    #[test]
    fn below_small_bounds_cover_all_values() {
        let mut r = SimRng::seed_from(13);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
