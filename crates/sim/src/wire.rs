//! Bounds-checked big-endian wire codec helpers.
//!
//! Every frame and packet codec in the workspace (KISS, AX.25, Ethernet,
//! IPv4, ICMP, UDP, TCP, ARP) builds on these two types so that malformed
//! input can never panic — a truncated packet decodes to a
//! [`WireError::Truncated`] instead.

use std::fmt;

use crate::pktbuf::ByteSink;

/// The unified codec surface every wire type in the workspace implements
/// (KISS frames, AX.25 frames, Ethernet frames, IPv4/ICMP/UDP/TCP/ARP
/// packets, NET/ROM messages).
///
/// `encode_into` appends the wire form to any [`ByteSink`] — a pooled
/// [`PacketBuf`](crate::PacketBuf) on the datapath, a plain `Vec<u8>` in
/// tests — so encoding composes without intermediate allocations. The
/// provided [`encode`](Codec::encode) convenience collects into a fresh
/// `Vec` for callers off the hot path.
///
/// # Examples
///
/// ```
/// use sim::wire::Codec;
/// use sim::PacketBuf;
///
/// struct Tag(u8);
/// impl Codec for Tag {
///     type Error = ();
///     fn encode_into(&self, out: &mut impl sim::ByteSink) {
///         out.put(self.0);
///     }
///     fn decode(bytes: &[u8]) -> Result<Tag, ()> {
///         bytes.first().map(|b| Tag(*b)).ok_or(())
///     }
/// }
///
/// let mut buf = PacketBuf::new();
/// Tag(7).encode_into(&mut buf);
/// assert_eq!(Tag::decode(&buf).unwrap().0, 7);
/// assert_eq!(Tag(7).encode(), vec![7]);
/// ```
pub trait Codec: Sized {
    /// Decode failure type.
    type Error;

    /// Appends the wire encoding of `self` to `out`.
    fn encode_into(&self, out: &mut impl ByteSink);

    /// Parses one value from `bytes`.
    fn decode(bytes: &[u8]) -> Result<Self, Self::Error>;

    /// Convenience: encodes into a fresh `Vec`.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Errors produced while reading from the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the requested field.
    Truncated,
    /// A length field pointed outside the buffer.
    BadLength,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::BadLength => write!(f, "length field out of range"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over a byte slice with big-endian accessors.
///
/// # Examples
///
/// ```
/// use sim::wire::Reader;
///
/// let buf = [0x12, 0x34, 0x56];
/// let mut r = Reader::new(&buf);
/// assert_eq!(r.u16().unwrap(), 0x1234);
/// assert_eq!(r.u8().unwrap(), 0x56);
/// assert!(r.u8().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads one octet.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian 16-bit value.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let bytes = self.take(2)?;
        Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
    }

    /// Reads a big-endian 32-bit value.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let bytes = self.take(4)?;
        Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads exactly `n` bytes, advancing the cursor.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads all bytes to the end of the buffer.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(|_| ())
    }
}

/// An append-only builder with big-endian writers.
///
/// # Examples
///
/// ```
/// use sim::wire::Writer;
///
/// let mut w = Writer::new();
/// w.u16(0x1234);
/// w.u8(0x56);
/// assert_eq!(w.into_bytes(), vec![0x12, 0x34, 0x56]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(n),
        }
    }

    /// Appends one octet.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian 16-bit value.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian 32-bit value.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Current length in octets.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Overwrites a big-endian 16-bit value at `offset` (for checksums and
    /// length fields patched after the fact).
    ///
    /// # Panics
    ///
    /// Panics if `offset + 2` exceeds the current length.
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        let b = v.to_be_bytes();
        self.buf[offset] = b[0];
        self.buf[offset + 1] = b[1];
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the accumulated bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// The ones-complement checksum used by IPv4, ICMP, UDP, and TCP (RFC 1071).
///
/// The accumulation is RFC 1071's folded form: each part's even-aligned
/// middle is summed eight bytes at a time as a 64-bit ones-complement add
/// (end-around carry on overflow), folded to 16 bits, and byte-swapped
/// into big-endian word space — RFC 1071 §2(B)/(2): *"the sum of 16-bit
/// integers can be computed by means of the sum of their byte-swapped
/// images"*, so the wide loop is endian-agnostic. Odd lengths and the
/// byte-parity carried across multi-slice inputs are handled exactly as
/// the scalar reference [`internet_checksum_ref`], which the differential
/// proptests hold this kernel to.
///
/// # Examples
///
/// ```
/// use sim::wire::internet_checksum;
///
/// // Checksumming a buffer that already contains its own checksum yields 0.
/// let data = [0x45, 0x00, 0x00, 0x1c];
/// let sum = internet_checksum(&[&data]);
/// let mut with_sum = data.to_vec();
/// with_sum.extend_from_slice(&sum.to_be_bytes());
/// assert_eq!(internet_checksum(&[&with_sum]), 0);
/// ```
pub fn internet_checksum(parts: &[&[u8]]) -> u16 {
    // Big-endian 16-bit word sum; u64 headroom means no fold is needed
    // until the very end.
    let mut sum: u64 = 0;
    let mut leftover: Option<u8> = None;
    for part in parts {
        let mut part = *part;
        // A part boundary can split a 16-bit word: pair the carried high
        // byte with this part's first byte, keeping global byte parity.
        if let Some(hi) = leftover.take() {
            match part.split_first() {
                Some((&lo, rest)) => {
                    sum += u64::from(u16::from_be_bytes([hi, lo]));
                    part = rest;
                }
                None => {
                    leftover = Some(hi);
                    continue;
                }
            }
        }
        // Wide middle: native-lane 64-bit ones-complement accumulation.
        let mut wide: u64 = 0;
        let mut chunks = part.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let word = u64::from_ne_bytes(chunk.try_into().expect("chunks_exact(8)"));
            let (s, carry) = wide.overflowing_add(word);
            wide = s + u64::from(carry);
        }
        let mut folded = (wide >> 32) + (wide & 0xFFFF_FFFF);
        folded = (folded >> 16) + (folded & 0xFFFF);
        folded = (folded >> 16) + (folded & 0xFFFF);
        // Native lanes hold native-order words; `to_be` swaps the folded
        // sum into big-endian word space (a no-op on big-endian hosts).
        sum += u64::from((folded as u16).to_be());
        // Sub-word tail: 16-bit pairs, then at most one carried byte.
        let mut pairs = chunks.remainder().chunks_exact(2);
        for pair in pairs.by_ref() {
            sum += u64::from(u16::from_be_bytes([pair[0], pair[1]]));
        }
        if let [last] = pairs.remainder() {
            leftover = Some(*last);
        }
    }
    if let Some(hi) = leftover {
        sum += u64::from(u16::from_be_bytes([hi, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Scalar reference for [`internet_checksum`]: the executable spec the
/// folded kernel is differentially tested against (DESIGN.md §9).
pub fn internet_checksum_ref(parts: &[&[u8]]) -> u16 {
    let mut sum: u32 = 0;
    let mut leftover: Option<u8> = None;
    for part in parts {
        for &byte in part.iter() {
            match leftover.take() {
                None => leftover = Some(byte),
                Some(hi) => {
                    sum += u32::from(u16::from_be_bytes([hi, byte]));
                }
            }
        }
    }
    if let Some(hi) = leftover {
        sum += u32::from(u16::from_be_bytes([hi, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_roundtrip() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0xCDEF);
        w.u32(0x01234567);
        w.bytes(b"hi");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xCDEF);
        assert_eq!(r.u32().unwrap(), 0x01234567);
        assert_eq!(r.rest(), b"hi");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_truncation_errors() {
        let buf = [0x01];
        let mut r = Reader::new(&buf);
        assert!(r.u16().is_err());
        assert_eq!(r.u8().unwrap(), 0x01);
        assert!(r.u8().is_err());
        assert!(r.take(1).is_err());
    }

    #[test]
    fn reader_skip_and_position() {
        let buf = [1, 2, 3, 4];
        let mut r = Reader::new(&buf);
        r.skip(2).unwrap();
        assert_eq!(r.position(), 2);
        assert_eq!(r.u8().unwrap(), 3);
        assert!(r.skip(2).is_err());
    }

    #[test]
    fn writer_patch() {
        let mut w = Writer::new();
        w.u16(0);
        w.u16(0xBEEF);
        w.patch_u16(0, 0xDEAD);
        assert_eq!(w.as_slice(), &[0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example: 0001 f203 f4f5 f6f7 sums to ddf2 -> checksum 220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&[&data]), 0x220d);
    }

    #[test]
    fn checksum_odd_length_pads_with_zero() {
        let even = internet_checksum(&[&[0x12, 0x34, 0xAB, 0x00]]);
        let odd = internet_checksum(&[&[0x12, 0x34, 0xAB]]);
        assert_eq!(even, odd);
    }

    #[test]
    fn checksum_split_across_parts_is_identical() {
        let whole = internet_checksum(&[&[1, 2, 3, 4, 5, 6]]);
        let split = internet_checksum(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(whole, split);
    }

    #[test]
    fn checksum_verifies_to_zero() {
        let data = [0x45, 0x00, 0x01, 0x02, 0x99, 0xAB];
        let sum = internet_checksum(&[&data]);
        let check = internet_checksum(&[&data, &sum.to_be_bytes()]);
        assert_eq!(check, 0);
    }

    #[test]
    fn checksum_folded_matches_scalar_reference() {
        // Every split of a pseudo-random buffer into two parts, covering
        // odd-length parts, odd-offset boundaries, and sub-word tails.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let data: Vec<u8> = (0..61)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 56) as u8
            })
            .collect();
        for cut in 0..=data.len() {
            let parts: [&[u8]; 2] = [&data[..cut], &data[cut..]];
            assert_eq!(
                internet_checksum(&parts),
                internet_checksum_ref(&parts),
                "cut {cut}"
            );
        }
        assert_eq!(internet_checksum(&[]), internet_checksum_ref(&[]));
    }
}
