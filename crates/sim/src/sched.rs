//! A deadline-indexed component scheduler (the simulator's calendar).
//!
//! Instead of scanning every component for its `next_deadline()` on every
//! step, the world keeps one [`Scheduler`] entry per component. The entry
//! is **lazily re-keyed**: when a component's self-reported deadline
//! changes, the old entry is tombstoned (the [`EventQueue`] cancellation
//! machinery) and a fresh one scheduled; stale entries are skipped on pop.
//! Deadlines that did not change cost a hash lookup and nothing else.
//!
//! Two interchangeable backends are provided:
//!
//! * the default binary-heap [`EventQueue`] — O(log n) per re-key, exact
//!   (time, seq) order;
//! * an optional **hierarchical timer wheel** ([`TimerWheel`]) for the
//!   dense per-character band, where deadlines cluster a character-time
//!   apart — O(1) insert/cancel, entries sorted per slot on pop.
//!
//! Both backends yield the identical pop order: ties at equal time break
//! by schedule order (a monotone sequence number), never by container
//! internals. Determinism is the hard constraint here; the equivalence is
//! pinned by tests below and by the world-level scheduler proptest.

use crate::fxhash::{FxHashMap, FxHashSet};
use std::hash::Hash;

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// Counters describing how much work the calendar did; reported by E2
/// alongside the buffer-pool counters so scheduler work is a measured
/// artifact.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedStats {
    /// Live (non-tombstone) entries popped.
    pub pops: u64,
    /// Deadline changes that cancelled + rescheduled an entry.
    pub rekeys: u64,
    /// `set_deadline` calls where the deadline had not changed (no heap
    /// traffic at all).
    pub unchanged: u64,
    /// Stale (cancelled) entries lazily dropped during pops/peeks.
    pub tombstone_skips: u64,
    /// Component poll/advance visits the world actually performed.
    pub polled: u64,
    /// Distinct instants the world stopped at.
    pub instants: u64,
    /// Serial characters delivered through the batched fast lane (no heap
    /// traffic, no quiescence pass).
    pub batched_chars: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    time: SimTime,
    id: Handle,
}

#[derive(Debug, Clone, Copy)]
enum Handle {
    Heap(EventId),
    Wheel(u64),
}

#[derive(Debug)]
enum Backend<K> {
    Heap(EventQueue<K>),
    Wheel(TimerWheel<K>),
}

/// A per-component deadline index over a cancellable calendar queue.
///
/// # Examples
///
/// ```
/// use sim::sched::Scheduler;
/// use sim::SimTime;
///
/// let mut s: Scheduler<&str> = Scheduler::new();
/// s.set_deadline("line", Some(SimTime::from_millis(2)));
/// s.set_deadline("host", Some(SimTime::from_millis(1)));
/// s.set_deadline("line", Some(SimTime::from_millis(3))); // lazy re-key
/// assert_eq!(s.pop(), Some((SimTime::from_millis(1), "host")));
/// assert_eq!(s.pop(), Some((SimTime::from_millis(3), "line")));
/// assert_eq!(s.pop(), None);
/// ```
#[derive(Debug)]
pub struct Scheduler<K: Copy + Eq + Hash> {
    backend: Backend<K>,
    index: FxHashMap<K, Slot>,
    stats: SchedStats,
}

impl<K: Copy + Eq + Hash> Default for Scheduler<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash> Scheduler<K> {
    /// Creates an empty scheduler on the binary-heap backend.
    pub fn new() -> Self {
        Scheduler {
            backend: Backend::Heap(EventQueue::new()),
            index: FxHashMap::default(),
            stats: SchedStats::default(),
        }
    }

    /// Creates an empty scheduler on the hierarchical timer-wheel backend
    /// with the given slot granularity (e.g. one millisecond for the
    /// per-character serial band).
    pub fn with_wheel(granularity: SimDuration) -> Self {
        Scheduler {
            backend: Backend::Wheel(TimerWheel::new(granularity)),
            index: FxHashMap::default(),
            stats: SchedStats::default(),
        }
    }

    /// True if the timer-wheel backend is in use.
    pub fn is_wheel(&self) -> bool {
        matches!(self.backend, Backend::Wheel(_))
    }

    /// Registers `key`'s next deadline, re-keying only if it changed.
    ///
    /// `None` removes the registration. Unchanged deadlines are a no-op
    /// (counted in [`SchedStats::unchanged`]).
    pub fn set_deadline(&mut self, key: K, deadline: Option<SimTime>) {
        match (self.index.get(&key).copied(), deadline) {
            (Some(slot), Some(t)) if slot.time == t => {
                self.stats.unchanged += 1;
            }
            (Some(slot), Some(t)) => {
                self.cancel(slot.id);
                let id = self.schedule(t, key);
                self.index.insert(key, Slot { time: t, id });
                self.stats.rekeys += 1;
            }
            (Some(slot), None) => {
                self.cancel(slot.id);
                self.index.remove(&key);
                self.stats.rekeys += 1;
            }
            (None, Some(t)) => {
                let id = self.schedule(t, key);
                self.index.insert(key, Slot { time: t, id });
            }
            (None, None) => {}
        }
    }

    /// The deadline currently registered for `key`, if any.
    pub fn deadline_of(&self, key: &K) -> Option<SimTime> {
        self.index.get(key).map(|s| s.time)
    }

    /// The earliest registered deadline.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(q) => q.peek_time(),
            Backend::Wheel(w) => w.peek_time(),
        }
    }

    /// Pops the earliest registered (time, key); the key is deregistered
    /// and must be re-registered via [`Scheduler::set_deadline`] once its
    /// component has been serviced.
    pub fn pop(&mut self) -> Option<(SimTime, K)> {
        let popped = match &mut self.backend {
            Backend::Heap(q) => q.pop(),
            Backend::Wheel(w) => w.pop(),
        };
        if let Some((_, key)) = &popped {
            self.stats.pops += 1;
            self.index.remove(key);
        }
        popped
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Scheduler statistics (tombstone skips read through to the backend).
    pub fn stats(&self) -> SchedStats {
        let mut s = self.stats;
        s.tombstone_skips = match &self.backend {
            Backend::Heap(q) => q.tombstone_skips(),
            Backend::Wheel(w) => w.tombstone_skips(),
        };
        s
    }

    /// Mutable access for world-maintained counters (polls, instants,
    /// batched characters).
    pub fn stats_mut(&mut self) -> &mut SchedStats {
        &mut self.stats
    }

    fn schedule(&mut self, time: SimTime, key: K) -> Handle {
        match &mut self.backend {
            Backend::Heap(q) => Handle::Heap(q.schedule(time, key)),
            Backend::Wheel(w) => Handle::Wheel(w.schedule(time, key)),
        }
    }

    fn cancel(&mut self, id: Handle) {
        match (&mut self.backend, id) {
            (Backend::Heap(q), Handle::Heap(id)) => {
                q.cancel(id);
            }
            (Backend::Wheel(w), Handle::Wheel(seq)) => {
                w.cancel(seq);
            }
            // A handle from a previous backend cannot outlive the swap:
            // backends are chosen at construction time.
            _ => unreachable!("scheduler handle from a different backend"),
        }
    }
}

const L0_SLOTS: u64 = 256;
const L1_SLOTS: u64 = 64;

#[derive(Debug, Clone)]
struct WheelEntry<K> {
    time: SimTime,
    seq: u64,
    key: K,
}

/// A two-level hierarchical timer wheel with deterministic pop order.
///
/// Level 0 holds one slot per `granularity`; level 1 holds frames of
/// [`L0_SLOTS`] level-0 slots; everything beyond that horizon waits in an
/// overflow list and cascades down as the cursor reaches it. Entries in a
/// slot are sorted by (time, seq) when the slot becomes current, so pop
/// order is exactly the [`EventQueue`] order.
#[derive(Debug)]
pub struct TimerWheel<K> {
    granularity_ns: u64,
    l0: Vec<Vec<WheelEntry<K>>>,
    l1: Vec<Vec<WheelEntry<K>>>,
    overflow: Vec<WheelEntry<K>>,
    /// Absolute level-0 slot index; every live entry's slot is >= cursor.
    cursor: u64,
    /// Entries (live or tombstoned) per region, to allow cursor jumps.
    l0_count: usize,
    l1_count: usize,
    /// True when the current slot has been sorted since its last insert.
    head_sorted: bool,
    next_seq: u64,
    cancelled: FxHashSet<u64>,
    live: usize,
    skips: u64,
}

impl<K: Copy> TimerWheel<K> {
    fn new(granularity: SimDuration) -> TimerWheel<K> {
        TimerWheel {
            granularity_ns: granularity.as_nanos().max(1),
            l0: (0..L0_SLOTS).map(|_| Vec::new()).collect(),
            l1: (0..L1_SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            cursor: 0,
            l0_count: 0,
            l1_count: 0,
            head_sorted: false,
            next_seq: 0,
            cancelled: FxHashSet::default(),
            live: 0,
            skips: 0,
        }
    }

    fn slot_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.granularity_ns
    }

    fn schedule(&mut self, time: SimTime, key: K) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(WheelEntry { time, seq, key });
        self.live += 1;
        seq
    }

    fn insert(&mut self, e: WheelEntry<K>) {
        // Entries in the past (relative to the cursor) land in the current
        // slot; (time, seq) sorting still pops them first.
        let slot = self.slot_of(e.time).max(self.cursor);
        if slot - self.cursor < L0_SLOTS {
            if slot == self.cursor {
                self.head_sorted = false;
            }
            self.l0[(slot % L0_SLOTS) as usize].push(e);
            self.l0_count += 1;
        } else if slot / L0_SLOTS - self.cursor / L0_SLOTS < L1_SLOTS {
            self.l1[((slot / L0_SLOTS) % L1_SLOTS) as usize].push(e);
            self.l1_count += 1;
        } else {
            self.overflow.push(e);
        }
    }

    fn cancel(&mut self, seq: u64) -> bool {
        if seq < self.next_seq && self.cancelled.insert(seq) {
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Advances the cursor to the slot holding the earliest live entry and
    /// sorts it. Returns false if the wheel is empty.
    fn settle_head(&mut self) -> bool {
        loop {
            if self.live == 0 {
                return false;
            }
            let idx = (self.cursor % L0_SLOTS) as usize;
            if !self.l0[idx].is_empty() {
                if !self.head_sorted {
                    self.l0[idx].sort_by_key(|e| (e.time, e.seq));
                    self.head_sorted = true;
                }
                // Shed tombstones at the front.
                while let Some(first) = self.l0[idx].first() {
                    if self.cancelled.remove(&first.seq) {
                        self.l0[idx].remove(0);
                        self.l0_count -= 1;
                        self.skips += 1;
                    } else {
                        return true;
                    }
                }
            }
            self.advance_cursor();
        }
    }

    fn advance_cursor(&mut self) {
        // Jump over regions that hold nothing at all.
        if self.l0_count == 0 && self.l1_count == 0 {
            let superframe = L0_SLOTS * L1_SLOTS;
            self.cursor = (self.cursor / superframe + 1) * superframe;
            self.cascade_overflow();
            self.cascade_l1();
            self.head_sorted = false;
            return;
        }
        if self.l0_count == 0 {
            self.cursor = (self.cursor / L0_SLOTS + 1) * L0_SLOTS;
        } else {
            self.cursor += 1;
        }
        if self.cursor.is_multiple_of(L0_SLOTS) {
            if (self.cursor / L0_SLOTS).is_multiple_of(L1_SLOTS) {
                self.cascade_overflow();
            }
            self.cascade_l1();
        }
        self.head_sorted = false;
    }

    fn cascade_l1(&mut self) {
        let fidx = ((self.cursor / L0_SLOTS) % L1_SLOTS) as usize;
        let pending = std::mem::take(&mut self.l1[fidx]);
        self.l1_count -= pending.len();
        for e in pending {
            self.insert(e);
        }
    }

    fn cascade_overflow(&mut self) {
        let horizon_frames = self.cursor / L0_SLOTS + L1_SLOTS;
        let pending = std::mem::take(&mut self.overflow);
        for e in pending {
            if self.slot_of(e.time).max(self.cursor) / L0_SLOTS < horizon_frames {
                self.insert(e);
            } else {
                self.overflow.push(e);
            }
        }
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if self.settle_head() {
            let idx = (self.cursor % L0_SLOTS) as usize;
            self.l0[idx].first().map(|e| e.time)
        } else {
            None
        }
    }

    fn pop(&mut self) -> Option<(SimTime, K)> {
        if self.settle_head() {
            let idx = (self.cursor % L0_SLOTS) as usize;
            let e = self.l0[idx].remove(0);
            self.l0_count -= 1;
            self.live -= 1;
            Some((e.time, e.key))
        } else {
            None
        }
    }

    fn tombstone_skips(&self) -> u64 {
        self.skips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn rekey_only_on_change() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.set_deadline(1, Some(SimTime::from_millis(5)));
        s.set_deadline(1, Some(SimTime::from_millis(5)));
        s.set_deadline(1, Some(SimTime::from_millis(5)));
        let st = s.stats();
        assert_eq!(st.rekeys, 0);
        assert_eq!(st.unchanged, 2);
        s.set_deadline(1, Some(SimTime::from_millis(6)));
        assert_eq!(s.stats().rekeys, 1);
        assert_eq!(s.pop(), Some((SimTime::from_millis(6), 1)));
        assert_eq!(s.stats().tombstone_skips, 1, "stale entry shed on pop");
    }

    #[test]
    fn deregister_with_none() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.set_deadline(1, Some(SimTime::from_millis(5)));
        s.set_deadline(1, None);
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
        // None for an unknown key is fine.
        s.set_deadline(2, None);
    }

    #[test]
    fn pop_deregisters_key() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.set_deadline(7, Some(SimTime::from_millis(1)));
        assert_eq!(s.deadline_of(&7), Some(SimTime::from_millis(1)));
        s.pop();
        assert_eq!(s.deadline_of(&7), None);
        // Re-registering after a pop is a plain insert, not a re-key.
        s.set_deadline(7, Some(SimTime::from_millis(2)));
        assert_eq!(s.stats().rekeys, 0);
    }

    #[test]
    fn ties_pop_in_registration_order() {
        for wheel in [false, true] {
            let mut s: Scheduler<u32> = if wheel {
                Scheduler::with_wheel(SimDuration::from_millis(1))
            } else {
                Scheduler::new()
            };
            let t = SimTime::from_millis(9);
            for k in 0..10 {
                s.set_deadline(k, Some(t));
            }
            for k in 0..10 {
                assert_eq!(s.pop(), Some((t, k)), "wheel={wheel}");
            }
        }
    }

    #[test]
    fn wheel_spans_levels_and_overflow() {
        let mut s: Scheduler<u32> = Scheduler::with_wheel(SimDuration::from_millis(1));
        // Level 0 (within 256 ms), level 1 (within ~16 s), overflow (1 h).
        s.set_deadline(1, Some(SimTime::from_millis(3)));
        s.set_deadline(2, Some(SimTime::from_secs(4)));
        s.set_deadline(3, Some(SimTime::from_secs(3600)));
        assert_eq!(s.pop(), Some((SimTime::from_millis(3), 1)));
        assert_eq!(s.pop(), Some((SimTime::from_secs(4), 2)));
        assert_eq!(s.pop(), Some((SimTime::from_secs(3600), 3)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn wheel_cancel_and_past_insert() {
        let mut s: Scheduler<u32> = Scheduler::with_wheel(SimDuration::from_millis(1));
        s.set_deadline(1, Some(SimTime::from_secs(2)));
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(2)));
        // Cursor has advanced to ~2 s; an earlier deadline still pops first
        // (it lands in the current slot, ordered by time).
        s.set_deadline(2, Some(SimTime::from_millis(10)));
        assert_eq!(s.pop(), Some((SimTime::from_millis(10), 2)));
        s.set_deadline(1, None);
        assert_eq!(s.pop(), None);
    }

    /// The wheel and the heap must agree on pop order for arbitrary
    /// interleavings of set/rekey/remove — the determinism contract.
    #[test]
    fn wheel_matches_heap_order_randomized() {
        let mut rng = SimRng::seed_from(0xC0FFEE);
        for round in 0..50 {
            let mut heap: Scheduler<u32> = Scheduler::new();
            let mut wheel: Scheduler<u32> =
                Scheduler::with_wheel(SimDuration::from_micros(1 + round % 7 * 499));
            let mut now = SimTime::ZERO;
            let mut log_h = Vec::new();
            let mut log_w = Vec::new();
            for _ in 0..200 {
                let op = rng.below(10);
                let key = rng.below(12) as u32;
                match op {
                    0..=5 => {
                        let t = now + SimDuration::from_micros(rng.below(40_000_000));
                        heap.set_deadline(key, Some(t));
                        wheel.set_deadline(key, Some(t));
                    }
                    6 => {
                        heap.set_deadline(key, None);
                        wheel.set_deadline(key, None);
                    }
                    _ => {
                        let a = heap.pop();
                        let b = wheel.pop();
                        assert_eq!(a, b, "round {round}");
                        if let Some((t, k)) = a {
                            now = now.max(t);
                            log_h.push((t, k));
                            log_w.push((t, k));
                        }
                    }
                }
            }
            loop {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "round {round} drain");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(log_h, log_w);
        }
    }
}
