//! A fast, deterministic hasher for the simulator's internal maps.
//!
//! The event calendar does several map operations per simulated event;
//! with the standard library's SipHash (and its per-process random seed)
//! those dominate the scheduler's cost. This is the Firefox/rustc
//! multiply-fold hash: one wrapping multiply per word, no seed — so maps
//! hash identically across runs, which suits a simulator whose whole
//! contract is reproducibility. Keys here are small integers and enums,
//! never attacker-controlled, so HashDoS resistance is not needed.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-fold hasher over native words (the rustc/Firefox "Fx" hash).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 1);
        m.insert(9, 2);
        assert_eq!(m.get(&7), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(5));
        assert!(!s.insert(5));
    }
}
