//! Measurement primitives used by the experiment harnesses.
//!
//! The benchmarks in `crates/bench` reconstruct the paper's qualitative
//! claims as tables; these types gather the underlying samples: event
//! counts, latency distributions, throughput over windows, and time series
//! for parameter sweeps.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use sim::stats::Counter;
///
/// let mut drops = Counter::new();
/// drops.add(3);
/// drops.incr();
/// assert_eq!(drops.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Counter {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero, returning the old value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use sim::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] {
///     w.add(x);
/// }
/// assert_eq!(w.mean(), 4.0);
/// assert_eq!(w.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Welford {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A latency recorder keeping full samples for exact quantiles.
///
/// Experiments here are small enough (≤ millions of packets) that storing
/// every duration is cheaper than the error analysis a sketch would need.
///
/// # Examples
///
/// ```
/// use sim::stats::Latency;
/// use sim::SimDuration;
///
/// let mut l = Latency::new();
/// for ms in [10, 20, 30, 40] {
///     l.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(l.quantile(0.5), Some(SimDuration::from_millis(20)));
/// assert_eq!(l.max(), Some(SimDuration::from_millis(40)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Latency {
    samples: Vec<SimDuration>,
    sorted: bool,
}

impl Latency {
    /// Creates an empty recorder.
    pub fn new() -> Latency {
        Latency {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean duration, or `None` if empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_nanos() as u128).sum();
        Some(SimDuration::from_nanos(
            (total / self.samples.len() as u128) as u64,
        ))
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Exact quantile (nearest-rank), `q` in `[0, 1]`; `None` if empty.
    pub fn quantile(&mut self, q: f64) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        self.sort();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Smallest sample.
    pub fn min(&mut self) -> Option<SimDuration> {
        self.sort();
        self.samples.first().copied()
    }

    /// Largest sample.
    pub fn max(&mut self) -> Option<SimDuration> {
        self.sort();
        self.samples.last().copied()
    }
}

/// A throughput meter: bytes accumulated over an interval of simulated time.
///
/// # Examples
///
/// ```
/// use sim::stats::Throughput;
/// use sim::SimTime;
///
/// let mut t = Throughput::new(SimTime::ZERO);
/// t.add(1500);
/// t.add(1500);
/// // 3000 bytes over 2 seconds = 12 kbit/s.
/// assert_eq!(t.bits_per_sec(SimTime::from_secs(2)), 12_000.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    start: SimTime,
    bytes: u64,
}

impl Throughput {
    /// Creates a meter starting at `start`.
    pub fn new(start: SimTime) -> Throughput {
        Throughput { start, bytes: 0 }
    }

    /// Accounts `bytes` octets of delivered payload.
    pub fn add(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Total octets accounted.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Average rate in bits per second up to `now`; 0 if no time elapsed.
    pub fn bits_per_sec(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.start).as_secs_f64();
        if dt <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / dt
        }
    }
}

/// A fixed-bucket histogram over `u64` values (e.g. queue depths).
///
/// # Examples
///
/// ```
/// use sim::stats::Histogram;
///
/// let mut h = Histogram::new(&[1, 10, 100]);
/// h.record(0);
/// h.record(5);
/// h.record(5000);
/// assert_eq!(h.counts(), &[1, 1, 0, 1]); // <=1, <=10, <=100, >100
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bucket bounds.
    /// An implicit overflow bucket collects values above the last bound.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket bounds supplied at construction.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// One row of a parameter sweep, as printed by the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The x-axis value (offered load, bitrate, hop count…).
    pub x: f64,
    /// Named measurements for this x.
    pub values: Vec<(String, f64)>,
}

/// A labelled series of sweep rows with aligned-column text rendering.
///
/// # Examples
///
/// ```
/// use sim::stats::Sweep;
///
/// let mut s = Sweep::new("load");
/// s.row(0.1).set("throughput", 950.0).set("drops", 0.0);
/// s.row(0.5).set("throughput", 720.0).set("drops", 12.0);
/// let text = s.render();
/// assert!(text.contains("throughput"));
/// assert!(text.contains("0.50"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    x_label: String,
    rows: Vec<SweepRow>,
}

/// Builder handle for one [`Sweep`] row.
pub struct RowBuilder<'a> {
    row: &'a mut SweepRow,
}

impl RowBuilder<'_> {
    /// Sets (or overwrites) a named value on this row.
    pub fn set(self, name: &str, value: f64) -> Self {
        if let Some(slot) = self.row.values.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.row.values.push((name.to_string(), value));
        }
        self
    }
}

impl Sweep {
    /// Creates an empty sweep whose x column is labelled `x_label`.
    pub fn new(x_label: &str) -> Sweep {
        Sweep {
            x_label: x_label.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row at `x` and returns a builder to fill its columns.
    pub fn row(&mut self, x: f64) -> RowBuilder<'_> {
        self.rows.push(SweepRow {
            x,
            values: Vec::new(),
        });
        RowBuilder {
            row: self.rows.last_mut().expect("just pushed"),
        }
    }

    /// All rows collected so far.
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// Renders an aligned text table, the format the bench binaries print.
    pub fn render(&self) -> String {
        let mut cols: Vec<String> = vec![self.x_label.clone()];
        for row in &self.rows {
            for (name, _) in &row.values {
                if !cols.contains(name) {
                    cols.push(name.clone());
                }
            }
        }
        let mut table: Vec<Vec<String>> = vec![cols.clone()];
        for row in &self.rows {
            let mut line = vec![format!("{:.2}", row.x)];
            for col in &cols[1..] {
                let cell = row
                    .values
                    .iter()
                    .find(|(n, _)| n == col)
                    .map(|(_, v)| format_value(*v))
                    .unwrap_or_else(|| "-".to_string());
                line.push(cell);
            }
            table.push(line);
        }
        render_table(&table)
    }
}

/// Formats a value compactly: integers plainly, fractions with 3 decimals.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Renders rows of cells with aligned columns (two-space gutters).
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let ncols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; ncols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert!((w.mean() - 3.5).abs() < 1e-12);
        // Population variance of 1..6 is 35/12.
        assert!((w.variance() - 35.0 / 12.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(1.0));
        assert_eq!(w.max(), Some(6.0));
    }

    #[test]
    fn welford_empty_is_safe() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn latency_quantiles() {
        let mut l = Latency::new();
        for ms in 1..=100 {
            l.record(SimDuration::from_millis(ms));
        }
        assert_eq!(l.quantile(0.0), Some(SimDuration::from_millis(1)));
        assert_eq!(l.quantile(0.5), Some(SimDuration::from_millis(50)));
        assert_eq!(l.quantile(0.99), Some(SimDuration::from_millis(99)));
        assert_eq!(l.quantile(1.0), Some(SimDuration::from_millis(100)));
        assert_eq!(l.mean(), Some(SimDuration::from_nanos(50_500_000)));
    }

    #[test]
    fn latency_empty() {
        let mut l = Latency::new();
        assert_eq!(l.quantile(0.5), None);
        assert_eq!(l.mean(), None);
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn throughput_rate() {
        let mut t = Throughput::new(SimTime::from_secs(1));
        t.add(125);
        assert_eq!(t.bits_per_sec(SimTime::from_secs(2)), 1000.0);
        assert_eq!(t.bits_per_sec(SimTime::from_secs(1)), 0.0);
        assert_eq!(t.bytes(), 125);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10, 5]);
    }

    #[test]
    fn sweep_renders_missing_cells() {
        let mut s = Sweep::new("x");
        s.row(1.0).set("a", 1.0);
        s.row(2.0).set("b", 2.0);
        let text = s.render();
        assert!(text.contains('-'), "missing cell rendered as dash:\n{text}");
        assert_eq!(s.rows().len(), 2);
    }

    #[test]
    fn render_table_aligns_columns() {
        let rows = vec![
            vec!["a".to_string(), "bbbb".to_string()],
            vec!["cccc".to_string(), "d".to_string()],
        ];
        let out = render_table(&rows);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        // Both first-column cells are right-aligned to width 4.
        assert!(lines[0].starts_with("   a"));
        assert!(lines[1].starts_with("cccc"));
    }
}
