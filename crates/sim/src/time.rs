//! Virtual time, durations, and bandwidth arithmetic.
//!
//! The simulator keeps time as a count of nanoseconds since the start of the
//! run. A `u64` of nanoseconds covers roughly 584 years of simulated time,
//! which is comfortably more than any experiment here needs, while still
//! resolving the sub-millisecond character times of a 9600-baud serial line
//! and the microsecond-scale Ethernet transmissions.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of simulated time, in nanoseconds since the start of the run.
///
/// `SimTime` is ordered and supports the natural arithmetic with
/// [`SimDuration`]. It deliberately does *not* implement `Add<SimTime>`:
/// adding two instants is meaningless.
///
/// # Examples
///
/// ```
/// use sim::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(250);
/// assert_eq!(t1 - t0, SimDuration::from_millis(250));
/// assert!(t1 > t0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use sim::SimDuration;
///
/// let d = SimDuration::from_millis(1) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 1_500_000);
/// assert_eq!(d * 2, SimDuration::from_millis(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the start of the run.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since the start of the run.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since the start of the run.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds since the start of the run.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero if
    /// `earlier` is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the instant advanced by `d`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        let ns = s * 1e9;
        assert!(ns <= u64::MAX as f64, "duration too large: {s}s");
        SimDuration(ns.round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, factor: u64) -> Option<SimDuration> {
        self.0.checked_mul(factor).map(SimDuration)
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Formats a nanosecond count with a human-scale unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A link rate in bits per second, with helpers for serialization delay.
///
/// The paper's central performance observation (§3) is that at 1200 bit/s
/// "the transmission time is the dominant factor in determining throughput
/// and latency" — this type is how every link model in the workspace turns
/// byte counts into time.
///
/// # Examples
///
/// ```
/// use sim::{Bandwidth, SimDuration};
///
/// let radio = Bandwidth::bps(1200);
/// // A 150-byte AX.25 frame takes a full second at 1200 bit/s.
/// assert_eq!(radio.time_for_bytes(150), SimDuration::from_secs(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Bandwidth {
    bits_per_sec: u64,
}

impl Bandwidth {
    /// The classic 1200 bit/s AFSK packet-radio channel rate.
    pub const RADIO_1200: Bandwidth = Bandwidth::bps(1200);

    /// 10 Mb/s Ethernet, the department LAN in the paper.
    pub const ETHERNET_10M: Bandwidth = Bandwidth::bps(10_000_000);

    /// Creates a bandwidth from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    pub const fn bps(bits_per_sec: u64) -> Bandwidth {
        assert!(bits_per_sec > 0, "bandwidth must be positive");
        Bandwidth { bits_per_sec }
    }

    /// Creates a bandwidth from kilobits per second.
    pub const fn kbps(k: u64) -> Bandwidth {
        Bandwidth::bps(k * 1_000)
    }

    /// Returns the rate in bits per second.
    pub const fn bits_per_sec(self) -> u64 {
        self.bits_per_sec
    }

    /// Time to serialize `bits` onto the link, rounded up to a nanosecond.
    pub fn time_for_bits(self, bits: u64) -> SimDuration {
        // ceil(bits * 1e9 / rate) without overflow for realistic sizes:
        // bits fits easily in u64 * 1e9 as u128.
        let ns = (bits as u128 * 1_000_000_000u128).div_ceil(self.bits_per_sec as u128);
        SimDuration::from_nanos(u64::try_from(ns).expect("serialization time overflow"))
    }

    /// Time to serialize `bytes` octets (8 bits each) onto the link.
    pub fn time_for_bytes(self, bytes: usize) -> SimDuration {
        self.time_for_bits(bytes as u64 * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(7), SimDuration::from_nanos(7000));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn bandwidth_serialization_times() {
        // 1200 bit/s: one byte = 8 bits = 6.666..ms (rounded up).
        let b = Bandwidth::RADIO_1200;
        assert_eq!(b.time_for_bytes(0), SimDuration::ZERO);
        assert_eq!(b.time_for_bits(1200), SimDuration::from_secs(1));
        let one_byte = b.time_for_bytes(1);
        assert_eq!(one_byte, SimDuration::from_nanos(6_666_667));

        // 10 Mb/s Ethernet: 1500 bytes = 1.2ms.
        assert_eq!(
            Bandwidth::ETHERNET_10M.time_for_bytes(1500),
            SimDuration::from_micros(1200)
        );
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }

    #[test]
    fn display_formats_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
