//! In-memory event tracing.
//!
//! The testbed attaches a [`Trace`] to each run. Devices record one-line
//! entries ("TNC N7AKR heard frame", "ifqueue drop") tagged with a
//! category; tests assert on the recorded entries and the figure-style
//! harnesses (F1/F2) print them as the byte-level walk-throughs of the
//! paper's two figures.

use std::fmt;

use crate::time::SimTime;

/// Coarse event categories, used for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Serial-line byte movement.
    Serial,
    /// KISS framing.
    Kiss,
    /// AX.25 frames and connected-mode state changes.
    Ax25,
    /// Radio channel and MAC activity.
    Radio,
    /// Ethernet segment activity.
    Ether,
    /// ARP traffic and cache changes.
    Arp,
    /// IP layer: input, forwarding, fragmentation.
    Ip,
    /// ICMP messages.
    Icmp,
    /// TCP state machine.
    Tcp,
    /// UDP datagrams.
    Udp,
    /// Driver-level events (interrupt handler, ifqueue).
    Driver,
    /// Gateway policy: access control decisions.
    Acl,
    /// Application-level milestones.
    App,
    /// IPIP encapsulation: tunnel wrap/unwrap, encap-table changes.
    Encap,
    /// RIP44-style route exchange: announcements, learns, expiries.
    Rip44,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Category::Serial => "serial",
            Category::Kiss => "kiss",
            Category::Ax25 => "ax25",
            Category::Radio => "radio",
            Category::Ether => "ether",
            Category::Arp => "arp",
            Category::Ip => "ip",
            Category::Icmp => "icmp",
            Category::Tcp => "tcp",
            Category::Udp => "udp",
            Category::Driver => "driver",
            Category::Acl => "acl",
            Category::App => "app",
            Category::Encap => "encap",
            Category::Rip44 => "rip44",
        };
        write!(f, "{name}")
    }
}

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// When the event happened.
    pub time: SimTime,
    /// Event category.
    pub category: Category,
    /// Which node/device produced it (free-form, e.g. `"gw"`, `"tnc:N7AKR"`).
    pub source: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<6} {:<12} {}",
            self.time.to_string(),
            self.category.to_string(),
            self.source,
            self.message
        )
    }
}

/// A bounded, optionally disabled trace buffer.
///
/// Tracing is off by default so the large sweeps in the benchmarks pay
/// nothing for it; tests and the figure harnesses enable it explicitly.
///
/// # Examples
///
/// ```
/// use sim::trace::{Category, Trace};
/// use sim::SimTime;
///
/// let mut t = Trace::enabled();
/// t.record(SimTime::ZERO, Category::Driver, "gw", "rint: FEND");
/// assert_eq!(t.entries().len(), 1);
/// assert!(t.render().contains("rint"));
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    enabled: bool,
    entries: Vec<Entry>,
    cap: usize,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

impl Trace {
    /// Default maximum number of retained entries.
    pub const DEFAULT_CAP: usize = 1_000_000;

    /// Creates a disabled trace; `record` is a no-op.
    pub fn disabled() -> Trace {
        Trace {
            enabled: false,
            entries: Vec::new(),
            cap: Self::DEFAULT_CAP,
        }
    }

    /// Creates an enabled trace with the default capacity.
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            entries: Vec::new(),
            cap: Self::DEFAULT_CAP,
        }
    }

    /// Creates an enabled trace retaining at most `cap` entries; further
    /// entries are silently dropped (the cap exists to bound memory, not to
    /// be a ring).
    pub fn with_capacity(cap: usize) -> Trace {
        Trace {
            enabled: true,
            entries: Vec::new(),
            cap,
        }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one entry if enabled and under capacity.
    pub fn record(
        &mut self,
        time: SimTime,
        category: Category,
        source: impl Into<String>,
        message: impl Into<String>,
    ) {
        if !self.enabled || self.entries.len() >= self.cap {
            return;
        }
        self.entries.push(Entry {
            time,
            category,
            source: source.into(),
            message: message.into(),
        });
    }

    /// All recorded entries in order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Entries matching one category.
    pub fn by_category(&self, category: Category) -> Vec<&Entry> {
        self.entries
            .iter()
            .filter(|e| e.category == category)
            .collect()
    }

    /// True if any entry's message contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.entries.iter().any(|e| e.message.contains(needle))
    }

    /// Renders all entries, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Drops all recorded entries (capacity and enablement unchanged).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, Category::Ip, "a", "x");
        assert!(t.entries().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_secs(1), Category::Ip, "a", "first");
        t.record(SimTime::from_secs(2), Category::Tcp, "b", "second");
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.entries()[0].message, "first");
        assert!(t.contains("second"));
    }

    #[test]
    fn capacity_bounds_entries() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(SimTime::ZERO, Category::App, "s", format!("m{i}"));
        }
        assert_eq!(t.entries().len(), 2);
    }

    #[test]
    fn by_category_filters() {
        let mut t = Trace::enabled();
        t.record(SimTime::ZERO, Category::Arp, "a", "arp1");
        t.record(SimTime::ZERO, Category::Ip, "a", "ip1");
        t.record(SimTime::ZERO, Category::Arp, "a", "arp2");
        assert_eq!(t.by_category(Category::Arp).len(), 2);
        assert_eq!(t.by_category(Category::Tcp).len(), 0);
    }

    #[test]
    fn render_includes_fields() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_millis(3), Category::Driver, "gw", "hello");
        let s = t.render();
        assert!(s.contains("driver"));
        assert!(s.contains("gw"));
        assert!(s.contains("hello"));
        t.clear();
        assert!(t.render().is_empty());
    }
}
