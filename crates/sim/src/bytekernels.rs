//! Word-at-a-time byte-scanning kernels for the hot byte loops.
//!
//! The paper's §3 finding is that the gateway's cost is dominated by
//! per-character work; after the scheduler rework shifted the profile back
//! into the byte loops, the remaining nanoseconds live in scalar state
//! machines scanning for delimiter bytes one at a time. These helpers give
//! the KISS (de)framer and friends a `memchr`-style primitive: scan eight
//! bytes per step with SWAR (SIMD within a register) arithmetic, no
//! `unsafe`, no lookup tables.
//!
//! The trick is the classic zero-byte test: for a word `x` with the needle
//! XORed into every lane, `(x - 0x0101…) & !x & 0x8080…` has the high bit
//! set in exactly the lanes that were zero (i.e. matched the needle).
//! Loading with [`u64::from_le_bytes`] puts byte `i` of the slice in bits
//! `8i..8i+8` regardless of host endianness, so `trailing_zeros() / 8` is
//! the match offset on every platform.
//!
//! The contract for callers pairing a fast kernel with a scalar reference
//! (DESIGN.md §9): the fast path must be *observably identical* — same
//! outputs, same statistics — and proven so by differential proptests.
//!
//! # Examples
//!
//! ```
//! use sim::bytekernels::{find_byte, find_either};
//!
//! let hay = b"no delimiters here ... \xC0 tail";
//! assert_eq!(find_byte(hay, 0xC0), Some(23));
//! assert_eq!(find_either(hay, 0xC0, b'n'), Some(0));
//! assert_eq!(find_byte(b"clean", 0xC0), None);
//! ```

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcasts `b` into every lane of a word.
#[inline]
fn splat(b: u8) -> u64 {
    u64::from(b) * LO
}

/// High bits of the lanes of `x` that are zero.
#[inline]
fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Index of the first occurrence of `needle` in `hay`, scanning a word at
/// a time.
#[inline]
pub fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    let pat = splat(needle);
    let mut chunks = hay.chunks_exact(8);
    for (i, chunk) in chunks.by_ref().enumerate() {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        let hit = zero_lanes(word ^ pat);
        if hit != 0 {
            return Some(i * 8 + (hit.trailing_zeros() / 8) as usize);
        }
    }
    let tail_start = hay.len() - chunks.remainder().len();
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|p| tail_start + p)
}

/// Index of the first occurrence of either needle in `hay`, scanning a
/// word at a time (the KISS deframer's `FEND`-or-`FESC` scan).
#[inline]
pub fn find_either(hay: &[u8], a: u8, b: u8) -> Option<usize> {
    let pat_a = splat(a);
    let pat_b = splat(b);
    let mut chunks = hay.chunks_exact(8);
    for (i, chunk) in chunks.by_ref().enumerate() {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        let hit = zero_lanes(word ^ pat_a) | zero_lanes(word ^ pat_b);
        if hit != 0 {
            return Some(i * 8 + (hit.trailing_zeros() / 8) as usize);
        }
    }
    let tail_start = hay.len() - chunks.remainder().len();
    chunks
        .remainder()
        .iter()
        .position(|&x| x == a || x == b)
        .map(|p| tail_start + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_find(hay: &[u8], needle: u8) -> Option<usize> {
        hay.iter().position(|&b| b == needle)
    }

    fn ref_find_either(hay: &[u8], a: u8, b: u8) -> Option<usize> {
        hay.iter().position(|&x| x == a || x == b)
    }

    #[test]
    fn finds_at_every_offset() {
        // Every position in a 40-byte buffer, covering word boundaries,
        // mid-word lanes, and the sub-word tail.
        for pos in 0..40 {
            let mut hay = vec![0x11u8; 40];
            hay[pos] = 0xC0;
            assert_eq!(find_byte(&hay, 0xC0), Some(pos), "pos {pos}");
        }
    }

    #[test]
    fn absent_needle_is_none() {
        for len in 0..40 {
            let hay = vec![0x42u8; len];
            assert_eq!(find_byte(&hay, 0xC0), None, "len {len}");
            assert_eq!(find_either(&hay, 0xC0, 0xDB), None, "len {len}");
        }
    }

    #[test]
    fn first_of_multiple_wins() {
        let hay = [0u8, 1, 0xC0, 3, 0xC0, 5];
        assert_eq!(find_byte(&hay, 0xC0), Some(2));
    }

    #[test]
    fn either_reports_the_earlier_needle() {
        let hay = [9u8, 9, 0xDB, 9, 0xC0, 9, 9, 9, 9, 9];
        assert_eq!(find_either(&hay, 0xC0, 0xDB), Some(2));
        let hay = [9u8, 9, 0xC0, 9, 0xDB, 9, 9, 9, 9, 9];
        assert_eq!(find_either(&hay, 0xC0, 0xDB), Some(2));
    }

    #[test]
    fn matches_scalar_reference_exhaustively() {
        // Pseudo-random buffers with a byte distribution dense enough to
        // hit both needles at assorted offsets.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for len in 0..64 {
            let hay: Vec<u8> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 56) as u8 & 0x0F | 0xC0 // values in 0xC0..=0xCF
                })
                .collect();
            assert_eq!(find_byte(&hay, 0xC0), ref_find(&hay, 0xC0));
            assert_eq!(
                find_either(&hay, 0xC0, 0xC7),
                ref_find_either(&hay, 0xC0, 0xC7)
            );
        }
    }

    #[test]
    fn needle_zero_works() {
        let hay = [1u8, 2, 3, 0, 5, 6, 7, 8, 9];
        assert_eq!(find_byte(&hay, 0), Some(3));
    }
}
