//! Pooled packet buffers and emit sinks — the datapath buffer contract.
//!
//! The per-character receive path of the gateway (§3 of the paper) runs
//! millions of times per simulated minute, so the layer boundaries must not
//! allocate on the fast path. This module provides the two pieces every
//! datapath API is built on:
//!
//! * [`PacketBuf`] — a growable byte buffer with *headroom* (cheap header
//!   prepend) and *cheap slicing* (advancing the start without copying),
//!   leased from a reference-counted [`BufPool`] and automatically recycled
//!   on drop.
//! * [`FrameSink`] / [`ByteSink`] — emit traits drivers write completed
//!   frames (or raw bytes) into, instead of returning freshly allocated
//!   `Vec<Vec<u8>>` at every call.
//!
//! The pool exposes hit/miss/high-water counters ([`PoolStats`]) so the
//! experiment harnesses can report allocation behaviour alongside
//! chars/interrupts.

use std::cell::RefCell;
use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

use crate::stats::Counter;

/// Allocation counters for a [`BufPool`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Leases served from the free list (no heap allocation).
    pub hits: Counter,
    /// Leases that had to allocate a fresh buffer.
    pub misses: Counter,
    /// Buffers returned to the free list on drop.
    pub recycled: Counter,
    /// Buffers currently leased out.
    pub live: u64,
    /// Maximum simultaneously leased buffers ever observed.
    pub high_water: u64,
}

struct PoolInner {
    free: Vec<Vec<u8>>,
    buf_capacity: usize,
    max_free: usize,
    stats: PoolStats,
}

/// A reference-counted pool of byte buffers.
///
/// Cloning the handle is cheap and shares the pool. Buffers leased with
/// [`BufPool::take`] return to the free list when the [`PacketBuf`] drops,
/// so a steady-state datapath performs zero heap allocations.
///
/// # Examples
///
/// ```
/// use sim::{BufPool, PacketBuf};
///
/// let pool = BufPool::new(256);
/// {
///     let mut b = pool.take();
///     b.extend_from_slice(b"hello");
///     assert_eq!(&b[..], b"hello");
/// } // drop recycles the storage
/// let again = pool.take();
/// assert_eq!(pool.stats().hits.get(), 1); // second lease reused the first
/// assert_eq!(pool.stats().misses.get(), 1);
/// drop(again);
/// ```
#[derive(Clone)]
pub struct BufPool(Rc<RefCell<PoolInner>>);

impl fmt::Debug for BufPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("BufPool")
            .field("free", &inner.free.len())
            .field("buf_capacity", &inner.buf_capacity)
            .field("stats", &inner.stats)
            .finish()
    }
}

impl BufPool {
    /// Default cap on buffers retained in the free list.
    pub const DEFAULT_MAX_FREE: usize = 64;

    /// Creates a pool whose fresh buffers start with `buf_capacity` bytes
    /// of capacity.
    pub fn new(buf_capacity: usize) -> BufPool {
        BufPool(Rc::new(RefCell::new(PoolInner {
            free: Vec::new(),
            buf_capacity,
            max_free: Self::DEFAULT_MAX_FREE,
            stats: PoolStats::default(),
        })))
    }

    /// Leases an empty buffer (no headroom).
    pub fn take(&self) -> PacketBuf {
        self.take_with_headroom(0)
    }

    /// Leases an empty buffer whose first `headroom` bytes are reserved for
    /// later [`PacketBuf::prepend`] calls.
    pub fn take_with_headroom(&self, headroom: usize) -> PacketBuf {
        let mut inner = self.0.borrow_mut();
        let mut storage = match inner.free.pop() {
            Some(v) => {
                inner.stats.hits.incr();
                v
            }
            None => {
                inner.stats.misses.incr();
                Vec::with_capacity(inner.buf_capacity.max(headroom))
            }
        };
        inner.stats.live += 1;
        inner.stats.high_water = inner.stats.high_water.max(inner.stats.live);
        storage.clear();
        storage.resize(headroom, 0);
        PacketBuf {
            storage,
            start: headroom,
            pool: Some(BufPool(Rc::clone(&self.0))),
        }
    }

    /// Current allocation counters.
    pub fn stats(&self) -> PoolStats {
        self.0.borrow().stats
    }

    /// Number of buffers sitting in the free list.
    pub fn free_len(&self) -> usize {
        self.0.borrow().free.len()
    }

    fn recycle(&self, mut storage: Vec<u8>) {
        let mut inner = self.0.borrow_mut();
        inner.stats.live = inner.stats.live.saturating_sub(1);
        if inner.free.len() < inner.max_free {
            storage.clear();
            inner.stats.recycled.incr();
            inner.free.push(storage);
        }
    }
}

/// A byte buffer with headroom and cheap front-slicing, optionally leased
/// from a [`BufPool`].
///
/// The live bytes are `storage[start..]`; `start` both implements headroom
/// (lease with [`BufPool::take_with_headroom`], then [`prepend`] headers
/// without moving the payload) and cheap slicing ([`advance`] strips a
/// parsed header without copying the remainder).
///
/// [`prepend`]: PacketBuf::prepend
/// [`advance`]: PacketBuf::advance
///
/// # Examples
///
/// ```
/// use sim::{BufPool, PacketBuf};
///
/// let pool = BufPool::new(64);
/// let mut b = pool.take_with_headroom(2);
/// b.extend_from_slice(b"payload");
/// b.prepend(b"hh");            // uses the headroom, no copy of "payload"
/// assert_eq!(&b[..], b"hhpayload");
/// b.advance(2);                // strip the header again, no copy
/// assert_eq!(&b[..], b"payload");
/// ```
pub struct PacketBuf {
    storage: Vec<u8>,
    start: usize,
    pool: Option<BufPool>,
}

impl PacketBuf {
    /// Creates an empty, unpooled buffer.
    pub fn new() -> PacketBuf {
        PacketBuf {
            storage: Vec::new(),
            start: 0,
            pool: None,
        }
    }

    /// Creates an empty, unpooled buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> PacketBuf {
        PacketBuf {
            storage: Vec::with_capacity(cap),
            start: 0,
            pool: None,
        }
    }

    /// Wraps an owned `Vec` (no pool; the storage frees normally on drop).
    pub fn from_vec(v: Vec<u8>) -> PacketBuf {
        PacketBuf {
            storage: v,
            start: 0,
            pool: None,
        }
    }

    /// Number of live bytes.
    pub fn len(&self) -> usize {
        self.storage.len() - self.start
    }

    /// True when no live bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes available for [`prepend`](PacketBuf::prepend) without copying.
    pub fn headroom(&self) -> usize {
        self.start
    }

    /// The live bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.storage[self.start..]
    }

    /// Appends one byte.
    pub fn push(&mut self, byte: u8) {
        self.storage.push(byte);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.storage.extend_from_slice(bytes);
    }

    /// Prepends `bytes` before the live data. Free when `bytes.len() <=
    /// headroom()`; otherwise the payload shifts right once to make room.
    pub fn prepend(&mut self, bytes: &[u8]) {
        if bytes.len() <= self.start {
            self.start -= bytes.len();
            self.storage[self.start..self.start + bytes.len()].copy_from_slice(bytes);
        } else {
            // Slow path: grow and shift the live bytes right.
            let need = bytes.len() - self.start;
            let old_len = self.storage.len();
            self.storage.resize(old_len + need, 0);
            self.storage.copy_within(self.start..old_len, bytes.len());
            self.storage[..bytes.len()].copy_from_slice(bytes);
            self.start = 0;
        }
    }

    /// Drops the first `n` live bytes without copying (cheap slicing).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }

    /// Shortens the live bytes to `n` (no-op if already shorter).
    pub fn truncate(&mut self, n: usize) {
        if n < self.len() {
            self.storage.truncate(self.start + n);
        }
    }

    /// Clears all live bytes and headroom; capacity is retained.
    pub fn clear(&mut self) {
        self.storage.clear();
        self.start = 0;
    }

    /// Copies the live bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for PacketBuf {
    fn default() -> PacketBuf {
        PacketBuf::new()
    }
}

impl Drop for PacketBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.recycle(std::mem::take(&mut self.storage));
        }
    }
}

impl Clone for PacketBuf {
    /// Clones the live bytes. A pooled buffer clones through its pool (the
    /// copy is leased, so it recycles on drop like the original).
    fn clone(&self) -> PacketBuf {
        let mut out = match &self.pool {
            Some(pool) => pool.take(),
            None => PacketBuf::with_capacity(self.len()),
        };
        out.extend_from_slice(self.as_slice());
        out
    }
}

impl Deref for PacketBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PacketBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for PacketBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PacketBuf({} bytes)", self.len())
    }
}

impl PartialEq for PacketBuf {
    fn eq(&self, other: &PacketBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PacketBuf {}

impl PartialEq<[u8]> for PacketBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for PacketBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for PacketBuf {
    fn from(v: Vec<u8>) -> PacketBuf {
        PacketBuf::from_vec(v)
    }
}

impl From<&[u8]> for PacketBuf {
    fn from(v: &[u8]) -> PacketBuf {
        PacketBuf::from_vec(v.to_vec())
    }
}

/// Receives completed frames from a datapath stage.
///
/// Drivers emit into a sink instead of returning `Vec<Vec<u8>>`; the
/// caller chooses whether frames land in a `Vec`, a bounded interface
/// queue, or a closure ([`SinkFn`]) that forwards them immediately — the
/// no-output fast path then allocates nothing at all.
///
/// # Examples
///
/// ```
/// use sim::{FrameSink, PacketBuf, SinkFn};
///
/// fn produce(out: &mut impl FrameSink<PacketBuf>) {
///     out.emit(PacketBuf::from(vec![1, 2, 3]));
/// }
///
/// // Collect into a Vec...
/// let mut frames: Vec<PacketBuf> = Vec::new();
/// produce(&mut frames);
/// assert_eq!(frames.len(), 1);
///
/// // ...or handle each frame inline without buffering.
/// let mut total = 0;
/// produce(&mut SinkFn(|f: PacketBuf| total += f.len()));
/// assert_eq!(total, 3);
/// ```
pub trait FrameSink<T = PacketBuf> {
    /// Accepts one completed frame.
    fn emit(&mut self, frame: T);
}

impl<T> FrameSink<T> for Vec<T> {
    fn emit(&mut self, frame: T) {
        self.push(frame);
    }
}

/// Adapts a closure into a [`FrameSink`].
pub struct SinkFn<F>(pub F);

impl<T, F: FnMut(T)> FrameSink<T> for SinkFn<F> {
    fn emit(&mut self, frame: T) {
        (self.0)(frame);
    }
}

/// Byte-granular output used by the codecs' `encode_into` paths.
pub trait ByteSink {
    /// Appends one byte.
    fn put(&mut self, byte: u8);
    /// Appends a slice.
    fn put_slice(&mut self, bytes: &[u8]);
}

impl ByteSink for Vec<u8> {
    fn put(&mut self, byte: u8) {
        self.push(byte);
    }
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

impl ByteSink for PacketBuf {
    fn put(&mut self, byte: u8) {
        self.push(byte);
    }
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_buffers() {
        let pool = BufPool::new(128);
        let a = pool.take();
        drop(a);
        let b = pool.take();
        let s = pool.stats();
        assert_eq!(s.misses.get(), 1);
        assert_eq!(s.hits.get(), 1);
        assert_eq!(s.live, 1);
        assert_eq!(s.high_water, 1);
        drop(b);
        assert_eq!(pool.stats().recycled.get(), 2);
        assert_eq!(pool.stats().live, 0);
    }

    #[test]
    fn high_water_tracks_simultaneous_leases() {
        let pool = BufPool::new(16);
        let a = pool.take();
        let b = pool.take();
        let c = pool.take();
        drop((a, b, c));
        assert_eq!(pool.stats().high_water, 3);
        assert_eq!(pool.stats().live, 0);
    }

    #[test]
    fn prepend_uses_headroom_without_shifting() {
        let pool = BufPool::new(64);
        let mut b = pool.take_with_headroom(4);
        b.extend_from_slice(b"data");
        assert_eq!(b.headroom(), 4);
        b.prepend(b"hd");
        assert_eq!(&b[..], b"hddata");
        assert_eq!(b.headroom(), 2);
    }

    #[test]
    fn prepend_slow_path_shifts_payload() {
        let mut b = PacketBuf::new();
        b.extend_from_slice(b"xyz");
        b.prepend(b"abcd"); // no headroom at all
        assert_eq!(&b[..], b"abcdxyz");
    }

    #[test]
    fn advance_and_truncate_slice_cheaply() {
        let mut b = PacketBuf::from(vec![1, 2, 3, 4, 5]);
        b.advance(2);
        assert_eq!(&b[..], &[3, 4, 5]);
        b.truncate(2);
        assert_eq!(&b[..], &[3, 4]);
        assert_eq!(b.headroom(), 2);
    }

    #[test]
    fn clone_of_pooled_buffer_is_pooled() {
        let pool = BufPool::new(32);
        let mut a = pool.take();
        a.extend_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        drop(a);
        drop(b);
        assert_eq!(pool.stats().live, 0);
        assert_eq!(pool.stats().recycled.get(), 2);
    }

    #[test]
    fn recycled_buffer_comes_back_empty() {
        let pool = BufPool::new(32);
        let mut a = pool.take_with_headroom(8);
        a.extend_from_slice(b"junk");
        drop(a);
        let b = pool.take();
        assert!(b.is_empty());
        assert_eq!(b.headroom(), 0);
    }

    #[test]
    fn sinks_collect_and_forward() {
        let mut v: Vec<PacketBuf> = Vec::new();
        v.emit(PacketBuf::from(vec![9]));
        assert_eq!(v.len(), 1);
        let mut n = 0usize;
        let mut s = SinkFn(|f: PacketBuf| n += f.len());
        s.emit(PacketBuf::from(vec![1, 2]));
        assert_eq!(n, 2);
    }

    #[test]
    fn byte_sink_works_for_vec_and_pktbuf() {
        let mut v: Vec<u8> = Vec::new();
        v.put(1);
        v.put_slice(&[2, 3]);
        assert_eq!(v, vec![1, 2, 3]);
        let mut p = PacketBuf::new();
        p.put(1);
        p.put_slice(&[2, 3]);
        assert_eq!(&p[..], &[1, 2, 3]);
    }
}
