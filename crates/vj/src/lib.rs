//! RFC 1144 (CSLIP) Van Jacobson TCP/IP header compression.
//!
//! The 1988 packet-radio port left every interactive TCP segment carrying
//! its full 40-byte TCP/IP header onto a 1200 bit/s channel, so a one-byte
//! telnet echo cost ~41x its payload in airtime.  RFC 1144 fixes that by
//! observing that within one TCP connection almost nothing in the header
//! changes packet to packet: the compressor keeps the last header it sent
//! per connection in a *slot*, transmits only the fields that differed as
//! variable-length deltas behind a one-byte CHANGE mask, and falls back to
//! an *uncompressed refresh* (the full datagram with the IP protocol byte
//! replaced by the slot number) whenever the deltas cannot express the
//! packet.  The refresh also re-seeds the decompressor after loss: a
//! dropped compressed frame desynchronises the slot, the decompressor
//! *tosses* traffic until the next refresh arrives, and TCP's own
//! retransmission supplies that refresh.
//!
//! On the AX.25 link the packet type travels in the frame PID rather than
//! in SLIP type bits: PID `0x06` marks a compressed TCP/IP packet, PID
//! `0x07` an uncompressed refresh, and ordinary IP stays on PID `0xCC`.
//! Consequently the top bit of the CHANGE mask is never used here.
//!
//! Everything in this crate operates in place on caller-provided buffers:
//! [`VjCompressor::compress`] rewrites the datagram's own bytes and
//! reports where the (shorter) compressed packet starts, and
//! [`VjDecompressor::decompress`] rebuilds into a caller-owned `Vec` that
//! is reused across packets.  Neither fast path allocates — the `vj_hdr`
//! bench asserts this with a counting global allocator.
//!
//! One deliberate hardening beyond the BSD reference: the decompressor
//! verifies the reconstructed TCP checksum (carried verbatim in every
//! compressed header) before delivering, so a mis-applied delta is dropped
//! here instead of surfacing as a corrupted segment upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Change-mask bit: connection number follows the mask byte.
pub const NEW_C: u8 = 0x40;
/// Change-mask bit: explicit IP ID delta present (else ID is implicitly +1).
pub const NEW_I: u8 = 0x20;
/// Change-mask bit: copy of the TCP PUSH flag.
pub const TCP_PUSH_BIT: u8 = 0x10;
/// Change-mask bit: sequence-number delta present.
pub const NEW_S: u8 = 0x08;
/// Change-mask bit: ack-number delta present.
pub const NEW_A: u8 = 0x04;
/// Change-mask bit: window delta present.
pub const NEW_W: u8 = 0x02;
/// Change-mask bit: urgent pointer present (URG set).
pub const NEW_U: u8 = 0x01;

/// Reserved mask combination: echoed interactive traffic (seq and ack both
/// advanced by the previous packet's data length; no deltas on the wire).
pub const SPECIAL_I: u8 = NEW_S | NEW_W | NEW_U;
/// Reserved mask combination: unidirectional data (seq advanced by the
/// previous packet's data length; no deltas on the wire).
pub const SPECIAL_D: u8 = NEW_S | NEW_A | NEW_W | NEW_U;
const SPECIALS_MASK: u8 = NEW_S | NEW_A | NEW_W | NEW_U;

/// Combined IP + TCP header length handled by the compressor (no options).
pub const HDR_LEN: usize = 40;
/// Worst-case compressed header: mask + conn + checksum + five 3-byte deltas.
pub const MAX_COMPRESSED_HDR: usize = 19;
/// Default number of per-connection compression slots (RFC 1144 §3.2.2).
pub const DEFAULT_SLOTS: usize = 16;
/// Hard ceiling on slots: the connection number must fit one byte.
pub const MAX_SLOTS: usize = 256;

/// Compile-time tuning for one side of a VJ link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VjConfig {
    /// Number of per-connection slots (1..=256). Both ends of a link must
    /// agree; the compressor never emits a connection number >= `slots`.
    pub slots: usize,
}

impl Default for VjConfig {
    fn default() -> Self {
        VjConfig {
            slots: DEFAULT_SLOTS,
        }
    }
}

/// Why a received VJ packet could not be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VjError {
    /// Packet shorter than its own framing requires.
    Truncated,
    /// Not an IPv4/TCP datagram the slot machinery can hold.
    NotTcpIp,
    /// Connection number outside the negotiated slot table.
    BadConnection,
    /// Compressed packet for a slot that was never seeded by a refresh.
    NoContext,
    /// Dropped while awaiting a refresh after an earlier error.
    Tossed,
    /// Reconstructed segment failed TCP checksum verification.
    BadChecksum,
}

impl std::fmt::Display for VjError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VjError::Truncated => "truncated VJ packet",
            VjError::NotTcpIp => "not an IPv4/TCP datagram",
            VjError::BadConnection => "connection number out of range",
            VjError::NoContext => "no context for connection",
            VjError::Tossed => "tossed awaiting refresh",
            VjError::BadChecksum => "reconstructed TCP checksum mismatch",
        };
        f.write_str(s)
    }
}

/// What the compressor decided for one outbound datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VjOutcome {
    /// Send the datagram unchanged as ordinary IP (PID `0xCC`).
    Ip,
    /// The datagram was rewritten in place: transmit `dgram[start..]`
    /// as a compressed TCP/IP packet (PID `0x06`).
    Compressed {
        /// Offset of the first byte of the compressed packet.
        start: usize,
    },
    /// Transmit the whole datagram as an uncompressed refresh (PID
    /// `0x07`); its IP protocol byte now carries the slot number.
    Uncompressed,
}

/// One connection's remembered state: the last 40-byte TCP/IP header
/// exchanged on it, plus an LRU stamp on the compressor side.
#[derive(Debug, Clone, Copy)]
struct Slot {
    hdr: [u8; HDR_LEN],
    active: bool,
    age: u64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            hdr: [0; HDR_LEN],
            active: false,
            age: 0,
        }
    }
}

/// Compressor-side counters for reporting and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VjCompStats {
    /// Outbound TCP datagrams offered to the compressor.
    pub packets: u64,
    /// Datagrams sent compressed (PID 0x06).
    pub compressed: u64,
    /// Datagrams sent as uncompressed refreshes (PID 0x07).
    pub refreshes: u64,
    /// Datagrams passed through untouched as plain IP (PID 0xCC).
    pub passthrough: u64,
    /// Slot searches, and of those, misses that recycled an LRU slot.
    pub searches: u64,
    /// Slot-table misses (new or recycled connections).
    pub misses: u64,
    /// Header bytes removed from the air by compression.
    pub hdr_bytes_saved: u64,
}

/// Decompressor-side counters for reporting and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VjDecompStats {
    /// Compressed packets successfully reconstructed.
    pub compressed_in: u64,
    /// Uncompressed refreshes accepted (slot re-seeded).
    pub uncompressed_in: u64,
    /// Packets dropped while tossing (awaiting a refresh).
    pub tossed: u64,
    /// Malformed packets or reconstruction failures (includes checksum).
    pub errors: u64,
}

// ---------------------------------------------------------------------------
// Header field accessors over the canonical 40-byte TCP/IP header.
// ---------------------------------------------------------------------------

const TH_FIN: u8 = 0x01;
const TH_SYN: u8 = 0x02;
const TH_RST: u8 = 0x04;
const TH_PUSH: u8 = 0x08;
const TH_ACK: u8 = 0x10;
const TH_URG: u8 = 0x20;

fn get_u16(b: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([b[at], b[at + 1]])
}

fn get_u32(b: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn put_u16(b: &mut [u8], at: usize, v: u16) {
    b[at..at + 2].copy_from_slice(&v.to_be_bytes());
}

fn put_u32(b: &mut [u8], at: usize, v: u32) {
    b[at..at + 4].copy_from_slice(&v.to_be_bytes());
}

/// One's-complement sum over a list of byte slices (RFC 1071), local so
/// this crate stays dependency-free for the zero-allocation bench.
fn internet_checksum(parts: &[&[u8]]) -> u16 {
    let mut sum: u32 = 0;
    let mut carry_hi: Option<u8> = None;
    for part in parts {
        for &byte in part.iter() {
            match carry_hi.take() {
                None => carry_hi = Some(byte),
                Some(hi) => sum += u32::from(u16::from_be_bytes([hi, byte])),
            }
        }
    }
    if let Some(hi) = carry_hi {
        sum += u32::from(u16::from_be_bytes([hi, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Rewrite the IP header checksum of a 20-byte header in place.
fn fix_ip_checksum(hdr: &mut [u8]) {
    hdr[10] = 0;
    hdr[11] = 0;
    let ck = internet_checksum(&[&hdr[..20]]);
    put_u16(hdr, 10, ck);
}

/// TCP checksum over the rebuilt header and payload (RFC 793 pseudo-header).
fn tcp_checksum_ok(hdr: &[u8], payload: &[u8]) -> bool {
    let tcp_len = (HDR_LEN - 20 + payload.len()) as u16;
    let mut pseudo = [0u8; 12];
    pseudo[0..4].copy_from_slice(&hdr[12..16]);
    pseudo[4..8].copy_from_slice(&hdr[16..20]);
    pseudo[9] = 6;
    pseudo[10..12].copy_from_slice(&tcp_len.to_be_bytes());
    internet_checksum(&[&pseudo, &hdr[20..HDR_LEN], payload]) == 0
}

/// Is this datagram one the slot machinery can represent?  IPv4 without
/// options, unfragmented, carrying TCP without options (20-byte header).
fn compressible_shape(dgram: &[u8]) -> bool {
    dgram.len() >= HDR_LEN
        && dgram[0] == 0x45
        && dgram[9] == 6
        && (dgram[6] & 0x3F) == 0
        && dgram[7] == 0
        && (dgram[32] >> 4) == 5
}

/// Append one delta in RFC 1144 variable-length form: a single byte for
/// 1..=255, or a zero escape followed by two big-endian bytes otherwise
/// (which also encodes an exact zero, needed for the IP ID).
fn encode_delta(buf: &mut [u8], len: &mut usize, v: u16) {
    if (1..=255).contains(&v) {
        buf[*len] = v as u8;
        *len += 1;
    } else {
        buf[*len] = 0;
        put_u16(buf, *len + 1, v);
        *len += 3;
    }
}

/// Pull one variable-length delta off the compressed header.
fn decode_delta(buf: &[u8], at: &mut usize) -> Option<u16> {
    let first = *buf.get(*at)?;
    if first != 0 {
        *at += 1;
        return Some(u16::from(first));
    }
    if *at + 3 > buf.len() {
        return None;
    }
    let v = get_u16(buf, *at + 1);
    *at += 3;
    Some(v)
}

// ---------------------------------------------------------------------------
// Compressor
// ---------------------------------------------------------------------------

/// Transmit-side state: the per-connection slot table and the identity of
/// the connection named in the most recent packet (so its number can be
/// elided from consecutive packets of the same flow).
#[derive(Debug)]
pub struct VjCompressor {
    slots: Vec<Slot>,
    last: usize,
    tick: u64,
    stats: VjCompStats,
}

impl VjCompressor {
    /// Build a compressor with `cfg.slots` empty slots (clamped to 1..=256).
    pub fn new(cfg: VjConfig) -> VjCompressor {
        let n = cfg.slots.clamp(1, MAX_SLOTS);
        VjCompressor {
            slots: vec![Slot::new(); n],
            last: 0,
            tick: 0,
            stats: VjCompStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> VjCompStats {
        self.stats
    }

    /// Classify and (when possible) compress one outbound IPv4 datagram in
    /// place.  `dgram` must be the full encoded datagram.  See
    /// [`VjOutcome`] for what to transmit afterwards; on
    /// [`VjOutcome::Uncompressed`] the IP protocol byte has been replaced
    /// by the slot number, exactly as the refresh wire format requires.
    pub fn compress(&mut self, dgram: &mut [u8]) -> VjOutcome {
        self.stats.packets += 1;
        // Anything the slot table cannot hold — non-TCP, fragments, IP or
        // TCP options — and any segment whose flags make delta encoding
        // unsafe (SYN/FIN/RST, or a missing ACK) rides as plain IP.
        if !compressible_shape(dgram) || (dgram[33] & (TH_SYN | TH_FIN | TH_RST | TH_ACK)) != TH_ACK
        {
            self.stats.passthrough += 1;
            return VjOutcome::Ip;
        }

        self.stats.searches += 1;
        self.tick += 1;
        // Connection identity: IP source + destination + both ports.
        let conn = self
            .slots
            .iter()
            .position(|s| s.active && s.hdr[12..24] == dgram[12..24]);
        let conn = match conn {
            Some(i) => i,
            None => {
                // Miss: recycle the least recently used slot and seed it
                // with a refresh.
                self.stats.misses += 1;
                let lru = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| (s.active, s.age))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                return self.refresh(lru, dgram);
            }
        };

        let old = self.slots[conn].hdr;
        // Fields we have no delta encoding for must be identical to the
        // remembered header: version/IHL, TOS, fragment word, TTL.  The
        // urgent pointer likewise (our compressor refuses URG outright).
        if old[0] != dgram[0]
            || old[1] != dgram[1]
            || old[6..8] != dgram[6..8]
            || old[8] != dgram[8]
            || (dgram[33] & TH_URG) != 0
            || get_u16(&old, 38) != get_u16(dgram, 38)
        {
            return self.refresh(conn, dgram);
        }

        let mut deltas = [0u8; MAX_COMPRESSED_HDR];
        let mut dlen = 0usize;
        let mut changes = 0u8;

        let delta_w = get_u16(dgram, 34).wrapping_sub(get_u16(&old, 34));
        if delta_w != 0 {
            encode_delta(&mut deltas, &mut dlen, delta_w);
            changes |= NEW_W;
        }

        let delta_a = get_u32(dgram, 28).wrapping_sub(get_u32(&old, 28));
        if delta_a != 0 {
            if delta_a > 0xFFFF {
                // Ack moved backwards or by more than 64K: not expressible.
                return self.refresh(conn, dgram);
            }
            encode_delta(&mut deltas, &mut dlen, delta_a as u16);
            changes |= NEW_A;
        }

        let delta_s = get_u32(dgram, 24).wrapping_sub(get_u32(&old, 24));
        if delta_s != 0 {
            if delta_s > 0xFFFF {
                // Sequence ran backwards: a retransmission.  Refresh so the
                // far end re-seeds even if it lost the original.
                return self.refresh(conn, dgram);
            }
            encode_delta(&mut deltas, &mut dlen, delta_s as u16);
            changes |= NEW_S;
        }

        let old_dlen = u32::from(get_u16(&old, 2)) - HDR_LEN as u32;
        match changes {
            // Nothing moved.  First data after a pure ack is the one
            // legitimate case (seq genuinely unchanged); anything else
            // smells like a retransmitted ack or window probe, which
            // must go uncompressed in case the far end lost the first.
            0 if !(get_u16(dgram, 2) != get_u16(&old, 2) && old_dlen == 0) => {
                return self.refresh(conn, dgram);
            }
            SPECIAL_I | SPECIAL_D => {
                // A packet that coincidentally encodes to a reserved mask
                // may not travel compressed.
                return self.refresh(conn, dgram);
            }
            c if c == NEW_S | NEW_A && delta_s == delta_a && delta_s == old_dlen => {
                // Echoed interactive traffic: both numbers advanced by
                // the previous packet's data; say so in two bits.
                changes = SPECIAL_I;
                dlen = 0;
            }
            NEW_S if delta_s == old_dlen => {
                // Unidirectional data stream.
                changes = SPECIAL_D;
                dlen = 0;
            }
            _ => {}
        }

        let delta_i = get_u16(dgram, 4).wrapping_sub(get_u16(&old, 4));
        if delta_i != 1 {
            encode_delta(&mut deltas, &mut dlen, delta_i);
            changes |= NEW_I;
        }
        if (dgram[33] & TH_PUSH) != 0 {
            changes |= TCP_PUSH_BIT;
        }

        // Assemble mask + optional connection number + TCP checksum +
        // deltas, then lay it over the tail of the original header so the
        // compressed packet ends exactly where the payload begins.
        let mut hdr = [0u8; MAX_COMPRESSED_HDR];
        let mut hlen = 1usize;
        if conn != self.last {
            changes |= NEW_C;
            hdr[hlen] = conn as u8;
            hlen += 1;
            self.last = conn;
        }
        hdr[hlen] = dgram[36];
        hdr[hlen + 1] = dgram[37];
        hlen += 2;
        hdr[0] = changes;
        hdr[hlen..hlen + dlen].copy_from_slice(&deltas[..dlen]);
        hlen += dlen;

        let slot = &mut self.slots[conn];
        slot.hdr.copy_from_slice(&dgram[..HDR_LEN]);
        slot.age = self.tick;

        let start = HDR_LEN - hlen;
        dgram[start..HDR_LEN].copy_from_slice(&hdr[..hlen]);
        self.stats.compressed += 1;
        self.stats.hdr_bytes_saved += start as u64;
        VjOutcome::Compressed { start }
    }

    /// Seed `conn` from this datagram and mark it for transmission as an
    /// uncompressed refresh: the IP protocol byte is replaced with the
    /// slot number (the far end restores it and re-derives the checksum).
    fn refresh(&mut self, conn: usize, dgram: &mut [u8]) -> VjOutcome {
        let slot = &mut self.slots[conn];
        slot.hdr.copy_from_slice(&dgram[..HDR_LEN]);
        slot.active = true;
        slot.age = self.tick;
        self.last = conn;
        dgram[9] = conn as u8;
        self.stats.refreshes += 1;
        VjOutcome::Uncompressed
    }
}

// ---------------------------------------------------------------------------
// Decompressor
// ---------------------------------------------------------------------------

/// Receive-side state: the mirror slot table, the implicit connection
/// number, and the *toss* flag that discards compressed traffic between an
/// error and the next uncompressed refresh.
#[derive(Debug)]
pub struct VjDecompressor {
    slots: Vec<Slot>,
    last: usize,
    toss: bool,
    stats: VjDecompStats,
}

impl VjDecompressor {
    /// Build a decompressor whose slot table mirrors the far compressor.
    pub fn new(cfg: VjConfig) -> VjDecompressor {
        let n = cfg.slots.clamp(1, MAX_SLOTS);
        VjDecompressor {
            slots: vec![Slot::new(); n],
            last: 0,
            toss: true,
            stats: VjDecompStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> VjDecompStats {
        self.stats
    }

    /// Whether the decompressor is currently discarding compressed traffic
    /// while it waits for a refresh.
    pub fn tossing(&self) -> bool {
        self.toss
    }

    /// Accept an uncompressed refresh (PID `0x07`) in place: restore the
    /// protocol byte, repair the IP checksum, and re-seed the slot.  On
    /// success `dgram` is again a well-formed IPv4/TCP datagram.
    pub fn refresh(&mut self, dgram: &mut [u8]) -> Result<(), VjError> {
        if dgram.len() < HDR_LEN {
            self.toss = true;
            self.stats.errors += 1;
            return Err(VjError::Truncated);
        }
        let conn = usize::from(dgram[9]);
        if conn >= self.slots.len() {
            self.toss = true;
            self.stats.errors += 1;
            return Err(VjError::BadConnection);
        }
        dgram[9] = 6;
        fix_ip_checksum(dgram);
        if !compressible_shape(dgram) {
            self.toss = true;
            self.stats.errors += 1;
            return Err(VjError::NotTcpIp);
        }
        let slot = &mut self.slots[conn];
        slot.hdr.copy_from_slice(&dgram[..HDR_LEN]);
        slot.active = true;
        self.last = conn;
        self.toss = false;
        self.stats.uncompressed_in += 1;
        Ok(())
    }

    /// Reconstruct a compressed packet (PID `0x06`) into `out`, which is
    /// cleared first and reused across calls (it only allocates while
    /// growing toward its steady-state capacity).  On any error the
    /// decompressor begins tossing until the next refresh.
    pub fn decompress(&mut self, comp: &[u8], out: &mut Vec<u8>) -> Result<(), VjError> {
        match self.decompress_inner(comp, out) {
            Ok(()) => {
                self.stats.compressed_in += 1;
                Ok(())
            }
            Err(e) => {
                self.toss = true;
                if e == VjError::Tossed {
                    self.stats.tossed += 1;
                } else {
                    self.stats.errors += 1;
                }
                Err(e)
            }
        }
    }

    fn decompress_inner(&mut self, comp: &[u8], out: &mut Vec<u8>) -> Result<(), VjError> {
        let mask = *comp.first().ok_or(VjError::Truncated)?;
        let mut at = 1usize;
        if mask & NEW_C != 0 {
            let conn = usize::from(*comp.get(at).ok_or(VjError::Truncated)?);
            at += 1;
            if conn >= self.slots.len() {
                return Err(VjError::BadConnection);
            }
            // An explicit connection number is a sync point for that
            // connection, so it clears the toss flag (RFC 1144 §4.1); the
            // checksum verification below still guards the rebuilt bytes.
            self.last = conn;
            self.toss = false;
        } else if self.toss {
            return Err(VjError::Tossed);
        }
        let conn = self.last;
        if !self.slots[conn].active {
            return Err(VjError::NoContext);
        }
        if at + 2 > comp.len() {
            return Err(VjError::Truncated);
        }
        let tcp_ck = get_u16(comp, at);
        at += 2;

        let mut hdr = self.slots[conn].hdr;
        let prev_dlen = u32::from(get_u16(&hdr, 2)) - HDR_LEN as u32;

        if mask & TCP_PUSH_BIT != 0 {
            hdr[33] |= TH_PUSH;
        } else {
            hdr[33] &= !TH_PUSH;
        }

        match mask & SPECIALS_MASK {
            m if m == SPECIAL_I => {
                let seq = get_u32(&hdr, 24).wrapping_add(prev_dlen);
                let ack = get_u32(&hdr, 28).wrapping_add(prev_dlen);
                put_u32(&mut hdr, 24, seq);
                put_u32(&mut hdr, 28, ack);
            }
            m if m == SPECIAL_D => {
                let seq = get_u32(&hdr, 24).wrapping_add(prev_dlen);
                put_u32(&mut hdr, 24, seq);
            }
            _ => {
                if mask & NEW_U != 0 {
                    let urp = decode_delta(comp, &mut at).ok_or(VjError::Truncated)?;
                    hdr[33] |= TH_URG;
                    put_u16(&mut hdr, 38, urp);
                } else {
                    hdr[33] &= !TH_URG;
                }
                if mask & NEW_W != 0 {
                    let d = decode_delta(comp, &mut at).ok_or(VjError::Truncated)?;
                    let win = get_u16(&hdr, 34).wrapping_add(d);
                    put_u16(&mut hdr, 34, win);
                }
                if mask & NEW_A != 0 {
                    let d = decode_delta(comp, &mut at).ok_or(VjError::Truncated)?;
                    let ack = get_u32(&hdr, 28).wrapping_add(u32::from(d));
                    put_u32(&mut hdr, 28, ack);
                }
                if mask & NEW_S != 0 {
                    let d = decode_delta(comp, &mut at).ok_or(VjError::Truncated)?;
                    let seq = get_u32(&hdr, 24).wrapping_add(u32::from(d));
                    put_u32(&mut hdr, 24, seq);
                }
            }
        }
        let ipid_delta = if mask & NEW_I != 0 {
            decode_delta(comp, &mut at).ok_or(VjError::Truncated)?
        } else {
            1
        };
        let ipid = get_u16(&hdr, 4).wrapping_add(ipid_delta);
        put_u16(&mut hdr, 4, ipid);

        let payload = &comp[at..];
        put_u16(&mut hdr, 2, (HDR_LEN + payload.len()) as u16);
        put_u16(&mut hdr, 36, tcp_ck);
        fix_ip_checksum(&mut hdr);

        // Hardening over the reference implementation: check the carried
        // TCP checksum against the rebuilt segment *before* delivering, so
        // desynchronised state is caught at the link instead of upstream.
        if !tcp_checksum_ok(&hdr, payload) {
            return Err(VjError::BadChecksum);
        }

        self.slots[conn].hdr = hdr;
        out.clear();
        out.extend_from_slice(&hdr);
        out.extend_from_slice(payload);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a 40-byte-header TCP/IP datagram from scratch, with a correct
    /// TCP checksum (the compressor carries it verbatim and the
    /// decompressor verifies it).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn make_dgram(
        src: [u8; 4],
        dst: [u8; 4],
        ports: (u16, u16),
        ipid: u16,
        seq: u32,
        ack: u32,
        win: u16,
        flags: u8,
        payload: &[u8],
    ) -> Vec<u8> {
        let mut d = vec![0u8; HDR_LEN + payload.len()];
        d[0] = 0x45;
        put_u16(&mut d, 2, (HDR_LEN + payload.len()) as u16);
        put_u16(&mut d, 4, ipid);
        d[8] = 30;
        d[9] = 6;
        d[12..16].copy_from_slice(&src);
        d[16..20].copy_from_slice(&dst);
        put_u16(&mut d, 20, ports.0);
        put_u16(&mut d, 22, ports.1);
        put_u32(&mut d, 24, seq);
        put_u32(&mut d, 28, ack);
        d[32] = 5 << 4;
        d[33] = flags;
        put_u16(&mut d, 34, win);
        d[40..].copy_from_slice(payload);
        // TCP checksum.
        let tcp_len = (20 + payload.len()) as u16;
        let mut pseudo = [0u8; 12];
        pseudo[0..4].copy_from_slice(&src);
        pseudo[4..8].copy_from_slice(&dst);
        pseudo[9] = 6;
        pseudo[10..12].copy_from_slice(&tcp_len.to_be_bytes());
        let ck = internet_checksum(&[&pseudo, &d[20..]]);
        put_u16(&mut d, 36, ck);
        fix_ip_checksum(&mut d);
        d
    }

    const A: [u8; 4] = [44, 24, 0, 5];
    const B: [u8; 4] = [128, 95, 1, 4];

    fn roundtrip(
        comp: &mut VjCompressor,
        deco: &mut VjDecompressor,
        dgram: &[u8],
    ) -> (VjOutcome, Vec<u8>) {
        let mut tx = dgram.to_vec();
        let outcome = comp.compress(&mut tx);
        let rebuilt = match outcome {
            VjOutcome::Ip => tx.clone(),
            VjOutcome::Uncompressed => {
                deco.refresh(&mut tx).expect("refresh accepted");
                tx.clone()
            }
            VjOutcome::Compressed { start } => {
                let mut out = Vec::new();
                deco.decompress(&tx[start..], &mut out).expect("decompress");
                out
            }
        };
        (outcome, rebuilt)
    }

    #[test]
    fn first_packet_refreshes_then_stream_compresses() {
        let mut c = VjCompressor::new(VjConfig::default());
        let mut d = VjDecompressor::new(VjConfig::default());
        let p1 = make_dgram(A, B, (1024, 23), 7, 100, 900, 4096, TH_ACK | TH_PUSH, b"x");
        let (o1, r1) = roundtrip(&mut c, &mut d, &p1);
        assert_eq!(o1, VjOutcome::Uncompressed);
        assert_eq!(r1, p1, "refresh reconstructs the original datagram");

        // Unidirectional data: seq advances by previous data length.
        let p2 = make_dgram(A, B, (1024, 23), 8, 101, 900, 4096, TH_ACK | TH_PUSH, b"y");
        let (o2, r2) = roundtrip(&mut c, &mut d, &p2);
        match o2 {
            VjOutcome::Compressed { start } => {
                assert_eq!(
                    HDR_LEN - start,
                    3,
                    "SPECIAL_D header is mask + checksum only"
                );
            }
            other => panic!("expected compressed, got {other:?}"),
        }
        assert_eq!(r2, p2);
    }

    #[test]
    fn echoed_interactive_uses_special_i() {
        let mut c = VjCompressor::new(VjConfig::default());
        let mut d = VjDecompressor::new(VjConfig::default());
        let p1 = make_dgram(A, B, (1024, 7), 1, 10, 20, 4096, TH_ACK | TH_PUSH, b"a");
        roundtrip(&mut c, &mut d, &p1);
        // Echo side: both seq and ack advance by 1 (previous data length).
        let p2 = make_dgram(A, B, (1024, 7), 2, 11, 21, 4096, TH_ACK | TH_PUSH, b"b");
        let (o, r) = roundtrip(&mut c, &mut d, &p2);
        let VjOutcome::Compressed { start } = o else {
            panic!("not compressed: {o:?}")
        };
        assert_eq!(HDR_LEN - start, 3);
        assert_eq!(r, p2);
    }

    #[test]
    fn syn_fin_rst_and_non_tcp_pass_through() {
        let mut c = VjCompressor::new(VjConfig::default());
        let syn = make_dgram(A, B, (1024, 23), 1, 0, 0, 4096, TH_SYN, b"");
        assert_eq!(c.compress(&mut syn.clone()), VjOutcome::Ip);
        let fin = make_dgram(A, B, (1024, 23), 2, 5, 5, 4096, TH_ACK | TH_FIN, b"");
        assert_eq!(c.compress(&mut fin.clone()), VjOutcome::Ip);
        let rst = make_dgram(A, B, (1024, 23), 3, 5, 5, 4096, TH_RST, b"");
        assert_eq!(c.compress(&mut rst.clone()), VjOutcome::Ip);
        let mut udp = make_dgram(A, B, (1024, 23), 4, 5, 5, 4096, TH_ACK, b"");
        udp[9] = 17;
        fix_ip_checksum(&mut udp);
        assert_eq!(c.compress(&mut udp.clone()), VjOutcome::Ip);
        assert_eq!(c.stats().passthrough, 4);
    }

    #[test]
    fn retransmission_forces_refresh() {
        let mut c = VjCompressor::new(VjConfig::default());
        let mut d = VjDecompressor::new(VjConfig::default());
        let p1 = make_dgram(A, B, (1024, 23), 1, 100, 50, 4096, TH_ACK, b"hello");
        roundtrip(&mut c, &mut d, &p1);
        // Same segment again: seq delta 0 with same length => refresh.
        let (o, r) = roundtrip(&mut c, &mut d, &p1);
        assert_eq!(o, VjOutcome::Uncompressed);
        assert_eq!(r, p1);
        // Seq moving backwards likewise.
        let p0 = make_dgram(A, B, (1024, 23), 2, 60, 50, 4096, TH_ACK, b"old");
        let (o, r) = roundtrip(&mut c, &mut d, &p0);
        assert_eq!(o, VjOutcome::Uncompressed);
        assert_eq!(r, p0);
    }

    #[test]
    fn lost_compressed_frame_tosses_until_refresh() {
        let mut c = VjCompressor::new(VjConfig::default());
        let mut d = VjDecompressor::new(VjConfig::default());
        let mk = |ipid, seq, body: &[u8]| {
            make_dgram(A, B, (9, 23), ipid, seq, 77, 4096, TH_ACK | TH_PUSH, body)
        };
        roundtrip(&mut c, &mut d, &mk(1, 100, b"aa"));
        // p2 compressed but "lost": compress only, never delivered.
        let mut lost = mk(2, 102, b"bb");
        assert!(matches!(
            c.compress(&mut lost),
            VjOutcome::Compressed { .. }
        ));
        // p3 arrives: deltas now mis-apply; the checksum guard must catch it.
        let mut p3 = mk(3, 104, b"cc");
        let VjOutcome::Compressed { start } = c.compress(&mut p3) else {
            panic!()
        };
        let mut out = Vec::new();
        assert_eq!(
            d.decompress(&p3[start..], &mut out),
            Err(VjError::BadChecksum)
        );
        assert!(d.tossing());
        // Further compressed traffic is tossed outright…
        let mut p4 = mk(4, 106, b"dd");
        let VjOutcome::Compressed { start } = c.compress(&mut p4) else {
            panic!()
        };
        assert_eq!(d.decompress(&p4[start..], &mut out), Err(VjError::Tossed));
        // …until a refresh re-seeds the slot (as a TCP retransmit would).
        let p5 = mk(5, 100, b"aa");
        let (o, r) = roundtrip(&mut c, &mut d, &p5);
        assert_eq!(o, VjOutcome::Uncompressed);
        assert_eq!(r, p5);
        assert!(!d.tossing());
        let p6 = mk(6, 102, b"bb");
        let (o, r) = roundtrip(&mut c, &mut d, &p6);
        assert!(matches!(o, VjOutcome::Compressed { .. }));
        assert_eq!(r, p6);
        assert_eq!(d.stats().tossed, 1);
        assert!(d.stats().errors >= 1);
    }

    #[test]
    fn two_connections_share_the_link_with_c_bit() {
        let mut c = VjCompressor::new(VjConfig::default());
        let mut d = VjDecompressor::new(VjConfig::default());
        let tn =
            |ipid, seq| make_dgram(A, B, (1024, 23), ipid, seq, 1, 512, TH_ACK | TH_PUSH, b"t");
        let ft = |ipid, seq| make_dgram(A, B, (1025, 21), ipid, seq, 9, 512, TH_ACK, b"ffff");
        roundtrip(&mut c, &mut d, &tn(1, 10));
        roundtrip(&mut c, &mut d, &ft(100, 500));
        // Alternate: each switch needs the C bit + conn byte (4-byte hdr).
        let (o, r) = roundtrip(&mut c, &mut d, &tn(2, 11));
        let VjOutcome::Compressed { start } = o else {
            panic!("{o:?}")
        };
        assert_eq!(HDR_LEN - start, 4, "mask + conn + checksum");
        assert_eq!(r, tn(2, 11));
        let (o, r) = roundtrip(&mut c, &mut d, &ft(101, 504));
        let VjOutcome::Compressed { start } = o else {
            panic!("{o:?}")
        };
        assert_eq!(HDR_LEN - start, 4);
        assert_eq!(r, ft(101, 504));
    }

    #[test]
    fn slot_table_recycles_lru_and_never_exceeds_byte_range() {
        let mut c = VjCompressor::new(VjConfig { slots: 2 });
        let mut d = VjDecompressor::new(VjConfig { slots: 2 });
        for port in 0..5u16 {
            let p = make_dgram(A, B, (3000 + port, 23), port, 1, 1, 512, TH_ACK, b"z");
            let (o, r) = roundtrip(&mut c, &mut d, &p);
            assert_eq!(o, VjOutcome::Uncompressed, "every new conn refreshes");
            assert_eq!(r, p);
        }
        assert_eq!(c.stats().misses, 5);
    }

    #[test]
    fn large_deltas_use_the_three_byte_escape() {
        let mut c = VjCompressor::new(VjConfig::default());
        let mut d = VjDecompressor::new(VjConfig::default());
        let p1 = make_dgram(A, B, (5, 6), 10, 1000, 2000, 100, TH_ACK, b"");
        roundtrip(&mut c, &mut d, &p1);
        // Window jumps by 0x1234 backwards, ack by 300, seq by 256, ipid by 3.
        let p2 = make_dgram(A, B, (5, 6), 13, 1256, 2300, 100 + 0x1234, TH_ACK, b"q");
        let (o, r) = roundtrip(&mut c, &mut d, &p2);
        assert!(matches!(o, VjOutcome::Compressed { .. }));
        assert_eq!(r, p2);
    }

    #[test]
    fn truncated_and_malformed_inputs_error_not_panic() {
        let mut d = VjDecompressor::new(VjConfig::default());
        let mut out = Vec::new();
        assert_eq!(d.decompress(&[], &mut out), Err(VjError::Truncated));
        assert_eq!(d.decompress(&[NEW_C], &mut out), Err(VjError::Truncated));
        assert_eq!(
            d.decompress(&[NEW_C, 99], &mut out),
            Err(VjError::BadConnection)
        );
        assert_eq!(
            d.decompress(&[NEW_S, 0, 0x12], &mut out),
            Err(VjError::Tossed)
        );
        let mut short = vec![0u8; 10];
        assert_eq!(d.refresh(&mut short), Err(VjError::Truncated));
        let mut bad_conn = make_dgram(A, B, (1, 2), 1, 1, 1, 1, TH_ACK, b"");
        bad_conn[9] = 200; // out of range for 16 slots
        assert_eq!(d.refresh(&mut bad_conn), Err(VjError::BadConnection));
    }

    #[test]
    fn compressed_before_any_refresh_is_rejected() {
        let mut d = VjDecompressor::new(VjConfig::default());
        let mut out = Vec::new();
        // Fresh decompressor tosses until seeded.
        assert_eq!(
            d.decompress(&[SPECIAL_D, 0xAB, 0xCD], &mut out),
            Err(VjError::Tossed)
        );
        // Even with an explicit connection number, an unseeded slot has no
        // context to delta against.
        assert_eq!(
            d.decompress(&[NEW_C | SPECIAL_D, 3, 0xAB, 0xCD], &mut out),
            Err(VjError::NoContext)
        );
    }
}
