//! Fleet deployment: servers on every island, one [`WorkloadClient`]
//! per client host, recorders shared island-wide.
//!
//! Placement contract (DESIGN.md §12): hosts `0..SERVER_HOSTS` of every
//! island are reserved for the echo, FTP, and DNS servers; clients
//! occupy the hosts after them. Client `(island, slot)` talks to the
//! servers of island `(island + 1 + slot mod (G-1)) mod G`, so with
//! more than one island *every* session leaves its radio island,
//! tunnels over the Ethernet (IPIP, §4.2), and lands in another shard —
//! the traffic pattern the sharded engine's equivalence contract is
//! exercised against.
//!
//! Recorders are shared per island, not per client: all of an island's
//! hosts live in one shard, so a single [`IslandStats`] cell is only
//! ever touched from inside that shard's step — the same ownership
//! discipline every host already obeys. The main thread merges islands
//! in index order after the run, which keeps the rendered report a pure
//! function of the simulation.

use std::net::Ipv4Addr;

use apps::dns::{decode_response, encode_query, DnsServer, DnsServerReport, DNS_PORT};
use apps::echo::{EchoReport, EchoServer};
use apps::ftp::{file_byte, FileServer, FileServerReport};
use apps::sockapp::{SockApp, SockCtx, SocketProgram};
use apps::Shared;
use gateway::scenario::MeshNet;
use sim::{SimDuration, SimTime};
use socket::{Readiness, SocketHandle};

use crate::load::{build_schedule, ClientPlan, FleetSchedule, FleetSpec, Pacing, SessionClass};
use crate::report::{fleet_header, fleet_row, FlowRecorder};

/// TCP echo port (RFC 862) on island host 0.
pub const ECHO_PORT: u16 = 7;
/// FTP-style file port on island host 1.
pub const FTP_PORT: u16 = 21;
/// Hosts reserved at the front of each island for servers.
pub const SERVER_HOSTS: usize = 3;
/// The client-side UDP port for DNS queries.
pub const CLIENT_UDP_PORT: u16 = 3053;

/// The file catalogue every island's FTP server carries: file `k` is
/// `100 << k` octets — tens of seconds of cross-island transfer at the
/// ~15 B/s a 1200 b/s two-hop path sustains.
pub fn catalogue(files: u32) -> Vec<(String, usize)> {
    (0..files)
        .map(|k| (format!("f{k}.dat"), 100usize << k))
        .collect()
}

/// Zone name `k` — the same names exist on every island's DNS server
/// (resolving to that island's own hosts), so a query works against any
/// target island.
pub fn dns_name(k: u32) -> String {
    format!("h{k:02}.ampr.org")
}

/// Per-island recorders, one per session class, shared by the island's
/// clients.
#[derive(Debug, Default)]
pub struct IslandStats {
    /// Indexed by [`SessionClass::index`].
    pub by_class: [FlowRecorder; 4],
}

/// The report handles of one island's three servers.
pub struct ServerHandles {
    /// Echo server counters.
    pub echo: Shared<EchoReport>,
    /// File server counters.
    pub ftp: Shared<FileServerReport>,
    /// DNS server counters.
    pub dns: Shared<DnsServerReport>,
}

/// A deployed fleet: the plan it was built from plus every report
/// handle, in deterministic (island, slot) order.
pub struct Fleet {
    /// The engine-independent plan.
    pub schedule: FleetSchedule,
    /// The spec the fleet was built from.
    pub spec: FleetSpec,
    /// Per-island client recorders.
    pub island_stats: Vec<Shared<IslandStats>>,
    /// Per-island server reports.
    pub servers: Vec<ServerHandles>,
}

impl Fleet {
    /// Merges the per-island recorders class-by-class, islands in index
    /// order.
    pub fn merged(&self) -> [FlowRecorder; 4] {
        let mut out: [FlowRecorder; 4] = Default::default();
        for island in &self.island_stats {
            let island = island.borrow();
            for (dst, src) in out.iter_mut().zip(island.by_class.iter()) {
                dst.merge(src);
            }
        }
        out
    }

    /// The per-class fleet table over a run of `span` simulated time.
    pub fn class_table(&self, span: SimDuration) -> String {
        let merged = self.merged();
        let mut rows = vec![fleet_header()];
        for class in SessionClass::ALL {
            rows.push(fleet_row(class.label(), &merged[class.index()], span));
        }
        sim::stats::render_table(&rows)
    }

    /// Server-side totals in the shared app-row format.
    pub fn server_table(&self) -> String {
        let mut echo = EchoReport::default();
        let mut ftp = FileServerReport::default();
        let mut dns = DnsServerReport::default();
        for s in &self.servers {
            let e = s.echo.borrow();
            echo.accepted += e.accepted;
            echo.bytes_echoed += e.bytes_echoed;
            let f = s.ftp.borrow();
            ftp.serves += f.serves;
            ftp.bytes_sent += f.bytes_sent;
            ftp.not_found += f.not_found;
            let d = s.dns.borrow();
            dns.queries += d.queries;
            dns.answered += d.answered;
            dns.nxdomain += d.nxdomain;
            dns.malformed += d.malformed;
        }
        crate::report::app_table(&[
            crate::report::echo_row("echo servers", &echo),
            crate::report::ftp_server_row("ftp servers", &ftp),
            crate::report::dns_server_row("dns servers", &dns),
        ])
    }

    /// Completed sessions across the fleet.
    pub fn completed(&self) -> u64 {
        self.merged().iter().map(|r| r.completed).sum()
    }

    /// Started sessions across the fleet.
    pub fn started(&self) -> u64 {
        self.merged().iter().map(|r| r.started).sum()
    }
}

/// Builds the schedule for `spec` and attaches servers and clients to
/// every island of the mesh.
///
/// # Panics
///
/// Panics if the islands are too small to hold the reserved server
/// hosts plus `spec.clients_per_island` clients.
pub fn deploy(m: &mut MeshNet, spec: &FleetSpec) -> Fleet {
    let islands = m.islands();
    let schedule = build_schedule(islands, spec);
    deploy_schedule(m, spec, schedule)
}

/// Attaches a pre-built schedule (see [`deploy`]); split out so callers
/// can inspect or digest the plan first.
pub fn deploy_schedule(m: &mut MeshNet, spec: &FleetSpec, schedule: FleetSchedule) -> Fleet {
    let islands = m.islands();
    let hosts_per_island = m.island_hosts(0).len();
    assert!(
        spec.sizes.files > 0 && spec.sizes.dns_names > 0,
        "catalogue and zone must be non-empty"
    );
    assert!(
        hosts_per_island >= SERVER_HOSTS + spec.clients_per_island,
        "island has {hosts_per_island} hosts; need {SERVER_HOSTS} servers + {} clients",
        spec.clients_per_island
    );

    let files = catalogue(spec.sizes.files);
    let file_refs: Vec<(&str, usize)> = files.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    let names: Vec<String> = (0..spec.sizes.dns_names).map(dns_name).collect();

    let mut servers = Vec::with_capacity(islands);
    for g in 0..islands {
        let zone: Vec<(&str, Ipv4Addr)> = names
            .iter()
            .enumerate()
            .map(|(k, n)| (n.as_str(), m.host_addr(g, k % hosts_per_island)))
            .collect();
        let echo = EchoServer::new(ECHO_PORT);
        let ftp = FileServer::new(FTP_PORT, &file_refs);
        let dns = DnsServer::new(&zone, SimDuration::from_secs(300));
        servers.push(ServerHandles {
            echo: echo.report(),
            ftp: ftp.report(),
            dns: dns.report(),
        });
        let (h0, h1, h2) = {
            let island = m.island_hosts(g);
            (island[0], island[1], island[2])
        };
        m.world.add_app(h0, Box::new(echo));
        m.world.add_app(h1, Box::new(ftp));
        m.world.add_app(h2, Box::new(dns));
    }

    let island_stats: Vec<Shared<IslandStats>> = (0..islands)
        .map(|_| apps::shared(IslandStats::default()))
        .collect();
    for plan in &schedule.plans {
        let host = m.island_hosts(plan.island)[SERVER_HOSTS + plan.slot];
        let client = WorkloadClient::new(
            plan.clone(),
            spec,
            Targets {
                echo: m.host_addr(plan.target, 0),
                ftp: m.host_addr(plan.target, 1),
                dns: m.host_addr(plan.target, 2),
            },
            &files,
            &names,
            island_stats[plan.island].clone(),
        );
        m.world.add_app(host, Box::new(SockApp::new(client)));
    }

    Fleet {
        schedule,
        spec: spec.clone(),
        island_stats,
        servers,
    }
}

/// The server addresses one client talks to.
#[derive(Debug, Clone, Copy)]
pub struct Targets {
    /// Echo server (island host 0).
    pub echo: Ipv4Addr,
    /// File server (island host 1).
    pub ftp: Ipv4Addr,
    /// DNS server (island host 2).
    pub dns: Ipv4Addr,
}

enum State {
    /// Between sessions, next one due at `WorkloadClient::due`.
    Waiting,
    /// Stop-and-wait keystrokes against the echo server.
    Typist {
        sock: SocketHandle,
        started: bool,
        total: u32,
        sent: u32,
        echoed: u32,
        sent_at: SimTime,
    },
    /// One burst against the echo server, waiting for it back.
    Echo {
        sock: SocketHandle,
        size: u32,
        sent: u32,
        got: u32,
        t0: SimTime,
    },
    /// A `GET` in progress.
    Ftp {
        sock: SocketHandle,
        file: u32,
        sent_req: bool,
        header_done: bool,
        announced: usize,
        received: usize,
        bad: bool,
        t0: SimTime,
    },
    /// A query in flight on the shared UDP socket.
    Dns { id: u16, name: u32, t0: SimTime },
    /// Plan exhausted.
    Done,
}

enum Outcome {
    Completed(u64),
    Timeout,
    Error,
}

/// A long-lived socket program that works through one [`ClientPlan`]:
/// session state machines for all four classes, open- or closed-loop
/// pacing, a per-session deadline, and recording into the island's
/// shared [`IslandStats`] (plain counter updates — no allocation on the
/// recording path).
pub struct WorkloadClient {
    plan: ClientPlan,
    open_loop: bool,
    timeout: SimDuration,
    targets: Targets,
    files: Vec<(String, usize)>,
    names: Vec<String>,
    stats: Shared<IslandStats>,
    cursor: usize,
    due: SimTime,
    deadline: SimTime,
    state: State,
    udp: Option<SocketHandle>,
    next_id: u16,
    buf: Vec<u8>,
}

impl WorkloadClient {
    /// Builds a client for one plan. `files` and `names` must match
    /// what [`deploy_schedule`] installed on the servers.
    pub fn new(
        plan: ClientPlan,
        spec: &FleetSpec,
        targets: Targets,
        files: &[(String, usize)],
        names: &[String],
        stats: Shared<IslandStats>,
    ) -> WorkloadClient {
        WorkloadClient {
            open_loop: matches!(spec.pacing, Pacing::Open(_)),
            timeout: spec.session_timeout,
            targets,
            files: files.to_vec(),
            names: names.to_vec(),
            stats,
            cursor: 0,
            due: SimTime::ZERO,
            deadline: SimTime::MAX,
            state: State::Waiting,
            udp: None,
            next_id: ((plan.island as u16) << 8) | plan.slot as u16,
            buf: Vec::new(),
            plan,
        }
    }

    fn class(&self) -> SessionClass {
        self.plan.sessions[self.cursor].class
    }

    /// Ends session `cursor` with the given outcome and arms the next
    /// one (closed loop: think starting now; open loop: the arrival
    /// clock was already advanced at session start).
    fn finish(&mut self, now: SimTime, outcome: Outcome) {
        {
            let mut stats = self.stats.borrow_mut();
            let r = &mut stats.by_class[self.class().index()];
            match outcome {
                Outcome::Completed(bytes) => r.complete(bytes),
                Outcome::Timeout => r.timeout(),
                Outcome::Error => r.error(),
            }
        }
        self.deadline = SimTime::MAX;
        self.cursor += 1;
        if self.cursor >= self.plan.sessions.len() {
            self.state = State::Done;
            return;
        }
        if !self.open_loop {
            self.due = now.saturating_add(self.plan.sessions[self.cursor].gap);
        }
        self.state = State::Waiting;
    }

    fn observe(&self, d: SimDuration) {
        self.stats.borrow_mut().by_class[self.class().index()]
            .latency
            .record(d);
    }

    fn start_session(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        let spec = self.plan.sessions[self.cursor];
        self.stats.borrow_mut().by_class[spec.class.index()].start();
        self.deadline = now.saturating_add(self.timeout);
        // Open loop: the next session's arrival instant is independent
        // of how this one goes — advance the clock now.
        if self.open_loop && self.cursor + 1 < self.plan.sessions.len() {
            self.due = self
                .due
                .saturating_add(self.plan.sessions[self.cursor + 1].gap);
        }
        match spec.class {
            SessionClass::Typist => match cx.connect(now, self.targets.echo, ECHO_PORT) {
                Ok(sock) => {
                    self.state = State::Typist {
                        sock,
                        started: false,
                        total: spec.size.max(1),
                        sent: 0,
                        echoed: 0,
                        sent_at: now,
                    }
                }
                Err(_) => self.finish(now, Outcome::Error),
            },
            SessionClass::Echo => match cx.connect(now, self.targets.echo, ECHO_PORT) {
                Ok(sock) => {
                    self.state = State::Echo {
                        sock,
                        size: spec.size.max(1),
                        sent: 0,
                        got: 0,
                        t0: now,
                    }
                }
                Err(_) => self.finish(now, Outcome::Error),
            },
            SessionClass::Ftp => match cx.connect(now, self.targets.ftp, FTP_PORT) {
                Ok(sock) => {
                    self.buf.clear();
                    self.state = State::Ftp {
                        sock,
                        file: spec.size % self.files.len() as u32,
                        sent_req: false,
                        header_done: false,
                        announced: 0,
                        received: 0,
                        bad: false,
                        t0: now,
                    }
                }
                Err(_) => self.finish(now, Outcome::Error),
            },
            SessionClass::Dns => {
                let Some(sock) = self.udp else {
                    self.finish(now, Outcome::Error);
                    return;
                };
                let name_idx = spec.size % self.names.len() as u32;
                let id = self.next_id;
                self.next_id = self.next_id.wrapping_add(1);
                let query = encode_query(id, &self.names[name_idx as usize]);
                match cx
                    .host
                    .sock_send_to(now, sock, self.targets.dns, DNS_PORT, query)
                {
                    Ok(()) => {
                        self.state = State::Dns {
                            id,
                            name: name_idx,
                            t0: now,
                        }
                    }
                    Err(_) => self.finish(now, Outcome::Error),
                }
            }
        }
    }

    /// Abandons the in-flight session (deadline or socket error).
    fn abort(&mut self, now: SimTime, outcome: Outcome, cx: &mut SockCtx<'_>) {
        match std::mem::replace(&mut self.state, State::Waiting) {
            State::Typist { sock, .. } | State::Echo { sock, .. } | State::Ftp { sock, .. } => {
                cx.close(now, sock);
            }
            State::Dns { .. } | State::Waiting | State::Done => {}
        }
        self.finish(now, outcome);
    }

    fn key_byte(n: u32) -> [u8; 1] {
        [b'a' + (n % 26) as u8]
    }

    fn echo_burst(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    fn on_udp_readable(&mut self, now: SimTime, h: SocketHandle, cx: &mut SockCtx<'_>) {
        while let Ok((_src, _sport, dgram)) = cx.host.sock_recv_from(h) {
            let Some((rid, rname, answer)) = decode_response(dgram.as_slice()) else {
                continue;
            };
            if let State::Dns { id, name, t0 } = self.state {
                if rid == id && rname == self.names[name as usize] {
                    let bytes = dgram.as_slice().len() as u64;
                    self.observe(now.saturating_since(t0));
                    // NXDOMAIN still completes the session — the
                    // question was answered.
                    let _ = answer;
                    self.finish(now, Outcome::Completed(bytes));
                }
            }
        }
    }
}

impl SocketProgram for WorkloadClient {
    fn on_start(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        self.udp = cx.bind_udp(now, CLIENT_UDP_PORT).ok();
        self.due = now.saturating_add(self.plan.start);
        if self.plan.sessions.is_empty() {
            self.state = State::Done;
        }
    }

    fn on_ready(&mut self, now: SimTime, h: SocketHandle, ready: Readiness, cx: &mut SockCtx<'_>) {
        if Some(h) == self.udp {
            if ready.readable() {
                self.on_udp_readable(now, h, cx);
            }
            return;
        }
        match &mut self.state {
            State::Typist {
                sock,
                started,
                total,
                sent,
                echoed,
                sent_at,
            } if *sock == h => {
                if ready.error() {
                    self.abort(now, Outcome::Error, cx);
                    return;
                }
                if !*started && ready.writable() {
                    *started = true;
                    let _ = cx.host.sock_send(now, h, &Self::key_byte(*sent));
                    *sent += 1;
                    *sent_at = now;
                    return;
                }
                if ready.readable() {
                    let data = cx.host.sock_recv(now, h).unwrap_or_default();
                    if !data.is_empty() && *sent > *echoed {
                        *echoed += 1;
                        let rtt = now.saturating_since(*sent_at);
                        let finished = *echoed >= *total;
                        let done_bytes = u64::from(*echoed);
                        if !finished {
                            let _ = cx.host.sock_send(now, h, &Self::key_byte(*sent));
                            *sent += 1;
                            *sent_at = now;
                        }
                        self.observe(rtt);
                        if finished {
                            cx.close(now, h);
                            self.state = State::Waiting;
                            self.finish(now, Outcome::Completed(done_bytes));
                        }
                    }
                }
            }
            State::Echo {
                sock,
                size,
                sent,
                got,
                t0,
            } if *sock == h => {
                if ready.error() {
                    self.abort(now, Outcome::Error, cx);
                    return;
                }
                if ready.writable() && *sent < *size {
                    let cap = cx.host.sock_send_capacity(h);
                    let n = cap.min((*size - *sent) as usize);
                    if n > 0 {
                        let burst = Self::echo_burst(n);
                        let accepted = cx.host.sock_send(now, h, &burst).unwrap_or(0);
                        *sent += accepted as u32;
                    }
                }
                if ready.readable() {
                    let data = cx.host.sock_recv(now, h).unwrap_or_default();
                    *got += data.len() as u32;
                    if *got >= *size {
                        let d = now.saturating_since(*t0);
                        let bytes = u64::from(*size);
                        cx.close(now, h);
                        self.state = State::Waiting;
                        self.observe(d);
                        self.finish(now, Outcome::Completed(bytes));
                    }
                }
            }
            State::Ftp {
                sock,
                file,
                sent_req,
                header_done,
                announced,
                received,
                bad,
                t0,
            } if *sock == h => {
                if ready.error() {
                    self.abort(now, Outcome::Error, cx);
                    return;
                }
                let name = self.files[*file as usize].0.clone();
                if !*sent_req && ready.writable() {
                    *sent_req = true;
                    let req = format!("GET {name}\n");
                    let _ = cx.host.sock_send(now, h, req.as_bytes());
                    return;
                }
                if ready.readable() {
                    let data = cx.host.sock_recv(now, h).unwrap_or_default();
                    self.buf.extend_from_slice(&data);
                    if !*header_done {
                        if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                            let line: Vec<u8> = self.buf.drain(..=pos).collect();
                            let line = String::from_utf8_lossy(&line).trim().to_string();
                            *header_done = true;
                            if let Some(size) = line.strip_prefix("OK ") {
                                *announced = size.parse().unwrap_or(0);
                            } else {
                                *bad = true;
                            }
                        }
                    }
                    if *header_done {
                        for b in self.buf.drain(..) {
                            if b != file_byte(&name, *received) {
                                *bad = true;
                            }
                            *received += 1;
                        }
                    }
                    let complete = *header_done && *announced > 0 && *received >= *announced;
                    let failed = *bad;
                    let got = *received as u64;
                    if complete && !failed {
                        let d = now.saturating_since(*t0);
                        cx.close(now, h);
                        self.state = State::Waiting;
                        self.observe(d);
                        self.finish(now, Outcome::Completed(got));
                    } else if failed {
                        self.abort(now, Outcome::Error, cx);
                    }
                    return;
                }
                if ready.eof() {
                    // Server closed early (or we missed bytes): error.
                    self.abort(now, Outcome::Error, cx);
                }
            }
            _ => {}
        }
    }

    fn on_tick(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        match self.state {
            State::Waiting => {
                if self.cursor < self.plan.sessions.len() && now >= self.due {
                    self.start_session(now, cx);
                }
            }
            State::Done => {}
            _ => {
                if now >= self.deadline {
                    self.abort(now, Outcome::Timeout, cx);
                }
            }
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        match self.state {
            State::Waiting if self.cursor < self.plan.sessions.len() => Some(self.due),
            State::Done | State::Waiting => None,
            _ => Some(self.deadline),
        }
    }
}
