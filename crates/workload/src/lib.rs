//! Load-model-driven workload fleets for the city-scale testbed.
//!
//! The paper closes (§5) wondering what happens "as the number of users
//! of this network grows". PR 6 gave the testbed real applications
//! (socket programs: echo, typist, FTP, DNS) and PR 7 gave it a city of
//! radio islands on a sharded engine — but the only city-scale traffic
//! was ping, and every app printed its own ad-hoc report. This crate is
//! the missing subsystem: it *generates the users*.
//!
//! Three layers (DESIGN.md §12):
//!
//! * [`load`] — session generators. An open-loop model (Poisson or
//!   deterministic arrivals via the in-tree xoshiro [`sim::SimRng`])
//!   starts sessions on a clock regardless of completions; a closed-loop
//!   model thinks after each completion, like a human at a terminal.
//!   Session classes (interactive typist / bulk FTP / DNS resolve / TCP
//!   echo) compose into named [`load::Mix`]es with per-class weights.
//!   [`load::build_schedule`] expands a [`load::FleetSpec`] into a
//!   [`load::FleetSchedule`] — a pure function of the spec, independent
//!   of any engine, so the same seed always yields the same fleet.
//! * [`fleet`] — deployment. [`fleet::deploy`] places the three servers
//!   on the first hosts of every island of a [`gateway::scenario::mesh`]
//!   and one long-lived [`fleet::WorkloadClient`] socket program per
//!   client host, paired with servers on *other* islands so every
//!   session crosses shard boundaries through the IPIP tunnels.
//! * [`report`] — telemetry. Per-flow [`report::FlowRecorder`]s feed
//!   fixed-bucket log-scale [`report::LatencyHisto`]s (p50/p95/p99 with
//!   no allocation after construction), merged island-by-island into one
//!   fleet table; [`report::EngineTelemetry`] snapshots the engine-side
//!   counters (scheduler, mailboxes, per-island channel utilization);
//!   and the `*_row` adapters render the existing app reports in the
//!   same shared table format the per-app experiments used to hand-roll.
//!
//! Everything is deterministic end to end: same spec ⇒ same schedule ⇒
//! same event digest and the same rendered report on the reference
//! stepper and the sharded engine at any worker count (E16 asserts
//! this bit-for-bit at 10k hosts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod load;
pub mod report;

pub use fleet::{deploy, Fleet};
pub use load::{build_schedule, Arrival, FleetSpec, Mix, Pacing, SessionClass};
pub use report::{EngineTelemetry, FlowRecorder, LatencyHisto};
