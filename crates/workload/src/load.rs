//! Load models: session classes, mixes, arrival processes, and the
//! pure schedule generator.
//!
//! A [`FleetSchedule`] is a *plan*, not behavior: [`build_schedule`]
//! expands a [`FleetSpec`] into per-client session lists using only the
//! in-tree xoshiro [`SimRng`], forking one child generator per client in
//! deterministic (island, client) order. The same spec therefore yields
//! byte-identical schedules on any engine, any worker count, any run —
//! the determinism anchor the E16 equivalence claim and the
//! `workload_determinism` proptest both hang off.

use sim::rng::SimRng;
use sim::SimDuration;

/// The four session classes a fleet can run (§2.3's uses of the
/// gateway: remote login, file transfer, name lookup, echo).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionClass {
    /// Stop-and-wait keystrokes against a TCP echo server (interactive).
    Typist,
    /// A bulk `GET` from the FTP-style file server.
    Ftp,
    /// A UDP A-record query against the island's DNS server.
    Dns,
    /// A short TCP echo burst (one write, wait for it back).
    Echo,
}

impl SessionClass {
    /// All classes, in weight-array order.
    pub const ALL: [SessionClass; 4] = [
        SessionClass::Typist,
        SessionClass::Ftp,
        SessionClass::Dns,
        SessionClass::Echo,
    ];

    /// Stable index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            SessionClass::Typist => 0,
            SessionClass::Ftp => 1,
            SessionClass::Dns => 2,
            SessionClass::Echo => 3,
        }
    }

    /// Human-readable label for report rows.
    pub fn label(self) -> &'static str {
        match self {
            SessionClass::Typist => "typist",
            SessionClass::Ftp => "ftp",
            SessionClass::Dns => "dns",
            SessionClass::Echo => "echo",
        }
    }
}

/// A named traffic mix: per-class weights, drawn by integer cumulative
/// weight (no float in the pick, so mixes are portable bit-for-bit).
#[derive(Debug, Clone)]
pub struct Mix {
    /// Display name ("interactive", "bulk", ...).
    pub name: &'static str,
    /// Weights in [`SessionClass::ALL`] order; zero disables a class.
    pub weights: [u32; 4],
}

impl Mix {
    /// A custom mix.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero.
    pub fn new(name: &'static str, weights: [u32; 4]) -> Mix {
        assert!(weights.iter().any(|&w| w > 0), "mix needs a nonzero weight");
        Mix { name, weights }
    }

    /// Interactive city: mostly typists, a little of everything else.
    pub fn interactive() -> Mix {
        Mix::new("interactive", [6, 1, 2, 1])
    }

    /// Bulk transfer city: FTP-heavy.
    pub fn bulk() -> Mix {
        Mix::new("bulk", [1, 6, 1, 2])
    }

    /// Resolver city: DNS-heavy with echo probes.
    pub fn resolve() -> Mix {
        Mix::new("resolve", [1, 1, 6, 2])
    }

    /// Everything equally.
    pub fn balanced() -> Mix {
        Mix::new("balanced", [1, 1, 1, 1])
    }

    /// Draws one class according to the weights.
    pub fn pick(&self, rng: &mut SimRng) -> SessionClass {
        let total: u64 = self.weights.iter().map(|&w| u64::from(w)).sum();
        let mut x = rng.below(total);
        for (class, &w) in SessionClass::ALL.iter().zip(self.weights.iter()) {
            let w = u64::from(w);
            if x < w {
                return *class;
            }
            x -= w;
        }
        unreachable!("cumulative weights cover below(total)")
    }
}

/// An arrival (or think-time) process.
#[derive(Debug, Clone, Copy)]
pub enum Arrival {
    /// Poisson: exponentially distributed gaps with the given mean.
    Poisson(SimDuration),
    /// Deterministic: a fixed gap.
    Fixed(SimDuration),
}

impl Arrival {
    /// Draws the next gap.
    pub fn gap(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            Arrival::Poisson(mean) => {
                SimDuration::from_secs_f64(rng.exponential(mean.as_secs_f64()))
            }
            Arrival::Fixed(gap) => gap,
        }
    }

    /// The process mean.
    pub fn mean(&self) -> SimDuration {
        match *self {
            Arrival::Poisson(mean) | Arrival::Fixed(mean) => mean,
        }
    }
}

/// Open- vs closed-loop pacing.
#[derive(Debug, Clone, Copy)]
pub enum Pacing {
    /// Open loop: session `k` is *due* at the `k`-th arrival instant,
    /// regardless of completions (a backlogged client starts it as soon
    /// as the previous session ends). This is the load model that can
    /// push an island past its knee.
    Open(Arrival),
    /// Closed loop: the client thinks for a drawn gap after each
    /// session ends before starting the next — load self-limits the way
    /// a human at a terminal does.
    Closed(Arrival),
}

/// Per-class size parameters (inclusive ranges).
#[derive(Debug, Clone, Copy)]
pub struct SizeModel {
    /// Keystrokes per typist session.
    pub keys: (u32, u32),
    /// Octets per echo burst.
    pub echo_bytes: (u32, u32),
    /// FTP sessions draw one of the first `files` catalogue entries.
    pub files: u32,
    /// DNS sessions draw one of `dns_names` zone names.
    pub dns_names: u32,
}

impl Default for SizeModel {
    /// Sizes matched to a 1200 b/s island. Cross-island service times
    /// are dominated by the two radio hops: one small-packet RTT is
    /// ~10–14 s simulated (E14 measures 5.4 s for a single hop), and
    /// bulk transfer sustains ~15 B/s end to end — so sessions are kept
    /// small enough to finish inside a [`FleetSpec::session_timeout`].
    fn default() -> SizeModel {
        SizeModel {
            keys: (2, 3),
            echo_bytes: (8, 24),
            files: 3,
            dns_names: 8,
        }
    }
}

/// Everything that determines a fleet, and nothing else.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Master seed; forked per client.
    pub seed: u64,
    /// Clients attached per island (after the reserved server hosts).
    pub clients_per_island: usize,
    /// Sessions in each client's plan.
    pub sessions_per_client: usize,
    /// Open- or closed-loop pacing.
    pub pacing: Pacing,
    /// Traffic mix.
    pub mix: Mix,
    /// Session sizes.
    pub sizes: SizeModel,
    /// Client start times stagger uniformly over this window.
    pub start_window: SimDuration,
    /// A session that has not finished this long after starting is
    /// abandoned and counted as a timeout.
    pub session_timeout: SimDuration,
}

impl Default for FleetSpec {
    fn default() -> FleetSpec {
        FleetSpec {
            seed: 1988,
            clients_per_island: 1,
            sessions_per_client: 2,
            pacing: Pacing::Closed(Arrival::Fixed(SimDuration::from_secs(2))),
            mix: Mix::balanced(),
            sizes: SizeModel::default(),
            start_window: SimDuration::from_secs(2),
            session_timeout: SimDuration::from_secs(90),
        }
    }
}

/// One planned session.
#[derive(Debug, Clone, Copy)]
pub struct SessionSpec {
    /// What to run.
    pub class: SessionClass,
    /// Open loop: gap from the previous arrival instant. Closed loop:
    /// think time after the previous session ends.
    pub gap: SimDuration,
    /// Class-dependent size (keystrokes, octets, file index, or name
    /// index).
    pub size: u32,
}

/// One client's plan.
#[derive(Debug, Clone)]
pub struct ClientPlan {
    /// Which island the client lives on.
    pub island: usize,
    /// Client slot within the island (host = reserved servers + slot).
    pub slot: usize,
    /// The island whose servers this client talks to.
    pub target: usize,
    /// First-session start offset from world start.
    pub start: SimDuration,
    /// The sessions, in order.
    pub sessions: Vec<SessionSpec>,
}

/// The expanded, engine-independent fleet plan.
#[derive(Debug, Clone)]
pub struct FleetSchedule {
    /// One plan per client, islands in order, slots in order.
    pub plans: Vec<ClientPlan>,
}

impl FleetSchedule {
    /// FNV-1a digest of the canonical schedule rendering — the value
    /// the determinism suite pins across engines and processes.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        for p in &self.plans {
            eat(format!(
                "i{} c{} t{} s{}\n",
                p.island,
                p.slot,
                p.target,
                p.start.as_nanos()
            )
            .as_bytes());
            for s in &p.sessions {
                eat(format!("  {:?} g{} z{}\n", s.class, s.gap.as_nanos(), s.size).as_bytes());
            }
        }
        hash
    }

    /// Total planned sessions.
    pub fn sessions(&self) -> usize {
        self.plans.iter().map(|p| p.sessions.len()).sum()
    }
}

fn draw_size(class: SessionClass, sizes: &SizeModel, rng: &mut SimRng) -> u32 {
    let (lo, hi) = match class {
        SessionClass::Typist => sizes.keys,
        SessionClass::Echo => sizes.echo_bytes,
        SessionClass::Ftp => (0, sizes.files.saturating_sub(1)),
        SessionClass::Dns => (0, sizes.dns_names.saturating_sub(1)),
    };
    rng.range(u64::from(lo), u64::from(hi) + 1) as u32
}

/// Expands a spec into the full fleet plan for `islands` islands. Pure:
/// no engine, no wall clock, only the spec's seed.
pub fn build_schedule(islands: usize, spec: &FleetSpec) -> FleetSchedule {
    let mut master = SimRng::seed_from(spec.seed ^ 0x57_4f_52_4b_4c_4f_41_44); // "WORKLOAD"
    let mut plans = Vec::with_capacity(islands * spec.clients_per_island);
    for island in 0..islands {
        for slot in 0..spec.clients_per_island {
            let mut rng = master.fork();
            let start = if spec.start_window.is_zero() {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(rng.below(spec.start_window.as_nanos()))
            };
            // Deterministic cross-island pairing: clients never talk to
            // their own island (unless there is only one), and
            // successive slots fan out over successive islands so load
            // spreads and every session crosses a shard boundary.
            let target = if islands > 1 {
                (island + 1 + (slot % (islands - 1))) % islands
            } else {
                island
            };
            let arrival = match spec.pacing {
                Pacing::Open(a) | Pacing::Closed(a) => a,
            };
            let sessions = (0..spec.sessions_per_client)
                .map(|_| {
                    let class = spec.mix.pick(&mut rng);
                    SessionSpec {
                        class,
                        gap: arrival.gap(&mut rng),
                        size: draw_size(class, &spec.sizes, &mut rng),
                    }
                })
                .collect();
            plans.push(ClientPlan {
                island,
                slot,
                target,
                start,
                sessions,
            });
        }
    }
    FleetSchedule { plans }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_spec_same_schedule() {
        let spec = FleetSpec {
            clients_per_island: 3,
            sessions_per_client: 5,
            pacing: Pacing::Open(Arrival::Poisson(SimDuration::from_secs(3))),
            mix: Mix::interactive(),
            ..FleetSpec::default()
        };
        let a = build_schedule(7, &spec);
        let b = build_schedule(7, &spec);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.sessions(), 7 * 3 * 5);
    }

    #[test]
    fn different_seed_different_schedule() {
        let a = build_schedule(4, &FleetSpec::default());
        let b = build_schedule(
            4,
            &FleetSpec {
                seed: 1989,
                ..FleetSpec::default()
            },
        );
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn mix_zero_weight_class_never_drawn() {
        let mix = Mix::new("no-ftp", [1, 0, 1, 1]);
        let mut rng = SimRng::seed_from(42);
        for _ in 0..500 {
            assert_ne!(mix.pick(&mut rng), SessionClass::Ftp);
        }
    }

    #[test]
    fn clients_avoid_their_own_island() {
        let spec = FleetSpec {
            clients_per_island: 4,
            ..FleetSpec::default()
        };
        let s = build_schedule(5, &spec);
        for p in &s.plans {
            assert_ne!(p.island, p.target, "session must cross islands");
        }
    }

    #[test]
    fn fixed_arrival_is_fixed() {
        let a = Arrival::Fixed(SimDuration::from_millis(750));
        let mut rng = SimRng::seed_from(1);
        assert_eq!(a.gap(&mut rng), SimDuration::from_millis(750));
        assert_eq!(a.gap(&mut rng), SimDuration::from_millis(750));
    }
}
