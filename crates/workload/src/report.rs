//! The unified telemetry/report layer.
//!
//! Every flow in a fleet records into a [`FlowRecorder`]; recorders
//! merge island-by-island into one table. The recording hot path —
//! [`LatencyHisto::record`], [`FlowRecorder::complete`] and friends —
//! performs no heap allocation (the `workload_gen` bench asserts this
//! under a counting global allocator): a histogram is a fixed inline
//! array of log-scale buckets, and every counter is a plain integer.
//!
//! The same module renders the engine-side counters
//! ([`EngineTelemetry`]: scheduler, cross-shard mailboxes, per-island
//! channel utilization) and adapts the existing per-app reports
//! (typist/FTP/echo/DNS) into one shared row format, so experiments no
//! longer hand-roll their result tables.

use gateway::scenario::MeshNet;
use sim::mailbox::MailboxStats;
use sim::sched::SchedStats;
use sim::stats::render_table;
use sim::SimDuration;

/// Number of histogram buckets. With 8 sub-buckets per octave this
/// spans 1 µs .. ~4.7 hours before clamping into the last bucket.
pub const BUCKETS: usize = 256;

/// log2 of the sub-buckets per octave (8): relative quantile error is
/// bounded by 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;

/// A fixed-bucket log-scale latency histogram (HDR-style log-linear:
/// buckets 0..8 are exact microseconds, then 8 equal-width sub-buckets
/// per power of two). Recording is an array increment — no allocation,
/// ever, after construction.
#[derive(Debug, Clone)]
pub struct LatencyHisto {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for LatencyHisto {
    fn default() -> LatencyHisto {
        LatencyHisto::new()
    }
}

impl LatencyHisto {
    /// An empty histogram.
    pub const fn new() -> LatencyHisto {
        LatencyHisto {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// The bucket a microsecond value lands in.
    pub fn bucket_of(us: u64) -> usize {
        if us < SUB {
            return us as usize;
        }
        let top = 63 - u64::from(us.leading_zeros());
        let g = top - u64::from(SUB_BITS);
        let sub = (us >> g) & (SUB - 1);
        (((g + 1) * SUB + sub) as usize).min(BUCKETS - 1)
    }

    /// The largest microsecond value bucket `i` holds (its inclusive
    /// upper edge). The last bucket absorbs every larger value, so its
    /// edge is `u64::MAX`; quantiles there fall back to the exact max.
    pub fn bucket_high(i: usize) -> u64 {
        if i < SUB as usize {
            return i as u64;
        }
        if i == BUCKETS - 1 {
            return u64::MAX;
        }
        let g = (i as u64 / SUB) - 1;
        let sub = i as u64 % SUB;
        ((SUB + sub + 1) << g) - 1
    }

    /// Records one latency sample (truncated to whole microseconds).
    #[inline]
    pub fn record(&mut self, d: SimDuration) {
        self.record_us(d.as_nanos() / 1_000);
    }

    /// Records one sample given in microseconds.
    #[inline]
    pub fn record_us(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Folds another histogram into this one. Equivalent to having
    /// recorded both sample streams into a single histogram.
    pub fn merge(&mut self, other: &LatencyHisto) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean in microseconds (the sum is kept outside the buckets).
    pub fn mean_us(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum_us / self.count)
    }

    /// Largest recorded sample, exact.
    pub fn max_us(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_us)
    }

    /// Smallest recorded sample, exact.
    pub fn min_us(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_us)
    }

    /// The `q`-quantile in microseconds: the upper edge of the bucket
    /// holding the rank-`⌈q·n⌉` sample, capped at the exact maximum (so
    /// `quantile_us(1.0)` is exact). Relative error ≤ 12.5%.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_high(i).min(self.max_us));
            }
        }
        Some(self.max_us)
    }

    /// Median.
    pub fn p50(&self) -> Option<u64> {
        self.quantile_us(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.quantile_us(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile_us(0.99)
    }
}

/// Per-flow counters plus the latency histogram: one recorder per
/// (island, session class). Every mutator is a plain field update — the
/// fleet's recording hot path allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct FlowRecorder {
    /// Sessions started.
    pub started: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
    /// Sessions abandoned at the deadline.
    pub timeouts: u64,
    /// Sessions killed by a socket error.
    pub errors: u64,
    /// Application payload octets delivered by completed work.
    pub goodput_bytes: u64,
    /// Per-operation latency (keystroke RTT, transfer time, resolve
    /// time, echo RTT).
    pub latency: LatencyHisto,
}

impl FlowRecorder {
    /// An empty recorder.
    pub fn new() -> FlowRecorder {
        FlowRecorder::default()
    }

    /// A session began.
    #[inline]
    pub fn start(&mut self) {
        self.started += 1;
    }

    /// One latency observation (may be several per session, e.g. one
    /// per keystroke).
    #[inline]
    pub fn observe(&mut self, d: SimDuration) {
        self.latency.record(d);
    }

    /// A session completed, delivering `bytes` of payload.
    #[inline]
    pub fn complete(&mut self, bytes: u64) {
        self.completed += 1;
        self.goodput_bytes += bytes;
    }

    /// A session hit its deadline.
    #[inline]
    pub fn timeout(&mut self) {
        self.timeouts += 1;
    }

    /// A session died on a socket error.
    #[inline]
    pub fn error(&mut self) {
        self.errors += 1;
    }

    /// Folds another recorder into this one.
    pub fn merge(&mut self, other: &FlowRecorder) {
        self.started += other.started;
        self.completed += other.completed;
        self.timeouts += other.timeouts;
        self.errors += other.errors;
        self.goodput_bytes += other.goodput_bytes;
        self.latency.merge(&other.latency);
    }
}

fn ms(us: Option<u64>) -> String {
    match us {
        Some(us) => format!("{:.1}", us as f64 / 1_000.0),
        None => "-".into(),
    }
}

/// The shared fleet-table header.
pub fn fleet_header() -> Vec<String> {
    [
        "class",
        "started",
        "done",
        "t/o",
        "err",
        "goodput B/s",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "max ms",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// One fleet-table row for a (merged) recorder over a run of `span`
/// simulated time.
pub fn fleet_row(class: &str, r: &FlowRecorder, span: SimDuration) -> Vec<String> {
    let secs = span.as_secs_f64();
    let goodput = if secs > 0.0 {
        format!("{:.1}", r.goodput_bytes as f64 / secs)
    } else {
        "-".into()
    };
    vec![
        class.to_string(),
        r.started.to_string(),
        r.completed.to_string(),
        r.timeouts.to_string(),
        r.errors.to_string(),
        goodput,
        ms(r.latency.p50()),
        ms(r.latency.p95()),
        ms(r.latency.p99()),
        ms(r.latency.max_us()),
    ]
}

/// Renders merged per-class recorders as one table.
pub fn fleet_table(rows: &[(&str, &FlowRecorder)], span: SimDuration) -> String {
    let mut table = vec![fleet_header()];
    for (class, r) in rows {
        table.push(fleet_row(class, r, span));
    }
    render_table(&table)
}

// ---------------------------------------------------------------------
// Shared row format for the existing per-app reports (the printing that
// echo/ftp/typist/dns experiments used to hand-roll, deduplicated).

/// The shared app-table header: `app | count | ok | fail | bytes |
/// mean ms | max ms`.
pub fn app_header() -> Vec<String> {
    ["app", "count", "ok", "fail", "bytes", "mean ms", "max ms"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn dur_ms(d: Option<SimDuration>) -> String {
    match d {
        Some(d) => format!("{:.1}", d.as_millis_f64()),
        None => "-".into(),
    }
}

/// A typist session in the shared app-row format.
pub fn typist_row(label: &str, r: &apps::typist::TypistReport) -> Vec<String> {
    vec![
        label.into(),
        r.sent.to_string(),
        r.echoed.to_string(),
        (r.sent - r.echoed).to_string(),
        r.echoed.to_string(),
        dur_ms(r.mean_rtt()),
        dur_ms(Some(r.rtt_max)),
    ]
}

/// An FTP client in the shared app-row format.
pub fn ftp_client_row(label: &str, r: &apps::ftp::FileClientReport) -> Vec<String> {
    vec![
        label.into(),
        "1".into(),
        u64::from(r.done).to_string(),
        u64::from(r.not_found).to_string(),
        r.received.to_string(),
        dur_ms(r.duration()),
        dur_ms(r.duration()),
    ]
}

/// An FTP server in the shared app-row format.
pub fn ftp_server_row(label: &str, r: &apps::ftp::FileServerReport) -> Vec<String> {
    vec![
        label.into(),
        r.serves.to_string(),
        r.serves.to_string(),
        r.not_found.to_string(),
        r.bytes_sent.to_string(),
        "-".into(),
        "-".into(),
    ]
}

/// An echo server in the shared app-row format.
pub fn echo_row(label: &str, r: &apps::echo::EchoReport) -> Vec<String> {
    vec![
        label.into(),
        r.accepted.to_string(),
        r.accepted.to_string(),
        "0".into(),
        r.bytes_echoed.to_string(),
        "-".into(),
        "-".into(),
    ]
}

/// A DNS server in the shared app-row format.
pub fn dns_server_row(label: &str, r: &apps::dns::DnsServerReport) -> Vec<String> {
    vec![
        label.into(),
        r.queries.to_string(),
        r.answered.to_string(),
        (r.nxdomain + r.malformed).to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]
}

/// A stub resolver in the shared app-row format.
pub fn resolver_row(label: &str, r: &apps::dns::ResolverStats) -> Vec<String> {
    vec![
        label.into(),
        r.queries_sent.to_string(),
        r.answers.to_string(),
        r.failures.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]
}

/// Renders app rows (from the `*_row` adapters) under the shared header.
pub fn app_table(rows: &[Vec<String>]) -> String {
    let mut table = vec![app_header()];
    table.extend(rows.iter().cloned());
    render_table(&table)
}

// ---------------------------------------------------------------------
// Engine-side counters.

/// Packet-filter counters, summed across every gateway carrying an
/// engine. Absent from [`EngineTelemetry`] when no gateway has one, so
/// reports for filterless worlds render unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterTelemetry {
    /// Gateways with a filter engine installed.
    pub engines: usize,
    /// Evaluations answered by the decision cache.
    pub cache_hits: u64,
    /// Evaluations that paid the full walk.
    pub cache_misses: u64,
    /// Final deny verdicts (all causes).
    pub denied: u64,
    /// `Limit` packets dropped on an empty token bucket.
    pub tokens_exhausted: u64,
    /// Compiled rules across engines.
    pub rules: usize,
    /// Live + not-yet-swept §4.3 gate entries across engines.
    pub gate_entries: usize,
    /// Highest cache generation across engines (how much table churn
    /// the run saw).
    pub generation_max: u32,
}

/// Next-hop-cache counters (DESIGN.md §14), summed across every gateway
/// whose stack enables the cache. Absent from [`EngineTelemetry`] when
/// no gateway does (the default), so existing reports render unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FwdTelemetry {
    /// Gateways with a next-hop cache enabled.
    pub caches: usize,
    /// Forwarding decisions replayed from the cache.
    pub hits: u64,
    /// Decisions computed and installed (cold or foreign slot).
    pub misses: u64,
    /// Misses caused by a generation bump — the churn-invalidation
    /// count (always ≤ misses).
    pub stale: u64,
}

/// A snapshot of the engine-side telemetry for one run: scheduler and
/// mailbox counters plus channel utilization across the islands.
#[derive(Debug, Clone)]
pub struct EngineTelemetry {
    /// Shards in the world.
    pub shards: usize,
    /// Scheduler counters (summed across shards).
    pub sched: SchedStats,
    /// Cross-shard mailbox counters (summed).
    pub mailboxes: MailboxStats,
    /// Mean clamped utilization across island channels, percent.
    pub chan_util_mean: f64,
    /// Highest single-island utilization, percent.
    pub chan_util_max: f64,
    /// Mean offered load (may exceed 100 under overload), percent.
    pub chan_offered_mean: f64,
    /// Packet-filter counters, when any gateway runs an engine.
    pub filter: Option<FilterTelemetry>,
    /// Next-hop-cache counters, when any gateway enables the cache.
    pub fwd: Option<FwdTelemetry>,
}

impl EngineTelemetry {
    /// Snapshots a mesh world's engine counters at its current time.
    pub fn gather(m: &MeshNet) -> EngineTelemetry {
        let now = m.world.now;
        let mut sum = 0.0;
        let mut max: f64 = 0.0;
        let mut offered = 0.0;
        for &c in &m.channels {
            let u = m.world.channel(c).utilization(now) * 100.0;
            sum += u;
            max = max.max(u);
            offered += m.world.channel(c).offered_utilization(now) * 100.0;
        }
        let n = m.channels.len().max(1) as f64;
        let mut filter: Option<FilterTelemetry> = None;
        let mut fwd: Option<FwdTelemetry> = None;
        for &gw in &m.gateways {
            let host = m.world.host(gw);
            let st = host.stack.stats();
            if st.fwd_cache_hits + st.fwd_cache_misses > 0 {
                let w = fwd.get_or_insert_with(FwdTelemetry::default);
                w.caches += 1;
                w.hits += st.fwd_cache_hits;
                w.misses += st.fwd_cache_misses;
                w.stale += st.fwd_cache_stale;
            }
            let Some(engine) = host.filter_engine() else {
                continue;
            };
            let e = engine.borrow();
            let s = e.stats();
            let f = filter.get_or_insert_with(FilterTelemetry::default);
            f.engines += 1;
            f.cache_hits += s.cache_hits;
            f.cache_misses += s.cache_misses;
            f.denied += s.denied;
            f.tokens_exhausted += s.tokens_exhausted;
            f.rules += e.rules_len();
            f.gate_entries += e.gate_len();
            f.generation_max = f.generation_max.max(e.generation());
        }
        EngineTelemetry {
            shards: m.world.shard_count(),
            sched: m.world.sched_stats(),
            mailboxes: m.world.mailbox_stats(),
            chan_util_mean: sum / n,
            chan_util_max: max,
            chan_offered_mean: offered / n,
            filter,
            fwd,
        }
    }

    /// Renders the snapshot as a two-row table; worlds with a filter
    /// engine get a second table of its counters.
    pub fn table(&self) -> String {
        let mut out = render_table(&[
            vec![
                "shards".into(),
                "sched polls".into(),
                "instants".into(),
                "mbox pushed".into(),
                "mbox grows".into(),
                "util mean %".into(),
                "util max %".into(),
                "offered %".into(),
            ],
            vec![
                self.shards.to_string(),
                self.sched.polled.to_string(),
                self.sched.instants.to_string(),
                self.mailboxes.pushed.to_string(),
                self.mailboxes.grows.to_string(),
                format!("{:.1}", self.chan_util_mean),
                format!("{:.1}", self.chan_util_max),
                format!("{:.1}", self.chan_offered_mean),
            ],
        ]);
        if let Some(f) = &self.filter {
            out.push('\n');
            out.push_str(&render_table(&[
                vec![
                    "filters".into(),
                    "cache hits".into(),
                    "misses".into(),
                    "denied".into(),
                    "rate-limited".into(),
                    "rules".into(),
                    "gate entries".into(),
                    "generation".into(),
                ],
                vec![
                    f.engines.to_string(),
                    f.cache_hits.to_string(),
                    f.cache_misses.to_string(),
                    f.denied.to_string(),
                    f.tokens_exhausted.to_string(),
                    f.rules.to_string(),
                    f.gate_entries.to_string(),
                    f.generation_max.to_string(),
                ],
            ]));
        }
        if let Some(w) = &self.fwd {
            out.push('\n');
            out.push_str(&render_table(&[
                vec![
                    "nh caches".into(),
                    "fwd hits".into(),
                    "misses".into(),
                    "stale".into(),
                ],
                vec![
                    w.caches.to_string(),
                    w.hits.to_string(),
                    w.misses.to_string(),
                    w.stale.to_string(),
                ],
            ]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_zero_through_seven_are_exact() {
        for us in 0..8 {
            assert_eq!(LatencyHisto::bucket_of(us), us as usize);
            assert_eq!(LatencyHisto::bucket_high(us as usize), us);
        }
    }

    #[test]
    fn bucket_edges_roundtrip() {
        // Every value lands in a bucket whose range contains it, and
        // bucket ranges tile the axis without gaps or overlap.
        for i in 1..BUCKETS {
            let lo = LatencyHisto::bucket_high(i - 1) + 1;
            let hi = LatencyHisto::bucket_high(i);
            assert!(lo <= hi, "bucket {i}: {lo} > {hi}");
            assert_eq!(LatencyHisto::bucket_of(lo), i, "low edge of {i}");
            if i < BUCKETS - 1 {
                assert_eq!(LatencyHisto::bucket_of(hi), i, "high edge of {i}");
            }
        }
    }

    #[test]
    fn bucket_of_is_monotone() {
        // Dense over the low range, then octave-stepped edges above.
        let mut values: Vec<u64> = (0..100_000u64).step_by(7).collect();
        for shift in 17..40 {
            for off in [0u64, 1, 3] {
                values.push((1u64 << shift) + off);
            }
        }
        values.sort_unstable();
        let mut prev = 0;
        for us in values {
            let b = LatencyHisto::bucket_of(us);
            assert!(b >= prev, "bucket_of({us}) went backwards");
            prev = b;
        }
    }

    #[test]
    fn oversized_values_clamp_into_last_bucket() {
        let mut h = LatencyHisto::new();
        h.record_us(u64::MAX);
        assert_eq!(LatencyHisto::bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(h.quantile_us(0.5), Some(u64::MAX));
        assert_eq!(h.max_us(), Some(u64::MAX));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHisto::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), None);
        assert_eq!(h.max_us(), None);
        assert_eq!(h.min_us(), None);
    }

    #[test]
    fn single_sample_quantiles_are_that_sample() {
        let mut h = LatencyHisto::new();
        h.record_us(1_234);
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile_us(q).unwrap();
            // Capped at the exact max, and never below the bucket floor.
            assert_eq!(
                v,
                1_234.min(LatencyHisto::bucket_high(LatencyHisto::bucket_of(1_234)))
            );
        }
    }

    #[test]
    fn quantile_error_is_bounded_by_sub_bucket_width() {
        let mut h = LatencyHisto::new();
        for us in (100..100_000).step_by(137) {
            h.record_us(us);
        }
        let exact: Vec<u64> = (100..100_000).step_by(137).collect();
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let est = h.quantile_us(q).unwrap();
            assert!(est >= truth, "quantile underestimates: {est} < {truth}");
            assert!(
                (est - truth) as f64 <= truth as f64 * 0.125 + 1.0,
                "q={q}: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn merge_equals_union_of_streams() {
        let mut a = LatencyHisto::new();
        let mut b = LatencyHisto::new();
        let mut both = LatencyHisto::new();
        for i in 0..1_000u64 {
            let v = i * i % 77_777;
            if i % 3 == 0 {
                a.record_us(v);
            } else {
                b.record_us(v);
            }
            both.record_us(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.mean_us(), both.mean_us());
        assert_eq!(a.min_us(), both.min_us());
        assert_eq!(a.max_us(), both.max_us());
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile_us(q), both.quantile_us(q), "q={q}");
        }
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let mut src = LatencyHisto::new();
        src.record_us(10);
        src.record_us(20_000);
        let mut dst = LatencyHisto::new();
        dst.merge(&src);
        assert_eq!(dst.count(), 2);
        assert_eq!(dst.min_us(), Some(10));
        assert_eq!(dst.max_us(), Some(20_000));
    }

    #[test]
    fn recorder_counts_and_goodput() {
        let mut r = FlowRecorder::new();
        r.start();
        r.observe(SimDuration::from_millis(5));
        r.complete(100);
        r.start();
        r.timeout();
        r.start();
        r.error();
        assert_eq!(r.started, 3);
        assert_eq!(r.completed, 1);
        assert_eq!(r.timeouts, 1);
        assert_eq!(r.errors, 1);
        assert_eq!(r.goodput_bytes, 100);
        assert_eq!(r.latency.count(), 1);

        let mut sum = FlowRecorder::new();
        sum.merge(&r);
        sum.merge(&r);
        assert_eq!(sum.started, 6);
        assert_eq!(sum.goodput_bytes, 200);
        assert_eq!(sum.latency.count(), 2);
    }

    #[test]
    fn tables_render_without_panicking() {
        let mut r = FlowRecorder::new();
        r.start();
        r.observe(SimDuration::from_millis(12));
        r.complete(64);
        let t = fleet_table(&[("typist", &r)], SimDuration::from_secs(10));
        assert!(t.contains("typist"));
        assert!(t.contains("p99"));
        let empty = FlowRecorder::new();
        let t = fleet_table(&[("ftp", &empty)], SimDuration::ZERO);
        assert!(t.contains('-'));
    }
}
