//! Workload determinism across engines (ISSUE 8, DESIGN.md §12):
//! same seed ⇒ identical fleet schedule, identical event digest, and an
//! identical rendered report on the reference stepper and the sharded
//! engine at worker counts {1, 2, 4}.
//!
//! This is the fleet-level extension of the `shard_equivalence` suite:
//! instead of scripted pings, the traffic is the full mixed socket-app
//! load (typist/FTP/DNS/echo sessions crossing islands through the
//! IPIP tunnels), and the comparison covers not just the event log but
//! the telemetry layer's output — merged recorders rendered to text.

use proptest::prelude::*;
use sim::{SimDuration, SimTime};
use workload::load::{Arrival, FleetSpec, Mix, Pacing};
use workload::{build_schedule, deploy};

#[derive(Clone, Copy, Debug)]
enum Driver {
    Reference,
    Workers(usize),
}

fn fnv(log: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in log.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn spec_for(seed: u64) -> FleetSpec {
    FleetSpec {
        seed,
        clients_per_island: 2,
        sessions_per_client: 3,
        pacing: Pacing::Closed(Arrival::Poisson(SimDuration::from_secs(2))),
        mix: Mix::balanced(),
        start_window: SimDuration::from_secs(2),
        session_timeout: SimDuration::from_secs(60),
        ..FleetSpec::default()
    }
}

/// Runs a 3-island fleet for `secs` and returns
/// `(event digest, schedule digest, rendered report, completed)`.
fn fleet_run(seed: u64, secs: u64, driver: Driver) -> (u64, u64, String, u64) {
    let mut m = gateway::scenario::mesh(3, 5, seed);
    let spec = spec_for(seed);
    let fleet = deploy(&mut m, &spec);
    let sched_digest = fleet.schedule.digest();
    match driver {
        Driver::Reference => m
            .world
            .run_until_reference(SimTime::from_millis(secs * 1000)),
        Driver::Workers(n) => {
            m.world.set_workers(n);
            m.world.run_for(SimDuration::from_secs(secs));
        }
    }
    let mut log = String::new();
    for (h, t, e) in m.world.take_events() {
        log.push_str(&format!("{h:?} {t} {e:?}\n"));
    }
    let span = SimDuration::from_secs(secs);
    let report = format!("{}\n{}", fleet.class_table(span), fleet.server_table());
    (fnv(&log), sched_digest, report, fleet.completed())
}

#[test]
fn schedule_is_engine_independent_and_reproducible() {
    let spec = spec_for(7);
    let a = build_schedule(6, &spec);
    let b = build_schedule(6, &spec);
    assert_eq!(a.digest(), b.digest());
    // And a different seed diverges.
    let c = build_schedule(6, &spec_for(8));
    assert_ne!(a.digest(), c.digest());
}

#[test]
fn reference_and_sharded_agree_on_digest_and_report() {
    let (d_ref, s_ref, r_ref, done_ref) = fleet_run(1988, 150, Driver::Reference);
    assert!(done_ref > 0, "sessions must complete:\n{r_ref}");
    for workers in [1usize, 2, 4] {
        let (d, s, r, done) = fleet_run(1988, 150, Driver::Workers(workers));
        assert_eq!(s, s_ref, "schedule digest at {workers} workers");
        assert_eq!(d, d_ref, "event digest at {workers} workers");
        assert_eq!(r, r_ref, "report at {workers} workers");
        assert_eq!(done, done_ref, "completions at {workers} workers");
    }
}

#[test]
fn open_loop_fleet_also_agrees() {
    fn run(driver: Driver) -> (u64, String) {
        let mut m = gateway::scenario::mesh(2, 5, 11);
        let spec = FleetSpec {
            seed: 11,
            pacing: Pacing::Open(Arrival::Fixed(SimDuration::from_secs(6))),
            ..spec_for(11)
        };
        let fleet = deploy(&mut m, &spec);
        match driver {
            Driver::Reference => m.world.run_until_reference(SimTime::from_secs(45)),
            Driver::Workers(n) => {
                m.world.set_workers(n);
                m.world.run_for(SimDuration::from_secs(45));
            }
        }
        let mut log = String::new();
        for (h, t, e) in m.world.take_events() {
            log.push_str(&format!("{h:?} {t} {e:?}\n"));
        }
        (fnv(&log), fleet.class_table(SimDuration::from_secs(45)))
    }
    let (d_ref, r_ref) = run(Driver::Reference);
    let (d2, r2) = run(Driver::Workers(2));
    assert_eq!(d_ref, d2);
    assert_eq!(r_ref, r2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seeds: the reference stepper and a 2-worker sharded run
    /// agree bit-for-bit on both the event log and the rendered report.
    #[test]
    fn seed_sweep_fleet_digests_match(seed in 1u64..1_000_000u64) {
        let (d_ref, s_ref, r_ref, _) = fleet_run(seed, 40, Driver::Reference);
        let (d2, s2, r2, _) = fleet_run(seed, 40, Driver::Workers(2));
        prop_assert_eq!(s_ref, s2);
        prop_assert_eq!(d_ref, d2);
        prop_assert_eq!(r_ref, r2);
    }
}
