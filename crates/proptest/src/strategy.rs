//! Strategies: deterministic value generators with a `prop_map` combinator.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values of one type, driven by a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Boxes a strategy as a trait object (used by [`prop_oneof!`](crate::prop_oneof)).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice among boxed strategies sharing a value type.
pub struct OneOf<V>(pub Vec<Box<dyn Strategy<Value = V>>>);

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Wraps a sampling closure as a strategy (used by
/// [`prop_compose!`](crate::prop_compose)).
pub struct FnStrategy<F>(pub F);

impl<F, V> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> V,
{
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Types with a canonical whole-domain strategy, reachable via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// `&str` strategies: a miniature regex generator covering the
/// character-class patterns the tests use, e.g. `"[A-Z0-9]{1,6}"` or
/// `"[ -~]{0,16}"`. Literal characters outside classes are emitted as-is;
/// `{m,n}` / `{n}` repetition applies to the preceding class or literal.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = if c == '[' {
            let mut items: Vec<char> = Vec::new();
            for d in chars.by_ref() {
                if d == ']' {
                    break;
                }
                items.push(d);
            }
            // Fold `a-z` triples into ranges; everything else is a literal.
            let mut ranges = Vec::new();
            let mut i = 0;
            while i < items.len() {
                if i + 2 < items.len() && items[i + 1] == '-' {
                    ranges.push((items[i], items[i + 2]));
                    i += 3;
                } else {
                    ranges.push((items[i], items[i]));
                    i += 1;
                }
            }
            Atom::Class(ranges)
        } else {
            Atom::Literal(c)
        };

        // Optional repetition suffix.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().unwrap_or(0),
                    b.trim().parse::<usize>().unwrap_or(0),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };

        let n = if hi > lo {
            lo + rng.below((hi - lo + 1) as u64) as usize
        } else {
            lo
        };
        for _ in 0..n {
            match &atom {
                Atom::Literal(l) => out.push(*l),
                Atom::Class(ranges) => {
                    if ranges.is_empty() {
                        continue;
                    }
                    let (lo_c, hi_c) = ranges[rng.below(ranges.len() as u64) as usize];
                    let (a, b) = (lo_c as u32, hi_c as u32);
                    let pick = a + rng.below((b.saturating_sub(a) + 1) as u64) as u32;
                    out.push(char::from_u32(pick).unwrap_or(lo_c));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from(1);
        for _ in 0..1000 {
            let v = (10u8..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u8..=255).sample(&mut rng);
            assert!(w >= 1);
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn regex_classes_generate_members() {
        let mut rng = TestRng::seed_from(2);
        for _ in 0..200 {
            let s = "[A-Z0-9]{1,6}".sample(&mut rng);
            assert!((1..=6).contains(&s.len()), "len {}", s.len());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()));
        }
        for _ in 0..200 {
            let s = "[ -~]{0,16}".sample(&mut rng);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn prop_map_and_oneof_compose() {
        let mut rng = TestRng::seed_from(3);
        let s = crate::prop_oneof![Just(1u8), (10u8..20).prop_map(|v| v + 1)];
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v == 1 || (11..21).contains(&v));
        }
    }
}
