//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of the proptest API the workspace's tests actually use:
//! [`proptest!`], [`prop_compose!`], [`prop_oneof!`], the assertion macros,
//! strategies for integer/float ranges, `any::<T>()`, collections, simple
//! character-class regexes, tuples, [`Just`], `option::of`, and
//! [`sample::Index`].
//!
//! Semantics differ from upstream in two deliberate ways: case generation is
//! **deterministic** (seeded per test name, so failures reproduce without a
//! persistence file), and there is **no shrinking** — a failing case reports
//! its inputs via the panic message instead.

#![forbid(unsafe_code)]

use std::fmt;

pub mod strategy;

pub use strategy::{FnStrategy, Just, Strategy};

/// Deterministic generator handed to strategies (xoshiro256++ core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// One xoshiro256++ step.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform draw in `[0.0, 1.0)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated; the runner panics with this message.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption not met) with the given message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the case count is tunable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Drives one property: samples cases deterministically (seeded from the
/// test name) until `config.cases` cases were accepted or the reject budget
/// is exhausted. Panics on the first failing case.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let cases = env_cases().unwrap_or(config.cases).max(1);
    // FNV-1a over the test name: stable per-property seed.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = cases as u64 * 20;
    while accepted < cases && attempts < max_attempts {
        let mut rng = TestRng::seed_from(seed ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {attempts}: {msg}");
            }
        }
    }
}

/// `Strategy` producers for collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a uniformly drawn length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// `Strategy` producers for optional values.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy yielding `Some` three times out of four.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// Wraps `inner` so roughly 3/4 of draws are `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Index-style sampling helpers.
pub mod sample {
    use super::strategy::Arbitrary;
    use super::TestRng;

    /// An abstract index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Maps this abstract index onto a concrete `0..size` range.
        ///
        /// # Panics
        ///
        /// Panics if `size` is zero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index(0)");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_sample(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, ProptestConfig, TestCaseError, TestCaseResult,
    };
}

/// Runs each contained `fn name(arg in strategy, ...) { body }` as a
/// property over deterministically generated cases.
///
/// Supports an optional leading `#![proptest_config(...)]` attribute.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    let __out: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __out
                });
            }
        )*
    };
}

/// Defines a function returning a composite strategy:
/// `fn name(outer: T)(inner in strategy, ...) -> Ret { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $v:vis fn $name:ident($($outer:ident: $oty:ty),* $(,)?)(
        $($arg:pat in $strat:expr),+ $(,)?
    ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $v fn $name($($outer: $oty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |__rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Picks uniformly among the argument strategies (all must share a value
/// type). Weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}
