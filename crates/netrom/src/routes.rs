//! Quality-based NET/ROM route selection with obsolescence aging.
//!
//! Classic NET/ROM semantics: a route's quality through a neighbour is
//! `neighbour_quality * reported_quality / 256`; the best-quality route
//! per destination wins; entries not re-advertised decay an
//! obsolescence counter and disappear.

use std::collections::HashMap;

use ax25::addr::Ax25Addr;

use crate::codec::NodesBroadcast;

/// Initial obsolescence count for a fresh route.
pub const OBSOLESCENCE_INIT: u8 = 6;
/// Routes below this quality are ignored entirely.
pub const MIN_QUALITY: u8 = 10;

/// One learned route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Next hop (a direct neighbour).
    pub neighbour: Ax25Addr,
    /// End-to-end quality 0–255.
    pub quality: u8,
    /// Decremented every broadcast interval; 0 = dead.
    pub obsolescence: u8,
    /// Alias of the destination, from its advertisement.
    pub alias: String,
}

/// The route table of one node.
#[derive(Debug, Default)]
pub struct NetRomRoutes {
    /// destination → candidate routes (one per neighbour).
    table: HashMap<Ax25Addr, Vec<Route>>,
}

impl NetRomRoutes {
    /// Creates an empty table.
    pub fn new() -> NetRomRoutes {
        NetRomRoutes::default()
    }

    /// Learns from a NODES broadcast heard directly from `neighbour`
    /// (whose link quality we rate `neighbour_quality`). `me` filters out
    /// advertisements of ourselves.
    pub fn update_from_broadcast(
        &mut self,
        me: Ax25Addr,
        neighbour: Ax25Addr,
        neighbour_quality: u8,
        bcast: &NodesBroadcast,
    ) {
        // The neighbour itself is reachable directly.
        self.upsert(
            neighbour,
            Route {
                neighbour,
                quality: neighbour_quality,
                obsolescence: OBSOLESCENCE_INIT,
                alias: bcast.sender_alias.clone(),
            },
        );
        for entry in &bcast.entries {
            if entry.dest == me {
                continue;
            }
            // Split-horizon-ish: an advertisement whose best neighbour is
            // us would loop straight back.
            if entry.best_neighbour == me {
                continue;
            }
            let quality = ((u16::from(neighbour_quality) * u16::from(entry.quality)) / 256) as u8;
            if quality < MIN_QUALITY {
                continue;
            }
            self.upsert(
                entry.dest,
                Route {
                    neighbour,
                    quality,
                    obsolescence: OBSOLESCENCE_INIT,
                    alias: entry.alias.clone(),
                },
            );
        }
    }

    fn upsert(&mut self, dest: Ax25Addr, route: Route) {
        let routes = self.table.entry(dest).or_default();
        if let Some(existing) = routes.iter_mut().find(|r| r.neighbour == route.neighbour) {
            *existing = route;
        } else {
            routes.push(route);
        }
        routes.sort_by(|a, b| {
            b.quality
                .cmp(&a.quality)
                .then(a.neighbour.cmp(&b.neighbour))
        });
    }

    /// The best route to `dest`, if any.
    pub fn best(&self, dest: Ax25Addr) -> Option<&Route> {
        self.table.get(&dest).and_then(|v| v.first())
    }

    /// Ages every route one broadcast interval; dead routes vanish.
    pub fn age(&mut self) {
        for routes in self.table.values_mut() {
            for r in routes.iter_mut() {
                r.obsolescence = r.obsolescence.saturating_sub(1);
            }
            routes.retain(|r| r.obsolescence > 0);
        }
        self.table.retain(|_, v| !v.is_empty());
    }

    /// Destinations currently reachable, sorted (deterministic for
    /// broadcasts).
    pub fn destinations(&self) -> Vec<Ax25Addr> {
        let mut v: Vec<Ax25Addr> = self.table.keys().copied().collect();
        v.sort();
        v
    }

    /// Number of reachable destinations.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if no destinations are known.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::NodeEntry;

    fn a(s: &str) -> Ax25Addr {
        Ax25Addr::parse_or_panic(s)
    }

    fn bcast(alias: &str, entries: Vec<NodeEntry>) -> NodesBroadcast {
        NodesBroadcast {
            sender_alias: alias.into(),
            entries,
        }
    }

    #[test]
    fn neighbour_becomes_directly_reachable() {
        let mut rt = NetRomRoutes::new();
        rt.update_from_broadcast(a("ME"), a("NBR"), 200, &bcast("NBR", vec![]));
        let r = rt.best(a("NBR")).unwrap();
        assert_eq!(r.neighbour, a("NBR"));
        assert_eq!(r.quality, 200);
    }

    #[test]
    fn transitive_quality_multiplies() {
        let mut rt = NetRomRoutes::new();
        rt.update_from_broadcast(
            a("ME"),
            a("NBR"),
            192,
            &bcast(
                "NBR",
                vec![NodeEntry {
                    dest: a("FAR"),
                    alias: "FAR".into(),
                    best_neighbour: a("X"),
                    quality: 192,
                }],
            ),
        );
        // 192*192/256 = 144.
        assert_eq!(rt.best(a("FAR")).unwrap().quality, 144);
    }

    #[test]
    fn best_route_wins_between_neighbours() {
        let mut rt = NetRomRoutes::new();
        let entry = |q| NodeEntry {
            dest: a("FAR"),
            alias: "FAR".into(),
            best_neighbour: a("X"),
            quality: q,
        };
        rt.update_from_broadcast(a("ME"), a("N1"), 100, &bcast("N1", vec![entry(200)]));
        rt.update_from_broadcast(a("ME"), a("N2"), 250, &bcast("N2", vec![entry(200)]));
        assert_eq!(rt.best(a("FAR")).unwrap().neighbour, a("N2"));
    }

    #[test]
    fn own_advertisements_and_loops_are_ignored() {
        let mut rt = NetRomRoutes::new();
        rt.update_from_broadcast(
            a("ME"),
            a("NBR"),
            200,
            &bcast(
                "NBR",
                vec![
                    NodeEntry {
                        dest: a("ME"),
                        alias: "ME".into(),
                        best_neighbour: a("Q"),
                        quality: 255,
                    },
                    NodeEntry {
                        dest: a("LOOP"),
                        alias: "LP".into(),
                        best_neighbour: a("ME"),
                        quality: 255,
                    },
                ],
            ),
        );
        assert!(rt.best(a("ME")).is_none());
        assert!(rt.best(a("LOOP")).is_none());
    }

    #[test]
    fn low_quality_routes_are_dropped() {
        let mut rt = NetRomRoutes::new();
        rt.update_from_broadcast(
            a("ME"),
            a("NBR"),
            20,
            &bcast(
                "NBR",
                vec![NodeEntry {
                    dest: a("FAR"),
                    alias: "F".into(),
                    best_neighbour: a("X"),
                    quality: 50,
                }],
            ),
        );
        // 20*50/256 = 3 < MIN_QUALITY.
        assert!(rt.best(a("FAR")).is_none());
    }

    #[test]
    fn aging_expires_unrefreshed_routes() {
        let mut rt = NetRomRoutes::new();
        rt.update_from_broadcast(a("ME"), a("NBR"), 200, &bcast("NBR", vec![]));
        for _ in 0..OBSOLESCENCE_INIT {
            assert!(rt.best(a("NBR")).is_some());
            rt.age();
        }
        assert!(rt.best(a("NBR")).is_none());
        assert!(rt.is_empty());
    }

    #[test]
    fn refresh_resets_obsolescence() {
        let mut rt = NetRomRoutes::new();
        rt.update_from_broadcast(a("ME"), a("NBR"), 200, &bcast("NBR", vec![]));
        for _ in 0..20 {
            rt.age();
            rt.update_from_broadcast(a("ME"), a("NBR"), 200, &bcast("NBR", vec![]));
        }
        assert!(rt.best(a("NBR")).is_some());
    }
}
