//! NET/ROM wire formats: NODES broadcasts and network-layer datagrams.
//!
//! Both ride in the info field of AX.25 UI frames with PID `0xCF`. A
//! NODES broadcast starts with the signature octet `0xFF`; anything else
//! is a datagram whose header is origin(7) + destination(7) + TTL(1),
//! followed by the transport field.

use ax25::addr::Ax25Addr;

use crate::NetRomError;

/// Signature octet opening a NODES broadcast.
pub const NODES_SIGNATURE: u8 = 0xFF;

/// Transport opcode for an encapsulated IP datagram (the KA9Q
/// convention: NET/ROM as a subnet for IP).
pub const OP_IP: u8 = 0x0C;

/// One advertisement in a NODES broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEntry {
    /// The advertised destination node.
    pub dest: Ax25Addr,
    /// Its human-readable alias (≤6 chars).
    pub alias: String,
    /// The advertiser's best neighbour toward `dest`.
    pub best_neighbour: Ax25Addr,
    /// Path quality 0–255 as seen by the advertiser.
    pub quality: u8,
}

/// A periodic routing broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodesBroadcast {
    /// The sending node's alias.
    pub sender_alias: String,
    /// Advertised destinations.
    pub entries: Vec<NodeEntry>,
}

fn put_alias(out: &mut Vec<u8>, alias: &str) {
    let mut bytes = [b' '; 6];
    for (i, b) in alias.bytes().take(6).enumerate() {
        bytes[i] = b.to_ascii_uppercase();
    }
    out.extend_from_slice(&bytes);
}

fn get_alias(raw: &[u8]) -> String {
    raw.iter()
        .map(|&b| b as char)
        .collect::<String>()
        .trim_end()
        .to_string()
}

fn put_call(out: &mut Vec<u8>, addr: Ax25Addr) {
    out.extend_from_slice(&addr.encode(false, true));
}

fn get_call(raw: &[u8]) -> Result<Ax25Addr, NetRomError> {
    Ax25Addr::decode(raw)
        .map(|(a, _, _)| a)
        .map_err(|_| NetRomError::Malformed("callsign field"))
}

impl NodesBroadcast {
    /// Encodes the broadcast (UI info field content).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(7 + self.entries.len() * 21);
        out.push(NODES_SIGNATURE);
        put_alias(&mut out, &self.sender_alias);
        for e in &self.entries {
            put_call(&mut out, e.dest);
            put_alias(&mut out, &e.alias);
            put_call(&mut out, e.best_neighbour);
            out.push(e.quality);
        }
        out
    }

    /// Decodes a broadcast.
    pub fn decode(bytes: &[u8]) -> Result<NodesBroadcast, NetRomError> {
        if bytes.len() < 7 || bytes[0] != NODES_SIGNATURE {
            return Err(NetRomError::Malformed("missing NODES signature"));
        }
        let sender_alias = get_alias(&bytes[1..7]);
        let mut entries = Vec::new();
        let mut pos = 7;
        while pos < bytes.len() {
            if bytes.len() < pos + 21 {
                return Err(NetRomError::Malformed("truncated NODES entry"));
            }
            let dest = get_call(&bytes[pos..pos + 7])?;
            let alias = get_alias(&bytes[pos + 7..pos + 13]);
            let best_neighbour = get_call(&bytes[pos + 13..pos + 20])?;
            let quality = bytes[pos + 20];
            entries.push(NodeEntry {
                dest,
                alias,
                best_neighbour,
                quality,
            });
            pos += 21;
        }
        Ok(NodesBroadcast {
            sender_alias,
            entries,
        })
    }
}

/// The transport field of a datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// An encapsulated IPv4 datagram (opcode [`OP_IP`]).
    Ip(Vec<u8>),
    /// Any other opcode, carried opaquely.
    Opaque {
        /// Opcode byte.
        opcode: u8,
        /// Remaining bytes.
        bytes: Vec<u8>,
    },
}

/// A NET/ROM network-layer datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetRomPacket {
    /// The originating node.
    pub origin: Ax25Addr,
    /// The final destination node.
    pub dest: Ax25Addr,
    /// Hops remaining.
    pub ttl: u8,
    /// Transport payload.
    pub transport: Transport,
}

impl NetRomPacket {
    /// Wraps an IP datagram.
    pub fn ip(origin: Ax25Addr, dest: Ax25Addr, ttl: u8, ip_bytes: Vec<u8>) -> NetRomPacket {
        NetRomPacket {
            origin,
            dest,
            ttl,
            transport: Transport::Ip(ip_bytes),
        }
    }

    /// Encodes the datagram (UI info field content).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_call(&mut out, self.origin);
        put_call(&mut out, self.dest);
        out.push(self.ttl);
        match &self.transport {
            Transport::Ip(bytes) => {
                out.push(OP_IP);
                out.extend_from_slice(bytes);
            }
            Transport::Opaque { opcode, bytes } => {
                out.push(*opcode);
                out.extend_from_slice(bytes);
            }
        }
        out
    }

    /// Decodes a datagram (input must not start with the NODES signature).
    pub fn decode(bytes: &[u8]) -> Result<NetRomPacket, NetRomError> {
        if bytes.first() == Some(&NODES_SIGNATURE) {
            return Err(NetRomError::Malformed("is a NODES broadcast"));
        }
        if bytes.len() < 16 {
            return Err(NetRomError::Malformed("datagram too short"));
        }
        let origin = get_call(&bytes[0..7])?;
        let dest = get_call(&bytes[7..14])?;
        let ttl = bytes[14];
        let opcode = bytes[15];
        let rest = bytes[16..].to_vec();
        let transport = if opcode == OP_IP {
            Transport::Ip(rest)
        } else {
            Transport::Opaque {
                opcode,
                bytes: rest,
            }
        };
        Ok(NetRomPacket {
            origin,
            dest,
            ttl,
            transport,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ax25Addr {
        Ax25Addr::parse_or_panic(s)
    }

    #[test]
    fn nodes_broadcast_roundtrip() {
        let b = NodesBroadcast {
            sender_alias: "SEA".into(),
            entries: vec![
                NodeEntry {
                    dest: a("W2GW"),
                    alias: "NYC".into(),
                    best_neighbour: a("BBONE"),
                    quality: 180,
                },
                NodeEntry {
                    dest: a("KD7NM-2"),
                    alias: "TAC".into(),
                    best_neighbour: a("KD7NM-2"),
                    quality: 255,
                },
            ],
        };
        let bytes = b.encode();
        assert_eq!(bytes[0], NODES_SIGNATURE);
        assert_eq!(NodesBroadcast::decode(&bytes).unwrap(), b);
    }

    #[test]
    fn empty_broadcast_roundtrips() {
        let b = NodesBroadcast {
            sender_alias: "GATE".into(),
            entries: vec![],
        };
        assert_eq!(NodesBroadcast::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn broadcast_rejects_garbage() {
        assert!(NodesBroadcast::decode(&[]).is_err());
        assert!(NodesBroadcast::decode(&[0x00; 10]).is_err());
        let mut ok = NodesBroadcast {
            sender_alias: "X".into(),
            entries: vec![NodeEntry {
                dest: a("A"),
                alias: "A".into(),
                best_neighbour: a("B"),
                quality: 1,
            }],
        }
        .encode();
        ok.truncate(ok.len() - 1);
        assert!(NodesBroadcast::decode(&ok).is_err());
    }

    #[test]
    fn datagram_roundtrip_ip_and_opaque() {
        let p = NetRomPacket::ip(a("N7AKR-1"), a("W2GW"), 7, vec![0x45, 0, 0, 20]);
        assert_eq!(NetRomPacket::decode(&p.encode()).unwrap(), p);

        let q = NetRomPacket {
            origin: a("A"),
            dest: a("B"),
            ttl: 25,
            transport: Transport::Opaque {
                opcode: 5,
                bytes: b"info".to_vec(),
            },
        };
        assert_eq!(NetRomPacket::decode(&q.encode()).unwrap(), q);
    }

    #[test]
    fn datagram_and_broadcast_are_distinguishable() {
        let b = NodesBroadcast {
            sender_alias: "SEA".into(),
            entries: vec![],
        }
        .encode();
        assert!(NetRomPacket::decode(&b).is_err());
        let d = NetRomPacket::ip(a("A"), a("B"), 1, vec![]).encode();
        assert!(NodesBroadcast::decode(&d).is_err());
    }
}
