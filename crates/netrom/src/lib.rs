//! NET/ROM — the paper's second piece of future work, implemented.
//!
//! §2.4: *"Work is also proceeding on using another layer three protocol
//! known as NET/ROM to pass IP traffic between gateways. Doing this would
//! allow the use of an existing, and growing, point-to-point backbone in
//! the same way Internet subnets are connected via the ARPANET."*
//!
//! NET/ROM (Software 2000, 1987) is a network layer that rides on AX.25
//! UI frames with PID `0xCF`. Its two on-air artifacts are reproduced
//! here:
//!
//! * **NODES broadcasts** ([`codec::NodesBroadcast`]) — periodic routing
//!   advertisements to the special destination callsign `NODES`,
//!   carrying (destination, alias, best neighbour, quality) tuples;
//! * **datagrams** ([`codec::NetRomPacket`]) — TTL-limited network-layer
//!   packets with origin/destination callsigns, here carrying either
//!   opaque transport bytes or an encapsulated IP datagram (the KA9Q
//!   arrangement the paper alludes to).
//!
//! [`routes::NetRomRoutes`] implements the classic quality-based route
//! selection with obsolescence aging, and [`node::NetRomNode`] is the
//! sans-io node state machine. [`router::NetRomRouter`] adapts a node to
//! the testbed's `App` interface on a gateway host, reading PID-`0xCF`
//! frames from the driver's tty divert queue (the same §2.4 user-space
//! hook as the application gateway) and injecting decapsulated IP
//! packets into the host's stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod node;
pub mod router;
pub mod routes;

pub use codec::{NetRomPacket, NodeEntry, NodesBroadcast, Transport};
pub use node::{NetRomConfig, NetRomNode, NodeAction};
pub use router::NetRomRouter;
pub use routes::NetRomRoutes;

/// The special destination callsign of routing broadcasts.
pub fn nodes_addr() -> ax25::addr::Ax25Addr {
    ax25::addr::Ax25Addr::parse_or_panic("NODES")
}

/// Errors from NET/ROM parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetRomError {
    /// Structurally malformed packet.
    Malformed(&'static str),
}

impl std::fmt::Display for NetRomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetRomError::Malformed(w) => write!(f, "malformed NET/ROM packet: {w}"),
        }
    }
}

impl std::error::Error for NetRomError {}
