//! The NET/ROM router as a testbed application on a gateway host.
//!
//! Exactly like the §2.4 application gateway, the router is a *user
//! program*: the kernel driver diverts PID-`0xCF` frames to the tty
//! queue, the router reads them, and IP datagrams that arrive for this
//! node are injected back into the host's IP input queue — "to pass IP
//! traffic between gateways" over the NET/ROM backbone.
//!
//! Note: a host's tty divert queue has a single reader; do not install
//! both a [`NetRomRouter`] and another divert consumer (BBS, application
//! gateway) on the same host.

use ax25::addr::Ax25Addr;
use ax25::frame::Pid;
use gateway::world::App;
use gateway::Host;
use sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

use crate::node::{NetRomConfig, NetRomNode, NodeAction, NodeStats};

/// Observable state of a router, refreshed every poll.
#[derive(Debug, Clone, Default)]
pub struct RouterReport {
    /// Node statistics.
    pub stats: NodeStats,
    /// Currently reachable NET/ROM destinations (as display strings).
    pub destinations: Vec<String>,
}

/// A queued outbound IP datagram: (destination node, IP packet bytes).
pub type SendQueue = Rc<RefCell<Vec<(Ax25Addr, Vec<u8>)>>>;

/// The router application.
pub struct NetRomRouter {
    node: NetRomNode,
    report: Rc<RefCell<RouterReport>>,
    sendq: SendQueue,
}

impl NetRomRouter {
    /// Creates a router for a host whose radio callsign is
    /// `cfg.callsign`.
    pub fn new(cfg: NetRomConfig) -> NetRomRouter {
        NetRomRouter {
            node: NetRomNode::new(cfg),
            report: Rc::new(RefCell::new(RouterReport::default())),
            sendq: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Handle to the live report.
    pub fn report(&self) -> Rc<RefCell<RouterReport>> {
        self.report.clone()
    }

    /// Handle to the outbound queue: push `(dest_node, ip_bytes)` and the
    /// router ships it over the backbone on its next poll.
    pub fn send_queue(&self) -> SendQueue {
        self.sendq.clone()
    }

    fn run_actions(&mut self, now: SimTime, actions: Vec<NodeAction>, host: &mut Host) {
        for act in actions {
            match act {
                NodeAction::SendFrame(frame) => host.send_raw_ax25(now, &frame),
                NodeAction::DeliverIp(bytes) => host.inject_ip(now, bytes),
                NodeAction::DeliverTransport { .. } => {
                    // No circuit layer in this reproduction; drop.
                }
            }
        }
    }

    fn refresh_report(&mut self) {
        let mut r = self.report.borrow_mut();
        r.stats = self.node.stats();
        r.destinations = self
            .node
            .routes()
            .destinations()
            .iter()
            .map(|d| d.to_string())
            .collect();
    }
}

impl App for NetRomRouter {
    fn on_start(&mut self, _now: SimTime, host: &mut Host) {
        // The driver must accept the NODES broadcast destination, or the
        // routing advertisements never reach user space.
        if let Some(drv) = host.pr_driver_mut() {
            drv.add_broadcast_addr(crate::nodes_addr());
        }
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        // Read the tty divert queue (PID 0xCF frames).
        for frame in host.take_tty_frames() {
            if frame.pid == Some(Pid::NetRom) {
                let actions = self.node.on_frame(now, &frame);
                self.run_actions(now, actions, host);
            }
        }
        // Outbound requests from the owner.
        let outgoing: Vec<(Ax25Addr, Vec<u8>)> = self.sendq.borrow_mut().drain(..).collect();
        for (dest, bytes) in outgoing {
            let actions = self.node.send_ip(dest, bytes);
            self.run_actions(now, actions, host);
        }
        // Periodic broadcasts.
        let actions = self.node.poll(now);
        self.run_actions(now, actions, host);
        self.refresh_report();
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.node.next_deadline()
    }
}
