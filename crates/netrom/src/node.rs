//! The sans-io NET/ROM node: broadcasts, route learning, forwarding.

use ax25::addr::Ax25Addr;
use ax25::frame::{Frame, Pid};
use sim::{SimDuration, SimTime};

use crate::codec::{NetRomPacket, NodeEntry, NodesBroadcast, Transport, NODES_SIGNATURE};
use crate::nodes_addr;
use crate::routes::NetRomRoutes;

/// Node configuration.
#[derive(Debug, Clone)]
pub struct NetRomConfig {
    /// This node's callsign (its AX.25 link address).
    pub callsign: Ax25Addr,
    /// This node's alias (≤6 chars).
    pub alias: String,
    /// Interval between NODES broadcasts.
    pub broadcast_interval: SimDuration,
    /// Quality assigned to directly heard neighbours.
    pub neighbour_quality: u8,
    /// Initial TTL for originated datagrams.
    pub ttl: u8,
}

impl NetRomConfig {
    /// Sensible defaults for an RF backbone node.
    pub fn new(callsign: Ax25Addr, alias: &str) -> NetRomConfig {
        NetRomConfig {
            callsign,
            alias: alias.to_string(),
            broadcast_interval: SimDuration::from_secs(60),
            neighbour_quality: 192,
            ttl: 25,
        }
    }
}

/// Node statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// NODES broadcasts sent.
    pub broadcasts_sent: u64,
    /// NODES broadcasts heard.
    pub broadcasts_heard: u64,
    /// Datagrams originated here.
    pub originated: u64,
    /// Datagrams forwarded for others.
    pub forwarded: u64,
    /// Datagrams delivered here.
    pub delivered: u64,
    /// Datagrams dropped: no route.
    pub no_route: u64,
    /// Datagrams dropped: TTL exhausted.
    pub ttl_expired: u64,
}

/// Output actions of the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeAction {
    /// Transmit this AX.25 frame (a UI frame with PID NET/ROM).
    SendFrame(Frame),
    /// An IP datagram addressed to this node arrived; hand it to the
    /// host's IP input.
    DeliverIp(Vec<u8>),
    /// A non-IP transport payload addressed to this node arrived.
    DeliverTransport {
        /// Originating node.
        origin: Ax25Addr,
        /// Transport opcode.
        opcode: u8,
        /// Payload bytes.
        bytes: Vec<u8>,
    },
}

/// One NET/ROM node (sans-io).
#[derive(Debug)]
pub struct NetRomNode {
    cfg: NetRomConfig,
    routes: NetRomRoutes,
    next_broadcast: SimTime,
    stats: NodeStats,
}

impl NetRomNode {
    /// Creates a node. The first broadcast fires at a deterministic
    /// per-callsign phase within the first interval: co-channel nodes
    /// sharing a boot instant would otherwise all key up together and
    /// collide every round (real nodes are never synchronized).
    pub fn new(cfg: NetRomConfig) -> NetRomNode {
        let phase_ns = {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in cfg.callsign.to_string().bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
            }
            h % cfg.broadcast_interval.as_nanos().max(1)
        };
        NetRomNode {
            next_broadcast: SimTime::ZERO + SimDuration::from_nanos(phase_ns),
            cfg,
            routes: NetRomRoutes::new(),
            stats: NodeStats::default(),
        }
    }

    /// This node's callsign.
    pub fn callsign(&self) -> Ax25Addr {
        self.cfg.callsign
    }

    /// The learned route table.
    pub fn routes(&self) -> &NetRomRoutes {
        &self.routes
    }

    /// Node statistics.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Next time `poll` has scheduled work.
    pub fn next_deadline(&self) -> Option<SimTime> {
        Some(self.next_broadcast)
    }

    /// Periodic work: ages routes and emits the NODES broadcast.
    pub fn poll(&mut self, now: SimTime) -> Vec<NodeAction> {
        let mut out = Vec::new();
        while self.next_broadcast <= now {
            self.next_broadcast += self.cfg.broadcast_interval;
            self.routes.age();
            self.stats.broadcasts_sent += 1;
            let entries: Vec<NodeEntry> = self
                .routes
                .destinations()
                .into_iter()
                .filter_map(|dest| {
                    self.routes.best(dest).map(|r| NodeEntry {
                        dest,
                        alias: r.alias.clone(),
                        best_neighbour: r.neighbour,
                        quality: r.quality,
                    })
                })
                .collect();
            let bcast = NodesBroadcast {
                sender_alias: self.cfg.alias.clone(),
                entries,
            };
            out.push(NodeAction::SendFrame(Frame::ui(
                nodes_addr(),
                self.cfg.callsign,
                Pid::NetRom,
                bcast.encode(),
            )));
        }
        out
    }

    /// Processes a heard PID-NET/ROM frame.
    pub fn on_frame(&mut self, _now: SimTime, frame: &Frame) -> Vec<NodeAction> {
        if frame.pid != Some(Pid::NetRom) {
            return Vec::new();
        }
        if frame.info.first() == Some(&NODES_SIGNATURE) {
            if let Ok(bcast) = NodesBroadcast::decode(&frame.info) {
                self.stats.broadcasts_heard += 1;
                self.routes.update_from_broadcast(
                    self.cfg.callsign,
                    frame.source,
                    self.cfg.neighbour_quality,
                    &bcast,
                );
            }
            return Vec::new();
        }
        let Ok(packet) = NetRomPacket::decode(&frame.info) else {
            return Vec::new();
        };
        self.handle_packet(packet)
    }

    fn handle_packet(&mut self, packet: NetRomPacket) -> Vec<NodeAction> {
        if packet.dest == self.cfg.callsign {
            self.stats.delivered += 1;
            return match packet.transport {
                Transport::Ip(bytes) => vec![NodeAction::DeliverIp(bytes)],
                Transport::Opaque { opcode, bytes } => vec![NodeAction::DeliverTransport {
                    origin: packet.origin,
                    opcode,
                    bytes,
                }],
            };
        }
        // Forward.
        if packet.ttl <= 1 {
            self.stats.ttl_expired += 1;
            return Vec::new();
        }
        let Some(route) = self.routes.best(packet.dest) else {
            self.stats.no_route += 1;
            return Vec::new();
        };
        self.stats.forwarded += 1;
        let mut fwd = packet;
        fwd.ttl -= 1;
        vec![NodeAction::SendFrame(Frame::ui(
            route.neighbour,
            self.cfg.callsign,
            Pid::NetRom,
            fwd.encode(),
        ))]
    }

    /// Originates a datagram to node `dest` carrying an IP packet.
    pub fn send_ip(&mut self, dest: Ax25Addr, ip_bytes: Vec<u8>) -> Vec<NodeAction> {
        self.stats.originated += 1;
        let packet = NetRomPacket::ip(self.cfg.callsign, dest, self.cfg.ttl, ip_bytes);
        if dest == self.cfg.callsign {
            return self.handle_packet(packet);
        }
        let Some(route) = self.routes.best(dest) else {
            self.stats.no_route += 1;
            return Vec::new();
        };
        vec![NodeAction::SendFrame(Frame::ui(
            route.neighbour,
            self.cfg.callsign,
            Pid::NetRom,
            packet.encode(),
        ))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ax25Addr {
        Ax25Addr::parse_or_panic(s)
    }

    fn node(call: &str, alias: &str) -> NetRomNode {
        NetRomNode::new(NetRomConfig::new(a(call), alias))
    }

    /// Relays every SendFrame from `from`'s actions into `to`.
    fn relay(now: SimTime, actions: &[NodeAction], to: &mut NetRomNode) -> Vec<NodeAction> {
        let mut out = Vec::new();
        for act in actions {
            if let NodeAction::SendFrame(f) = act {
                out.extend(to.on_frame(now, f));
            }
        }
        out
    }

    /// Fires a node's next scheduled broadcast and returns its actions.
    fn fire(n: &mut NetRomNode) -> Vec<NodeAction> {
        let t = n.next_deadline().expect("broadcast scheduled");
        n.poll(t)
    }

    #[test]
    fn broadcast_fires_on_schedule_with_per_node_phase() {
        let mut n = node("SEA", "SEA");
        let t0 = n.next_deadline().unwrap();
        assert!(
            t0 < SimTime::ZERO + n.cfg.broadcast_interval,
            "phase within the first interval"
        );
        let acts = n.poll(t0);
        assert_eq!(acts.len(), 1);
        let NodeAction::SendFrame(f) = &acts[0] else {
            panic!()
        };
        assert_eq!(f.dest, nodes_addr());
        assert_eq!(f.pid, Some(Pid::NetRom));
        assert!(n.poll(t0).is_empty(), "not again until the interval");
        let t1 = n.next_deadline().unwrap();
        assert_eq!(t1 - t0, n.cfg.broadcast_interval);
        assert_eq!(n.poll(t1).len(), 1);
        // Two different callsigns get different phases.
        let m = node("NYC", "NYC");
        let s2 = node("SEA", "SEA");
        assert_ne!(m.next_deadline(), s2.next_deadline());
    }

    #[test]
    fn two_hop_route_learned_via_middle_node() {
        let now = SimTime::ZERO;
        let mut west = node("WGATE", "SEA");
        let mut mid = node("BBONE", "MID");
        let mut east = node("EGATE", "NYC");

        // Round 1: everyone announces themselves; neighbours learn.
        let e1 = fire(&mut east);
        relay(now, &e1, &mut mid); // mid learns EGATE (direct)
        let m1 = fire(&mut mid);
        relay(now, &m1, &mut west); // west learns BBONE, and EGATE via BBONE
        relay(now, &m1, &mut east);

        assert!(west.routes().best(a("BBONE")).is_some());
        let r = west.routes().best(a("EGATE")).expect("two-hop route");
        assert_eq!(r.neighbour, a("BBONE"));
        // 192 * 192 / 256 = 144.
        assert_eq!(r.quality, 144);
    }

    #[test]
    fn ip_datagram_crosses_two_hops() {
        let now = SimTime::ZERO;
        let mut west = node("WGATE", "SEA");
        let mut mid = node("BBONE", "MID");
        let mut east = node("EGATE", "NYC");
        // Learn topology.
        let e1 = fire(&mut east);
        relay(now, &e1, &mut mid);
        let m1 = fire(&mut mid);
        relay(now, &m1, &mut west);

        let acts = west.send_ip(a("EGATE"), vec![0x45, 0x00, 0x00, 0x14]);
        assert_eq!(acts.len(), 1);
        let NodeAction::SendFrame(f) = &acts[0] else {
            panic!()
        };
        assert_eq!(f.dest, a("BBONE"), "first hop is the backbone");

        let mid_acts = relay(now, &acts, &mut mid);
        assert_eq!(mid_acts.len(), 1, "mid forwards");
        assert_eq!(mid.stats().forwarded, 1);
        let east_acts = relay(now, &mid_acts, &mut east);
        assert_eq!(
            east_acts,
            vec![NodeAction::DeliverIp(vec![0x45, 0x00, 0x00, 0x14])]
        );
        assert_eq!(east.stats().delivered, 1);
    }

    #[test]
    fn ttl_expires_in_a_loop() {
        let now = SimTime::ZERO;
        let mut a_node = node("A", "A");
        let mut b_node = node("B", "B");
        // Teach both that the unreachable dest is via each other.
        let pa = fire(&mut a_node);
        relay(now, &pa, &mut b_node);
        let pb = fire(&mut b_node);
        relay(now, &pb, &mut a_node);
        // Forge a route by advertising a phantom destination from B.
        let bc = NodesBroadcast {
            sender_alias: "B".into(),
            entries: vec![NodeEntry {
                dest: a("GHOST"),
                alias: "GH".into(),
                best_neighbour: a("Z"),
                quality: 200,
            }],
        };
        a_node
            .routes
            .update_from_broadcast(a("A"), a("B"), 192, &bc);
        let bc2 = NodesBroadcast {
            sender_alias: "A".into(),
            entries: vec![NodeEntry {
                dest: a("GHOST"),
                alias: "GH".into(),
                best_neighbour: a("Z"),
                quality: 200,
            }],
        };
        b_node
            .routes
            .update_from_broadcast(a("B"), a("A"), 192, &bc2);

        // A originates toward GHOST; the packet ping-pongs until TTL dies.
        let mut acts = a_node.send_ip(a("GHOST"), vec![1]);
        let mut hops = 0;
        loop {
            let next = if hops % 2 == 0 {
                relay(now, &acts, &mut b_node)
            } else {
                relay(now, &acts, &mut a_node)
            };
            if next.is_empty() {
                break;
            }
            acts = next;
            hops += 1;
            assert!(hops < 100, "TTL must bound the loop");
        }
        assert_eq!(a_node.stats().ttl_expired + b_node.stats().ttl_expired, 1);
    }

    #[test]
    fn no_route_is_counted() {
        let mut n = node("LONELY", "LN");
        let acts = n.send_ip(a("NOWHR"), vec![9]);
        assert!(acts.is_empty());
        assert_eq!(n.stats().no_route, 1);
    }

    #[test]
    fn routes_expire_when_broadcasts_stop() {
        let now = SimTime::ZERO;
        let mut west = node("WGATE", "SEA");
        let mut mid = node("BBONE", "MID");
        let m1 = fire(&mut mid);
        relay(now, &m1, &mut west);
        assert!(west.routes().best(a("BBONE")).is_some());
        // Mid goes silent; west keeps broadcasting (and aging).
        for _ in 0..crate::routes::OBSOLESCENCE_INIT + 1 {
            let t = west.next_deadline().unwrap();
            west.poll(t);
        }
        assert!(west.routes().best(a("BBONE")).is_none());
    }
}
