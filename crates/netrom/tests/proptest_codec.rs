//! Property tests for the NET/ROM wire formats.

use ax25::addr::{Ax25Addr, Callsign};
use netrom::{NetRomPacket, NodeEntry, NodesBroadcast, Transport};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ax25Addr> {
    ("[A-Z0-9]{1,6}", 0u8..16)
        .prop_map(|(c, ssid)| Ax25Addr::new(Callsign::new(&c).unwrap(), ssid).unwrap())
}

fn arb_alias() -> impl Strategy<Value = String> {
    "[A-Z0-9]{0,6}".prop_map(|s| s)
}

proptest! {
    #[test]
    fn nodes_broadcast_roundtrip(
        sender in arb_alias(),
        entries in proptest::collection::vec(
            (arb_addr(), arb_alias(), arb_addr(), any::<u8>()),
            0..12,
        ),
    ) {
        let b = NodesBroadcast {
            sender_alias: sender,
            entries: entries
                .into_iter()
                .map(|(dest, alias, best_neighbour, quality)| NodeEntry {
                    dest,
                    alias,
                    best_neighbour,
                    quality,
                })
                .collect(),
        };
        let bytes = b.encode();
        prop_assert_eq!(NodesBroadcast::decode(&bytes).unwrap(), b);
    }

    #[test]
    fn datagram_roundtrip(
        origin in arb_addr(),
        dest in arb_addr(),
        ttl in any::<u8>(),
        opcode in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let transport = if opcode == netrom::codec::OP_IP {
            Transport::Ip(payload)
        } else {
            Transport::Opaque { opcode, bytes: payload }
        };
        let p = NetRomPacket { origin, dest, ttl, transport };
        let bytes = p.encode();
        prop_assert_eq!(NetRomPacket::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = NodesBroadcast::decode(&bytes);
        let _ = NetRomPacket::decode(&bytes);
    }
}
