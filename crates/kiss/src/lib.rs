//! The KISS host-to-TNC framing protocol.
//!
//! The paper (§2.1) replaces the TNC's ROM firmware with *"a stripped down
//! version of the software for it known as the KISS TNC code"* — the
//! protocol of Chepponis & Karn, *The KISS TNC: A Simple Host-to-TNC
//! Communications Protocol* (6th ARRL CNC, 1987). KISS delimits frames on
//! the serial line with `FEND` (0xC0) and escapes embedded `FEND`/`FESC`
//! bytes; the first byte of every frame is a command/port nibble pair.
//!
//! Two halves matter for the reproduction:
//!
//! * [`encode`] — what the driver's output path and the TNC's receive path
//!   produce;
//! * [`Deframer`] — an **incremental, one-byte-at-a-time** decoder. The
//!   paper's hardest routine (§2.2) is the tty interrupt handler that is
//!   called *"for each character in the packet"* and decodes *"escaped
//!   frame end characters … on the fly"*; `Deframer::push` is exactly that
//!   routine, and the gateway driver calls it from its simulated interrupt
//!   handler.
//!
//! The deframer is zero-allocation in steady state: it accumulates into a
//! preallocated internal buffer and hands completed frames out as
//! [`KissFrameRef`] borrows; callers that need ownership call
//! [`KissFrameRef::to_owned`], and the per-character fast path (the §3
//! promiscuous storm) never touches the heap.
//!
//! # Examples
//!
//! ```
//! use kiss::{encode, Command, Deframer};
//!
//! let wire = encode(0, Command::Data, &[0x01, 0xC0, 0x02]);
//! let mut d = Deframer::new();
//! let mut frames = Vec::new();
//! for b in wire {
//!     if let Some(f) = d.push(b) {
//!         frames.push(f.to_owned());
//!     }
//! }
//! assert_eq!(frames.len(), 1);
//! assert_eq!(frames[0].payload, vec![0x01, 0xC0, 0x02]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sim::bytekernels::{find_byte, find_either};
use sim::wire::Codec;
use sim::ByteSink;

/// Frame delimiter.
pub const FEND: u8 = 0xC0;
/// Escape byte.
pub const FESC: u8 = 0xDB;
/// Escaped `FEND` (sent as `FESC TFEND`).
pub const TFEND: u8 = 0xDC;
/// Escaped `FESC` (sent as `FESC TFESC`).
pub const TFESC: u8 = 0xDD;

/// KISS command codes (the low nibble of the type byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Data frame: the payload is an AX.25 frame without FCS.
    Data,
    /// Transmitter keyup delay, in 10 ms units.
    TxDelay,
    /// CSMA persistence parameter `p` scaled to 0–255.
    Persistence,
    /// CSMA slot interval, in 10 ms units.
    SlotTime,
    /// Time to hold the transmitter after the frame, in 10 ms units.
    TxTail,
    /// Full-duplex flag (0 = CSMA half duplex).
    FullDuplex,
    /// Hardware-specific escape.
    SetHardware,
    /// Exit KISS mode and return to the TNC's normal firmware.
    Return,
}

impl Command {
    /// Wire encoding of the command nibble.
    pub fn code(self) -> u8 {
        match self {
            Command::Data => 0x0,
            Command::TxDelay => 0x1,
            Command::Persistence => 0x2,
            Command::SlotTime => 0x3,
            Command::TxTail => 0x4,
            Command::FullDuplex => 0x5,
            Command::SetHardware => 0x6,
            Command::Return => 0xF,
        }
    }

    /// Decodes a command nibble.
    pub fn from_code(code: u8) -> Option<Command> {
        match code & 0x0F {
            0x0 => Some(Command::Data),
            0x1 => Some(Command::TxDelay),
            0x2 => Some(Command::Persistence),
            0x3 => Some(Command::SlotTime),
            0x4 => Some(Command::TxTail),
            0x5 => Some(Command::FullDuplex),
            0x6 => Some(Command::SetHardware),
            0xF => Some(Command::Return),
            _ => None,
        }
    }
}

/// A decoded KISS frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KissFrame {
    /// TNC port (high nibble of the type byte); multi-port TNCs exist but
    /// the paper's setup uses port 0.
    pub port: u8,
    /// The command.
    pub command: Command,
    /// Unescaped payload (for [`Command::Data`], an AX.25 frame).
    pub payload: Vec<u8>,
}

impl KissFrame {
    /// Convenience constructor for a port-0 data frame.
    pub fn data(payload: Vec<u8>) -> KissFrame {
        KissFrame {
            port: 0,
            command: Command::Data,
            payload,
        }
    }
}

/// Failure modes of [`KissFrame::decode`] (via [`sim::wire::Codec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KissDecodeError {
    /// The bytes contained no complete, well-formed KISS frame.
    NoFrame,
}

impl std::fmt::Display for KissDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no complete KISS frame in input")
    }
}

impl std::error::Error for KissDecodeError {}

impl Codec for KissFrame {
    type Error = KissDecodeError;

    fn encode_into(&self, out: &mut impl ByteSink) {
        encode_into(self.port, self.command, &self.payload, out);
    }

    /// Decodes the first complete frame in `bytes`.
    fn decode(bytes: &[u8]) -> Result<KissFrame, KissDecodeError> {
        let mut d = Deframer::new();
        for &b in bytes {
            if let Some(f) = d.push(b) {
                return Ok(f.to_owned());
            }
        }
        Err(KissDecodeError::NoFrame)
    }
}

/// Encodes one KISS frame into `out` for the serial line.
///
/// The frame is wrapped in `FEND` bytes on both sides (a leading `FEND`
/// flushes any line noise at the receiver, as the KISS spec recommends).
/// Emitting into a [`ByteSink`] lets the datapath encode straight into a
/// pooled [`sim::PacketBuf`] without an intermediate `Vec`.
pub fn encode_into(port: u8, command: Command, payload: &[u8], out: &mut impl ByteSink) {
    out.put(FEND);
    // The type byte is escaped like any other content byte: a data frame on
    // port 12 encodes its type byte 0xC0, which would otherwise read as FEND.
    push_escaped(out, (port << 4) | command.code());
    push_escaped_slice(out, payload);
    out.put(FEND);
}

/// Encodes one KISS frame into a fresh `Vec` (off the hot path).
pub fn encode(port: u8, command: Command, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    encode_into(port, command, payload, &mut out);
    out
}

fn push_escaped(out: &mut impl ByteSink, b: u8) {
    match b {
        FEND => {
            out.put(FESC);
            out.put(TFEND);
        }
        FESC => {
            out.put(FESC);
            out.put(TFESC);
        }
        other => out.put(other),
    }
}

/// KISS-escapes a whole slice into `out`, emitting each unescaped run as a
/// single `put_slice`.
///
/// This is the bulk form of the per-byte escape: a word-at-a-time scan
/// (`sim::bytekernels`) finds the next `FEND`/`FESC`, the clean span before
/// it lands in the sink in one copy, and only the special byte itself goes
/// through the two-byte escape. Most AX.25 payloads contain no specials at
/// all, so the common case is one memcpy.
pub fn push_escaped_slice(out: &mut impl ByteSink, bytes: &[u8]) {
    let mut rest = bytes;
    while !rest.is_empty() {
        match find_either(rest, FEND, FESC) {
            None => {
                out.put_slice(rest);
                return;
            }
            Some(off) => {
                if off > 0 {
                    out.put_slice(&rest[..off]);
                }
                push_escaped(out, rest[off]);
                rest = &rest[off + 1..];
            }
        }
    }
}

/// A [`ByteSink`] adapter that KISS-escapes everything written through it.
///
/// Obtained inside [`encode_frame_into`]; upper-layer codecs write their
/// wire form through it and the escapes land directly in the underlying
/// sink — no staging buffer between the AX.25 encoder and the serial line.
pub struct EscapedWriter<'a, S: ByteSink>(&'a mut S);

impl<S: ByteSink> ByteSink for EscapedWriter<'_, S> {
    fn put(&mut self, byte: u8) {
        push_escaped(self.0, byte);
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        push_escaped_slice(self.0, bytes);
    }
}

/// Encodes one KISS frame whose payload is written by `write_payload`
/// through an [`EscapedWriter`], escaping on the fly.
///
/// This is the single-pass form of [`encode_into`] for callers that can
/// stream their payload (e.g. `ax25::frame::Frame::encode_into`): the
/// payload bytes are escaped as they are produced, so a driver can go from
/// a structured frame to KISS serial bytes in one pooled buffer with no
/// intermediate copy.
///
/// # Examples
///
/// ```
/// use kiss::{encode, encode_frame_into, Command};
/// use sim::ByteSink;
///
/// let payload = [0x01, kiss::FEND, 0x02];
/// let mut streamed = Vec::new();
/// encode_frame_into(0, Command::Data, &mut streamed, |esc| {
///     esc.put_slice(&payload);
/// });
/// assert_eq!(streamed, encode(0, Command::Data, &payload));
/// ```
pub fn encode_frame_into<S: ByteSink>(
    port: u8,
    command: Command,
    out: &mut S,
    write_payload: impl FnOnce(&mut EscapedWriter<'_, S>),
) {
    out.put(FEND);
    push_escaped(out, (port << 4) | command.code());
    write_payload(&mut EscapedWriter(out));
    out.put(FEND);
}

/// Encodes a single-byte parameter command (TXDELAY, P, SlotTime, …).
pub fn encode_param(port: u8, command: Command, value: u8) -> Vec<u8> {
    encode(port, command, &[value])
}

/// Counters kept by a [`Deframer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeframerStats {
    /// Complete frames produced.
    pub frames: u64,
    /// Bytes consumed (including delimiters and escapes).
    pub bytes: u64,
    /// Frames discarded for an invalid escape sequence.
    pub bad_escapes: u64,
    /// Frames discarded for an unknown command nibble.
    pub bad_commands: u64,
    /// Frames discarded for exceeding the maximum length.
    pub oversize: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for the first FEND (or discarding garbage/noise).
    Hunt,
    /// Inside a frame, accumulating unescaped bytes (the first accumulated
    /// byte is the type byte).
    Open,
    /// Saw FESC, expecting TFEND or TFESC.
    Escape,
    /// Discarding until the next FEND after an error.
    Drop,
}

/// A completed frame borrowed from a [`Deframer`]'s internal buffer.
///
/// The payload stays valid until the next [`Deframer::push`]; the receive
/// fast path inspects it in place (address filter, PID demux) and only
/// copies via [`to_owned`](KissFrameRef::to_owned) when the frame is
/// actually for us.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KissFrameRef<'a> {
    /// TNC port (high nibble of the type byte).
    pub port: u8,
    /// The command.
    pub command: Command,
    /// Unescaped payload, borrowed from the deframer.
    pub payload: &'a [u8],
}

impl KissFrameRef<'_> {
    /// Copies this frame into an owned [`KissFrame`].
    pub fn to_owned(&self) -> KissFrame {
        KissFrame {
            port: self.port,
            command: self.command,
            payload: self.payload.to_vec(),
        }
    }
}

/// Incremental KISS decoder — one byte per call, exactly like the paper's
/// tty interrupt handler.
///
/// Feed received characters to [`Deframer::push`]; a completed frame is
/// returned on the terminating `FEND` as a [`KissFrameRef`] borrowing the
/// deframer's reusable buffer — the decoder allocates once at construction
/// and never again. Malformed input (bad escape, unknown command, oversize
/// frame) discards the current frame and resynchronizes on the next `FEND`.
#[derive(Debug, Clone)]
pub struct Deframer {
    state: State,
    buf: Vec<u8>,
    /// The previous push returned a frame still sitting in `buf`; clear it
    /// on the next byte (we cannot clear eagerly while the borrow lives).
    pending_reset: bool,
    max_len: usize,
    stats: DeframerStats,
}

impl Default for Deframer {
    fn default() -> Self {
        Deframer::new()
    }
}

impl Deframer {
    /// Generous default payload cap: AX.25 allows 256-byte info fields plus
    /// a 72-byte header ceiling; 1024 leaves room for experimentation.
    pub const DEFAULT_MAX_LEN: usize = 1024;

    /// Creates a deframer in the hunting state.
    pub fn new() -> Deframer {
        Deframer::with_max_len(Self::DEFAULT_MAX_LEN)
    }

    /// Creates a deframer that discards frames longer than `max_len`.
    pub fn with_max_len(max_len: usize) -> Deframer {
        Deframer {
            state: State::Hunt,
            // +1: the type byte shares the buffer with up to max_len payload.
            buf: Vec::with_capacity(max_len + 1),
            pending_reset: false,
            max_len,
            stats: DeframerStats::default(),
        }
    }

    /// A capacity-free stand-in for `mem::replace` detach patterns.
    ///
    /// A caller whose struct owns a deframer can move the live decoder out
    /// (so a [`push_slice`](Deframer::push_slice) callback may borrow the
    /// rest of the struct mutably) and park this in its place without
    /// touching the heap — the zero-allocation receive path depends on
    /// that. Never feed it bytes: its length cap is zero.
    pub fn placeholder() -> Deframer {
        Deframer {
            state: State::Hunt,
            buf: Vec::new(),
            pending_reset: false,
            max_len: 0,
            stats: DeframerStats::default(),
        }
    }

    /// Consumes one character from the serial line; returns a frame when
    /// the closing `FEND` arrives. The returned [`KissFrameRef`] borrows
    /// the deframer and is invalidated by the next `push`.
    pub fn push(&mut self, byte: u8) -> Option<KissFrameRef<'_>> {
        if self.pending_reset {
            self.pending_reset = false;
            self.buf.clear();
        }
        self.stats.bytes += 1;
        match self.state {
            State::Hunt => {
                if byte == FEND {
                    self.state = State::Open;
                    self.buf.clear();
                }
                None
            }
            State::Open => match byte {
                FEND => self.finish(),
                FESC => {
                    self.state = State::Escape;
                    None
                }
                other => {
                    self.accept(other);
                    None
                }
            },
            State::Escape => match byte {
                TFEND => {
                    self.state = State::Open;
                    self.accept(FEND);
                    None
                }
                TFESC => {
                    self.state = State::Open;
                    self.accept(FESC);
                    None
                }
                FEND => {
                    // Truncated escape; the FEND still resynchronizes.
                    self.stats.bad_escapes += 1;
                    self.buf.clear();
                    self.state = State::Open;
                    None
                }
                _ => {
                    self.stats.bad_escapes += 1;
                    self.state = State::Drop;
                    None
                }
            },
            State::Drop => {
                if byte == FEND {
                    self.state = State::Open;
                    self.buf.clear();
                }
                None
            }
        }
    }

    /// Consumes a whole slice of serial input, invoking `on_frame` for
    /// each completed frame together with the slice index of the `FEND`
    /// that terminated it.
    ///
    /// This is the bulk form of [`push`](Deframer::push), which stays as
    /// the executable reference (DESIGN.md §9). Observable behavior — the
    /// frames produced and every [`DeframerStats`] counter — is
    /// bit-identical to feeding the same bytes through `push` one at a
    /// time, at any chunking; the chunk-boundary differential proptest
    /// holds it to that. The speed comes from not running the per-byte
    /// state machine over frame bodies: a word-at-a-time scan
    /// (`sim::bytekernels`) finds the next `FEND`/`FESC`, and the clean
    /// span before it lands in the frame buffer as one `extend_from_slice`.
    ///
    /// Frame refs passed to `on_frame` borrow the deframer's buffer and
    /// are valid only for the duration of the call.
    pub fn push_slice(&mut self, bytes: &[u8], mut on_frame: impl FnMut(usize, KissFrameRef<'_>)) {
        if bytes.is_empty() {
            return;
        }
        if self.pending_reset {
            self.pending_reset = false;
            self.buf.clear();
        }
        let mut i = 0;
        while i < bytes.len() {
            match self.state {
                State::Hunt | State::Drop => {
                    // Both states discard everything up to the next FEND.
                    match find_byte(&bytes[i..], FEND) {
                        Some(off) => {
                            self.stats.bytes += off as u64 + 1;
                            i += off + 1;
                            self.state = State::Open;
                            self.buf.clear();
                        }
                        None => {
                            self.stats.bytes += (bytes.len() - i) as u64;
                            return;
                        }
                    }
                }
                State::Open => {
                    let rest = &bytes[i..];
                    let stop = find_either(rest, FEND, FESC);
                    let run = stop.unwrap_or(rest.len());
                    self.accept_run(&rest[..run]);
                    self.stats.bytes += run as u64;
                    i += run;
                    let Some(off) = stop else { return };
                    self.stats.bytes += 1;
                    i += 1;
                    if self.state != State::Open {
                        // accept_run hit the length cap, so the delimiter
                        // lands in Drop state where only FEND matters.
                        if rest[off] == FEND {
                            self.state = State::Open;
                            self.buf.clear();
                        }
                    } else if rest[off] == FESC {
                        self.state = State::Escape;
                    } else {
                        if let Some(frame) = self.finish() {
                            on_frame(i - 1, frame);
                        }
                        // The borrow ends with the callback; reset eagerly
                        // instead of deferring to the next push.
                        self.pending_reset = false;
                        self.buf.clear();
                    }
                }
                State::Escape => {
                    // Escapes are rare: run the scalar step for one byte.
                    self.stats.bytes += 1;
                    let byte = bytes[i];
                    i += 1;
                    match byte {
                        TFEND => {
                            self.state = State::Open;
                            self.accept(FEND);
                        }
                        TFESC => {
                            self.state = State::Open;
                            self.accept(FESC);
                        }
                        FEND => {
                            // Truncated escape; the FEND resynchronizes.
                            self.stats.bad_escapes += 1;
                            self.buf.clear();
                            self.state = State::Open;
                        }
                        _ => {
                            self.stats.bad_escapes += 1;
                            self.state = State::Drop;
                        }
                    }
                }
            }
        }
    }

    fn accept(&mut self, byte: u8) {
        // +1 accounts for the type byte occupying buf[0].
        if self.buf.len() > self.max_len {
            self.stats.oversize += 1;
            self.state = State::Drop;
            return;
        }
        self.buf.push(byte);
    }

    /// Bulk [`accept`](Deframer::accept) for a delimiter-free span,
    /// preserving the per-byte length-cap semantics: `accept` admits a byte
    /// while `buf.len() <= max_len`, so the buffer holds up to
    /// `max_len + 1` bytes (type byte + payload) and the *next* byte trips
    /// a single oversize drop without being stored.
    fn accept_run(&mut self, run: &[u8]) {
        if run.is_empty() {
            return;
        }
        let admit = (self.max_len + 1).saturating_sub(self.buf.len());
        if run.len() <= admit {
            self.buf.extend_from_slice(run);
        } else {
            self.buf.extend_from_slice(&run[..admit]);
            self.stats.oversize += 1;
            self.state = State::Drop;
        }
    }

    fn finish(&mut self) -> Option<KissFrameRef<'_>> {
        self.state = State::Open;
        self.pending_reset = true;
        let Some((&type_byte, payload)) = self.buf.split_first() else {
            // Back-to-back FENDs are idle keepalives, not frames.
            return None;
        };
        let Some(command) = Command::from_code(type_byte) else {
            self.stats.bad_commands += 1;
            return None;
        };
        if payload.is_empty() && command == Command::Data {
            // Zero-length data frames are line idles, not packets.
            return None;
        }
        self.stats.frames += 1;
        Some(KissFrameRef {
            port: type_byte >> 4,
            command,
            payload,
        })
    }

    /// Decoder statistics so far.
    pub fn stats(&self) -> DeframerStats {
        self.stats
    }

    /// True if the decoder has consumed frame content that is not yet
    /// terminated (useful for draining tests).
    pub fn in_frame(&self) -> bool {
        matches!(self.state, State::Open | State::Escape)
            && !self.buf.is_empty()
            && !self.pending_reset
    }
}

/// Decodes a complete byte stream, returning every frame found.
///
/// Convenience wrapper over [`Deframer`] for tests and batch tools.
pub fn decode_stream(bytes: &[u8]) -> Vec<KissFrame> {
    let mut d = Deframer::new();
    bytes
        .iter()
        .filter_map(|&b| d.push(b).map(|f| f.to_owned()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_plain_payload() {
        let wire = encode(0, Command::Data, b"hello");
        let frames = decode_stream(&wire);
        assert_eq!(frames, vec![KissFrame::data(b"hello".to_vec())]);
    }

    #[test]
    fn roundtrip_payload_full_of_specials() {
        let payload = vec![FEND, FESC, FEND, FESC, 0x00, FEND];
        let wire = encode(2, Command::Data, &payload);
        let frames = decode_stream(&wire);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].port, 2);
        assert_eq!(frames[0].payload, payload);
    }

    #[test]
    fn escaping_is_minimal() {
        // "abc" has nothing to escape: FEND, type, a, b, c, FEND.
        assert_eq!(encode(0, Command::Data, b"abc").len(), 6);
        // A single FEND payload becomes FESC TFEND: FEND, type, 2 bytes, FEND.
        assert_eq!(encode(0, Command::Data, &[FEND]).len(), 5);
    }

    #[test]
    fn param_commands_roundtrip() {
        for (cmd, v) in [
            (Command::TxDelay, 30u8),
            (Command::Persistence, 63),
            (Command::SlotTime, 10),
            (Command::TxTail, 2),
            (Command::FullDuplex, 0),
        ] {
            let wire = encode_param(0, cmd, v);
            let frames = decode_stream(&wire);
            assert_eq!(frames.len(), 1, "{cmd:?}");
            assert_eq!(frames[0].command, cmd);
            assert_eq!(frames[0].payload, vec![v]);
        }
    }

    #[test]
    fn back_to_back_frames_share_delimiters() {
        let mut wire = encode(0, Command::Data, b"one");
        wire.extend(encode(0, Command::Data, b"two"));
        let frames = decode_stream(&wire);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].payload, b"one");
        assert_eq!(frames[1].payload, b"two");
    }

    #[test]
    fn repeated_fends_are_idle() {
        let mut wire = vec![FEND; 10];
        wire.extend(encode(0, Command::Data, b"x"));
        wire.extend(vec![FEND; 10]);
        let frames = decode_stream(&wire);
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn garbage_before_first_fend_is_ignored() {
        let mut wire = b"line noise!".to_vec();
        wire.extend(encode(0, Command::Data, b"ok"));
        let frames = decode_stream(&wire);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, b"ok");
    }

    #[test]
    fn bad_escape_drops_frame_and_resyncs() {
        let mut d = Deframer::new();
        let mut wire = vec![FEND, 0x00, b'a', FESC, 0x99, b'b', FEND];
        wire.extend(encode(0, Command::Data, b"good"));
        let frames: Vec<_> = wire
            .iter()
            .filter_map(|&b| d.push(b).map(|f| f.to_owned()))
            .collect();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, b"good");
        assert_eq!(d.stats().bad_escapes, 1);
    }

    #[test]
    fn escape_truncated_by_fend_counts_and_resyncs() {
        let wire = [FEND, 0x00, b'a', FESC, FEND, 0x00, b'z', FEND];
        let mut d = Deframer::new();
        let frames: Vec<_> = wire
            .iter()
            .filter_map(|&b| d.push(b).map(|f| f.to_owned()))
            .collect();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, b"z");
        assert_eq!(d.stats().bad_escapes, 1);
    }

    #[test]
    fn unknown_command_nibble_is_dropped() {
        let wire = [FEND, 0x07, b'a', FEND]; // 0x7 is undefined
        let mut d = Deframer::new();
        let frames: Vec<_> = wire
            .iter()
            .filter_map(|&b| d.push(b).map(|f| f.to_owned()))
            .collect();
        assert!(frames.is_empty());
        assert_eq!(d.stats().bad_commands, 1);
    }

    #[test]
    fn oversize_frame_is_dropped() {
        let mut d = Deframer::with_max_len(4);
        let wire = encode(0, Command::Data, b"too long!");
        let frames: Vec<_> = wire
            .iter()
            .filter_map(|&b| d.push(b).map(|f| f.to_owned()))
            .collect();
        assert!(frames.is_empty());
        assert_eq!(d.stats().oversize, 1);
        // And it recovers for the next frame.
        let wire2 = encode(0, Command::Data, b"ok");
        let frames2: Vec<_> = wire2
            .iter()
            .filter_map(|&b| d.push(b).map(|f| f.to_owned()))
            .collect();
        assert_eq!(frames2.len(), 1);
    }

    #[test]
    fn empty_data_frame_is_idle_not_packet() {
        let wire = vec![FEND, 0x00, FEND];
        assert!(decode_stream(&wire).is_empty());
    }

    #[test]
    fn return_command_roundtrips() {
        // The spec's 0xFF "return" byte: port nibble F, command nibble F.
        let wire = vec![FEND, 0xFF, FEND];
        let frames = decode_stream(&wire);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].command, Command::Return);
    }

    #[test]
    fn stats_count_bytes_and_frames() {
        let wire = encode(0, Command::Data, b"abc");
        let mut d = Deframer::new();
        for &b in &wire {
            d.push(b);
        }
        assert_eq!(d.stats().bytes, wire.len() as u64);
        assert_eq!(d.stats().frames, 1);
    }

    #[test]
    fn in_frame_reports_mid_frame() {
        let mut d = Deframer::new();
        assert!(!d.in_frame());
        d.push(FEND);
        d.push(0x00);
        assert!(d.in_frame(), "type byte consumed, frame is open");
        d.push(b'a');
        assert!(d.in_frame());
        d.push(FEND);
        assert!(!d.in_frame());
    }

    /// Pushes a stream through `push_slice` in the given chunking and
    /// through per-byte `push`, asserting identical frames and stats.
    fn assert_slice_matches_per_byte(stream: &[u8], chunk: usize) {
        let mut per_byte = Deframer::with_max_len(16);
        let ref_frames: Vec<KissFrame> = stream
            .iter()
            .filter_map(|&b| per_byte.push(b).map(|f| f.to_owned()))
            .collect();
        let mut bulk = Deframer::with_max_len(16);
        let mut frames = Vec::new();
        for piece in stream.chunks(chunk.max(1)) {
            bulk.push_slice(piece, |_, f| frames.push(f.to_owned()));
        }
        assert_eq!(frames, ref_frames, "chunk {chunk}");
        assert_eq!(bulk.stats(), per_byte.stats(), "chunk {chunk}");
    }

    #[test]
    fn push_slice_matches_push_at_every_chunking() {
        // Noise, a good frame, an escaped frame, a bad escape, an oversize
        // frame, idles, and a frame left open at the end.
        let mut stream = b"garbage".to_vec();
        stream.extend(encode(0, Command::Data, b"hello"));
        stream.extend(encode(1, Command::Data, &[FEND, FESC, 0x00]));
        stream.extend([FEND, 0x00, b'a', FESC, 0x99, b'x', FEND]);
        stream.extend(encode(0, Command::Data, &[0x55; 20]));
        stream.extend([FEND, FEND, FEND]);
        stream.extend(encode(0, Command::TxDelay, &[30]));
        stream.extend([FEND, 0x00, b'p', b'a', b'r', b't']);
        for chunk in 1..=stream.len() {
            assert_slice_matches_per_byte(&stream, chunk);
        }
    }

    #[test]
    fn push_slice_reports_the_terminating_fend_index() {
        let mut d = Deframer::new();
        let mut wire = encode(0, Command::Data, b"ab");
        let end_first = wire.len() - 1;
        wire.extend(encode(0, Command::Data, b"cd"));
        let mut seen = Vec::new();
        d.push_slice(&wire, |idx, f| seen.push((idx, f.to_owned())));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].0, end_first);
        assert_eq!(seen[1].0, wire.len() - 1);
        assert_eq!(seen[0].1.payload, b"ab");
        assert_eq!(seen[1].1.payload, b"cd");
    }

    #[test]
    fn push_slice_interoperates_with_per_byte_push() {
        // Switch paths mid-stream, including right after a completed frame
        // (the pending_reset hand-off).
        let mut d = Deframer::new();
        let wire = encode(0, Command::Data, b"one");
        let mut frames = Vec::new();
        d.push_slice(&wire, |_, f| frames.push(f.to_owned()));
        let wire2 = encode(0, Command::Data, b"two");
        for &b in &wire2 {
            if let Some(f) = d.push(b) {
                frames.push(f.to_owned());
            }
        }
        let wire3 = encode(0, Command::Data, b"three");
        d.push_slice(&wire3, |_, f| frames.push(f.to_owned()));
        let payloads: Vec<_> = frames.iter().map(|f| f.payload.clone()).collect();
        assert_eq!(
            payloads,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
    }

    #[test]
    fn escaped_slice_matches_per_byte_escaping() {
        let cases: [&[u8]; 5] = [
            b"no specials at all",
            &[FEND, FESC, FEND],
            &[0x01, FEND, 0x02, FESC, 0x03],
            &[],
            &[FESC],
        ];
        for payload in cases {
            let mut bulk = Vec::new();
            push_escaped_slice(&mut bulk, payload);
            let mut scalar = Vec::new();
            for &b in payload {
                push_escaped(&mut scalar, b);
            }
            assert_eq!(bulk, scalar);
        }
    }

    #[test]
    fn placeholder_is_heap_free_and_inert() {
        let d = Deframer::placeholder();
        assert_eq!(d.buf.capacity(), 0);
        assert!(!d.in_frame());
    }

    #[test]
    fn command_codes_roundtrip() {
        for cmd in [
            Command::Data,
            Command::TxDelay,
            Command::Persistence,
            Command::SlotTime,
            Command::TxTail,
            Command::FullDuplex,
            Command::SetHardware,
            Command::Return,
        ] {
            assert_eq!(Command::from_code(cmd.code()), Some(cmd));
        }
        assert_eq!(Command::from_code(0x7), None);
    }
}
