//! Property tests: KISS framing must survive arbitrary payloads and
//! resynchronize after arbitrary garbage.

use kiss::{decode_stream, encode, Command, Deframer, FEND};
use proptest::prelude::*;

proptest! {
    /// Any payload round-trips through encode → byte-at-a-time decode.
    #[test]
    fn roundtrip_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..512), port in 0u8..16) {
        let wire = encode(port, Command::Data, &payload);
        let frames = decode_stream(&wire);
        if payload.is_empty() {
            // Empty data frames are idles by design.
            prop_assert!(frames.is_empty());
        } else {
            prop_assert_eq!(frames.len(), 1);
            prop_assert_eq!(frames[0].port, port);
            prop_assert_eq!(&frames[0].payload, &payload);
        }
    }

    /// A stream of several encoded frames decodes to exactly those frames,
    /// in order.
    #[test]
    fn sequence_roundtrip(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..128), 1..8)) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend(encode(0, Command::Data, p));
        }
        let frames = decode_stream(&wire);
        prop_assert_eq!(frames.len(), payloads.len());
        for (f, p) in frames.iter().zip(&payloads) {
            prop_assert_eq!(&f.payload, p);
        }
    }

    /// Arbitrary garbage never panics the deframer, and a valid frame sent
    /// after the garbage (separated by a FEND) is always recovered.
    #[test]
    fn resync_after_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..256),
                            payload in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut d = Deframer::new();
        for &b in &garbage {
            let _ = d.push(b);
        }
        // Force resynchronization boundary, then send a clean frame.
        let _ = d.push(FEND);
        let wire = encode(0, Command::Data, &payload);
        let got: Vec<_> = wire
            .iter()
            .filter_map(|&b| d.push(b).map(|f| f.to_owned()))
            .collect();
        let last = got.last().expect("clean frame must decode");
        prop_assert_eq!(&last.payload, &payload);
    }

    /// Encoded output never contains a bare FEND except as delimiters.
    #[test]
    fn no_embedded_fend(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let wire = encode(0, Command::Data, &payload);
        prop_assert_eq!(wire[0], FEND);
        prop_assert_eq!(*wire.last().unwrap(), FEND);
        for &b in &wire[1..wire.len() - 1] {
            prop_assert_ne!(b, FEND);
        }
    }
}
