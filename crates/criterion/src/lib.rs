//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the criterion API the workspace's benches use: groups with
//! throughput annotations, `iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` entry points. Measurement is a
//! simple best-of-runs wall clock — good enough to compare fast paths on
//! one machine, with none of criterion's statistics engine.
//!
//! `cargo bench -- --test` runs every benchmark exactly once without
//! timing, which is what the tier-1 gate uses as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How a batched iteration sizes its batches. Batches are per-iteration
/// here, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup output; setup runs once per measured iteration.
    SmallInput,
    /// Larger setup output; treated identically to `SmallInput`.
    LargeInput,
}

/// Throughput annotation attached to a group; reported alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
    /// The measured routine processes this many elements per iteration.
    Elements(u64),
}

/// The benchmark context: run mode plus shared defaults.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            test_mode,
            filter,
            default_sample_size: 50,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Registers a standalone benchmark (no group).
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let group_name = name.to_string();
        let mut g = BenchmarkGroup {
            criterion: self,
            name: group_name,
            throughput: None,
            sample_size: None,
        };
        g.bench_function("", f);
    }
}

/// A named set of benchmarks sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = Some(n.max(1));
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = if name.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, name)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.criterion.test_mode {
            let mut b = Bencher {
                mode: Mode::TestOnce,
                elapsed: Duration::ZERO,
                iters_done: 0,
            };
            f(&mut b);
            println!("test {full} ... ok");
            return;
        }
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        // Warm-up pass, then keep the best (least-noise) sample.
        let mut best = Duration::MAX;
        let mut iters_per_sample = 0u64;
        for sample in 0..=samples {
            let mut b = Bencher {
                mode: Mode::Measure,
                elapsed: Duration::ZERO,
                iters_done: 0,
            };
            f(&mut b);
            if sample == 0 {
                continue; // warm-up
            }
            if b.iters_done > 0 && b.elapsed < best {
                best = b.elapsed;
                iters_per_sample = b.iters_done;
            }
        }
        if iters_per_sample == 0 {
            println!("{full:<40} (no iterations)");
            return;
        }
        let per_iter = best.as_nanos() as f64 / iters_per_sample as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let mbps = n as f64 / per_iter * 1e9 / (1024.0 * 1024.0);
                format!("  {mbps:>10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let eps = n as f64 / per_iter * 1e9;
                format!("  {eps:>10.0} elem/s")
            }
            None => String::new(),
        };
        println!("{full:<40} {:>12.1} ns/iter{rate}", per_iter);
    }

    /// Ends the group (kept for API compatibility; reporting is inline).
    pub fn finish(self) {}
}

enum Mode {
    TestOnce,
    Measure,
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    mode: Mode,
    elapsed: Duration,
    iters_done: u64,
}

/// Number of timed iterations per measurement sample.
const ITERS_PER_SAMPLE: u64 = 64;

impl Bencher {
    /// Times `routine` over a fixed iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            Mode::TestOnce => {
                std::hint::black_box(routine());
                self.iters_done = 1;
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..ITERS_PER_SAMPLE {
                    std::hint::black_box(routine());
                }
                self.elapsed += start.elapsed();
                self.iters_done += ITERS_PER_SAMPLE;
            }
        }
    }

    /// Times `routine` on fresh values from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        match self.mode {
            Mode::TestOnce => {
                std::hint::black_box(routine(setup()));
                self.iters_done = 1;
            }
            Mode::Measure => {
                for _ in 0..ITERS_PER_SAMPLE {
                    let input = setup();
                    let start = Instant::now();
                    std::hint::black_box(routine(input));
                    self.elapsed += start.elapsed();
                }
                self.iters_done += ITERS_PER_SAMPLE;
            }
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
