//! RIP44-style route announcements: wire format and timers.
//!
//! Gateways broadcast the radio subnets they serve as UDP datagrams on the
//! wired network (the real AMPRnet used RIP over the tunnel mesh; this is
//! the same shape reduced to what the reproduction needs). A listener that
//! hears an announcement installs `subnet → announcing gateway` into its
//! [`EncapTable`](crate::EncapTable) or routing table with a lifetime; the
//! announcer re-broadcasts periodically with **jittered** timers so
//! gateways that boot together do not synchronize, and sends **triggered**
//! updates when its own routes change so convergence does not wait for the
//! next period.

use std::fmt;
use std::net::Ipv4Addr;

use netstack::Prefix;
use sim::wire::{Codec, Reader, Writer};
use sim::{ByteSink, SimDuration, SimRng, SimTime};

/// UDP port the announcements travel on (the historical RIP port).
pub const RIP44_PORT: u16 = 520;

/// Metric meaning "unreachable"; entries at or above this are withdrawals.
pub const METRIC_INFINITY: u8 = 16;

const MAGIC: u16 = 0x5234; // "R4"
const VERSION: u8 = 1;
const ENTRY_LEN: usize = 6;
const HEADER_LEN: usize = 8;

/// Why a datagram failed to parse as a RIP44 update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RipError {
    /// Shorter than the fixed header or the count requires.
    Truncated,
    /// First two octets are not the RIP44 magic.
    BadMagic,
    /// Unsupported version octet.
    BadVersion,
    /// Entry count disagrees with the datagram length.
    BadCount,
    /// An entry carried a prefix length over 32.
    BadPrefixLen,
}

impl fmt::Display for RipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RipError::Truncated => write!(f, "truncated update"),
            RipError::BadMagic => write!(f, "bad magic"),
            RipError::BadVersion => write!(f, "unsupported version"),
            RipError::BadCount => write!(f, "entry count/length mismatch"),
            RipError::BadPrefixLen => write!(f, "prefix length over 32"),
        }
    }
}

impl std::error::Error for RipError {}

/// One announced subnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RipEntry {
    /// The subnet reachable through the announcing gateway.
    pub prefix: Prefix,
    /// Hop distance; [`METRIC_INFINITY`] withdraws the route.
    pub metric: u8,
}

/// One announcement datagram: who is announcing, and which subnets.
///
/// `origin` is the announcing gateway's address *as it wants to be
/// tunneled to* (its wired address); UDP source addresses are not trusted
/// for this because a broadcast relayed through a helper would corrupt
/// the mapping.
///
/// # Examples
///
/// ```
/// use encap::rip::{RipEntry, RipUpdate};
/// use netstack::Prefix;
/// use sim::wire::Codec;
/// use std::net::Ipv4Addr;
///
/// let u = RipUpdate {
///     origin: Ipv4Addr::new(128, 95, 1, 101),
///     entries: vec![RipEntry {
///         prefix: Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16),
///         metric: 1,
///     }],
/// };
/// assert_eq!(RipUpdate::decode(&u.encode()).unwrap(), u);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RipUpdate {
    /// Wired address of the announcing gateway (the tunnel endpoint).
    pub origin: Ipv4Addr,
    /// Announced subnets with metrics.
    pub entries: Vec<RipEntry>,
}

impl Codec for RipUpdate {
    type Error = RipError;

    fn encode_into(&self, out: &mut impl ByteSink) {
        debug_assert!(self.entries.len() <= usize::from(u8::MAX));
        let mut w = Writer::with_capacity(HEADER_LEN + self.entries.len() * ENTRY_LEN);
        w.u16(MAGIC);
        w.u8(VERSION);
        w.u8(self.entries.len() as u8);
        w.bytes(&self.origin.octets());
        for e in &self.entries {
            w.u32(u32::from(e.prefix.addr));
            w.u8(e.prefix.len);
            w.u8(e.metric);
        }
        out.put_slice(w.as_slice());
    }

    fn decode(bytes: &[u8]) -> Result<RipUpdate, RipError> {
        let mut r = Reader::new(bytes);
        if r.u16().map_err(|_| RipError::Truncated)? != MAGIC {
            return Err(RipError::BadMagic);
        }
        if r.u8().map_err(|_| RipError::Truncated)? != VERSION {
            return Err(RipError::BadVersion);
        }
        let count = r.u8().map_err(|_| RipError::Truncated)?;
        let origin = Ipv4Addr::from(r.u32().map_err(|_| RipError::Truncated)?);
        if r.remaining() != usize::from(count) * ENTRY_LEN {
            return Err(RipError::BadCount);
        }
        let mut entries = Vec::with_capacity(usize::from(count));
        for _ in 0..count {
            let addr = Ipv4Addr::from(r.u32().map_err(|_| RipError::Truncated)?);
            let len = r.u8().map_err(|_| RipError::Truncated)?;
            let metric = r.u8().map_err(|_| RipError::Truncated)?;
            if len > 32 {
                return Err(RipError::BadPrefixLen);
            }
            entries.push(RipEntry {
                prefix: Prefix::new(addr, len),
                metric,
            });
        }
        Ok(RipUpdate { origin, entries })
    }
}

/// The announce-timer state machine: periodic announcements with jitter,
/// plus triggered updates pulled earlier (but rate-limited) when routes
/// change.
///
/// Deadline contract: [`next_deadline`](Announcer::next_deadline) is the
/// next instant [`due`](Announcer::due) will return `true`; the owning
/// service surfaces it through its `App::next_deadline` so the scheduler
/// polls at exactly the right time. All randomness comes from the caller's
/// [`SimRng`], keeping runs reproducible.
#[derive(Debug)]
pub struct Announcer {
    interval: SimDuration,
    /// Fractional jitter `j`: each period is drawn from
    /// `interval * [1-j, 1+j)`.
    jitter: f64,
    /// Delay before a triggered update fires (lets several changes batch).
    trigger_delay: SimDuration,
    /// Minimum spacing between consecutive announcements, so a route flap
    /// cannot turn triggered updates into a broadcast storm.
    min_gap: SimDuration,
    next_at: Option<SimTime>,
    last_sent: Option<SimTime>,
}

impl Announcer {
    /// Creates a stopped announcer. `jitter` is clamped to `[0, 0.9]`.
    pub fn new(interval: SimDuration, jitter: f64) -> Announcer {
        Announcer {
            interval,
            jitter: jitter.clamp(0.0, 0.9),
            trigger_delay: SimDuration::from_millis(500),
            min_gap: SimDuration::from_secs(1),
            next_at: None,
            last_sent: None,
        }
    }

    /// Schedules the first announcement shortly after `now` (a random
    /// fraction of one interval, so co-booting gateways desynchronize).
    pub fn start(&mut self, now: SimTime, rng: &mut SimRng) {
        let first = SimDuration::from_secs_f64(self.interval.as_secs_f64() * rng.unit());
        self.next_at = Some(now.saturating_add(first));
    }

    /// True exactly when an announcement should be sent now; rescheduling
    /// for the next jittered period happens as a side effect.
    pub fn due(&mut self, now: SimTime, rng: &mut SimRng) -> bool {
        match self.next_at {
            Some(t) if t <= now => {
                self.last_sent = Some(now);
                self.next_at = Some(now.saturating_add(self.jittered(rng)));
                true
            }
            _ => false,
        }
    }

    /// Requests a triggered update: pulls the next announcement to roughly
    /// `now + trigger_delay`, never closer than `min_gap` after the last
    /// one, and never *later* than already scheduled.
    pub fn trigger(&mut self, now: SimTime, rng: &mut SimRng) {
        let Some(next) = self.next_at else {
            return; // not started
        };
        let soon =
            SimDuration::from_secs_f64(self.trigger_delay.as_secs_f64() * (1.0 + rng.unit()));
        let mut candidate = now.saturating_add(soon);
        if let Some(last) = self.last_sent {
            candidate = candidate.max(last.saturating_add(self.min_gap));
        }
        if candidate < next {
            self.next_at = Some(candidate);
        }
    }

    /// When [`due`](Announcer::due) will next fire; `None` before
    /// [`start`](Announcer::start).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.next_at
    }

    fn jittered(&self, rng: &mut SimRng) -> SimDuration {
        let scale = 1.0 - self.jitter + 2.0 * self.jitter * rng.unit();
        SimDuration::from_secs_f64(self.interval.as_secs_f64() * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update() -> RipUpdate {
        RipUpdate {
            origin: Ipv4Addr::new(128, 95, 1, 101),
            entries: vec![
                RipEntry {
                    prefix: Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16),
                    metric: 1,
                },
                RipEntry {
                    prefix: Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 0),
                    metric: 1,
                },
            ],
        }
    }

    #[test]
    fn update_roundtrips() {
        let u = update();
        assert_eq!(RipUpdate::decode(&u.encode()).unwrap(), u);
    }

    #[test]
    fn malformed_updates_are_rejected() {
        let bytes = update().encode();
        assert_eq!(RipUpdate::decode(&bytes[..3]), Err(RipError::Truncated));
        assert_eq!(
            RipUpdate::decode(&bytes[..bytes.len() - 1]),
            Err(RipError::BadCount)
        );
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert_eq!(RipUpdate::decode(&wrong_magic), Err(RipError::BadMagic));
        let mut wrong_ver = bytes.clone();
        wrong_ver[2] = 9;
        assert_eq!(RipUpdate::decode(&wrong_ver), Err(RipError::BadVersion));
        let mut bad_len = bytes.clone();
        bad_len[HEADER_LEN + 4] = 40; // first entry's prefix length
        assert_eq!(RipUpdate::decode(&bad_len), Err(RipError::BadPrefixLen));
    }

    #[test]
    fn announcer_periods_stay_within_jitter_bounds() {
        let interval = SimDuration::from_secs(10);
        let mut a = Announcer::new(interval, 0.2);
        let mut rng = SimRng::seed_from(7);
        a.start(SimTime::ZERO, &mut rng);
        let first = a.next_deadline().unwrap();
        assert!(first <= SimTime::from_secs(10), "first announce is early");

        let mut now = first;
        let mut prev = now;
        for _ in 0..50 {
            assert!(a.due(now, &mut rng));
            let next = a.next_deadline().unwrap();
            let gap = next.saturating_since(now).as_secs_f64();
            assert!((8.0..12.0).contains(&gap), "gap {gap} outside jitter band");
            prev = now;
            now = next;
        }
        assert!(prev < now);
    }

    #[test]
    fn due_is_false_before_deadline_and_before_start() {
        let mut a = Announcer::new(SimDuration::from_secs(10), 0.0);
        let mut rng = SimRng::seed_from(1);
        assert!(!a.due(SimTime::from_secs(100), &mut rng));
        a.start(SimTime::ZERO, &mut rng);
        let t = a.next_deadline().unwrap();
        if t > SimTime::ZERO {
            assert!(!a.due(SimTime::ZERO, &mut rng));
        }
        assert!(a.due(t, &mut rng));
    }

    #[test]
    fn trigger_pulls_the_next_announcement_earlier_but_respects_min_gap() {
        let mut a = Announcer::new(SimDuration::from_secs(30), 0.0);
        let mut rng = SimRng::seed_from(3);
        a.start(SimTime::ZERO, &mut rng);
        let t0 = a.next_deadline().unwrap();
        assert!(a.due(t0, &mut rng));
        let periodic = a.next_deadline().unwrap();

        // A change right after an announcement: the triggered update may
        // not come sooner than min_gap after it.
        a.trigger(t0, &mut rng);
        let pulled = a.next_deadline().unwrap();
        assert!(pulled < periodic, "trigger did not pull the deadline in");
        assert!(
            pulled >= t0.saturating_add(SimDuration::from_secs(1)),
            "trigger violated the minimum announcement gap"
        );

        // A later trigger never pushes the deadline back out.
        a.trigger(t0, &mut rng);
        assert!(a.next_deadline().unwrap() <= pulled.max(a.next_deadline().unwrap()));
    }
}
