//! The encap table: 44/8 subnets → tunnel endpoints.
//!
//! Each gateway keeps one of these. Before the ordinary routing table is
//! consulted, the stack asks the encap table whether the destination falls
//! in a subnet some *other* gateway announced; on a hit the datagram is
//! wrapped ([`crate::ipip`]) and sent to that gateway directly instead of
//! following the class-A aggregate across the country.
//!
//! Entries are either static (configured, never expire) or learned from
//! RIP44 announcements with an expiry deadline. Expiry is *deadline-driven*:
//! the owning service calls [`EncapTable::expire`] exactly at
//! [`EncapTable::next_deadline`], which is why [`EncapTable::lookup`] takes
//! no clock — a live entry is live by construction. When a learned entry
//! expires, its prefix enters **hold-down**: re-learns are rejected until
//! the hold-down period passes, so a flapping gateway cannot whipsaw the
//! table (traffic falls back to the aggregate route instead).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::net::Ipv4Addr;
use std::rc::Rc;

use netstack::stack::TunnelMap;
use netstack::Prefix;
use sim::{SimDuration, SimTime};

/// One subnet → endpoint mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncapEntry {
    /// The radio subnet reachable through [`endpoint`](Self::endpoint).
    pub subnet: Prefix,
    /// Wired address of the gateway serving that subnet.
    pub endpoint: Ipv4Addr,
    /// Announced distance; lower replaces higher for the same subnet.
    pub metric: u8,
    /// When this entry dies; `None` for static (configured) entries.
    pub expires_at: Option<SimTime>,
    /// Packets encapsulated through this entry.
    pub hits: u64,
}

impl EncapEntry {
    /// True for entries learned from announcements (they expire).
    pub fn is_learned(&self) -> bool {
        self.expires_at.is_some()
    }
}

/// Aggregate counters for one table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncapStats {
    /// Lookups that matched an entry (packet was tunneled).
    pub hits: u64,
    /// Lookups that matched nothing (packet took the routing table).
    pub misses: u64,
    /// Learned entries removed at their deadline.
    pub expired: u64,
    /// New subnets accepted from announcements.
    pub learned: u64,
    /// Announcements that refreshed an existing entry's deadline.
    pub refreshed: u64,
    /// Announcements rejected because the prefix was in hold-down.
    pub holddown_rejects: u64,
}

/// What [`EncapTable::learn`] did with an announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnOutcome {
    /// Previously unknown subnet; entry installed.
    New,
    /// Known subnet, better metric from a different endpoint; replaced.
    Updated,
    /// Same endpoint re-announced; deadline pushed out.
    Refreshed,
    /// Prefix is in hold-down after an expiry; announcement dropped.
    HeldDown,
    /// Worse or equal metric from a different endpoint; announcement
    /// ignored (the incumbent keeps its deadline).
    Worse,
}

/// The subnet → tunnel-endpoint table. See the module docs for the expiry
/// and hold-down contract.
///
/// # Examples
///
/// ```
/// use encap::table::EncapTable;
/// use netstack::Prefix;
/// use sim::{SimDuration, SimTime};
/// use std::net::Ipv4Addr;
///
/// let mut t = EncapTable::new(SimDuration::from_secs(20));
/// let east = Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16);
/// let gw = Ipv4Addr::new(128, 95, 1, 101);
/// t.learn(SimTime::ZERO, east, gw, 1, SimDuration::from_secs(25));
/// assert_eq!(t.lookup(Ipv4Addr::new(44, 56, 0, 5)), Some(gw));
/// assert_eq!(t.lookup(Ipv4Addr::new(44, 24, 0, 5)), None);
/// ```
#[derive(Debug)]
pub struct EncapTable {
    entries: Vec<EncapEntry>,
    /// Prefixes whose learned entry recently expired, closed to re-learns
    /// until the stored time.
    holddown_until: Vec<(Prefix, SimTime)>,
    holddown: SimDuration,
    stats: EncapStats,
    /// Bumped (wrapping) on every mapping change — static edits, learns
    /// that install or move an entry, refreshes, expiries. The stack's
    /// next-hop cache stamps this; a bump invalidates every memoized
    /// tunnel decision in O(1) (DESIGN.md §14).
    generation: u64,
}

impl EncapTable {
    /// Creates an empty table with the given hold-down period.
    pub fn new(holddown: SimDuration) -> EncapTable {
        EncapTable {
            entries: Vec::new(),
            holddown_until: Vec::new(),
            holddown,
            stats: EncapStats::default(),
            generation: 0,
        }
    }

    /// The mutation generation (see the field docs). Compare with `==`.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Installs a static (never-expiring) mapping.
    pub fn add_static(&mut self, subnet: Prefix, endpoint: Ipv4Addr, metric: u8) {
        self.entries.retain(|e| e.subnet != subnet);
        self.entries.push(EncapEntry {
            subnet,
            endpoint,
            metric,
            expires_at: None,
            hits: 0,
        });
        self.sort();
        self.generation = self.generation.wrapping_add(1);
    }

    /// Longest-prefix match. On a hit the entry's counter and the table's
    /// hit counter advance and the tunnel endpoint is returned; on a miss
    /// the miss counter advances and the caller falls through to the
    /// ordinary routing table.
    pub fn lookup(&mut self, dst: Ipv4Addr) -> Option<Ipv4Addr> {
        match self.entries.iter_mut().find(|e| e.subnet.contains(dst)) {
            Some(e) => {
                e.hits += 1;
                self.stats.hits += 1;
                Some(e.endpoint)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Applies one announced `(subnet, endpoint, metric)` with lifetime
    /// `ttl`. See [`LearnOutcome`] for the possible dispositions.
    pub fn learn(
        &mut self,
        now: SimTime,
        subnet: Prefix,
        endpoint: Ipv4Addr,
        metric: u8,
        ttl: SimDuration,
    ) -> LearnOutcome {
        self.holddown_until.retain(|&(_, until)| until > now);
        if self.holddown_until.iter().any(|&(p, _)| p == subnet) {
            self.stats.holddown_rejects += 1;
            return LearnOutcome::HeldDown;
        }
        let deadline = now.saturating_add(ttl);
        if let Some(e) = self.entries.iter_mut().find(|e| e.subnet == subnet) {
            if !e.is_learned() {
                // Static entries are configuration; announcements never
                // override them.
                return LearnOutcome::Worse;
            }
            if e.endpoint == endpoint {
                e.expires_at = Some(deadline);
                e.metric = metric;
                self.stats.refreshed += 1;
                return LearnOutcome::Refreshed;
            }
            if metric < e.metric {
                e.endpoint = endpoint;
                e.metric = metric;
                e.expires_at = Some(deadline);
                self.sort();
                // The answer for this subnet changed; kill memoized
                // decisions. (A plain refresh keeps the same endpoint, so
                // cached decisions stay valid and the generation holds.)
                self.generation = self.generation.wrapping_add(1);
                return LearnOutcome::Updated;
            }
            return LearnOutcome::Worse;
        }
        self.entries.push(EncapEntry {
            subnet,
            endpoint,
            metric,
            expires_at: Some(deadline),
            hits: 0,
        });
        self.stats.learned += 1;
        self.sort();
        self.generation = self.generation.wrapping_add(1);
        LearnOutcome::New
    }

    /// Removes every learned entry whose deadline has arrived, placing its
    /// prefix in hold-down. Returns the removed entries (the service uses
    /// them to withdraw any routes it installed).
    pub fn expire(&mut self, now: SimTime) -> Vec<EncapEntry> {
        let mut dead = Vec::new();
        self.entries.retain(|e| match e.expires_at {
            Some(t) if t <= now => {
                dead.push(*e);
                false
            }
            _ => true,
        });
        for e in &dead {
            self.stats.expired += 1;
            self.holddown_until
                .push((e.subnet, now.saturating_add(self.holddown)));
        }
        if !dead.is_empty() {
            self.generation = self.generation.wrapping_add(1);
        }
        dead
    }

    /// The earliest learned-entry expiry, for the scheduler.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.entries.iter().filter_map(|e| e.expires_at).min()
    }

    /// True while `subnet` is closed to re-learns.
    pub fn in_holddown(&self, subnet: Prefix, now: SimTime) -> bool {
        self.holddown_until
            .iter()
            .any(|&(p, until)| p == subnet && until > now)
    }

    /// The current entries, longest prefix (then best metric) first.
    pub fn entries(&self) -> &[EncapEntry] {
        &self.entries
    }

    /// Aggregate counters.
    pub fn stats(&self) -> EncapStats {
        self.stats
    }

    fn sort(&mut self) {
        self.entries
            .sort_by_key(|e| (Reverse(e.subnet.len), e.metric));
    }
}

/// A cloneable handle to an [`EncapTable`], installable as a stack's
/// [`TunnelMap`]. The RIP44 service keeps one clone for learning and
/// expiry; the stack keeps another for per-packet lookups.
#[derive(Debug, Clone)]
pub struct SharedEncapTable(Rc<RefCell<EncapTable>>);

impl SharedEncapTable {
    /// Wraps a table for sharing.
    pub fn new(table: EncapTable) -> SharedEncapTable {
        SharedEncapTable(Rc::new(RefCell::new(table)))
    }

    /// Runs `f` with the table borrowed mutably.
    pub fn with<R>(&self, f: impl FnOnce(&mut EncapTable) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> EncapStats {
        self.0.borrow().stats
    }
}

impl TunnelMap for SharedEncapTable {
    fn endpoint(&mut self, dst: Ipv4Addr) -> Option<Ipv4Addr> {
        self.0.borrow_mut().lookup(dst)
    }

    fn generation(&self) -> u64 {
        self.0.borrow().generation
    }

    /// Keeps the aggregate hit/miss counters exact when the stack's
    /// next-hop cache replays a memoized decision instead of calling
    /// [`TunnelMap::endpoint`]. Per-entry `hits` only count real
    /// consultations — documented trade-off in DESIGN.md §14.
    fn note_cached_endpoint(&mut self, hit: bool) {
        let mut t = self.0.borrow_mut();
        if hit {
            t.stats.hits += 1;
        } else {
            t.stats.misses += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn east() -> Prefix {
        Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16)
    }

    fn gw_a() -> Ipv4Addr {
        Ipv4Addr::new(128, 95, 1, 101)
    }

    fn gw_b() -> Ipv4Addr {
        Ipv4Addr::new(128, 95, 1, 102)
    }

    fn table() -> EncapTable {
        EncapTable::new(SimDuration::from_secs(20))
    }

    const TTL: SimDuration = SimDuration::from_secs(25);

    #[test]
    fn lpm_prefers_the_longer_prefix() {
        let mut t = table();
        t.add_static(Prefix::new(Ipv4Addr::new(44, 0, 0, 0), 8), gw_a(), 5);
        t.learn(SimTime::ZERO, east(), gw_b(), 1, TTL);
        assert_eq!(t.lookup(Ipv4Addr::new(44, 56, 9, 9)), Some(gw_b()));
        assert_eq!(t.lookup(Ipv4Addr::new(44, 24, 0, 5)), Some(gw_a()));
        assert_eq!(t.entries()[0].hits + t.entries()[1].hits, 2);
        assert_eq!(t.stats().hits, 2);
    }

    #[test]
    fn refresh_extends_and_update_replaces() {
        let mut t = table();
        assert_eq!(
            t.learn(SimTime::ZERO, east(), gw_a(), 2, TTL),
            LearnOutcome::New
        );
        let later = SimTime::from_secs(10);
        assert_eq!(
            t.learn(later, east(), gw_a(), 2, TTL),
            LearnOutcome::Refreshed
        );
        assert_eq!(t.entries()[0].expires_at, Some(later.saturating_add(TTL)));
        // A worse metric from elsewhere is ignored; a better one replaces.
        assert_eq!(t.learn(later, east(), gw_b(), 3, TTL), LearnOutcome::Worse);
        assert_eq!(t.entries()[0].endpoint, gw_a());
        assert_eq!(
            t.learn(later, east(), gw_b(), 1, TTL),
            LearnOutcome::Updated
        );
        assert_eq!(t.entries()[0].endpoint, gw_b());
    }

    #[test]
    fn expiry_enters_holddown_then_reopens() {
        let mut t = table();
        t.learn(SimTime::ZERO, east(), gw_a(), 1, TTL);
        assert_eq!(t.next_deadline(), Some(SimTime::from_secs(25)));

        let dead = t.expire(SimTime::from_secs(25));
        assert_eq!(dead.len(), 1);
        assert!(t.entries().is_empty());
        assert!(t.in_holddown(east(), SimTime::from_secs(30)));
        assert_eq!(t.lookup(Ipv4Addr::new(44, 56, 0, 5)), None);

        // Re-learn inside the hold-down window (25s + 20s) is rejected...
        assert_eq!(
            t.learn(SimTime::from_secs(40), east(), gw_a(), 1, TTL),
            LearnOutcome::HeldDown
        );
        assert_eq!(t.stats().holddown_rejects, 1);
        // ...and accepted after it ends.
        assert_eq!(
            t.learn(SimTime::from_secs(46), east(), gw_a(), 1, TTL),
            LearnOutcome::New
        );
    }

    #[test]
    fn static_entries_never_expire_or_yield_to_announcements() {
        let mut t = table();
        t.add_static(east(), gw_a(), 5);
        assert_eq!(
            t.learn(SimTime::ZERO, east(), gw_b(), 0, TTL),
            LearnOutcome::Worse
        );
        assert_eq!(t.next_deadline(), None);
        assert!(t.expire(SimTime::MAX).is_empty());
        assert_eq!(t.entries()[0].endpoint, gw_a());
    }

    #[test]
    fn shared_handle_serves_as_tunnel_map() {
        let shared = SharedEncapTable::new(table());
        shared.with(|t| {
            t.learn(SimTime::ZERO, east(), gw_a(), 1, TTL);
        });
        let mut map: Box<dyn TunnelMap> = Box::new(shared.clone());
        assert_eq!(map.endpoint(Ipv4Addr::new(44, 56, 1, 2)), Some(gw_a()));
        assert_eq!(map.endpoint(Ipv4Addr::new(10, 0, 0, 1)), None);
        assert_eq!(shared.stats().hits, 1);
        assert_eq!(shared.stats().misses, 1);
    }
}
