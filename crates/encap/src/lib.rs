//! AMPRnet multi-gateway subsystem: IPIP encapsulation + RIP44-style
//! route exchange.
//!
//! §4.2 of the paper complains that the Internet sees amateur packet radio
//! as *one* class-A network (44.0.0.0/8), so every 44.x packet funnels
//! through a single gateway and crosses the country twice. The fix the
//! AMPRnet community deployed is reproduced here:
//!
//! * [`ipip`] — IP-in-IP (protocol 4) encapsulation. A gateway that knows
//!   the subnet of the final destination wraps the packet in an outer IPv4
//!   header addressed to the *nearest* gateway, which unwraps and delivers
//!   over RF. The fast paths ([`ipip::encap_in_place`],
//!   [`ipip::decap_in_place`]) work on pooled [`sim::PacketBuf`]s with
//!   headroom so the datapath stays zero-allocation.
//! * [`table`] — the encap table mapping 44/8 subnets to tunnel endpoints,
//!   with per-entry hit counters, expiry deadlines, and hold-down so a
//!   flapping gateway degrades gracefully. [`SharedEncapTable`] plugs it
//!   into [`netstack::stack::NetStack`] as its
//!   [`TunnelMap`](netstack::stack::TunnelMap).
//! * [`rip`] — the RIP44-style announcement wire format (UDP broadcasts of
//!   subnet routes) and the jittered announce/trigger timer state machine
//!   that drives it from the deadline scheduler.
//!
//! The gateway-side service that binds these to hosts lives in
//! `gateway::ripd`; this crate is pure protocol + table logic, sans-io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ipip;
pub mod rip;
pub mod table;

pub use ipip::{decap_in_place, encap_in_place, Ipip, IpipError};
pub use rip::{Announcer, RipEntry, RipUpdate, RIP44_PORT};
pub use table::{EncapEntry, EncapStats, EncapTable, LearnOutcome, SharedEncapTable};
