//! IP-in-IP (protocol 4) encapsulation.
//!
//! The outer header is a plain 20-octet IPv4 header with protocol 4 whose
//! payload is a complete inner IP datagram. Two surfaces are provided:
//!
//! * [`Ipip`] — an owned codec implementing [`sim::wire::Codec`], used by
//!   tests and anything off the hot path;
//! * [`encap_in_place`] / [`decap_in_place`] — the gateway fast paths,
//!   which wrap and unwrap a pooled [`PacketBuf`] without copying the
//!   inner datagram: encapsulation prepends into headroom, decapsulation
//!   advances past the outer header.
//!
//! Decoding is strict: short buffers, wrong IP version, options (IHL ≠ 5),
//! inconsistent total length, bad header checksum, and non-IPIP protocol
//! numbers are all rejected with a specific [`IpipError`] so a corrupted
//! tunnel packet can never smuggle bytes into the inner stack.

use std::fmt;
use std::net::Ipv4Addr;

use netstack::ip;
use sim::wire::{internet_checksum, Codec, Reader};
use sim::{ByteSink, PacketBuf};

/// Length of the outer header prepended by encapsulation.
pub const OUTER_HEADER_LEN: usize = 20;

/// Default TTL stamped on outer headers by the gateways.
pub const OUTER_TTL: u8 = 64;

/// Why a buffer failed to parse as an IPIP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpipError {
    /// Fewer than 20 octets, or fewer than the total-length field claims.
    Truncated,
    /// Outer version nibble is not 4.
    BadVersion,
    /// Outer header carries options (IHL ≠ 5); the tunnel never emits them.
    BadIhl,
    /// Total-length field disagrees with the buffer length.
    BadLength,
    /// Outer header checksum did not verify.
    BadChecksum,
    /// Outer protocol is not 4 (IPIP).
    NotIpip,
}

impl fmt::Display for IpipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpipError::Truncated => write!(f, "truncated outer header"),
            IpipError::BadVersion => write!(f, "outer version is not 4"),
            IpipError::BadIhl => write!(f, "outer header has options"),
            IpipError::BadLength => write!(f, "outer total length mismatch"),
            IpipError::BadChecksum => write!(f, "outer header checksum failed"),
            IpipError::NotIpip => write!(f, "outer protocol is not IPIP"),
        }
    }
}

impl std::error::Error for IpipError {}

/// The fields of a validated outer header, returned by decapsulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OuterHeader {
    /// Encapsulating gateway (outer source).
    pub src: Ipv4Addr,
    /// Tunnel endpoint (outer destination).
    pub dst: Ipv4Addr,
    /// Outer time-to-live as received.
    pub ttl: u8,
}

/// An IPIP packet: outer addressing plus the complete inner datagram.
///
/// # Examples
///
/// ```
/// use encap::ipip::Ipip;
/// use sim::wire::Codec;
/// use std::net::Ipv4Addr;
///
/// let p = Ipip::new(
///     Ipv4Addr::new(128, 95, 1, 100),
///     Ipv4Addr::new(128, 95, 1, 101),
///     vec![0xAA; 40],
/// );
/// let bytes = p.encode();
/// assert_eq!(Ipip::decode(&bytes).unwrap(), p);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipip {
    /// Encapsulating gateway (outer source).
    pub src: Ipv4Addr,
    /// Tunnel endpoint (outer destination).
    pub dst: Ipv4Addr,
    /// Outer time-to-live.
    pub ttl: u8,
    /// The complete inner IP datagram, carried opaquely.
    pub inner: Vec<u8>,
}

impl Ipip {
    /// Creates a packet with the default outer TTL.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, inner: Vec<u8>) -> Ipip {
        Ipip {
            src,
            dst,
            ttl: OUTER_TTL,
            inner,
        }
    }
}

/// Fills `hdr` with a checksummed outer header for `inner_len` payload
/// octets.
fn build_outer(
    hdr: &mut [u8; OUTER_HEADER_LEN],
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ttl: u8,
    inner_len: usize,
) {
    let total = (OUTER_HEADER_LEN + inner_len) as u16;
    hdr[0] = 0x45; // version 4, IHL 5
    hdr[1] = 0; // TOS
    hdr[2..4].copy_from_slice(&total.to_be_bytes());
    hdr[4..8].copy_from_slice(&[0, 0, 0, 0]); // id 0, flags/frag 0
    hdr[8] = ttl;
    hdr[9] = ip::IPIP;
    hdr[10..12].copy_from_slice(&[0, 0]); // checksum placeholder
    hdr[12..16].copy_from_slice(&src.octets());
    hdr[16..20].copy_from_slice(&dst.octets());
    let sum = internet_checksum(&[&hdr[..]]);
    hdr[10..12].copy_from_slice(&sum.to_be_bytes());
}

/// Validates the outer header at the front of `bytes`.
fn check_outer(bytes: &[u8]) -> Result<OuterHeader, IpipError> {
    if bytes.len() < OUTER_HEADER_LEN {
        return Err(IpipError::Truncated);
    }
    let mut r = Reader::new(bytes);
    let ver_ihl = r.u8().expect("length checked");
    if ver_ihl >> 4 != 4 {
        return Err(IpipError::BadVersion);
    }
    if ver_ihl & 0x0F != 5 {
        return Err(IpipError::BadIhl);
    }
    r.skip(1).expect("length checked"); // TOS
    let total_len = r.u16().expect("length checked");
    if usize::from(total_len) != bytes.len() {
        return Err(IpipError::BadLength);
    }
    r.skip(4).expect("length checked"); // id, flags/frag
    let ttl = r.u8().expect("length checked");
    let proto = r.u8().expect("length checked");
    r.skip(2).expect("length checked"); // checksum (verified over the whole)
    let src = Ipv4Addr::from(r.u32().expect("length checked"));
    let dst = Ipv4Addr::from(r.u32().expect("length checked"));
    if internet_checksum(&[&bytes[..OUTER_HEADER_LEN]]) != 0 {
        return Err(IpipError::BadChecksum);
    }
    if proto != ip::IPIP {
        return Err(IpipError::NotIpip);
    }
    Ok(OuterHeader { src, dst, ttl })
}

impl Codec for Ipip {
    type Error = IpipError;

    fn encode_into(&self, out: &mut impl ByteSink) {
        let mut hdr = [0u8; OUTER_HEADER_LEN];
        build_outer(&mut hdr, self.src, self.dst, self.ttl, self.inner.len());
        out.put_slice(&hdr);
        out.put_slice(&self.inner);
    }

    fn decode(bytes: &[u8]) -> Result<Ipip, IpipError> {
        let outer = check_outer(bytes)?;
        Ok(Ipip {
            src: outer.src,
            dst: outer.dst,
            ttl: outer.ttl,
            inner: bytes[OUTER_HEADER_LEN..].to_vec(),
        })
    }
}

/// Wraps the datagram in `buf` with an outer IPIP header, in place.
///
/// The 20-octet header lands in the buffer's headroom (lease with
/// `take_with_headroom(OUTER_HEADER_LEN)` and this never copies the
/// payload); without headroom [`PacketBuf::prepend`] shifts once.
pub fn encap_in_place(buf: &mut PacketBuf, src: Ipv4Addr, dst: Ipv4Addr, ttl: u8) {
    let mut hdr = [0u8; OUTER_HEADER_LEN];
    build_outer(&mut hdr, src, dst, ttl, buf.len());
    buf.prepend(&hdr);
}

/// Validates and strips the outer IPIP header from `buf`, in place.
///
/// On success the buffer's live bytes are exactly the inner datagram (no
/// copy — the start index advances past the header) and the outer
/// addressing is returned. On error the buffer is untouched.
pub fn decap_in_place(buf: &mut PacketBuf) -> Result<OuterHeader, IpipError> {
    let outer = check_outer(buf.as_slice())?;
    buf.advance(OUTER_HEADER_LEN);
    Ok(outer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::BufPool;

    fn sample() -> Ipip {
        Ipip::new(
            Ipv4Addr::new(128, 95, 1, 100),
            Ipv4Addr::new(128, 95, 1, 101),
            b"inner datagram bytes".to_vec(),
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), OUTER_HEADER_LEN + p.inner.len());
        assert_eq!(Ipip::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn outer_is_a_valid_ipv4_header() {
        // The outer header must parse as ordinary IPv4 so the tunnel
        // traverses unmodified routers (and our own NetStack).
        let bytes = sample().encode();
        let outer = netstack::ip::Ipv4Packet::decode(&bytes).unwrap();
        assert_eq!(outer.proto, netstack::ip::Proto::Other(ip::IPIP));
        assert_eq!(outer.payload, sample().inner);
    }

    #[test]
    fn truncated_inputs_are_rejected() {
        let bytes = sample().encode();
        for n in 0..OUTER_HEADER_LEN {
            assert_eq!(Ipip::decode(&bytes[..n]), Err(IpipError::Truncated));
        }
        // Losing tail bytes breaks the total-length invariant.
        assert_eq!(
            Ipip::decode(&bytes[..bytes.len() - 1]),
            Err(IpipError::BadLength)
        );
    }

    #[test]
    fn wrong_protocol_is_rejected() {
        let mut bytes = sample().encode();
        bytes[9] = 17; // claim UDP; refresh the checksum so only proto is wrong
        bytes[10] = 0;
        bytes[11] = 0;
        let sum = internet_checksum(&[&bytes[..OUTER_HEADER_LEN]]);
        bytes[10..12].copy_from_slice(&sum.to_be_bytes());
        assert_eq!(Ipip::decode(&bytes), Err(IpipError::NotIpip));
    }

    #[test]
    fn in_place_encap_uses_headroom_and_matches_codec() {
        let pool = BufPool::new(256);
        let mut buf = pool.take_with_headroom(OUTER_HEADER_LEN);
        buf.extend_from_slice(&sample().inner);
        encap_in_place(&mut buf, sample().src, sample().dst, OUTER_TTL);
        assert_eq!(buf.headroom(), 0); // header fit exactly, no shift
        assert_eq!(buf.as_slice(), sample().encode().as_slice());
    }

    #[test]
    fn in_place_decap_strips_without_copying() {
        let pool = BufPool::new(256);
        let mut buf = pool.take();
        buf.extend_from_slice(&sample().encode());
        let outer = decap_in_place(&mut buf).unwrap();
        assert_eq!(outer.src, sample().src);
        assert_eq!(outer.dst, sample().dst);
        assert_eq!(buf.as_slice(), sample().inner.as_slice());
    }

    #[test]
    fn failed_decap_leaves_buffer_untouched() {
        let mut bytes = sample().encode();
        bytes[0] = 0x65; // version 6
        let mut buf = PacketBuf::from(bytes.clone());
        assert_eq!(decap_in_place(&mut buf), Err(IpipError::BadVersion));
        assert_eq!(buf.as_slice(), bytes.as_slice());
    }
}
