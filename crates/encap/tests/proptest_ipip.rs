//! Property tests for the IPIP codec and the in-place fast paths.

use encap::ipip::{decap_in_place, encap_in_place, Ipip, OUTER_HEADER_LEN};
use proptest::prelude::*;
use sim::wire::Codec;
use sim::BufPool;
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

prop_compose! {
    fn arb_ipip()(
        src in arb_ip(),
        dst in arb_ip(),
        ttl in 1u8..=255,
        inner in proptest::collection::vec(any::<u8>(), 0..1500),
    ) -> Ipip {
        Ipip { src, dst, ttl, inner }
    }
}

proptest! {
    /// encap ∘ decap ≡ id, through the owned codec.
    #[test]
    fn codec_roundtrip(p in arb_ipip()) {
        prop_assert_eq!(Ipip::decode(&p.encode()).unwrap(), p);
    }

    /// The pooled in-place fast paths agree byte-for-byte with the codec
    /// and restore the original payload.
    #[test]
    fn in_place_matches_codec_and_roundtrips(p in arb_ipip()) {
        let pool = BufPool::new(2048);
        let mut buf = pool.take_with_headroom(OUTER_HEADER_LEN);
        buf.extend_from_slice(&p.inner);
        encap_in_place(&mut buf, p.src, p.dst, p.ttl);
        let encoded = p.encode();
        prop_assert_eq!(buf.as_slice(), encoded.as_slice());
        let outer = decap_in_place(&mut buf).unwrap();
        prop_assert_eq!(outer.src, p.src);
        prop_assert_eq!(outer.dst, p.dst);
        prop_assert_eq!(outer.ttl, p.ttl);
        prop_assert_eq!(buf.as_slice(), p.inner.as_slice());
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        let _ = Ipip::decode(&bytes);
    }

    /// Truncating an encoded packet anywhere is always rejected.
    #[test]
    fn truncation_is_always_rejected(p in arb_ipip(), cut in any::<proptest::sample::Index>()) {
        let bytes = p.encode();
        let n = cut.index(bytes.len());
        prop_assert!(Ipip::decode(&bytes[..n]).is_err());
    }

    /// Any single-byte corruption of the outer header is rejected (the
    /// ones-complement checksum catches every single-octet change, and the
    /// version/IHL/length checks catch the fields it covers twice).
    #[test]
    fn corrupt_outer_header_is_always_rejected(
        p in arb_ipip(),
        idx in any::<proptest::sample::Index>(),
        delta in 1u8..=255,
    ) {
        let good = p.encode();
        let i = idx.index(OUTER_HEADER_LEN);
        let mut bad = good.clone();
        bad[i] = bad[i].wrapping_add(delta);
        prop_assert!(Ipip::decode(&bad).is_err());
        let mut buf = sim::PacketBuf::from(bad.clone());
        prop_assert!(decap_in_place(&mut buf).is_err());
        prop_assert_eq!(buf.as_slice(), bad.as_slice());
    }
}
