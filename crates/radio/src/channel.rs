//! The shared radio channel.
//!
//! Model: a transmission occupies the medium from its start until its end
//! (key-up delay + serialization + tail). Every station the sender can
//! reach hears it. A receiver's copy is **corrupted** when
//!
//! * any other transmission it can hear overlapped the frame in time
//!   (a collision at that receiver — hidden terminals collide at the
//!   victim even when the senders cannot hear each other), or
//! * the receiver itself transmitted during the frame (half duplex), or
//! * injected bit errors hit the frame (probability per octet).
//!
//! Corrupted copies are still delivered, flagged, so the TNC model can
//! count FCS failures exactly where real hardware does.

use sim::{Bandwidth, SimDuration, SimRng, SimTime};

/// Identifies a station attached to a [`Channel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StationId(pub usize);

/// One frame heard by one station.
#[derive(Debug, Clone)]
pub struct Reception {
    /// The hearing station.
    pub to: StationId,
    /// The transmitting station.
    pub from: StationId,
    /// The on-air bytes (AX.25 frame + FCS).
    pub data: Vec<u8>,
    /// True if a collision, self-transmission overlap, or bit error
    /// damaged this copy.
    pub corrupted: bool,
    /// When the frame finished arriving.
    pub at: SimTime,
}

#[derive(Debug)]
struct Tx {
    from: StationId,
    start: SimTime,
    end: SimTime,
    data: Vec<u8>,
    delivered: bool,
}

/// Channel-wide statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelStats {
    /// Transmissions started.
    pub transmissions: u64,
    /// Total airtime of all transmissions (sum, not union).
    pub airtime_ns: u64,
    /// Airtime during which the medium carried at least one transmission
    /// (union of intervals — never exceeds wall-clock span).
    pub occupied_ns: u64,
    /// Receptions delivered corrupted.
    pub corrupted_receptions: u64,
    /// Receptions delivered clean.
    pub clean_receptions: u64,
}

/// A shared half-duplex radio channel.
///
/// # Examples
///
/// ```
/// use radio::channel::Channel;
/// use sim::{Bandwidth, SimDuration, SimTime};
///
/// let mut ch = Channel::new(Bandwidth::RADIO_1200);
/// let a = ch.add_station();
/// let b = ch.add_station();
/// ch.transmit(SimTime::ZERO, a, vec![0u8; 30], SimDuration::ZERO);
/// let t = ch.next_deadline().unwrap();
/// let rx = ch.advance(t);
/// assert_eq!(rx.len(), 1);
/// assert_eq!(rx[0].to, b);
/// assert!(!rx[0].corrupted);
/// ```
#[derive(Debug)]
pub struct Channel {
    rate: Bandwidth,
    /// `hears[listener][speaker]`.
    hears: Vec<Vec<bool>>,
    txs: Vec<Tx>,
    byte_error_rate: f64,
    noise: Option<SimRng>,
    /// How long after key-up other stations can sense the carrier. This
    /// is the collision window of p-persistent CSMA: a real 1200-baud
    /// AFSK data-carrier-detect needs tens of milliseconds to assert, so
    /// two stations that decide to transmit within this window collide.
    detect_delay: SimDuration,
    stats: ChannelStats,
    /// Latest transmission end seen so far; the occupied-airtime union
    /// accrues only past this horizon, so overlapping transmissions are
    /// not double-counted.
    busy_horizon: SimTime,
}

impl Channel {
    /// Default carrier-detect time (AFSK DCD assert at 1200 baud).
    pub const DEFAULT_DETECT_DELAY: SimDuration = SimDuration::from_millis(30);

    /// Creates a channel at `rate` where every station hears every other.
    pub fn new(rate: Bandwidth) -> Channel {
        Channel {
            rate,
            hears: Vec::new(),
            txs: Vec::new(),
            byte_error_rate: 0.0,
            noise: None,
            detect_delay: Self::DEFAULT_DETECT_DELAY,
            stats: ChannelStats::default(),
            busy_horizon: SimTime::ZERO,
        }
    }

    /// Overrides the carrier-detect delay (zero = ideal carrier sense).
    pub fn with_detect_delay(mut self, d: SimDuration) -> Channel {
        self.detect_delay = d;
        self
    }

    /// Enables random corruption: each delivered copy is independently
    /// corrupted with probability `1 - (1-rate)^len`.
    pub fn with_byte_errors(mut self, rate: f64, rng: SimRng) -> Channel {
        self.byte_error_rate = rate;
        self.noise = Some(rng);
        self
    }

    /// The channel bit rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Attaches a new station; it hears (and is heard by) everyone until
    /// [`Channel::set_hears`] says otherwise.
    pub fn add_station(&mut self) -> StationId {
        let n = self.hears.len();
        for row in &mut self.hears {
            row.push(true);
        }
        let mut row = vec![true; n + 1];
        row[n] = false; // A station does not hear itself.
        self.hears.push(row);
        StationId(n)
    }

    /// Number of attached stations.
    pub fn station_count(&self) -> usize {
        self.hears.len()
    }

    /// Sets whether `listener` can hear `speaker` (asymmetric links are
    /// allowed; self-hearing is ignored).
    pub fn set_hears(&mut self, listener: StationId, speaker: StationId, hears: bool) {
        if listener != speaker {
            self.hears[listener.0][speaker.0] = hears;
        }
    }

    /// True if `listener` currently senses carrier: its own transmission
    /// (known instantly), or another audible station's transmission that
    /// has been keyed at least [`Channel::DEFAULT_DETECT_DELAY`] (the DCD
    /// assert time — transmissions younger than that are invisible, which
    /// is CSMA's collision window).
    pub fn carrier_busy(&self, now: SimTime, listener: StationId) -> bool {
        self.txs.iter().any(|tx| {
            if tx.delivered || now >= tx.end {
                return false;
            }
            if tx.from == listener {
                return tx.start <= now;
            }
            self.hears[listener.0][tx.from.0] && tx.start + self.detect_delay <= now
        })
    }

    /// True if `station` has a transmission in progress at `now`.
    pub fn is_transmitting(&self, now: SimTime, station: StationId) -> bool {
        self.txs
            .iter()
            .any(|tx| !tx.delivered && tx.from == station && tx.start <= now && now < tx.end)
    }

    /// Starts a transmission of `data` from `from`, occupying the channel
    /// for `overhead` (key-up + tail) plus the serialization time of the
    /// data; returns the completion time.
    pub fn transmit(
        &mut self,
        now: SimTime,
        from: StationId,
        data: Vec<u8>,
        overhead: SimDuration,
    ) -> SimTime {
        let dur = self.rate.time_for_bytes(data.len()) + overhead;
        let end = now + dur;
        self.stats.transmissions += 1;
        self.stats.airtime_ns += dur.as_nanos();
        // Union of busy intervals: transmissions start at the current
        // clock, so the interval [max(now, horizon), end) is new coverage.
        let covered_from = now.max(self.busy_horizon);
        if end > covered_from {
            self.stats.occupied_ns += (end - covered_from).as_nanos();
            self.busy_horizon = end;
        }
        self.txs.push(Tx {
            from,
            start: now,
            end,
            data,
            delivered: false,
        });
        end
    }

    /// Earliest in-flight transmission end, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.txs
            .iter()
            .filter(|t| !t.delivered)
            .map(|t| t.end)
            .min()
    }

    /// Completes every transmission ending at or before `now`, producing
    /// one [`Reception`] per station in range.
    pub fn advance(&mut self, now: SimTime) -> Vec<Reception> {
        let mut out = Vec::new();
        // Indices of txs completing this call, in end order (stable for
        // determinism).
        let mut done: Vec<usize> = self
            .txs
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.delivered && t.end <= now)
            .map(|(i, _)| i)
            .collect();
        done.sort_by_key(|&i| (self.txs[i].end, i));
        for i in done {
            let (from, start, end) = {
                let t = &self.txs[i];
                (t.from, t.start, t.end)
            };
            for listener in 0..self.hears.len() {
                let lid = StationId(listener);
                if lid == from || !self.hears[listener][from.0] {
                    continue;
                }
                // Collision at this listener: any *other* transmission it
                // hears (or its own) overlapping [start, end).
                let collided = self.txs.iter().enumerate().any(|(j, other)| {
                    j != i
                        && other.start < end
                        && other.end > start
                        && (other.from == lid || self.hears[listener][other.from.0])
                });
                let data = self.txs[i].data.clone();
                let bit_error = match (&mut self.noise, self.byte_error_rate) {
                    (Some(rng), rate) if rate > 0.0 => {
                        let p_clean = (1.0 - rate).powi(data.len() as i32);
                        !rng.chance(p_clean)
                    }
                    _ => false,
                };
                let corrupted = collided || bit_error;
                if corrupted {
                    self.stats.corrupted_receptions += 1;
                } else {
                    self.stats.clean_receptions += 1;
                }
                out.push(Reception {
                    to: lid,
                    from,
                    data,
                    corrupted,
                    at: end,
                });
            }
            self.txs[i].delivered = true;
        }
        self.prune(now);
        out
    }

    /// Drops delivered transmissions that can no longer affect collision
    /// decisions (everything ending before the earliest undelivered start,
    /// or everything if the channel is idle).
    fn prune(&mut self, _now: SimTime) {
        let earliest_active = self
            .txs
            .iter()
            .filter(|t| !t.delivered)
            .map(|t| t.start)
            .min();
        match earliest_active {
            None => self.txs.clear(),
            Some(cutoff) => self.txs.retain(|t| !t.delivered || t.end > cutoff),
        }
    }

    /// Channel statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Fraction of the interval `[SimTime::ZERO, now]` spent transmitting
    /// (sum of airtime; can exceed 1.0 under heavy collisions). This is
    /// **offered load**, not utilization — see [`Channel::utilization`].
    pub fn offered_utilization(&self, now: SimTime) -> f64 {
        let span = now.as_nanos();
        if span == 0 {
            0.0
        } else {
            self.stats.airtime_ns as f64 / span as f64
        }
    }

    /// Fraction of the interval `[SimTime::ZERO, now]` during which the
    /// medium actually carried at least one transmission (union of busy
    /// intervals, clamped to 1.0 — overlap is not double-counted).
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_nanos();
        if span == 0 {
            0.0
        } else {
            (self.stats.occupied_ns as f64 / span as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> Channel {
        Channel::new(Bandwidth::RADIO_1200)
    }

    #[test]
    fn lone_transmission_is_clean_and_timed() {
        let mut c = ch();
        let a = c.add_station();
        let b = c.add_station();
        let _ = a;
        // 150 bytes at 1200 bit/s = 1s, plus 250ms overhead.
        let end = c.transmit(
            SimTime::ZERO,
            StationId(0),
            vec![0; 150],
            SimDuration::from_millis(250),
        );
        assert_eq!(end, SimTime::from_millis(1250));
        assert!(c.advance(end - SimDuration::from_nanos(1)).is_empty());
        let rx = c.advance(end);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].to, b);
        assert!(!rx[0].corrupted);
        assert_eq!(rx[0].at, end);
    }

    #[test]
    fn all_stations_in_range_hear() {
        let mut c = ch();
        let a = c.add_station();
        let _b = c.add_station();
        let _d = c.add_station();
        let end = c.transmit(SimTime::ZERO, a, vec![0; 10], SimDuration::ZERO);
        let rx = c.advance(end);
        assert_eq!(rx.len(), 2);
        assert!(rx.iter().all(|r| r.to != a));
    }

    #[test]
    fn overlapping_transmissions_collide() {
        let mut c = ch();
        let a = c.add_station();
        let b = c.add_station();
        let victim = c.add_station();
        let end_a = c.transmit(SimTime::ZERO, a, vec![0; 100], SimDuration::ZERO);
        let _end_b = c.transmit(
            SimTime::from_millis(100),
            b,
            vec![0; 100],
            SimDuration::ZERO,
        );
        let rx = c.advance(end_a);
        let to_victim: Vec<_> = rx.iter().filter(|r| r.to == victim).collect();
        assert!(!to_victim.is_empty());
        assert!(to_victim.iter().all(|r| r.corrupted));
    }

    #[test]
    fn sequential_transmissions_do_not_collide() {
        let mut c = ch();
        let a = c.add_station();
        let b = c.add_station();
        let end_a = c.transmit(SimTime::ZERO, a, vec![1; 10], SimDuration::ZERO);
        let rx1 = c.advance(end_a);
        assert!(rx1.iter().all(|r| !r.corrupted));
        let end_b = c.transmit(end_a, b, vec![2; 10], SimDuration::ZERO);
        let rx2 = c.advance(end_b);
        assert!(rx2.iter().all(|r| !r.corrupted));
    }

    #[test]
    fn hidden_terminal_collides_at_victim_only() {
        let mut c = ch();
        let a = c.add_station();
        let b = c.add_station();
        let victim = c.add_station();
        let far = c.add_station();
        // a and b cannot hear each other; victim hears both; far hears only b.
        c.set_hears(a, b, false);
        c.set_hears(b, a, false);
        c.set_hears(far, a, false);
        let end = c.transmit(SimTime::ZERO, a, vec![0; 100], SimDuration::ZERO);
        c.transmit(SimTime::from_millis(10), b, vec![0; 100], SimDuration::ZERO);
        let rx = c.advance(end + SimDuration::from_secs(2));
        let at_victim: Vec<_> = rx.iter().filter(|r| r.to == victim).collect();
        assert_eq!(at_victim.len(), 2);
        assert!(at_victim.iter().all(|r| r.corrupted), "victim loses both");
        // far only hears b's frame, uncorrupted (it cannot hear a).
        let at_far: Vec<_> = rx.iter().filter(|r| r.to == far).collect();
        assert_eq!(at_far.len(), 1);
        assert!(!at_far[0].corrupted);
    }

    #[test]
    fn half_duplex_receiver_loses_frame_while_transmitting() {
        let mut c = ch();
        let a = c.add_station();
        let b = c.add_station();
        // Make them mutually deaf so carrier sense would not have stopped
        // b from transmitting — but b still cannot receive while keyed.
        c.set_hears(a, b, false);
        c.set_hears(b, a, false);
        let third = c.add_station();
        let _ = third;
        let end_a = c.transmit(SimTime::ZERO, a, vec![0; 100], SimDuration::ZERO);
        c.transmit(SimTime::from_millis(1), b, vec![0; 200], SimDuration::ZERO);
        let rx = c.advance(end_a + SimDuration::from_secs(3));
        // b cannot hear a at all (deaf), so look at third instead; but the
        // self-tx rule is what we check for... make b hear a again:
        let mut c2 = ch();
        let a2 = c2.add_station();
        let b2 = c2.add_station();
        c2.set_hears(a2, b2, false); // a deaf to b so no collision at a
        let end = c2.transmit(SimTime::ZERO, a2, vec![0; 100], SimDuration::ZERO);
        c2.transmit(SimTime::from_millis(1), b2, vec![0; 10], SimDuration::ZERO);
        let rx2 = c2.advance(end + SimDuration::from_secs(2));
        let b_copy = rx2.iter().find(|r| r.to == b2 && r.from == a2).unwrap();
        assert!(b_copy.corrupted, "b was transmitting during a's frame");
        let _ = rx;
    }

    #[test]
    fn carrier_sense_tracks_activity_and_hearing() {
        let mut c = ch();
        let a = c.add_station();
        let b = c.add_station();
        let deaf = c.add_station();
        c.set_hears(deaf, a, false);
        assert!(!c.carrier_busy(SimTime::ZERO, b));
        let end = c.transmit(SimTime::ZERO, a, vec![0; 100], SimDuration::ZERO);
        let mid = SimTime::from_millis(100);
        assert!(c.carrier_busy(mid, b));
        assert!(c.carrier_busy(mid, a), "own transmission counts");
        assert!(!c.carrier_busy(mid, deaf), "deaf station senses idle");
        assert!(!c.carrier_busy(end, b), "end instant is idle");
        assert!(c.is_transmitting(mid, a));
        assert!(!c.is_transmitting(mid, b));
    }

    #[test]
    fn byte_errors_corrupt_roughly_expected_fraction() {
        let mut c = Channel::new(Bandwidth::bps(1_000_000_000))
            .with_byte_errors(0.001, SimRng::seed_from(3));
        let a = c.add_station();
        let _b = c.add_station();
        let mut corrupted = 0;
        let mut now = SimTime::ZERO;
        let n = 2000;
        for _ in 0..n {
            let end = c.transmit(now, a, vec![0; 100], SimDuration::ZERO);
            let rx = c.advance(end);
            corrupted += rx.iter().filter(|r| r.corrupted).count();
            now = end;
        }
        // P(corrupt) = 1 - 0.999^100 ≈ 0.095.
        let frac = corrupted as f64 / n as f64;
        assert!((frac - 0.095).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn stats_and_utilization() {
        let mut c = ch();
        let a = c.add_station();
        let _b = c.add_station();
        let end = c.transmit(SimTime::ZERO, a, vec![0; 150], SimDuration::ZERO);
        c.advance(end);
        assert_eq!(c.stats().transmissions, 1);
        assert_eq!(c.stats().clean_receptions, 1);
        // 1s of airtime over a 2s window = 0.5.
        let u = c.offered_utilization(SimTime::from_secs(2));
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn occupied_airtime_is_a_union_and_utilization_is_clamped() {
        let mut c = ch();
        let a = c.add_station();
        let b = c.add_station();
        let _v = c.add_station();
        // Two fully-overlapping 1s transmissions: offered load counts 2s,
        // occupied airtime counts 1s.
        c.transmit(SimTime::ZERO, a, vec![0; 150], SimDuration::ZERO);
        let end = c.transmit(SimTime::ZERO, b, vec![0; 150], SimDuration::ZERO);
        c.advance(end);
        assert_eq!(c.stats().airtime_ns, 2_000_000_000);
        assert_eq!(c.stats().occupied_ns, 1_000_000_000);
        let span = SimTime::from_secs(1);
        assert!(c.offered_utilization(span) > 1.9);
        assert!((c.utilization(span) - 1.0).abs() < 1e-9, "clamped at 1.0");
        // A later partially-overlapping tx only accrues the new tail.
        let start2 = SimTime::from_millis(500);
        let mut c2 = ch();
        let a2 = c2.add_station();
        let _b2 = c2.add_station();
        c2.transmit(SimTime::ZERO, a2, vec![0; 150], SimDuration::ZERO);
        c2.transmit(start2, a2, vec![0; 150], SimDuration::ZERO);
        assert_eq!(c2.stats().occupied_ns, 1_500_000_000);
    }

    #[test]
    fn prune_keeps_memory_bounded() {
        let mut c = ch();
        let a = c.add_station();
        let _b = c.add_station();
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            let end = c.transmit(now, a, vec![0; 10], SimDuration::ZERO);
            c.advance(end);
            now = end;
        }
        assert!(
            c.txs.len() <= 2,
            "delivered txs pruned, got {}",
            c.txs.len()
        );
    }
}
