//! The p-persistent CSMA transmit discipline of a KISS TNC.
//!
//! The KISS parameters (§2.1's downloaded TNC code) govern when a queued
//! frame goes on the air: wait for a clear channel, then with probability
//! `p` transmit immediately, otherwise back off one slot and try again.
//! TXDELAY keys the transmitter up before data, TXTAIL holds it after.

use std::collections::VecDeque;

use sim::{SimDuration, SimRng, SimTime};

use crate::channel::{Channel, StationId};

/// KISS MAC parameters, in native units (the KISS wire encoding's 10 ms
/// units are converted by the TNC command handler).
#[derive(Debug, Clone, Copy)]
pub struct MacConfig {
    /// Transmitter key-up delay before data.
    pub tx_delay: SimDuration,
    /// Transmitter hold time after data.
    pub tx_tail: SimDuration,
    /// Persistence probability in `[0, 1]`.
    pub persistence: f64,
    /// Backoff slot length.
    pub slot_time: SimDuration,
    /// Full-duplex: transmit without carrier sense.
    pub full_duplex: bool,
}

impl Default for MacConfig {
    fn default() -> Self {
        // KISS defaults: TXDELAY 50 (500 ms is the spec default; 300 ms is
        // a common tuned value), P=63 (0.25), SlotTime 10 (100 ms).
        MacConfig {
            tx_delay: SimDuration::from_millis(300),
            tx_tail: SimDuration::from_millis(20),
            persistence: 0.25,
            slot_time: SimDuration::from_millis(100),
            full_duplex: false,
        }
    }
}

impl MacConfig {
    /// Total per-frame keying overhead (TXDELAY + TXTAIL).
    pub fn overhead(&self) -> SimDuration {
        self.tx_delay + self.tx_tail
    }
}

/// MAC statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsmaStats {
    /// Frames handed to the MAC.
    pub enqueued: u64,
    /// Frames put on the air.
    pub transmitted: u64,
    /// Persistence draws that deferred a slot.
    pub deferrals: u64,
    /// Polls that found the channel busy.
    pub busy_detects: u64,
}

/// A p-persistent CSMA transmitter for one station.
///
/// Sans-io: the owner calls [`Csma::poll`] whenever the channel might have
/// changed state (and at [`Csma::next_deadline`]); `poll` starts a
/// transmission on the channel when the rules allow.
#[derive(Debug)]
pub struct Csma {
    cfg: MacConfig,
    queue: VecDeque<Vec<u8>>,
    /// Earliest next persistence attempt (set after a deferral).
    retry_at: Option<SimTime>,
    /// End of our own transmission in progress.
    tx_end: Option<SimTime>,
    stats: CsmaStats,
}

impl Csma {
    /// Creates an idle MAC.
    pub fn new(cfg: MacConfig) -> Csma {
        Csma {
            cfg,
            queue: VecDeque::new(),
            retry_at: None,
            tx_end: None,
            stats: CsmaStats::default(),
        }
    }

    /// Current parameters.
    pub fn config(&self) -> &MacConfig {
        &self.cfg
    }

    /// Replaces the parameters (KISS parameter commands).
    pub fn set_config(&mut self, cfg: MacConfig) {
        self.cfg = cfg;
    }

    /// Mutable access for single-parameter updates.
    pub fn config_mut(&mut self) -> &mut MacConfig {
        &mut self.cfg
    }

    /// Queues an on-air frame (AX.25 bytes + FCS).
    pub fn enqueue(&mut self, frame: Vec<u8>) {
        self.stats.enqueued += 1;
        self.queue.push_back(frame);
    }

    /// Frames waiting (not counting one in flight).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// True while our transmitter is keyed.
    pub fn transmitting(&self, now: SimTime) -> bool {
        self.tx_end.is_some_and(|t| t > now)
    }

    /// True when the only thing between a queued frame and the air is
    /// the carrier: frames waiting, transmitter idle, no backoff pending.
    /// Such a station has no deadline of its own — it must be re-polled
    /// when the channel's state changes.
    pub fn waiting_on_carrier(&self) -> bool {
        !self.queue.is_empty() && self.tx_end.is_none() && self.retry_at.is_none()
    }

    /// When `poll` should next be called even if nothing else happens:
    /// our own tx end (to start the next frame) or a backoff expiry.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match (self.tx_end, self.retry_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Attempts to start a transmission; call on every channel state
    /// change and at [`Csma::next_deadline`].
    pub fn poll(&mut self, now: SimTime, me: StationId, ch: &mut Channel, rng: &mut SimRng) {
        if let Some(end) = self.tx_end {
            if end > now {
                return;
            }
            self.tx_end = None;
        }
        if self.queue.is_empty() {
            return;
        }
        if let Some(at) = self.retry_at {
            if at > now {
                return;
            }
            self.retry_at = None;
        }
        if !self.cfg.full_duplex && ch.carrier_busy(now, me) {
            // Wait for the channel to go idle; the owner polls us again on
            // the next channel event.
            self.stats.busy_detects += 1;
            return;
        }
        if !self.cfg.full_duplex && !rng.chance(self.cfg.persistence) {
            self.stats.deferrals += 1;
            self.retry_at = Some(now + self.cfg.slot_time);
            return;
        }
        let frame = self.queue.pop_front().expect("checked non-empty");
        let end = ch.transmit(now, me, frame, self.cfg.overhead());
        self.stats.transmitted += 1;
        self.tx_end = Some(end);
    }

    /// MAC statistics.
    pub fn stats(&self) -> CsmaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Bandwidth;

    fn setup() -> (Channel, StationId, StationId, SimRng) {
        let mut ch = Channel::new(Bandwidth::RADIO_1200);
        let a = ch.add_station();
        let b = ch.add_station();
        (ch, a, b, SimRng::seed_from(42))
    }

    fn always_send() -> MacConfig {
        MacConfig {
            persistence: 1.0,
            tx_delay: SimDuration::from_millis(100),
            tx_tail: SimDuration::ZERO,
            ..MacConfig::default()
        }
    }

    #[test]
    fn transmits_when_idle_and_p_is_one() {
        let (mut ch, a, b, mut rng) = setup();
        let mut mac = Csma::new(always_send());
        mac.enqueue(vec![0; 120]); // 0.8s at 1200bps + 0.1s keyup
        mac.poll(SimTime::ZERO, a, &mut ch, &mut rng);
        assert!(mac.transmitting(SimTime::from_millis(10)));
        let end = ch.next_deadline().unwrap();
        assert_eq!(end, SimTime::from_millis(900));
        let rx = ch.advance(end);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].to, b);
    }

    #[test]
    fn defers_while_carrier_busy() {
        let (mut ch, a, b, mut rng) = setup();
        ch.transmit(SimTime::ZERO, b, vec![0; 120], SimDuration::ZERO);
        let mut mac = Csma::new(always_send());
        mac.enqueue(vec![0; 10]);
        // Poll after the DCD assert time so the carrier is sensed.
        mac.poll(SimTime::from_millis(50), a, &mut ch, &mut rng);
        assert!(!mac.transmitting(SimTime::from_millis(50)));
        assert_eq!(mac.stats().busy_detects, 1);
        // After the other frame ends, the channel is idle and we go.
        let end = ch.next_deadline().unwrap();
        ch.advance(end);
        mac.poll(end, a, &mut ch, &mut rng);
        assert!(mac.transmitting(end + SimDuration::from_millis(1)));
    }

    #[test]
    fn zero_persistence_always_defers() {
        let (mut ch, a, _b, mut rng) = setup();
        let cfg = MacConfig {
            persistence: 0.0,
            slot_time: SimDuration::from_millis(50),
            ..MacConfig::default()
        };
        let mut mac = Csma::new(cfg);
        mac.enqueue(vec![0; 10]);
        mac.poll(SimTime::ZERO, a, &mut ch, &mut rng);
        assert!(!mac.transmitting(SimTime::ZERO));
        assert_eq!(mac.next_deadline(), Some(SimTime::from_millis(50)));
        assert_eq!(mac.stats().deferrals, 1);
        // Premature poll does nothing; at the slot boundary it defers again.
        mac.poll(SimTime::from_millis(20), a, &mut ch, &mut rng);
        assert_eq!(mac.stats().deferrals, 1);
        mac.poll(SimTime::from_millis(50), a, &mut ch, &mut rng);
        assert_eq!(mac.stats().deferrals, 2);
    }

    #[test]
    fn frames_go_out_in_fifo_order_back_to_back() {
        let (mut ch, a, b, mut rng) = setup();
        let mut mac = Csma::new(always_send());
        mac.enqueue(vec![1; 10]);
        mac.enqueue(vec![2; 10]);
        mac.poll(SimTime::ZERO, a, &mut ch, &mut rng);
        let mut got = Vec::new();
        while let Some(t) = ch.next_deadline() {
            for rx in ch.advance(t) {
                if rx.to == b {
                    got.push(rx.data[0]);
                }
            }
            mac.poll(t, a, &mut ch, &mut rng);
        }
        assert_eq!(got, vec![1, 2]);
        assert_eq!(mac.stats().transmitted, 2);
        assert_eq!(mac.backlog(), 0);
    }

    #[test]
    fn full_duplex_ignores_carrier() {
        let (mut ch, a, b, mut rng) = setup();
        ch.transmit(SimTime::ZERO, b, vec![0; 120], SimDuration::ZERO);
        let cfg = MacConfig {
            full_duplex: true,
            ..always_send()
        };
        let mut mac = Csma::new(cfg);
        mac.enqueue(vec![0; 10]);
        mac.poll(SimTime::from_millis(10), a, &mut ch, &mut rng);
        assert!(mac.transmitting(SimTime::from_millis(20)));
    }

    #[test]
    fn persistence_fraction_is_roughly_p() {
        let (mut ch, a, _b, mut rng) = setup();
        let cfg = MacConfig {
            persistence: 0.25,
            slot_time: SimDuration::from_millis(10),
            tx_delay: SimDuration::ZERO,
            tx_tail: SimDuration::ZERO,
            ..MacConfig::default()
        };
        let mut mac = Csma::new(cfg);
        let mut sends = 0u32;
        let trials = 4000;
        let mut now = SimTime::ZERO;
        for _ in 0..trials {
            mac.enqueue(vec![0; 1]);
            // Poll until this frame goes out; count first-try successes.
            let before = mac.stats().deferrals;
            loop {
                mac.poll(now, a, &mut ch, &mut rng);
                if mac.transmitting(now) {
                    break;
                }
                now = mac.next_deadline().unwrap();
            }
            if mac.stats().deferrals == before {
                sends += 1;
            }
            // Let the frame finish.
            let end = ch.next_deadline().unwrap();
            ch.advance(end);
            now = end;
            mac.poll(now, a, &mut ch, &mut rng);
        }
        let frac = f64::from(sends) / f64::from(trials);
        assert!((frac - 0.25).abs() < 0.03, "frac = {frac}");
    }
}
