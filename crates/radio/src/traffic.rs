//! Background traffic generators for channel-load experiments.
//!
//! §3 of the paper: *"the gateway slows considerably as traffic on the
//! packet radio subnet climbs"*. To reproduce that, experiment E2 loads
//! the channel with stations exchanging ordinary AX.25 chatter (UI frames
//! with PID "no layer 3") at a Poisson rate. These frames are not for the
//! gateway — a promiscuous TNC passes them to the host anyway.

use ax25::addr::Ax25Addr;
use ax25::fcs::append_fcs;
use ax25::frame::{Frame, Pid};
use sim::{SimDuration, SimRng, SimTime};

use crate::channel::{Channel, StationId};
use crate::csma::{Csma, MacConfig};

/// Configuration of one background station.
#[derive(Debug, Clone)]
pub struct BeaconConfig {
    /// The station's own address.
    pub from: Ax25Addr,
    /// Where its chatter is addressed (another background station).
    pub to: Ax25Addr,
    /// Info-field length of each generated frame.
    pub frame_len: usize,
    /// Mean inter-arrival time (exponential).
    pub mean_interval: SimDuration,
    /// When generation begins.
    pub start: SimTime,
    /// MAC parameters.
    pub mac: MacConfig,
}

/// Generator statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BeaconStats {
    /// Frames generated.
    pub generated: u64,
}

/// A station that generates Poisson UI-frame chatter onto the channel.
#[derive(Debug)]
pub struct BeaconStation {
    cfg: BeaconConfig,
    station: StationId,
    mac: Csma,
    next_gen: SimTime,
    rng: SimRng,
    mac_rng: SimRng,
    stats: BeaconStats,
    seq: u64,
}

impl BeaconStation {
    /// Creates a generator; `rng` drives both arrivals and CSMA draws.
    pub fn new(cfg: BeaconConfig, station: StationId, mut rng: SimRng) -> BeaconStation {
        let mac_rng = rng.fork();
        let first = cfg.start
            + SimDuration::from_secs_f64(rng.exponential(cfg.mean_interval.as_secs_f64()));
        let mac = Csma::new(cfg.mac);
        BeaconStation {
            cfg,
            station,
            mac,
            next_gen: first,
            rng,
            mac_rng,
            stats: BeaconStats::default(),
            seq: 0,
        }
    }

    /// The channel station id.
    pub fn station(&self) -> StationId {
        self.station
    }

    /// Earliest time this station needs attention.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match self.mac.next_deadline() {
            Some(m) => Some(m.min(self.next_gen)),
            None => Some(self.next_gen),
        }
    }

    /// Generates due frames and drives the MAC.
    pub fn poll(&mut self, now: SimTime, ch: &mut Channel) {
        while self.next_gen <= now {
            self.seq += 1;
            self.stats.generated += 1;
            let mut info = format!("de {} #{:06} ", self.cfg.from, self.seq).into_bytes();
            info.resize(self.cfg.frame_len, b'.');
            let frame = Frame::ui(self.cfg.to, self.cfg.from, Pid::Text, info);
            let mut on_air = frame.encode();
            append_fcs(&mut on_air);
            self.mac.enqueue(on_air);
            let gap = self.rng.exponential(self.cfg.mean_interval.as_secs_f64());
            self.next_gen += SimDuration::from_secs_f64(gap);
        }
        self.mac.poll(now, self.station, ch, &mut self.mac_rng);
    }

    /// Frames generated so far.
    pub fn stats(&self) -> BeaconStats {
        self.stats
    }

    /// Frames queued for transmission.
    pub fn tx_backlog(&self) -> usize {
        self.mac.backlog()
    }

    /// True when a queued frame is blocked only on carrier sense.
    pub fn waiting_on_carrier(&self) -> bool {
        self.mac.waiting_on_carrier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Bandwidth;

    fn cfg(mean_ms: u64) -> BeaconConfig {
        BeaconConfig {
            from: Ax25Addr::parse_or_panic("BG1"),
            to: Ax25Addr::parse_or_panic("BG2"),
            frame_len: 64,
            mean_interval: SimDuration::from_millis(mean_ms),
            start: SimTime::ZERO,
            mac: MacConfig {
                persistence: 1.0,
                tx_delay: SimDuration::ZERO,
                tx_tail: SimDuration::ZERO,
                ..MacConfig::default()
            },
        }
    }

    #[test]
    fn generates_at_roughly_the_configured_rate() {
        let mut ch = Channel::new(Bandwidth::bps(1_000_000));
        let sta = ch.add_station();
        let _listener = ch.add_station();
        let mut b = BeaconStation::new(cfg(100), sta, SimRng::seed_from(11));
        let horizon = SimTime::from_secs(60);
        let mut now = SimTime::ZERO;
        while now < horizon {
            b.poll(now, &mut ch);
            if let Some(t) = ch.next_deadline() {
                if t <= horizon {
                    ch.advance(t);
                }
            }
            now = b
                .next_deadline()
                .map(|d| d.max(now + SimDuration::from_millis(1)))
                .unwrap_or(horizon)
                .min(horizon);
        }
        // ~600 expected over 60s at 100ms mean.
        let n = b.stats().generated;
        assert!((450..=750).contains(&n), "generated {n}");
    }

    #[test]
    fn frames_carry_sequence_and_length() {
        let mut ch = Channel::new(Bandwidth::bps(1_000_000));
        let sta = ch.add_station();
        let listener = ch.add_station();
        let mut b = BeaconStation::new(cfg(10), sta, SimRng::seed_from(3));
        // Force a generation by polling past next_gen.
        let t = b.next_deadline().unwrap();
        b.poll(t, &mut ch);
        let end = ch.next_deadline().expect("frame on air");
        let rx = ch.advance(end);
        let to_listener = rx.iter().find(|r| r.to == listener).unwrap();
        let frame = crate::tnc::Tnc::parse_on_air(&to_listener.data).unwrap();
        assert_eq!(frame.info.len(), 64);
        assert!(String::from_utf8_lossy(&frame.info).contains("de BG1"));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let make = || {
            let mut ch = Channel::new(Bandwidth::bps(1_000_000));
            let sta = ch.add_station();
            let _l = ch.add_station();
            let mut b = BeaconStation::new(cfg(50), sta, SimRng::seed_from(99));
            let mut times = Vec::new();
            for _ in 0..20 {
                let now = b.next_deadline().unwrap();
                b.poll(now, &mut ch);
                times.push(now);
                while let Some(t) = ch.next_deadline() {
                    ch.advance(t);
                }
            }
            times
        };
        assert_eq!(make(), make());
    }
}
