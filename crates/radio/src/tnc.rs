//! The KISS TNC device: serial line on one side, radio channel on the other.
//!
//! §2.1 of the paper: the TNC is to the radio what an Ethernet controller
//! is to the wire, except it hangs off a serial line. With the KISS code
//! loaded it does exactly three jobs, all modelled here:
//!
//! * **host → air**: deframe KISS from the serial line, append the FCS,
//!   and transmit under p-persistent CSMA;
//! * **air → host**: verify the FCS, then pass the frame up the serial
//!   line KISS-framed;
//! * obey KISS parameter commands (TXDELAY, P, SlotTime, TXTAIL,
//!   FullDuplex).
//!
//! The receive path implements both TNC behaviours contrasted in §3 of
//! the paper: [`RxMode::Promiscuous`] ("passes every packet it receives to
//! the packet radio driver regardless of the destination address") and
//! [`RxMode::AddressFilter`] (the proposed fix: "selectively pass only
//! those packets destined for the broadcast or local AX.25 addresses").

use ax25::addr::Ax25Addr;
use ax25::fcs::{append_fcs, verify_and_strip_fcs};
use ax25::frame::Frame;
use kiss::{Command, Deframer};
use sim::{SimDuration, SimRng, SimTime};

use crate::channel::{Channel, Reception, StationId};
use crate::csma::{Csma, MacConfig};

/// Receive filtering behaviour (§3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxMode {
    /// Pass every heard frame to the host (the 1988 stock behaviour).
    Promiscuous,
    /// Pass only frames addressed to this station or a broadcast address.
    AddressFilter,
}

/// TNC configuration.
#[derive(Debug, Clone)]
pub struct TncConfig {
    /// The station's own AX.25 address (used by the filter).
    pub addr: Ax25Addr,
    /// Additional addresses accepted as broadcasts (QST by default).
    pub broadcast: Vec<Ax25Addr>,
    /// Receive filtering mode.
    pub mode: RxMode,
    /// Initial MAC parameters (KISS commands can change them later).
    pub mac: MacConfig,
}

impl TncConfig {
    /// A stock promiscuous TNC for `addr` with default MAC parameters.
    pub fn new(addr: Ax25Addr) -> TncConfig {
        TncConfig {
            addr,
            broadcast: vec![Ax25Addr::broadcast()],
            mode: RxMode::Promiscuous,
            mac: MacConfig::default(),
        }
    }

    /// Builder: sets the receive mode.
    pub fn with_mode(mut self, mode: RxMode) -> TncConfig {
        self.mode = mode;
        self
    }

    /// Builder: sets the MAC parameters.
    pub fn with_mac(mut self, mac: MacConfig) -> TncConfig {
        self.mac = mac;
        self
    }
}

/// TNC statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TncStats {
    /// Frames heard on the air (any destination).
    pub heard: u64,
    /// Heard frames dropped for FCS failure (collisions, noise).
    pub fcs_errors: u64,
    /// Frames passed up the serial line to the host.
    pub passed_to_host: u64,
    /// Frames suppressed by the address filter.
    pub filtered: u64,
    /// Frames that arrived undecodable even with a good FCS.
    pub undecodable: u64,
    /// Data frames accepted from the host for transmission.
    pub from_host: u64,
    /// KISS parameter commands processed.
    pub params: u64,
}

/// The KISS TNC device model.
///
/// Sans-io: feed serial bytes with [`Tnc::on_serial_byte`], feed channel
/// receptions with [`Tnc::on_reception`] (which returns serial bytes for
/// the host), and drive the MAC with [`Tnc::poll`] /
/// [`Tnc::next_deadline`].
#[derive(Debug)]
pub struct Tnc {
    cfg: TncConfig,
    station: StationId,
    deframer: Deframer,
    mac: Csma,
    stats: TncStats,
    /// Extra unicast addresses the filter accepts (digipeater aliases,
    /// secondary SSIDs). Empty for a plain station.
    accept: Vec<Ax25Addr>,
}

impl Tnc {
    /// Creates a TNC attached to channel station `station`.
    pub fn new(cfg: TncConfig, station: StationId) -> Tnc {
        let mac = Csma::new(cfg.mac);
        Tnc {
            cfg,
            station,
            deframer: Deframer::new(),
            mac,
            stats: TncStats::default(),
            accept: Vec::new(),
        }
    }

    /// The channel station this TNC transmits as.
    pub fn station(&self) -> StationId {
        self.station
    }

    /// The configured own address.
    pub fn addr(&self) -> Ax25Addr {
        self.cfg.addr
    }

    /// Current receive mode.
    pub fn mode(&self) -> RxMode {
        self.cfg.mode
    }

    /// Changes the receive mode at runtime (the paper considers "changing
    /// the TNC code" — this is that switch).
    pub fn set_mode(&mut self, mode: RxMode) {
        self.cfg.mode = mode;
    }

    /// §3's proposed fix as a runtime switch: turns on address filtering
    /// so frames not addressed to this station, the broadcast set, or one
    /// of `also_accept` are dropped inside the TNC — before they cost the
    /// host one interrupt per serial character. Pass an empty slice to
    /// accept just the own call and broadcasts; [`Tnc::set_mode`] with
    /// [`RxMode::Promiscuous`] switches back.
    pub fn set_address_filter(&mut self, also_accept: &[Ax25Addr]) {
        self.cfg.mode = RxMode::AddressFilter;
        self.accept = also_accept.to_vec();
    }

    /// Consumes one character from the host serial line.
    pub fn on_serial_byte(&mut self, byte: u8) {
        // The deframed payload borrows the deframer's internal buffer, so
        // the handler takes the other fields as disjoint borrows.
        let Some(frame) = self.deframer.push(byte) else {
            return;
        };
        Tnc::on_kiss_frame(&mut self.stats, &mut self.mac, frame.command, frame.payload);
    }

    /// Consumes a whole run of host serial characters through the bulk
    /// deframer; behavior is identical to feeding each byte through
    /// [`Tnc::on_serial_byte`].
    pub fn on_serial_bytes(&mut self, bytes: &[u8]) {
        let Tnc {
            deframer,
            stats,
            mac,
            ..
        } = self;
        deframer.push_slice(bytes, |_, frame| {
            Tnc::on_kiss_frame(stats, mac, frame.command, frame.payload);
        });
    }

    fn on_kiss_frame(stats: &mut TncStats, mac: &mut Csma, command: Command, payload: &[u8]) {
        match command {
            Command::Data => {
                stats.from_host += 1;
                let mut on_air = payload.to_vec();
                append_fcs(&mut on_air);
                mac.enqueue(on_air);
            }
            Command::TxDelay => {
                stats.params += 1;
                if let Some(&v) = payload.first() {
                    mac.config_mut().tx_delay = SimDuration::from_millis(u64::from(v) * 10);
                }
            }
            Command::Persistence => {
                stats.params += 1;
                if let Some(&v) = payload.first() {
                    mac.config_mut().persistence = (f64::from(v) + 1.0) / 256.0;
                }
            }
            Command::SlotTime => {
                stats.params += 1;
                if let Some(&v) = payload.first() {
                    mac.config_mut().slot_time = SimDuration::from_millis(u64::from(v) * 10);
                }
            }
            Command::TxTail => {
                stats.params += 1;
                if let Some(&v) = payload.first() {
                    mac.config_mut().tx_tail = SimDuration::from_millis(u64::from(v) * 10);
                }
            }
            Command::FullDuplex => {
                stats.params += 1;
                if let Some(&v) = payload.first() {
                    mac.config_mut().full_duplex = v != 0;
                }
            }
            Command::SetHardware | Command::Return => {
                stats.params += 1;
            }
        }
    }

    /// Processes a frame heard on the air. Returns the KISS-framed bytes
    /// to send up the serial line, or `None` if the frame was dropped
    /// (bad FCS or filtered).
    pub fn on_reception(&mut self, rx: &Reception) -> Option<Vec<u8>> {
        self.stats.heard += 1;
        if rx.corrupted {
            self.stats.fcs_errors += 1;
            return None;
        }
        let Some(body) = verify_and_strip_fcs(&rx.data) else {
            self.stats.fcs_errors += 1;
            return None;
        };
        if self.cfg.mode == RxMode::AddressFilter {
            // The filter needs only the destination address, exactly what
            // cheap TNC firmware could check.
            let dest = match Ax25Addr::decode(body) {
                Ok((dest, _, _)) => dest,
                Err(_) => {
                    self.stats.undecodable += 1;
                    return None;
                }
            };
            let wanted = dest == self.cfg.addr
                || self.cfg.broadcast.contains(&dest)
                || self.accept.contains(&dest);
            if !wanted {
                self.stats.filtered += 1;
                return None;
            }
        }
        self.stats.passed_to_host += 1;
        Some(kiss::encode(0, Command::Data, body))
    }

    /// Drives the CSMA transmitter; call on channel events and deadlines.
    pub fn poll(&mut self, now: SimTime, ch: &mut Channel, rng: &mut SimRng) {
        self.mac.poll(now, self.station, ch, rng);
    }

    /// Earliest time this TNC needs a `poll` independent of channel events.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.mac.next_deadline()
    }

    /// Frames queued for transmission.
    pub fn tx_backlog(&self) -> usize {
        self.mac.backlog()
    }

    /// True when a queued frame is blocked only on carrier sense.
    pub fn waiting_on_carrier(&self) -> bool {
        self.mac.waiting_on_carrier()
    }

    /// Device statistics.
    pub fn stats(&self) -> TncStats {
        self.stats
    }

    /// MAC-layer statistics.
    pub fn mac_stats(&self) -> crate::csma::CsmaStats {
        self.mac.stats()
    }

    /// Parses a clean on-air reception into an AX.25 frame (helper for
    /// devices that bypass the serial line, e.g. digipeaters and tests).
    pub fn parse_on_air(data: &[u8]) -> Option<Frame> {
        let body = verify_and_strip_fcs(data)?;
        Frame::decode(body).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ax25::frame::Pid;
    use sim::Bandwidth;

    fn addr(s: &str) -> Ax25Addr {
        Ax25Addr::parse_or_panic(s)
    }

    fn fast_mac() -> MacConfig {
        MacConfig {
            persistence: 1.0,
            tx_delay: SimDuration::ZERO,
            tx_tail: SimDuration::ZERO,
            ..MacConfig::default()
        }
    }

    fn setup(mode: RxMode) -> (Channel, Tnc, Tnc, SimRng) {
        let mut ch = Channel::new(Bandwidth::RADIO_1200);
        let sa = ch.add_station();
        let sb = ch.add_station();
        let a = Tnc::new(
            TncConfig::new(addr("AAA"))
                .with_mac(fast_mac())
                .with_mode(mode),
            sa,
        );
        let b = Tnc::new(
            TncConfig::new(addr("BBB"))
                .with_mac(fast_mac())
                .with_mode(mode),
            sb,
        );
        (ch, a, b, SimRng::seed_from(1))
    }

    fn host_sends(tnc: &mut Tnc, frame: &Frame) {
        for byte in kiss::encode(0, Command::Data, &frame.encode()) {
            tnc.on_serial_byte(byte);
        }
    }

    fn run_air(
        ch: &mut Channel,
        a: &mut Tnc,
        b: &mut Tnc,
        rng: &mut SimRng,
    ) -> Vec<(StationId, Vec<u8>)> {
        let mut out = Vec::new();
        a.poll(SimTime::ZERO, ch, rng);
        b.poll(SimTime::ZERO, ch, rng);
        while let Some(t) = ch.next_deadline() {
            for rx in ch.advance(t) {
                for tnc in [&mut *a, &mut *b] {
                    if tnc.station() == rx.to {
                        if let Some(bytes) = tnc.on_reception(&rx) {
                            out.push((rx.to, bytes));
                        }
                    }
                }
            }
            a.poll(t, ch, rng);
            b.poll(t, ch, rng);
        }
        out
    }

    #[test]
    fn host_frame_crosses_the_air_and_reaches_peer_host() {
        let (mut ch, mut a, mut b, mut rng) = setup(RxMode::Promiscuous);
        let f = Frame::ui(addr("BBB"), addr("AAA"), Pid::Ip, b"ip packet".to_vec());
        host_sends(&mut a, &f);
        assert_eq!(a.tx_backlog(), 1);
        let out = run_air(&mut ch, &mut a, &mut b, &mut rng);
        assert_eq!(out.len(), 1);
        // The bytes b hands its host are KISS; deframe and decode them.
        let frames = kiss::decode_stream(&out[0].1);
        assert_eq!(frames.len(), 1);
        let back = Frame::decode(&frames[0].payload).unwrap();
        assert_eq!(back, f);
        assert_eq!(b.stats().passed_to_host, 1);
    }

    #[test]
    fn promiscuous_mode_passes_unrelated_traffic() {
        let (mut ch, mut a, mut b, mut rng) = setup(RxMode::Promiscuous);
        let f = Frame::ui(addr("ZZZ"), addr("AAA"), Pid::Text, b"chat".to_vec());
        host_sends(&mut a, &f);
        let out = run_air(&mut ch, &mut a, &mut b, &mut rng);
        assert_eq!(out.len(), 1, "promiscuous TNC passes everything");
        assert_eq!(b.stats().filtered, 0);
    }

    #[test]
    fn filter_mode_drops_unrelated_traffic() {
        let (mut ch, mut a, mut b, mut rng) = setup(RxMode::AddressFilter);
        let f = Frame::ui(addr("ZZZ"), addr("AAA"), Pid::Text, b"chat".to_vec());
        host_sends(&mut a, &f);
        let out = run_air(&mut ch, &mut a, &mut b, &mut rng);
        assert!(out.is_empty(), "filter drops frames for others");
        assert_eq!(b.stats().filtered, 1);
        assert_eq!(b.stats().passed_to_host, 0);
    }

    #[test]
    fn filter_mode_passes_own_and_broadcast() {
        let (mut ch, mut a, mut b, mut rng) = setup(RxMode::AddressFilter);
        host_sends(
            &mut a,
            &Frame::ui(addr("BBB"), addr("AAA"), Pid::Ip, vec![1]),
        );
        host_sends(
            &mut a,
            &Frame::ui(Ax25Addr::broadcast(), addr("AAA"), Pid::Text, vec![2]),
        );
        let out = run_air(&mut ch, &mut a, &mut b, &mut rng);
        assert_eq!(out.len(), 2);
        assert_eq!(b.stats().passed_to_host, 2);
    }

    #[test]
    fn set_address_filter_switches_at_runtime_with_accept_list() {
        // Built promiscuous, flipped at runtime with an alias in the
        // accept list: traffic for strangers now dies in the TNC; own,
        // broadcast, and alias frames pass.
        let (mut ch, mut a, mut b, mut rng) = setup(RxMode::Promiscuous);
        assert_eq!(b.mode(), RxMode::Promiscuous);
        b.set_address_filter(&[addr("ALIAS")]);
        for f in [
            Frame::ui(addr("ZZZ"), addr("AAA"), Pid::Text, vec![2]),
            Frame::ui(addr("BBB"), addr("AAA"), Pid::Ip, vec![3]),
            Frame::ui(Ax25Addr::broadcast(), addr("AAA"), Pid::Ip, vec![4]),
            Frame::ui(addr("ALIAS"), addr("AAA"), Pid::Text, vec![5]),
        ] {
            host_sends(&mut a, &f);
        }
        let out = run_air(&mut ch, &mut a, &mut b, &mut rng);
        assert_eq!(out.len(), 3, "stranger dropped, other three pass");
        assert_eq!(b.stats().filtered, 1);
        assert_eq!(b.mode(), RxMode::AddressFilter);
    }

    #[test]
    fn corrupted_reception_is_counted_as_fcs_error() {
        let (_ch, _a, mut b, _rng) = setup(RxMode::Promiscuous);
        let rx = Reception {
            to: b.station(),
            from: StationId(0),
            data: vec![0; 20],
            corrupted: true,
            at: SimTime::ZERO,
        };
        assert!(b.on_reception(&rx).is_none());
        assert_eq!(b.stats().fcs_errors, 1);
    }

    #[test]
    fn bad_fcs_bytes_are_dropped() {
        let (_ch, _a, mut b, _rng) = setup(RxMode::Promiscuous);
        let rx = Reception {
            to: b.station(),
            from: StationId(0),
            data: b"not a real frame".to_vec(),
            corrupted: false,
            at: SimTime::ZERO,
        };
        assert!(b.on_reception(&rx).is_none());
        assert_eq!(b.stats().fcs_errors, 1);
    }

    #[test]
    fn kiss_params_update_mac_config() {
        let (_ch, mut a, _b, _rng) = setup(RxMode::Promiscuous);
        for bytes in [
            kiss::encode_param(0, Command::TxDelay, 25),
            kiss::encode_param(0, Command::Persistence, 127),
            kiss::encode_param(0, Command::SlotTime, 5),
            kiss::encode_param(0, Command::TxTail, 3),
            kiss::encode_param(0, Command::FullDuplex, 1),
        ] {
            for byte in bytes {
                a.on_serial_byte(byte);
            }
        }
        assert_eq!(a.stats().params, 5);
        let cfg = a.mac_stats(); // stats unaffected
        assert_eq!(cfg.enqueued, 0);
    }

    #[test]
    fn parse_on_air_roundtrip() {
        let f = Frame::ui(addr("BBB"), addr("AAA"), Pid::Ip, vec![9, 9]);
        let mut on_air = f.encode();
        append_fcs(&mut on_air);
        assert_eq!(Tnc::parse_on_air(&on_air), Some(f));
        assert_eq!(Tnc::parse_on_air(b"junk"), None);
    }
}
