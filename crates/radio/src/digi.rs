//! Standalone digipeater stations.
//!
//! §1 of the paper: digipeaters are relay stations "set up in strategic
//! locations so that messages could be received and passed along to their
//! destination". A digipeater hears a frame, checks whether it is the
//! next hop in the frame's source route, and if so retransmits the frame
//! with its own entry marked repeated. Because it retransmits on the
//! *same frequency*, every digipeater hop roughly doubles the airtime a
//! packet consumes — the cost quantified by experiment E7.

use ax25::addr::Ax25Addr;
use ax25::digipeat::{decide, DigipeatDecision};
use ax25::fcs::{append_fcs, verify_and_strip_fcs};
use ax25::frame::Frame;
use sim::{SimRng, SimTime};

use crate::channel::{Channel, Reception, StationId};
use crate::csma::{Csma, MacConfig};

/// Digipeater statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DigiStats {
    /// Frames heard.
    pub heard: u64,
    /// Frames repeated.
    pub repeated: u64,
    /// Frames dropped for FCS errors.
    pub fcs_errors: u64,
    /// Frames heard but not addressed through this station.
    pub ignored: u64,
}

/// A standalone digipeater station.
#[derive(Debug)]
pub struct Digipeater {
    addr: Ax25Addr,
    station: StationId,
    mac: Csma,
    stats: DigiStats,
}

impl Digipeater {
    /// Creates a digipeater with address `addr` at channel station
    /// `station`.
    pub fn new(addr: Ax25Addr, station: StationId, mac: MacConfig) -> Digipeater {
        Digipeater {
            addr,
            station,
            mac: Csma::new(mac),
            stats: DigiStats::default(),
        }
    }

    /// The station's address.
    pub fn addr(&self) -> Ax25Addr {
        self.addr
    }

    /// The channel station id.
    pub fn station(&self) -> StationId {
        self.station
    }

    /// Processes a heard frame, queueing a repeat when this station is the
    /// next hop.
    pub fn on_reception(&mut self, rx: &Reception) {
        self.stats.heard += 1;
        if rx.corrupted {
            self.stats.fcs_errors += 1;
            return;
        }
        let Some(body) = verify_and_strip_fcs(&rx.data) else {
            self.stats.fcs_errors += 1;
            return;
        };
        let Ok(frame) = Frame::decode(body) else {
            self.stats.ignored += 1;
            return;
        };
        match decide(&frame, self.addr) {
            DigipeatDecision::Repeat(out) => {
                self.stats.repeated += 1;
                let mut on_air = out.encode();
                append_fcs(&mut on_air);
                self.mac.enqueue(on_air);
            }
            DigipeatDecision::Deliverable | DigipeatDecision::NotForUs => {
                self.stats.ignored += 1;
            }
        }
    }

    /// Drives the CSMA transmitter.
    pub fn poll(&mut self, now: SimTime, ch: &mut Channel, rng: &mut SimRng) {
        self.mac.poll(now, self.station, ch, rng);
    }

    /// Earliest self-generated deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.mac.next_deadline()
    }

    /// True when a queued frame is blocked only on carrier sense.
    pub fn waiting_on_carrier(&self) -> bool {
        self.mac.waiting_on_carrier()
    }

    /// Station statistics.
    pub fn stats(&self) -> DigiStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ax25::frame::Pid;
    use sim::{Bandwidth, SimDuration};

    fn a(s: &str) -> Ax25Addr {
        Ax25Addr::parse_or_panic(s)
    }

    fn fast() -> MacConfig {
        MacConfig {
            persistence: 1.0,
            tx_delay: SimDuration::ZERO,
            tx_tail: SimDuration::ZERO,
            ..MacConfig::default()
        }
    }

    fn on_air(f: &Frame) -> Vec<u8> {
        let mut b = f.encode();
        append_fcs(&mut b);
        b
    }

    #[test]
    fn repeats_frame_addressed_through_it() {
        let mut ch = Channel::new(Bandwidth::RADIO_1200);
        let src = ch.add_station();
        let digi_sta = ch.add_station();
        let dst_sta = ch.add_station();
        // Hidden ends: src and dst cannot hear each other; only the digi
        // bridges them — the classic digipeater purpose.
        ch.set_hears(dst_sta, src, false);
        ch.set_hears(src, dst_sta, false);
        let mut digi = Digipeater::new(a("DIGI"), digi_sta, fast());
        let mut rng = SimRng::seed_from(5);

        let f = Frame::ui(a("DST"), a("SRC"), Pid::Text, b"relay me".to_vec()).via(&[a("DIGI")]);
        let end = ch.transmit(SimTime::ZERO, src, on_air(&f), SimDuration::ZERO);

        let mut delivered_at_dst = None;
        let mut now = end;
        loop {
            for rx in ch.advance(now) {
                if rx.to == digi_sta {
                    digi.on_reception(&rx);
                }
                if rx.to == dst_sta && !rx.corrupted {
                    let frame = crate::tnc::Tnc::parse_on_air(&rx.data).unwrap();
                    if frame.fully_repeated() {
                        delivered_at_dst = Some(frame);
                    }
                }
            }
            digi.poll(now, &mut ch, &mut rng);
            match ch.next_deadline() {
                Some(t) => now = t,
                None => break,
            }
        }
        let got = delivered_at_dst.expect("frame must reach DST via DIGI");
        assert_eq!(got.info, b"relay me");
        assert!(got.digipeaters[0].repeated);
        assert_eq!(digi.stats().repeated, 1);
    }

    #[test]
    fn ignores_unrelated_and_corrupt() {
        let mut ch = Channel::new(Bandwidth::RADIO_1200);
        let _src = ch.add_station();
        let digi_sta = ch.add_station();
        let mut digi = Digipeater::new(a("DIGI"), digi_sta, fast());

        let f = Frame::ui(a("DST"), a("SRC"), Pid::Text, vec![]).via(&[a("OTHER")]);
        digi.on_reception(&Reception {
            to: digi_sta,
            from: StationId(0),
            data: on_air(&f),
            corrupted: false,
            at: SimTime::ZERO,
        });
        assert_eq!(digi.stats().ignored, 1);

        digi.on_reception(&Reception {
            to: digi_sta,
            from: StationId(0),
            data: on_air(&f),
            corrupted: true,
            at: SimTime::ZERO,
        });
        assert_eq!(digi.stats().fcs_errors, 1);
        assert_eq!(digi.stats().repeated, 0);
    }

    #[test]
    fn direct_frames_are_not_repeated() {
        let mut ch = Channel::new(Bandwidth::RADIO_1200);
        let _src = ch.add_station();
        let digi_sta = ch.add_station();
        let mut digi = Digipeater::new(a("DIGI"), digi_sta, fast());
        let f = Frame::ui(a("DIGI"), a("SRC"), Pid::Text, vec![]);
        digi.on_reception(&Reception {
            to: digi_sta,
            from: StationId(0),
            data: on_air(&f),
            corrupted: false,
            at: SimTime::ZERO,
        });
        assert_eq!(digi.stats().repeated, 0);
        assert_eq!(digi.stats().ignored, 1);
    }
}
