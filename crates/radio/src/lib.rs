//! The packet-radio substrate: channel, MAC, TNC, digipeaters, workloads.
//!
//! This crate simulates the radio hardware the paper depends on but which
//! this reproduction cannot plug into a wall: the shared 1200 bit/s
//! half-duplex channel and the TNC (*"essentially a modem"*, §1) running
//! the KISS code. The pieces:
//!
//! * [`channel`] — the RF medium: transmissions occupy airtime, everyone
//!   in range hears them, overlapping transmissions collide, a hearing
//!   matrix creates hidden terminals, and optional bit errors corrupt
//!   frames (caught by the FCS, as in a real TNC).
//! * [`csma`] — the p-persistent CSMA transmit discipline that the KISS
//!   TNC parameters (TXDELAY, P, SlotTime, TXTAIL) configure.
//! * [`tnc`] — the KISS TNC device: serial side (KISS deframing, parameter
//!   commands) glued to the radio side (CSMA, FCS). Crucially for §3 of
//!   the paper, its receive path is either **promiscuous** — *"the present
//!   code running inside the TNC passes every packet it receives to the
//!   packet radio driver regardless of the destination address"* — or
//!   **address-filtered**, the fix the paper proposes.
//! * [`digi`] — standalone digipeater stations (§1).
//! * [`traffic`] — background stations that load the channel for the
//!   gateway-slowdown experiment (E2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod csma;
pub mod digi;
pub mod tnc;
pub mod traffic;

pub use channel::{Channel, Reception, StationId};
pub use csma::{Csma, MacConfig};
pub use tnc::{RxMode, Tnc, TncConfig};
