//! Property test: a random interleaving of poll/send/recv driven through
//! the `SocketTable` behaves byte-for-byte like the same interleaving
//! driven through the raw `NetStack` API — the shim adds readiness
//! bookkeeping and nothing else.

use netstack::stack::{IfaceId, NetStack, SockId, StackAction};
use proptest::prelude::*;
use sim::{SimRng, SimTime};
use socket::{SockError, SocketTable};
use std::net::Ipv4Addr;

fn ipa(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

/// Two stacks on a lossless wire. When the tables are in use every
/// action routes through `on_action`; either way non-egress actions are
/// logged so the raw oracle can recover its accepted `SockId`.
struct Pair {
    a: NetStack,
    b: NetStack,
    a_if: IfaceId,
    b_if: IfaceId,
    sa: SocketTable,
    sb: SocketTable,
    b_ev: Vec<StackAction>,
}

impl Pair {
    fn new() -> Pair {
        let (a, a_if) = NetStack::simple_host(ipa(1), 24, 1500, None);
        let (b, b_if) = NetStack::simple_host(ipa(2), 24, 1500, None);
        Pair {
            a,
            b,
            a_if,
            b_if,
            sa: SocketTable::new(),
            sb: SocketTable::new(),
            b_ev: Vec::new(),
        }
    }

    fn settle(&mut self, now: SimTime) {
        let mut from_a = self.a.drain_actions();
        let mut from_b = self.b.drain_actions();
        for _ in 0..10_000 {
            if from_a.is_empty() && from_b.is_empty() {
                return;
            }
            let mut next_a = Vec::new();
            let mut next_b = Vec::new();
            for act in from_a.drain(..) {
                self.sa.on_action(&self.a, &act);
                if let StackAction::Egress { packet, .. } = act {
                    next_b.extend(self.b.input(now, self.b_if, &packet.encode()));
                }
            }
            for act in from_b.drain(..) {
                self.sb.on_action(&self.b, &act);
                if let StackAction::Egress { packet, .. } = act {
                    next_a.extend(self.a.input(now, self.a_if, &packet.encode()));
                } else {
                    self.b_ev.push(act);
                }
            }
            from_a = next_a;
            from_b = next_b;
        }
        panic!("pair did not settle");
    }

    fn accepted_on_b(&self) -> SockId {
        self.b_ev
            .iter()
            .find_map(|a| match a {
                StackAction::TcpAccepted { sock, .. } => Some(*sock),
                _ => None,
            })
            .expect("a connection was accepted on b")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of send/recv/poll on both sides: the socket
    /// API accepts the same byte counts, delivers the same bytes, and
    /// reports readiness consistent with the oracle's raw stack state at
    /// every step.
    #[test]
    fn socket_api_matches_raw_oracle(seed in any::<u64>(), n_ops in 1usize..60) {
        let now = SimTime::ZERO;

        // Socket-API world.
        let mut sw = Pair::new();
        let lh = sw.sb.listen(&mut sw.b, 7, None).unwrap();
        let s_client = sw.sa.connect(&mut sw.a, now, ipa(2), 7).unwrap();
        sw.settle(now);
        let s_server = sw.sb.accept(&mut sw.b, lh).unwrap();

        // Raw-API oracle world, identical topology and handshake.
        let mut rw = Pair::new();
        rw.b.tcp_listen(7).unwrap();
        let r_client = rw.a.tcp_connect(now, ipa(2), 7).unwrap();
        rw.settle(now);
        let r_server = rw.accepted_on_b();

        let mut rng = SimRng::seed_from(seed);
        let mut sent: u64 = 0;
        let mut rcvd_sock: u64 = 0;
        let mut rcvd_raw: u64 = 0;

        for _ in 0..n_ops {
            match rng.below(5) {
                // Client sends a run of bytes through both worlds.
                0 => {
                    let len = (rng.below(900) + 1) as usize;
                    let data: Vec<u8> =
                        (0..len).map(|i| (sent as usize + i) as u8).collect();
                    let n_sock = match sw.sa.send(&mut sw.a, now, s_client, &data) {
                        Ok(n) => n,
                        Err(SockError::WouldBlock) => 0,
                        Err(e) => panic!("unexpected send error: {e}"),
                    };
                    let n_raw = rw.a.tcp_send(now, r_client, &data);
                    prop_assert_eq!(n_sock, n_raw, "send accepted counts diverge");
                    sent += n_sock as u64;
                }
                // Server drains one recv from both worlds.
                1 => {
                    let d_sock = match sw.sb.recv(&mut sw.b, now, s_server) {
                        Ok(d) => d,
                        Err(SockError::WouldBlock) => Vec::new(),
                        Err(e) => panic!("unexpected recv error: {e}"),
                    };
                    let d_raw = rw.b.tcp_recv(now, r_server);
                    prop_assert_eq!(&d_sock, &d_raw, "received bytes diverge");
                    rcvd_sock += d_sock.len() as u64;
                    rcvd_raw += d_raw.len() as u64;
                }
                // Let both wires move.
                2 => {
                    sw.settle(now);
                    rw.settle(now);
                }
                // Poll the client: readiness must agree with the raw
                // oracle's stack state.
                3 => {
                    let r = sw.sa.poll(&sw.a, s_client);
                    prop_assert_eq!(
                        r.writable(),
                        rw.a.tcp_send_capacity(r_client) > 0,
                        "writable diverges from oracle"
                    );
                }
                // Poll the server likewise.
                _ => {
                    let r = sw.sb.poll(&sw.b, s_server);
                    prop_assert_eq!(
                        r.readable(),
                        rw.b.tcp_recv_available(r_server) > 0,
                        "readable diverges from oracle"
                    );
                    prop_assert_eq!(
                        r.eof(),
                        rw.b.tcp_at_eof(r_server),
                        "eof diverges from oracle"
                    );
                }
            }
        }

        // Drain to quiescence: every byte the API accepted arrives, and
        // both worlds agree exactly.
        for _ in 0..1000 {
            sw.settle(now);
            rw.settle(now);
            let d_sock = match sw.sb.recv(&mut sw.b, now, s_server) {
                Ok(d) => d,
                Err(SockError::WouldBlock) => Vec::new(),
                Err(e) => panic!("unexpected recv error: {e}"),
            };
            let d_raw = rw.b.tcp_recv(now, r_server);
            prop_assert_eq!(&d_sock, &d_raw, "drain bytes diverge");
            if d_sock.is_empty() && d_raw.is_empty() {
                break;
            }
            rcvd_sock += d_sock.len() as u64;
            rcvd_raw += d_raw.len() as u64;
        }
        prop_assert_eq!(rcvd_sock, rcvd_raw);
        prop_assert_eq!(rcvd_sock, sent, "every accepted byte arrives");
    }
}
