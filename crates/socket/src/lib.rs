//! A BSD-flavored socket layer over the sans-io [`NetStack`].
//!
//! The paper's §2.4 promise is that "user programs on the Ultrix system
//! can communicate with hosts on the packet radio network **using normal
//! Ultrix networking facilities**" — i.e. sockets, not hand-rolled state
//! machines. This crate supplies that missing layer for the reproduction:
//!
//! * one [`SocketHandle`] type unifying the stack's split
//!   `SockId`/`ListenerId`/`UdpId` handles;
//! * the classic verb set — [`SocketTable::listen`],
//!   [`SocketTable::accept`], [`SocketTable::connect`],
//!   [`SocketTable::send`], [`SocketTable::recv`],
//!   [`SocketTable::shutdown`], [`SocketTable::close`], plus
//!   [`SocketTable::bind_udp`] / [`SocketTable::send_to`] /
//!   [`SocketTable::recv_from`] for datagrams;
//! * [`SocketTable::poll`] / [`SocketTable::select`] readiness bitmasks
//!   ([`Readiness`]) computed from existing TCB/UDP state — never by
//!   busy-polling: wakeups ride the deadline scheduler via
//!   [`SocketTable::next_deadline`] / [`SocketTable::on_deadline`];
//! * blocking and nonblocking modes. A discrete-event world has no thread
//!   to park, so "blocking" is emulated cooperatively: a call that cannot
//!   proceed returns [`SockError::WouldBlock`] and the runtime re-delivers
//!   readiness level-triggered (every scheduler visit while the condition
//!   holds), which is what a process sleeping in a blocked syscall
//!   observes. Nonblocking handles get edge-triggered notification and
//!   must drain.
//!
//! The table is a *thin shim*: it never generates wire traffic of its own
//! and never reorders the stack's actions, so every byte on the air is
//! byte-identical to a program driving `NetStack` directly (the `apps`
//! crate carries a differential test proving exactly that for the echo
//! server).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::net::Ipv4Addr;

use netstack::icmp::IcmpMessage;
use netstack::stack::{ListenerId, NetStack, SockId, StackAction, UdpId};
use netstack::tcp::TcpState;
use netstack::NetError;
use sim::{PacketBuf, SimDuration, SimTime};

/// Readiness bitmask returned by [`SocketTable::poll`].
///
/// Combines the classic `select(2)` read/write sets with the extra facts
/// (`EOF`, `ERROR`) BSD surfaces through `read() == 0` and `SO_ERROR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Readiness(u8);

impl Readiness {
    /// Nothing to report.
    pub const EMPTY: Readiness = Readiness(0);
    /// Data (or a pending accept — see [`Readiness::ACCEPTABLE`]) can be
    /// read without blocking.
    pub const READABLE: Readiness = Readiness(1);
    /// The send buffer has room.
    pub const WRITABLE: Readiness = Readiness(2);
    /// A completed connection is waiting in the accept queue.
    pub const ACCEPTABLE: Readiness = Readiness(4);
    /// The peer closed its direction; reads drain then return empty.
    pub const EOF: Readiness = Readiness(8);
    /// An asynchronous error is pending (refused, reset, unreachable,
    /// timed out, or the handle is closed/invalid).
    pub const ERROR: Readiness = Readiness(16);
    /// The connection is fully torn down (`POLLHUP`): both directions
    /// closed and the TCB has left TIME_WAIT. Distinct from
    /// [`Readiness::EOF`], which reports only the peer's half-close.
    pub const HANGUP: Readiness = Readiness(32);

    /// Raw bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// True when no condition is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when every bit of `other` is set in `self`.
    pub fn contains(self, other: Readiness) -> bool {
        self.0 & other.0 == other.0
    }

    /// Convenience accessor for [`Readiness::READABLE`].
    pub fn readable(self) -> bool {
        self.contains(Readiness::READABLE)
    }

    /// Convenience accessor for [`Readiness::WRITABLE`].
    pub fn writable(self) -> bool {
        self.contains(Readiness::WRITABLE)
    }

    /// Convenience accessor for [`Readiness::ACCEPTABLE`].
    pub fn acceptable(self) -> bool {
        self.contains(Readiness::ACCEPTABLE)
    }

    /// Convenience accessor for [`Readiness::EOF`].
    pub fn eof(self) -> bool {
        self.contains(Readiness::EOF)
    }

    /// Convenience accessor for [`Readiness::ERROR`].
    pub fn error(self) -> bool {
        self.contains(Readiness::ERROR)
    }

    /// Convenience accessor for [`Readiness::HANGUP`].
    pub fn hangup(self) -> bool {
        self.contains(Readiness::HANGUP)
    }
}

impl std::ops::BitOr for Readiness {
    type Output = Readiness;
    fn bitor(self, rhs: Readiness) -> Readiness {
        Readiness(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for Readiness {
    fn bitor_assign(&mut self, rhs: Readiness) {
        self.0 |= rhs.0;
    }
}

/// Errors surfaced by socket calls, the `errno` set of this layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockError {
    /// The operation cannot complete now; wait for readiness
    /// (`EWOULDBLOCK`).
    WouldBlock,
    /// The handle is closed, stale, or of the wrong kind (`EBADF`).
    BadHandle,
    /// TCP operation on a handle whose handshake has not finished
    /// (`ENOTCONN`).
    NotConnected,
    /// The peer reset the connection (`ECONNRESET`).
    ConnectionReset,
    /// The peer refused the connection — RST during handshake
    /// (`ECONNREFUSED`).
    Refused,
    /// A gateway reported the destination unreachable (`EHOSTUNREACH`).
    Unreachable,
    /// The connect timer expired with no handshake (`ETIMEDOUT`).
    TimedOut,
    /// The local port is taken (`EADDRINUSE`).
    InUse,
    /// No route to the destination (`ENETUNREACH` at call time).
    NoRoute,
}

impl fmt::Display for SockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SockError::WouldBlock => "operation would block",
            SockError::BadHandle => "bad socket handle",
            SockError::NotConnected => "socket is not connected",
            SockError::ConnectionReset => "connection reset by peer",
            SockError::Refused => "connection refused",
            SockError::Unreachable => "destination unreachable",
            SockError::TimedOut => "connection timed out",
            SockError::InUse => "address in use",
            SockError::NoRoute => "no route to host",
        };
        f.write_str(s)
    }
}

impl From<NetError> for SockError {
    fn from(e: NetError) -> SockError {
        match e {
            NetError::NoRoute(_) => SockError::NoRoute,
            NetError::InUse => SockError::InUse,
            _ => SockError::BadHandle,
        }
    }
}

/// One handle for every socket kind — stream, listener, or datagram.
///
/// Handles are never reused within a table's lifetime, so a stale handle
/// reports [`Readiness::ERROR`] instead of aliasing a newer socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SocketHandle(usize);

impl SocketHandle {
    /// Raw slot index (stable for the table's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Table-wide tunables.
#[derive(Debug, Clone, Copy)]
pub struct SocketConfig {
    /// How long an active open may sit un-acknowledged before the table
    /// aborts it and latches [`SockError::TimedOut`]. The TCB itself
    /// retransmits forever; this is the 4.3BSD 75-second initial
    /// connection timer.
    pub connect_timeout: SimDuration,
}

impl Default for SocketConfig {
    fn default() -> SocketConfig {
        SocketConfig {
            connect_timeout: SimDuration::from_secs(75),
        }
    }
}

#[derive(Debug)]
struct TcpSlot {
    id: SockId,
    connected: bool,
    /// Latched asynchronous error, reported via ERROR readiness and the
    /// next send/recv, never overwritten once set.
    error: Option<SockError>,
    nonblocking: bool,
    /// Active opens only: when to give up on the handshake.
    connect_deadline: Option<SimTime>,
    /// We sent our FIN via [`SocketTable::shutdown`].
    shut: bool,
}

#[derive(Debug)]
enum Slot {
    Listener {
        id: ListenerId,
        port: u16,
        accept_q: VecDeque<SockId>,
        nonblocking: bool,
    },
    Tcp(TcpSlot),
    Udp {
        id: UdpId,
        nonblocking: bool,
    },
    /// Tombstone left by [`SocketTable::close`].
    Closed,
}

/// The per-host socket table: the descriptor layer between applications
/// and the [`NetStack`].
///
/// Every mutating verb takes `&mut NetStack` and leaves any stack actions
/// it provoked in the stack's pending queue (drain with
/// [`NetStack::drain_actions`]) — the table itself stores no wire state.
/// The owner must feed every action the stack emits back through
/// [`SocketTable::on_action`] so accept queues, connect completion, and
/// asynchronous errors stay current.
#[derive(Debug, Default)]
pub struct SocketTable {
    slots: Vec<Slot>,
    cfg: SocketConfig,
}

impl SocketTable {
    /// Creates an empty table with default config.
    pub fn new() -> SocketTable {
        SocketTable::with_config(SocketConfig::default())
    }

    /// Creates an empty table with explicit tunables.
    pub fn with_config(cfg: SocketConfig) -> SocketTable {
        SocketTable {
            slots: Vec::new(),
            cfg,
        }
    }

    /// The table's tunables.
    pub fn config(&self) -> SocketConfig {
        self.cfg
    }

    fn alloc(&mut self, slot: Slot) -> SocketHandle {
        let h = SocketHandle(self.slots.len());
        self.slots.push(slot);
        h
    }

    fn tcp(&self, h: SocketHandle) -> Result<&TcpSlot, SockError> {
        match self.slots.get(h.0) {
            Some(Slot::Tcp(t)) => Ok(t),
            _ => Err(SockError::BadHandle),
        }
    }

    fn tcp_mut(&mut self, h: SocketHandle) -> Result<&mut TcpSlot, SockError> {
        match self.slots.get_mut(h.0) {
            Some(Slot::Tcp(t)) => Ok(t),
            _ => Err(SockError::BadHandle),
        }
    }

    /// `socket` + `bind` + `listen` in one verb: opens a passive TCP
    /// socket on `port`. `backlog` bounds the accepted-but-unclaimed
    /// queue (`None` = unbounded, the legacy shape); overflow SYNs are
    /// refused with RST by the stack.
    pub fn listen(
        &mut self,
        st: &mut NetStack,
        port: u16,
        backlog: Option<usize>,
    ) -> Result<SocketHandle, SockError> {
        let id = match backlog {
            Some(b) => st.tcp_listen_with(port, b)?,
            None => st.tcp_listen(port)?,
        };
        Ok(self.alloc(Slot::Listener {
            id,
            port,
            accept_q: VecDeque::new(),
            nonblocking: false,
        }))
    }

    /// Active open to `dst:dst_port`. The handle becomes WRITABLE when
    /// the handshake completes, or ERROR-ready on refusal, an ICMP
    /// unreachable, or expiry of [`SocketConfig::connect_timeout`].
    pub fn connect(
        &mut self,
        st: &mut NetStack,
        now: SimTime,
        dst: Ipv4Addr,
        dst_port: u16,
    ) -> Result<SocketHandle, SockError> {
        let id = st.tcp_connect(now, dst, dst_port)?;
        Ok(self.alloc(Slot::Tcp(TcpSlot {
            id,
            connected: false,
            error: None,
            nonblocking: false,
            connect_deadline: Some(now + self.cfg.connect_timeout),
            shut: false,
        })))
    }

    /// Pops one completed connection off a listener's accept queue,
    /// claiming it from the stack's backlog accounting and wrapping it in
    /// a fresh stream handle. Empty queue ⇒ [`SockError::WouldBlock`].
    pub fn accept(
        &mut self,
        st: &mut NetStack,
        h: SocketHandle,
    ) -> Result<SocketHandle, SockError> {
        let sock = match self.slots.get_mut(h.0) {
            Some(Slot::Listener { accept_q, .. }) => {
                accept_q.pop_front().ok_or(SockError::WouldBlock)?
            }
            _ => return Err(SockError::BadHandle),
        };
        st.tcp_claim(sock);
        Ok(self.alloc(Slot::Tcp(TcpSlot {
            id: sock,
            connected: true,
            error: None,
            nonblocking: false,
            connect_deadline: None,
            shut: false,
        })))
    }

    /// Queues bytes for transmission; returns how many the send buffer
    /// accepted. A full buffer with a nonempty `data` is
    /// [`SockError::WouldBlock`] — wait for WRITABLE.
    pub fn send(
        &mut self,
        st: &mut NetStack,
        now: SimTime,
        h: SocketHandle,
        data: &[u8],
    ) -> Result<usize, SockError> {
        let t = self.tcp(h)?;
        if let Some(e) = t.error {
            return Err(e);
        }
        if !t.connected {
            return Err(SockError::NotConnected);
        }
        let id = t.id;
        let n = st.tcp_send(now, id, data);
        if n == 0 && !data.is_empty() {
            return Err(SockError::WouldBlock);
        }
        Ok(n)
    }

    /// Drains received bytes. `Ok(empty)` means EOF (the peer finished);
    /// no data *before* EOF is [`SockError::WouldBlock`] — wait for
    /// READABLE.
    pub fn recv(
        &mut self,
        st: &mut NetStack,
        now: SimTime,
        h: SocketHandle,
    ) -> Result<Vec<u8>, SockError> {
        let t = self.tcp(h)?;
        if let Some(e) = t.error {
            return Err(e);
        }
        if !t.connected {
            return Err(SockError::NotConnected);
        }
        let id = t.id;
        let data = st.tcp_recv(now, id);
        if !data.is_empty() {
            return Ok(data);
        }
        if st.tcp_at_eof(id) {
            return Ok(Vec::new());
        }
        Err(SockError::WouldBlock)
    }

    /// Half-close: sends our FIN but keeps the handle readable so the
    /// peer's remaining data (and EOF) can still be drained.
    pub fn shutdown(
        &mut self,
        st: &mut NetStack,
        now: SimTime,
        h: SocketHandle,
    ) -> Result<(), SockError> {
        let t = self.tcp_mut(h)?;
        t.shut = true;
        let id = t.id;
        st.tcp_close(now, id);
        Ok(())
    }

    /// Releases the handle. Streams get an orderly close (FIN) if still
    /// open; the slot becomes a tombstone that reports ERROR readiness
    /// forever after. Closing an already-closed or bogus handle is a
    /// no-op, like `close(2)` on a stale fd.
    pub fn close(&mut self, st: &mut NetStack, now: SimTime, h: SocketHandle) {
        let Some(slot) = self.slots.get_mut(h.0) else {
            return;
        };
        match slot {
            Slot::Tcp(t) => {
                if st.tcp_state(t.id) != TcpState::Closed {
                    st.tcp_close(now, t.id);
                }
            }
            Slot::Listener { .. } | Slot::Udp { .. } | Slot::Closed => {}
        }
        *slot = Slot::Closed;
    }

    /// `socket` + `bind` for datagrams: opens a UDP socket on `port`.
    pub fn bind_udp(&mut self, st: &mut NetStack, port: u16) -> Result<SocketHandle, SockError> {
        let id = st.udp_bind(port)?;
        Ok(self.alloc(Slot::Udp {
            id,
            nonblocking: false,
        }))
    }

    /// Sends one datagram. UDP never blocks.
    pub fn send_to(
        &mut self,
        st: &mut NetStack,
        h: SocketHandle,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Result<(), SockError> {
        match self.slots.get(h.0) {
            Some(Slot::Udp { id, .. }) => {
                st.udp_send(*id, dst, dst_port, payload);
                Ok(())
            }
            _ => Err(SockError::BadHandle),
        }
    }

    /// Pops one received datagram: `(source, source port, payload)`. The
    /// payload arrives in a pooled buffer that recycles on drop. Empty
    /// queue ⇒ [`SockError::WouldBlock`].
    pub fn recv_from(
        &mut self,
        st: &mut NetStack,
        h: SocketHandle,
    ) -> Result<(Ipv4Addr, u16, PacketBuf), SockError> {
        match self.slots.get(h.0) {
            Some(Slot::Udp { id, .. }) => st.udp_recv(*id).ok_or(SockError::WouldBlock),
            _ => Err(SockError::BadHandle),
        }
    }

    /// Marks a handle nonblocking (edge-triggered notification under the
    /// app runtime) or blocking (level-triggered re-delivery, the
    /// cooperative stand-in for a parked process).
    pub fn set_nonblocking(&mut self, h: SocketHandle, on: bool) -> Result<(), SockError> {
        match self.slots.get_mut(h.0) {
            Some(Slot::Tcp(t)) => {
                t.nonblocking = on;
                Ok(())
            }
            Some(Slot::Listener { nonblocking, .. }) | Some(Slot::Udp { nonblocking, .. }) => {
                *nonblocking = on;
                Ok(())
            }
            _ => Err(SockError::BadHandle),
        }
    }

    /// True when the handle is in nonblocking mode.
    pub fn is_nonblocking(&self, h: SocketHandle) -> bool {
        match self.slots.get(h.0) {
            Some(Slot::Tcp(t)) => t.nonblocking,
            Some(Slot::Listener { nonblocking, .. }) | Some(Slot::Udp { nonblocking, .. }) => {
                *nonblocking
            }
            _ => false,
        }
    }

    /// The remote `(address, port)` of a connected stream.
    pub fn peer_addr(&self, st: &NetStack, h: SocketHandle) -> Option<(Ipv4Addr, u16)> {
        match self.slots.get(h.0) {
            Some(Slot::Tcp(t)) => st.tcp_remote(t.id),
            _ => None,
        }
    }

    /// Room in a stream's send buffer, for apps that pump bulk data on
    /// WRITABLE edges.
    pub fn send_capacity(&self, st: &NetStack, h: SocketHandle) -> usize {
        match self.slots.get(h.0) {
            Some(Slot::Tcp(t)) if t.connected && t.error.is_none() => st.tcp_send_capacity(t.id),
            _ => 0,
        }
    }

    /// The latched asynchronous error, if any — `SO_ERROR` without the
    /// clear-on-read.
    pub fn take_error(&self, h: SocketHandle) -> Option<SockError> {
        match self.slots.get(h.0) {
            Some(Slot::Tcp(t)) => t.error,
            _ => None,
        }
    }

    /// Computes the readiness mask for one handle from current stack
    /// state. Pure — no side effects, no wire traffic. Closed tombstones
    /// and bogus handles report [`Readiness::ERROR`].
    pub fn poll(&self, st: &NetStack, h: SocketHandle) -> Readiness {
        match self.slots.get(h.0) {
            Some(Slot::Listener { accept_q, .. }) => {
                if accept_q.is_empty() {
                    Readiness::EMPTY
                } else {
                    Readiness::ACCEPTABLE | Readiness::READABLE
                }
            }
            Some(Slot::Tcp(t)) => {
                let mut r = Readiness::EMPTY;
                if t.error.is_some() {
                    r |= Readiness::ERROR;
                }
                if t.connected {
                    if st.tcp_recv_available(t.id) > 0 {
                        r |= Readiness::READABLE;
                    }
                    if !t.shut && st.tcp_send_capacity(t.id) > 0 {
                        r |= Readiness::WRITABLE;
                    }
                    if st.tcp_at_eof(t.id) {
                        r |= Readiness::EOF;
                    }
                    if st.tcp_state(t.id) == TcpState::Closed {
                        r |= Readiness::HANGUP;
                    }
                }
                r
            }
            Some(Slot::Udp { id, .. }) => {
                let mut r = Readiness::WRITABLE;
                if st.udp_rx_queued(*id) > 0 {
                    r |= Readiness::READABLE;
                }
                r
            }
            Some(Slot::Closed) | None => Readiness::ERROR,
        }
    }

    /// `select(2)`: polls many handles, returning only the ready ones.
    pub fn select(
        &self,
        st: &NetStack,
        handles: &[SocketHandle],
    ) -> Vec<(SocketHandle, Readiness)> {
        handles
            .iter()
            .filter_map(|&h| {
                let r = self.poll(st, h);
                if r.is_empty() {
                    None
                } else {
                    Some((h, r))
                }
            })
            .collect()
    }

    /// The earliest moment [`SocketTable::on_deadline`] has work —
    /// currently the soonest pending connect timeout. Fold this into the
    /// host's scheduler deadline; never busy-poll.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Tcp(t) if !t.connected => t.connect_deadline,
                _ => None,
            })
            .min()
    }

    /// Fires expired connect timers: aborts the half-open TCB and latches
    /// [`SockError::TimedOut`] (unless a more specific error already
    /// arrived). Any actions the aborts provoke land in the stack's
    /// pending queue.
    pub fn on_deadline(&mut self, st: &mut NetStack, now: SimTime) {
        for slot in &mut self.slots {
            if let Slot::Tcp(t) = slot {
                if !t.connected && t.connect_deadline.is_some_and(|d| d <= now) {
                    t.connect_deadline = None;
                    if t.error.is_none() {
                        t.error = Some(SockError::TimedOut);
                    }
                    st.tcp_abort(now, t.id);
                }
            }
        }
    }

    /// Observes one stack action, updating accept queues, connect state,
    /// and latched errors. The owner must route **every** action the
    /// stack emits through here (before or after its own handling — the
    /// table only reads the stack).
    pub fn on_action(&mut self, st: &NetStack, act: &StackAction) {
        match act {
            StackAction::TcpAccepted { listener, sock } => {
                for slot in &mut self.slots {
                    if let Slot::Listener { id, accept_q, .. } = slot {
                        if id == listener {
                            accept_q.push_back(*sock);
                            return;
                        }
                    }
                }
            }
            StackAction::TcpConnected(sock) => {
                for slot in &mut self.slots {
                    if let Slot::Tcp(t) = slot {
                        if t.id == *sock {
                            t.connected = true;
                            t.connect_deadline = None;
                            return;
                        }
                    }
                }
            }
            StackAction::TcpClosed { sock, reset } => {
                for slot in &mut self.slots {
                    if let Slot::Tcp(t) = slot {
                        if t.id == *sock {
                            t.connect_deadline = None;
                            if t.error.is_none() {
                                if !t.connected {
                                    // RST during handshake is a refusal;
                                    // anything else that kills a half-open
                                    // connection reads as a reset too.
                                    t.error = Some(if *reset {
                                        SockError::Refused
                                    } else {
                                        SockError::ConnectionReset
                                    });
                                } else if *reset {
                                    t.error = Some(SockError::ConnectionReset);
                                }
                            }
                            return;
                        }
                    }
                }
            }
            StackAction::IcmpProblem {
                message: IcmpMessage::DestUnreachable { original, .. },
                ..
            } => {
                self.note_unreachable(st, original);
            }
            _ => {}
        }
    }

    /// Maps an ICMP destination-unreachable quote back to the in-flight
    /// connect it refers to and latches [`SockError::Unreachable`].
    fn note_unreachable(&mut self, st: &NetStack, original: &[u8]) {
        let Some((src, src_port, dst, dst_port)) = quoted_tcp_flow(original) else {
            return;
        };
        for slot in &mut self.slots {
            if let Slot::Tcp(t) = slot {
                if !t.connected
                    && t.error.is_none()
                    && st.tcp_local(t.id) == Some((src, src_port))
                    && st.tcp_remote(t.id) == Some((dst, dst_port))
                {
                    t.error = Some(SockError::Unreachable);
                    return;
                }
            }
        }
    }

    /// Reverse lookup: which handle (if any) does this stack action
    /// concern? Lets an app runtime route events without the table.
    pub fn handle_for_action(&self, act: &StackAction) -> Option<SocketHandle> {
        let find_tcp = |want: SockId| {
            self.slots.iter().position(|s| match s {
                Slot::Tcp(t) => t.id == want,
                _ => false,
            })
        };
        match act {
            StackAction::TcpAccepted { listener, .. } => self.slots.iter().position(|s| match s {
                Slot::Listener { id, .. } => id == listener,
                _ => false,
            }),
            StackAction::TcpConnected(sock)
            | StackAction::TcpReadable(sock)
            | StackAction::TcpPeerClosed(sock) => find_tcp(*sock),
            StackAction::TcpClosed { sock, .. } => find_tcp(*sock),
            StackAction::UdpReadable(udp) => self.slots.iter().position(|s| match s {
                Slot::Udp { id, .. } => id == udp,
                _ => false,
            }),
            _ => None,
        }
        .map(SocketHandle)
    }

    /// Every live (non-tombstone) handle, for diagnostics.
    pub fn live_handles(&self) -> Vec<SocketHandle> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, Slot::Closed))
            .map(|(i, _)| SocketHandle(i))
            .collect()
    }

    /// The listener's bound port, if `h` is a listener.
    pub fn listener_port(&self, h: SocketHandle) -> Option<u16> {
        match self.slots.get(h.0) {
            Some(Slot::Listener { port, .. }) => Some(*port),
            _ => None,
        }
    }
}

/// Parses the flow 4-tuple out of an ICMP error's quoted original
/// datagram (IP header + 8 payload octets) when the quoted protocol is
/// TCP. The quote is *truncated* relative to its own total-length field,
/// so the full [`netstack::ip::Ipv4Packet::decode`] cannot be used here —
/// this reads the handful of fixed offsets directly.
fn quoted_tcp_flow(original: &[u8]) -> Option<(Ipv4Addr, u16, Ipv4Addr, u16)> {
    if original.len() < 20 {
        return None;
    }
    let ihl = usize::from(original[0] & 0x0F) * 4;
    if ihl < 20 || original.len() < ihl + 4 {
        return None;
    }
    if original[9] != 6 {
        return None; // not TCP
    }
    let ip = |o: usize| {
        Ipv4Addr::new(
            original[o],
            original[o + 1],
            original[o + 2],
            original[o + 3],
        )
    };
    let port = |o: usize| u16::from_be_bytes([original[o], original[o + 1]]);
    Some((ip(12), port(ihl), ip(16), port(ihl + 2)))
}

#[cfg(test)]
mod tests;
