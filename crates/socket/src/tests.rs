//! In-crate tests: two stacks on a lossless wire, each fronted by a
//! `SocketTable`, exercising the full verb set and the readiness edges
//! the satellite checklist calls out.

use super::*;
use netstack::icmp::UnreachCode;
use netstack::stack::IfaceId;

fn ipa(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

/// Two hosts joined by a zero-loss, zero-delay wire, with a socket table
/// on each side. Every stack action is routed through the owning table's
/// `on_action` before (possibly) crossing the wire.
struct Pair {
    a: NetStack,
    b: NetStack,
    a_if: IfaceId,
    b_if: IfaceId,
    sa: SocketTable,
    sb: SocketTable,
}

impl Pair {
    fn new() -> Pair {
        let (a, a_if) = NetStack::simple_host(ipa(1), 24, 1500, None);
        let (b, b_if) = NetStack::simple_host(ipa(2), 24, 1500, None);
        Pair {
            a,
            b,
            a_if,
            b_if,
            sa: SocketTable::new(),
            sb: SocketTable::new(),
        }
    }

    /// Drains both stacks' pending actions and pumps packets back and
    /// forth until neither side has anything left to say.
    fn settle(&mut self, now: SimTime) {
        let mut from_a = self.a.drain_actions();
        let mut from_b = self.b.drain_actions();
        for _ in 0..10_000 {
            if from_a.is_empty() && from_b.is_empty() {
                return;
            }
            let mut next_a = Vec::new();
            let mut next_b = Vec::new();
            for act in from_a.drain(..) {
                self.sa.on_action(&self.a, &act);
                if let StackAction::Egress { packet, .. } = act {
                    next_b.extend(self.b.input(now, self.b_if, &packet.encode()));
                }
            }
            for act in from_b.drain(..) {
                self.sb.on_action(&self.b, &act);
                if let StackAction::Egress { packet, .. } = act {
                    next_a.extend(self.a.input(now, self.a_if, &packet.encode()));
                }
            }
            from_a = next_a;
            from_b = next_b;
        }
        panic!("pair did not settle");
    }

    /// Connects a→b on `port` (b must be listening) and returns the two
    /// stream handles (client on a, accepted on b).
    fn connected_streams(&mut self, now: SimTime, port: u16) -> (SocketHandle, SocketHandle) {
        let lh = self.sb.listen(&mut self.b, port, Some(4)).unwrap();
        let ch = self.sa.connect(&mut self.a, now, ipa(2), port).unwrap();
        self.settle(now);
        assert!(self.sa.poll(&self.a, ch).writable(), "client connected");
        assert!(self.sb.poll(&self.b, lh).acceptable(), "accept queued");
        let sh = self.sb.accept(&mut self.b, lh).unwrap();
        (ch, sh)
    }
}

#[test]
fn stream_roundtrip_with_readiness_edges() {
    let now = SimTime::ZERO;
    let mut p = Pair::new();
    let lh = p.sb.listen(&mut p.b, 7, None).unwrap();

    // Nothing queued yet: accept would block, listener not ready.
    assert_eq!(p.sb.accept(&mut p.b, lh), Err(SockError::WouldBlock));
    assert!(p.sb.poll(&p.b, lh).is_empty());

    let ch = p.sa.connect(&mut p.a, now, ipa(2), 7).unwrap();
    // Handshake in flight: not writable, send refuses.
    assert!(!p.sa.poll(&p.a, ch).writable());
    assert_eq!(
        p.sa.send(&mut p.a, now, ch, b"early"),
        Err(SockError::NotConnected)
    );

    p.settle(now);
    assert!(p.sa.poll(&p.a, ch).writable());
    let sh = p.sb.accept(&mut p.b, lh).unwrap();
    assert!(p.sb.poll(&p.b, sh).writable());

    // Client → server.
    assert_eq!(p.sa.send(&mut p.a, now, ch, b"de N7AKR").unwrap(), 8);
    p.settle(now);
    assert!(p.sb.poll(&p.b, sh).readable());
    assert_eq!(p.sb.recv(&mut p.b, now, sh).unwrap(), b"de N7AKR");
    assert!(!p.sb.poll(&p.b, sh).readable(), "drained");
    assert_eq!(p.sb.recv(&mut p.b, now, sh), Err(SockError::WouldBlock));
    p.settle(now);

    // Server → client.
    p.sb.send(&mut p.b, now, sh, b"qsl").unwrap();
    p.settle(now);
    assert_eq!(p.sa.recv(&mut p.a, now, ch).unwrap(), b"qsl");
    p.settle(now);

    // select() sees exactly the ready handles.
    let ready = p.sa.select(&p.a, &[ch]);
    assert_eq!(ready.len(), 1);
    assert!(ready[0].1.writable() && !ready[0].1.readable());
}

#[test]
fn recv_after_eof_returns_empty_and_eof_mask() {
    let now = SimTime::ZERO;
    let mut p = Pair::new();
    let (ch, sh) = p.connected_streams(now, 9);

    p.sa.send(&mut p.a, now, ch, b"final words").unwrap();
    p.sa.shutdown(&mut p.a, now, ch).unwrap();
    p.settle(now);

    // Half-close: the shut side stops advertising WRITABLE…
    assert!(!p.sa.poll(&p.a, ch).writable());
    // …the peer still drains the data, then sees EOF.
    let r = p.sb.poll(&p.b, sh);
    assert!(r.readable());
    assert_eq!(p.sb.recv(&mut p.b, now, sh).unwrap(), b"final words");
    p.settle(now);
    assert!(p.sb.poll(&p.b, sh).eof());
    assert_eq!(p.sb.recv(&mut p.b, now, sh).unwrap(), Vec::<u8>::new());
    // EOF is sticky.
    assert_eq!(p.sb.recv(&mut p.b, now, sh).unwrap(), Vec::<u8>::new());
}

#[test]
fn poll_on_closed_or_bogus_handle_reports_error() {
    let now = SimTime::ZERO;
    let mut p = Pair::new();
    let (ch, _sh) = p.connected_streams(now, 11);

    p.sa.close(&mut p.a, now, ch);
    p.settle(now);
    assert_eq!(p.sa.poll(&p.a, ch), Readiness::ERROR);
    assert_eq!(p.sa.recv(&mut p.a, now, ch), Err(SockError::BadHandle));
    assert_eq!(
        p.sa.send(&mut p.a, now, ch, b"x"),
        Err(SockError::BadHandle)
    );
    // Double close is a harmless no-op.
    p.sa.close(&mut p.a, now, ch);

    // A handle that never existed is equally dead.
    let bogus = SocketHandle(999);
    assert_eq!(p.sa.poll(&p.a, bogus), Readiness::ERROR);
    assert_eq!(p.sa.accept(&mut p.a, bogus), Err(SockError::BadHandle));
}

#[test]
fn connect_timeout_latches_error_readiness_not_hang() {
    // A host whose default route points at a silent void: SYNs vanish,
    // no ICMP ever comes back (the stack drops no-route traffic
    // silently, and here the gateway simply never answers).
    let (mut st, _ifid) = NetStack::simple_host(ipa(1), 24, 1500, Some(ipa(2)));
    let mut tbl = SocketTable::with_config(SocketConfig {
        connect_timeout: SimDuration::from_secs(30),
    });
    let now = SimTime::ZERO;
    let h = tbl
        .connect(&mut st, now, Ipv4Addr::new(44, 99, 0, 1), 23)
        .unwrap();
    let _ = st.drain_actions(); // the SYN, dropped on the floor

    let deadline = tbl.next_deadline().expect("connect timer armed");
    assert_eq!(deadline, now + SimDuration::from_secs(30));

    // Walk time forward the way a host's advance() does: fire stack
    // timers (retransmissions — dropped) and the table deadline.
    let mut t = now;
    while t < deadline {
        t = match st.next_deadline() {
            Some(d) if d < deadline => d,
            _ => deadline,
        };
        let _ = st.poll(t);
        if tbl.next_deadline().is_some_and(|d| d <= t) {
            tbl.on_deadline(&mut st, t);
            let _ = st.drain_actions();
        }
    }
    assert!(tbl.poll(&st, h).error(), "error-readiness, not a hang");
    assert_eq!(tbl.take_error(h), Some(SockError::TimedOut));
    assert_eq!(tbl.recv(&mut st, t, h), Err(SockError::TimedOut));
    assert_eq!(tbl.next_deadline(), None, "timer disarmed");
}

#[test]
fn icmp_unreachable_maps_to_pending_connect() {
    let (mut st, _ifid) = NetStack::simple_host(ipa(1), 24, 1500, Some(ipa(2)));
    let mut tbl = SocketTable::new();
    let now = SimTime::ZERO;
    let dst = Ipv4Addr::new(44, 99, 0, 7);
    let h = tbl.connect(&mut st, now, dst, 23).unwrap();
    let _ = st.drain_actions();
    let (local_ip, local_port) = {
        let t = match &tbl.slots[h.0] {
            Slot::Tcp(t) => t.id,
            _ => unreachable!(),
        };
        st.tcp_local(t).unwrap()
    };

    // Hand-build the gateway's quote: 20-byte IP header + the first 8
    // octets of our SYN (ports + sequence), exactly what RFC 792 sends.
    let mut original = vec![0u8; 28];
    original[0] = 0x45;
    original[9] = 6; // TCP
    original[12..16].copy_from_slice(&local_ip.octets());
    original[16..20].copy_from_slice(&dst.octets());
    original[20..22].copy_from_slice(&local_port.to_be_bytes());
    original[22..24].copy_from_slice(&23u16.to_be_bytes());

    tbl.on_action(
        &st,
        &StackAction::IcmpProblem {
            from: ipa(2),
            message: IcmpMessage::DestUnreachable {
                code: UnreachCode::Host,
                original,
            },
        },
    );
    assert!(tbl.poll(&st, h).error());
    assert_eq!(tbl.take_error(h), Some(SockError::Unreachable));

    // A quote for some *other* flow must not poison this handle.
    let h2 = tbl.connect(&mut st, now, dst, 25).unwrap();
    let _ = st.drain_actions();
    let mut other = vec![0u8; 28];
    other[0] = 0x45;
    other[9] = 6;
    other[12..16].copy_from_slice(&local_ip.octets());
    other[16..20].copy_from_slice(&Ipv4Addr::new(44, 99, 0, 8).octets());
    other[20..22].copy_from_slice(&9999u16.to_be_bytes());
    other[22..24].copy_from_slice(&25u16.to_be_bytes());
    tbl.on_action(
        &st,
        &StackAction::IcmpProblem {
            from: ipa(2),
            message: IcmpMessage::DestUnreachable {
                code: UnreachCode::Host,
                original: other,
            },
        },
    );
    assert_eq!(tbl.take_error(h2), None);
}

#[test]
fn refused_connect_latches_refused() {
    // b has no listener on 23: its stack answers the SYN with RST.
    let now = SimTime::ZERO;
    let mut p = Pair::new();
    let ch = p.sa.connect(&mut p.a, now, ipa(2), 23).unwrap();
    p.settle(now);
    assert!(p.sa.poll(&p.a, ch).error());
    assert_eq!(p.sa.take_error(ch), Some(SockError::Refused));
    assert_eq!(p.sa.send(&mut p.a, now, ch, b"x"), Err(SockError::Refused));
    assert_eq!(p.sa.next_deadline(), None, "connect timer disarmed by RST");
}

#[test]
fn accept_backlog_overflow_refuses_and_claim_frees() {
    let now = SimTime::ZERO;
    let mut p = Pair::new();
    let lh = p.sb.listen(&mut p.b, 21, Some(1)).unwrap();

    let c1 = p.sa.connect(&mut p.a, now, ipa(2), 21).unwrap();
    p.settle(now);
    assert!(p.sa.poll(&p.a, c1).writable());

    // Backlog full: the second connect gets an RST → Refused.
    let c2 = p.sa.connect(&mut p.a, now, ipa(2), 21).unwrap();
    p.settle(now);
    assert_eq!(p.sa.take_error(c2), Some(SockError::Refused));
    assert_eq!(p.b.stats().accept_overflow, 1);

    // accept() claims the queued connection, freeing the backlog slot.
    let _s1 = p.sb.accept(&mut p.b, lh).unwrap();
    let c3 = p.sa.connect(&mut p.a, now, ipa(2), 21).unwrap();
    p.settle(now);
    assert!(p.sa.poll(&p.a, c3).writable());
}

#[test]
fn udp_datagram_roundtrip_and_readiness() {
    let now = SimTime::ZERO;
    let mut p = Pair::new();
    let ua = p.sa.bind_udp(&mut p.a, 4000).unwrap();
    let ub = p.sb.bind_udp(&mut p.b, 53).unwrap();

    // UDP is born writable, not readable.
    assert!(p.sb.poll(&p.b, ub).writable());
    assert!(!p.sb.poll(&p.b, ub).readable());
    assert_eq!(p.sb.recv_from(&mut p.b, ub), Err(SockError::WouldBlock));

    p.sa.send_to(&mut p.a, ua, ipa(2), 53, b"QUERY?".to_vec())
        .unwrap();
    p.settle(now);
    assert!(p.sb.poll(&p.b, ub).readable());
    let (src, sport, payload) = p.sb.recv_from(&mut p.b, ub).unwrap();
    assert_eq!(src, ipa(1));
    assert_eq!(sport, 4000);
    assert_eq!(payload.as_slice(), b"QUERY?");
    drop(payload);
    assert!(!p.sb.poll(&p.b, ub).readable());
}

#[test]
fn nonblocking_flag_roundtrips_per_handle() {
    let now = SimTime::ZERO;
    let mut p = Pair::new();
    let (ch, sh) = p.connected_streams(now, 13);
    assert!(!p.sa.is_nonblocking(ch));
    p.sa.set_nonblocking(ch, true).unwrap();
    assert!(p.sa.is_nonblocking(ch));
    assert!(!p.sb.is_nonblocking(sh));
    assert_eq!(
        p.sa.set_nonblocking(SocketHandle(999), true),
        Err(SockError::BadHandle)
    );
}

#[test]
fn handle_for_action_routes_events() {
    let now = SimTime::ZERO;
    let mut p = Pair::new();
    let lh = p.sb.listen(&mut p.b, 7, None).unwrap();
    let ch = p.sa.connect(&mut p.a, now, ipa(2), 7).unwrap();
    p.settle(now);
    let sh = p.sb.accept(&mut p.b, lh).unwrap();

    let (sid_a, sid_b) = {
        let a = match &p.sa.slots[ch.0] {
            Slot::Tcp(t) => t.id,
            _ => unreachable!(),
        };
        let b = match &p.sb.slots[sh.0] {
            Slot::Tcp(t) => t.id,
            _ => unreachable!(),
        };
        (a, b)
    };
    assert_eq!(
        p.sa.handle_for_action(&StackAction::TcpReadable(sid_a)),
        Some(ch)
    );
    assert_eq!(
        p.sb.handle_for_action(&StackAction::TcpPeerClosed(sid_b)),
        Some(sh)
    );
    assert_eq!(
        p.sa.handle_for_action(&StackAction::TcpConnected(sid_a)),
        Some(ch)
    );
    // Actions the table has no slot for route nowhere.
    assert_eq!(
        p.sa.handle_for_action(&StackAction::PingReply {
            from: ipa(2),
            id: 1,
            seq: 1,
            len: 0,
        }),
        None
    );
}

#[test]
fn quoted_flow_parser_handles_garbage() {
    assert_eq!(quoted_tcp_flow(&[]), None);
    assert_eq!(quoted_tcp_flow(&[0u8; 19]), None);
    // Non-TCP quote.
    let mut udp_quote = vec![0u8; 28];
    udp_quote[0] = 0x45;
    udp_quote[9] = 17;
    assert_eq!(quoted_tcp_flow(&udp_quote), None);
    // Options-bearing header (ihl 6) with too little room for ports.
    let mut short = vec![0u8; 25];
    short[0] = 0x46;
    short[9] = 6;
    assert_eq!(quoted_tcp_flow(&short), None);
    // A well-formed quote parses.
    let mut ok = vec![0u8; 28];
    ok[0] = 0x45;
    ok[9] = 6;
    ok[12..16].copy_from_slice(&[10, 0, 0, 1]);
    ok[16..20].copy_from_slice(&[44, 99, 0, 7]);
    ok[20..22].copy_from_slice(&1025u16.to_be_bytes());
    ok[22..24].copy_from_slice(&23u16.to_be_bytes());
    assert_eq!(
        quoted_tcp_flow(&ok),
        Some((ipa(1), 1025, Ipv4Addr::new(44, 99, 0, 7), 23))
    );
}
