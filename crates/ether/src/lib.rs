//! Ethernet substrate: the fast side of the paper's gateway.
//!
//! The MicroVAX in the paper sits on the department's 10 Mb/s Ethernet
//! (via a DEQNA controller, §2.2) and bridges it to the 1200 bit/s radio
//! subnet. Only two properties of the Ethernet matter for the reproduced
//! experiments: it is roughly four orders of magnitude faster than the
//! radio channel, and it delivers broadcasts (for ARP). The model here is
//! therefore a FIFO shared segment with per-frame serialization delay and
//! MAC-filtered delivery — no collision modelling, which at the offered
//! loads of these experiments would change nothing.
//!
//! # Examples
//!
//! ```
//! use ether::{EtherFrame, EtherType, MacAddr, Segment};
//! use sim::{Bandwidth, SimTime};
//!
//! let mut seg = Segment::new(Bandwidth::ETHERNET_10M);
//! let a = seg.attach(MacAddr::new([2, 0, 0, 0, 0, 1]));
//! let b = seg.attach(MacAddr::new([2, 0, 0, 0, 0, 2]));
//! let frame = EtherFrame::new(
//!     MacAddr::new([2, 0, 0, 0, 0, 2]),
//!     MacAddr::new([2, 0, 0, 0, 0, 1]),
//!     EtherType::Ipv4,
//!     vec![0u8; 100],
//! );
//! seg.send(SimTime::ZERO, a, frame);
//! let t = seg.next_deadline().unwrap();
//! let delivered = seg.advance(t);
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].0, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;

use sim::pktbuf::ByteSink;
use sim::wire::{Codec, Reader, WireError};
use sim::{Bandwidth, SimDuration, SimTime};

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast address, `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Creates an address from raw octets.
    pub const fn new(octets: [u8; 6]) -> MacAddr {
        MacAddr(octets)
    }

    /// A locally-administered unicast address derived from a small index,
    /// convenient for test topologies.
    pub const fn local(n: u16) -> MacAddr {
        MacAddr([0x02, 0x00, 0x00, 0x00, (n >> 8) as u8, n as u8])
    }

    /// The raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// The EtherType field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// 0x0800 — Internet Protocol version 4.
    Ipv4,
    /// 0x0806 — Address Resolution Protocol.
    Arp,
    /// Anything else, carried opaquely.
    Other(u16),
}

impl EtherType {
    /// Wire value.
    pub fn code(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Decodes a wire value.
    pub fn from_code(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// Ethernet v2 MTU.
pub const MTU: usize = 1500;
/// Minimum payload (frames are padded up to this).
pub const MIN_PAYLOAD: usize = 46;

/// An Ethernet II frame (FCS omitted; the segment model is lossless).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EtherFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// Payload octets (≤ [`MTU`]).
    pub payload: Vec<u8>,
}

impl EtherFrame {
    /// Creates a frame.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the [`MTU`].
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> EtherFrame {
        assert!(payload.len() <= MTU, "payload exceeds Ethernet MTU");
        EtherFrame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// An empty placeholder frame, useful as a reusable clone target for
    /// [`EtherFrame::clone_into`].
    pub fn empty() -> EtherFrame {
        EtherFrame {
            dst: MacAddr::new([0; 6]),
            src: MacAddr::new([0; 6]),
            ethertype: EtherType::Other(0),
            payload: Vec::new(),
        }
    }

    /// Copies this frame into `dst`, reusing `dst`'s payload allocation.
    /// A warmed-up target frame makes repeated copies allocation-free —
    /// the cross-shard delivery path relies on this (DESIGN.md §11).
    pub fn clone_into(&self, dst: &mut EtherFrame) {
        dst.dst = self.dst;
        dst.src = self.src;
        dst.ethertype = self.ethertype;
        dst.payload.clear();
        dst.payload.extend_from_slice(&self.payload);
    }

    /// On-wire length in octets, including header and minimum-size padding
    /// (used for serialization-delay math).
    pub fn wire_len(&self) -> usize {
        14 + self.payload.len().max(MIN_PAYLOAD)
    }

    /// Encodes header + payload, padding the payload to [`MIN_PAYLOAD`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out
    }

    /// Appends header + padded payload to any [`ByteSink`].
    pub fn encode_into(&self, out: &mut impl ByteSink) {
        out.put_slice(&self.dst.octets());
        out.put_slice(&self.src.octets());
        out.put_slice(&self.ethertype.code().to_be_bytes());
        out.put_slice(&self.payload);
        for _ in self.payload.len()..MIN_PAYLOAD {
            out.put(0);
        }
    }

    /// Decodes a frame. Padding is preserved in `payload`; length-aware
    /// upper layers (IPv4's total-length field) trim it.
    pub fn decode(bytes: &[u8]) -> Result<EtherFrame, WireError> {
        let mut r = Reader::new(bytes);
        let dst = MacAddr(r.take(6)?.try_into().expect("len checked"));
        let src = MacAddr(r.take(6)?.try_into().expect("len checked"));
        let ethertype = EtherType::from_code(r.u16()?);
        let payload = r.rest().to_vec();
        if payload.len() > MTU {
            return Err(WireError::BadLength);
        }
        Ok(EtherFrame {
            dst,
            src,
            ethertype,
            payload,
        })
    }
}

impl Codec for EtherFrame {
    type Error = WireError;

    fn encode_into(&self, out: &mut impl ByteSink) {
        EtherFrame::encode_into(self, out);
    }

    fn decode(bytes: &[u8]) -> Result<EtherFrame, WireError> {
        EtherFrame::decode(bytes)
    }
}

/// Handle for a NIC attached to a [`Segment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NicId(usize);

#[derive(Debug)]
struct Nic {
    mac: MacAddr,
    promiscuous: bool,
}

/// Per-segment statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SegmentStats {
    /// Frames accepted for transmission.
    pub sent: u64,
    /// Frame deliveries (one per receiving NIC).
    pub delivered: u64,
    /// Octets serialized onto the segment.
    pub bytes_on_wire: u64,
}

/// A shared Ethernet segment: FIFO serialization, broadcast delivery.
#[derive(Debug)]
pub struct Segment {
    rate: Bandwidth,
    nics: Vec<Nic>,
    /// Frames queued behind the one on the wire.
    queue: VecDeque<(NicId, EtherFrame)>,
    /// The frame currently serializing and its completion time.
    in_flight: Option<(SimTime, NicId, EtherFrame)>,
    stats: SegmentStats,
}

/// Interframe gap at 10 Mb/s (9.6 µs).
const IFG: SimDuration = SimDuration::from_micros(10);

impl Segment {
    /// Creates an empty segment at `rate`.
    pub fn new(rate: Bandwidth) -> Segment {
        Segment {
            rate,
            nics: Vec::new(),
            queue: VecDeque::new(),
            in_flight: None,
            stats: SegmentStats::default(),
        }
    }

    /// Attaches a NIC with the given MAC.
    pub fn attach(&mut self, mac: MacAddr) -> NicId {
        self.nics.push(Nic {
            mac,
            promiscuous: false,
        });
        NicId(self.nics.len() - 1)
    }

    /// Puts a NIC into promiscuous mode (receives all frames).
    pub fn set_promiscuous(&mut self, nic: NicId, on: bool) {
        self.nics[nic.0].promiscuous = on;
    }

    /// The MAC of an attached NIC.
    pub fn mac_of(&self, nic: NicId) -> MacAddr {
        self.nics[nic.0].mac
    }

    /// Queues a frame for transmission from `from`.
    pub fn send(&mut self, now: SimTime, from: NicId, frame: EtherFrame) {
        self.stats.sent += 1;
        if self.in_flight.is_none() {
            self.start(now, from, frame);
        } else {
            self.queue.push_back((from, frame));
        }
    }

    fn start(&mut self, now: SimTime, from: NicId, frame: EtherFrame) {
        let tx_time = self.rate.time_for_bytes(frame.wire_len()) + IFG;
        self.stats.bytes_on_wire += frame.wire_len() as u64;
        self.in_flight = Some((now + tx_time, from, frame));
    }

    /// Time the frame on the wire completes, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.in_flight.as_ref().map(|(t, _, _)| *t)
    }

    /// Completes any transmission due by `now`; returns `(nic, frame)`
    /// deliveries for every NIC that should receive it.
    pub fn advance(&mut self, now: SimTime) -> Vec<(NicId, EtherFrame)> {
        let mut out = Vec::new();
        self.advance_with(now, |nic, frame| out.push((nic, frame.clone())));
        out
    }

    /// Like [`Segment::advance`], but hands each delivery to `deliver` by
    /// reference instead of returning clones, so the caller controls the
    /// copy (e.g. into a recycled frame — the sharded engine's zero-alloc
    /// delivery path).
    pub fn advance_with(&mut self, now: SimTime, mut deliver: impl FnMut(NicId, &EtherFrame)) {
        while let Some((done, _, _)) = &self.in_flight {
            if *done > now {
                break;
            }
            let (done, from, frame) = self.in_flight.take().expect("checked some");
            for (i, nic) in self.nics.iter().enumerate() {
                if NicId(i) == from {
                    continue;
                }
                if nic.promiscuous || frame.dst.is_broadcast() || frame.dst == nic.mac {
                    self.stats.delivered += 1;
                    deliver(NicId(i), &frame);
                }
            }
            if let Some((next_from, next_frame)) = self.queue.pop_front() {
                self.start(done, next_from, next_frame);
            }
        }
    }

    /// Frames queued or on the wire.
    pub fn backlog(&self) -> usize {
        self.queue.len() + usize::from(self.in_flight.is_some())
    }

    /// Segment statistics.
    pub fn stats(&self) -> SegmentStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_to(dst: MacAddr, src: MacAddr, len: usize) -> EtherFrame {
        EtherFrame::new(dst, src, EtherType::Ipv4, vec![0xAA; len])
    }

    fn drain(seg: &mut Segment) -> Vec<(NicId, EtherFrame)> {
        let mut out = Vec::new();
        while let Some(t) = seg.next_deadline() {
            out.extend(seg.advance(t));
        }
        out
    }

    #[test]
    fn frame_codec_roundtrip() {
        let f = frame_to(MacAddr::local(2), MacAddr::local(1), 100);
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.wire_len());
        let back = EtherFrame::decode(&bytes).unwrap();
        assert_eq!(back.dst, f.dst);
        assert_eq!(back.src, f.src);
        assert_eq!(back.ethertype, f.ethertype);
        assert_eq!(&back.payload[..100], &f.payload[..]);
    }

    #[test]
    fn short_payload_is_padded() {
        let f = frame_to(MacAddr::local(2), MacAddr::local(1), 10);
        assert_eq!(f.wire_len(), 60);
        let back = EtherFrame::decode(&f.encode()).unwrap();
        assert_eq!(back.payload.len(), MIN_PAYLOAD);
    }

    #[test]
    fn decode_rejects_short_and_oversize() {
        assert!(EtherFrame::decode(&[0u8; 10]).is_err());
        let mut big = frame_to(MacAddr::local(2), MacAddr::local(1), 0).encode();
        big.extend(vec![0u8; MTU + 1]);
        assert!(EtherFrame::decode(&big).is_err());
    }

    #[test]
    fn unicast_reaches_only_target() {
        let mut seg = Segment::new(Bandwidth::ETHERNET_10M);
        let a = seg.attach(MacAddr::local(1));
        let b = seg.attach(MacAddr::local(2));
        let _c = seg.attach(MacAddr::local(3));
        seg.send(
            SimTime::ZERO,
            a,
            frame_to(MacAddr::local(2), MacAddr::local(1), 64),
        );
        let got = drain(&mut seg);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, b);
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let mut seg = Segment::new(Bandwidth::ETHERNET_10M);
        let a = seg.attach(MacAddr::local(1));
        let _b = seg.attach(MacAddr::local(2));
        let _c = seg.attach(MacAddr::local(3));
        seg.send(
            SimTime::ZERO,
            a,
            frame_to(MacAddr::BROADCAST, MacAddr::local(1), 64),
        );
        let got = drain(&mut seg);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(nic, _)| *nic != a));
    }

    #[test]
    fn promiscuous_nic_hears_everything() {
        let mut seg = Segment::new(Bandwidth::ETHERNET_10M);
        let a = seg.attach(MacAddr::local(1));
        let _b = seg.attach(MacAddr::local(2));
        let c = seg.attach(MacAddr::local(3));
        seg.set_promiscuous(c, true);
        seg.send(
            SimTime::ZERO,
            a,
            frame_to(MacAddr::local(2), MacAddr::local(1), 64),
        );
        let got = drain(&mut seg);
        assert_eq!(got.len(), 2);
        assert!(got.iter().any(|(nic, _)| *nic == c));
    }

    #[test]
    fn serialization_delay_matches_rate() {
        let mut seg = Segment::new(Bandwidth::ETHERNET_10M);
        let a = seg.attach(MacAddr::local(1));
        let _b = seg.attach(MacAddr::local(2));
        // 1500B payload -> 1514B wire -> 1.2112ms + 10us IFG.
        seg.send(
            SimTime::ZERO,
            a,
            frame_to(MacAddr::local(2), MacAddr::local(1), 1500),
        );
        let t = seg.next_deadline().unwrap();
        assert_eq!(
            t,
            SimTime::ZERO + Bandwidth::ETHERNET_10M.time_for_bytes(1514) + IFG
        );
    }

    #[test]
    fn fifo_ordering_under_contention() {
        let mut seg = Segment::new(Bandwidth::ETHERNET_10M);
        let a = seg.attach(MacAddr::local(1));
        let b = seg.attach(MacAddr::local(2));
        let _sink = seg.attach(MacAddr::local(3));
        let f1 = EtherFrame::new(
            MacAddr::local(3),
            MacAddr::local(1),
            EtherType::Ipv4,
            vec![1],
        );
        let f2 = EtherFrame::new(
            MacAddr::local(3),
            MacAddr::local(2),
            EtherType::Ipv4,
            vec![2],
        );
        seg.send(SimTime::ZERO, a, f1);
        seg.send(SimTime::ZERO, b, f2);
        assert_eq!(seg.backlog(), 2);
        let got = drain(&mut seg);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1.payload[0], 1);
        assert_eq!(got[1].1.payload[0], 2);
        assert_eq!(seg.backlog(), 0);
    }

    #[test]
    fn stats_account_traffic() {
        let mut seg = Segment::new(Bandwidth::ETHERNET_10M);
        let a = seg.attach(MacAddr::local(1));
        let _b = seg.attach(MacAddr::local(2));
        seg.send(
            SimTime::ZERO,
            a,
            frame_to(MacAddr::BROADCAST, MacAddr::local(1), 64),
        );
        drain(&mut seg);
        let s = seg.stats();
        assert_eq!(s.sent, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.bytes_on_wire, 78);
    }

    #[test]
    fn sender_does_not_hear_own_broadcast() {
        let mut seg = Segment::new(Bandwidth::ETHERNET_10M);
        let a = seg.attach(MacAddr::local(1));
        seg.send(
            SimTime::ZERO,
            a,
            frame_to(MacAddr::BROADCAST, MacAddr::local(1), 64),
        );
        assert!(drain(&mut seg).is_empty());
    }

    #[test]
    fn ethertype_codes() {
        assert_eq!(EtherType::Ipv4.code(), 0x0800);
        assert_eq!(EtherType::from_code(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_code(0x1234), EtherType::Other(0x1234));
    }
}
