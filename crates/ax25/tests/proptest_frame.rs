//! Property tests for the AX.25 frame codec and the digipeater rule.

use ax25::addr::{Ax25Addr, Callsign};
use ax25::digipeat::{decide, DigipeatDecision};
use ax25::fcs::{append_fcs, verify_and_strip_fcs};
use ax25::frame::{Frame, FrameHeader, FrameKind, Pid};
use ax25::MAX_INFO_LEN;
use proptest::prelude::*;

fn arb_callsign() -> impl Strategy<Value = Callsign> {
    "[A-Z0-9]{1,6}".prop_map(|s| Callsign::new(&s).expect("generated valid"))
}

fn arb_addr() -> impl Strategy<Value = Ax25Addr> {
    (arb_callsign(), 0u8..16).prop_map(|(call, ssid)| Ax25Addr::new(call, ssid).unwrap())
}

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        (0u8..8, 0u8..8, any::<bool>()).prop_map(|(ns, nr, poll)| FrameKind::I { ns, nr, poll }),
        (0u8..8, any::<bool>()).prop_map(|(nr, pf)| FrameKind::Rr { nr, pf }),
        (0u8..8, any::<bool>()).prop_map(|(nr, pf)| FrameKind::Rnr { nr, pf }),
        (0u8..8, any::<bool>()).prop_map(|(nr, pf)| FrameKind::Rej { nr, pf }),
        any::<bool>().prop_map(|poll| FrameKind::Sabm { poll }),
        any::<bool>().prop_map(|poll| FrameKind::Disc { poll }),
        any::<bool>().prop_map(|fin| FrameKind::Ua { fin }),
        any::<bool>().prop_map(|fin| FrameKind::Dm { fin }),
        any::<bool>().prop_map(|pf| FrameKind::Ui { pf }),
    ]
}

prop_compose! {
    fn arb_frame()(
        dest in arb_addr(),
        source in arb_addr(),
        digis in proptest::collection::vec((arb_addr(), any::<bool>()), 0..8),
        command in any::<bool>(),
        kind in arb_kind(),
        // Canonicalize raw codes so e.g. Other(0xCC) becomes Ip, matching
        // what any decode will produce.
        pid in (0u8..=255).prop_map(Pid::from_code),
        info in proptest::collection::vec(any::<u8>(), 0..MAX_INFO_LEN),
    ) -> Frame {
        let mut f = Frame {
            dest,
            source,
            digipeaters: Vec::new(),
            command,
            kind,
            pid: kind.has_pid().then_some(pid),
            info: if kind.has_pid() { info } else { Vec::new() },
        };
        f = f.via(&digis.iter().map(|(a, _)| *a).collect::<Vec<_>>());
        for (d, (_, rep)) in f.digipeaters.iter_mut().zip(&digis) {
            d.repeated = *rep;
        }
        f
    }
}

proptest! {
    /// Every structurally valid frame round-trips through encode/decode.
    #[test]
    fn frame_roundtrip(frame in arb_frame()) {
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.encoded_len());
        let back = Frame::decode(&bytes).expect("decode");
        prop_assert_eq!(back, frame);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Frame::decode(&bytes);
    }

    /// The allocation-free header peek accepts exactly the byte strings the
    /// full decode accepts, and its fields agree with the decoded frame.
    #[test]
    fn peek_is_consistent_with_decode(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        match (FrameHeader::peek(&bytes), Frame::decode(&bytes)) {
            (Ok(hdr), Ok(frame)) => {
                prop_assert_eq!(hdr.dest, frame.dest);
                prop_assert_eq!(hdr.source, frame.source);
                prop_assert_eq!(hdr.command, frame.command);
                prop_assert_eq!(hdr.kind, frame.kind);
                prop_assert_eq!(hdr.pid, frame.pid);
                prop_assert_eq!(hdr.num_digipeaters, frame.digipeaters.len());
                prop_assert_eq!(hdr.fully_repeated, frame.fully_repeated());
                prop_assert_eq!(&bytes[hdr.info_start..], &frame.info[..]);
            }
            (Err(pe), Err(de)) => prop_assert_eq!(pe, de),
            (p, d) => {
                return Err(TestCaseError::fail(format!(
                    "peek/decode disagree: peek={p:?} decode={}", d.is_ok()
                )));
            }
        }
    }

    /// Peek on a round-tripped frame sees the fields that went in.
    #[test]
    fn peek_sees_encoded_fields(frame in arb_frame()) {
        let bytes = frame.encode();
        let hdr = FrameHeader::peek(&bytes).expect("peek");
        prop_assert_eq!(hdr.dest, frame.dest);
        prop_assert_eq!(hdr.fully_repeated, frame.fully_repeated());
    }

    /// FCS round-trips and any single-byte change is caught.
    #[test]
    fn fcs_detects_single_byte_change(
        mut body in proptest::collection::vec(any::<u8>(), 1..300),
        idx in any::<proptest::sample::Index>(),
        delta in 1u8..=255,
    ) {
        append_fcs(&mut body);
        let framed = body.clone();
        prop_assert!(verify_and_strip_fcs(&framed).is_some());
        let i = idx.index(framed.len());
        let mut corrupt = framed.clone();
        corrupt[i] = corrupt[i].wrapping_add(delta);
        prop_assert!(verify_and_strip_fcs(&corrupt).is_none());
    }

    /// A digipeater chain walked in order always ends deliverable, and
    /// each hop flips exactly one H bit.
    #[test]
    fn digipeat_chain_progresses(hops in proptest::collection::vec(arb_addr(), 1..8)) {
        // De-duplicate: repeated digi addresses would legitimately match
        // an earlier pending entry.
        let mut unique = hops.clone();
        unique.sort();
        unique.dedup();
        prop_assume!(unique.len() == hops.len());
        let src = Ax25Addr::parse_or_panic("SRC");
        let dst = Ax25Addr::parse_or_panic("DST");
        prop_assume!(!hops.contains(&src) && !hops.contains(&dst));
        let mut f = Frame::ui(dst, src, Pid::Text, vec![]).via(&hops);
        for (i, hop) in hops.iter().enumerate() {
            prop_assert!(!f.fully_repeated());
            match decide(&f, *hop) {
                DigipeatDecision::Repeat(out) => {
                    let flipped = out
                        .digipeaters
                        .iter()
                        .zip(&f.digipeaters)
                        .filter(|(a, b)| a.repeated != b.repeated)
                        .count();
                    prop_assert_eq!(flipped, 1, "hop {} flips one bit", i);
                    f = *out;
                }
                other => return Err(TestCaseError::fail(format!("hop {i}: {other:?}"))),
            }
        }
        prop_assert!(f.fully_repeated());
        prop_assert_eq!(decide(&f, dst), DigipeatDecision::Deliverable);
    }
}
