//! Property test: the AX.25 connected-mode machine delivers data in
//! order, exactly once, across an arbitrarily lossy link — the guarantee
//! every keyboard user and BBS in the paper's network relied on.

use ax25::addr::Ax25Addr;
use ax25::conn::{ConnConfig, ConnEvent, Connection};
use ax25::frame::Frame;
use proptest::prelude::*;
use sim::{SimRng, SimTime};
use std::collections::VecDeque;

fn push_actions(
    events: Vec<ConnEvent>,
    wire: &mut VecDeque<Frame>,
    received: &mut Vec<u8>,
    established: &mut bool,
    released: &mut bool,
) {
    for ev in events {
        match ev {
            ConnEvent::SendFrame(f) => wire.push_back(f),
            ConnEvent::Data(d) => received.extend(d),
            ConnEvent::Established => *established = true,
            ConnEvent::Released(_) => *released = true,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lossy_link_preserves_order_and_exactness(
        seed in any::<u64>(),
        loss in 0.0f64..0.35,
        payload_len in 1usize..2000,
    ) {
        let a_addr = Ax25Addr::parse_or_panic("ALICE");
        let b_addr = Ax25Addr::parse_or_panic("BOB");
        let mut rng = SimRng::seed_from(seed);
        let cfg = ConnConfig::default();
        let mut alice = Connection::new(a_addr, b_addr, cfg);
        let mut bob = Connection::new(b_addr, a_addr, cfg);

        let data: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let mut to_bob: VecDeque<Frame> = VecDeque::new();
        let mut to_alice: VecDeque<Frame> = VecDeque::new();
        let mut received = Vec::new();
        let mut a_up = false;
        let mut b_up = false;
        let mut a_down = false;
        let mut b_down = false;
        let mut now = SimTime::ZERO;
        let mut queued = 0usize;

        push_actions(alice.connect(now), &mut to_bob, &mut received, &mut a_up, &mut a_down);

        for _ in 0..400_000 {
            if received.len() >= data.len() {
                break;
            }
            if let Some(f) = to_bob.pop_front() {
                if !rng.chance(loss) {
                    let ev = bob.on_frame(now, &f);
                    push_actions(ev, &mut to_alice, &mut received, &mut b_up, &mut b_down);
                }
                continue;
            }
            if let Some(f) = to_alice.pop_front() {
                if !rng.chance(loss) {
                    let mut sink = Vec::new();
                    let ev = alice.on_frame(now, &f);
                    push_actions(ev, &mut to_bob, &mut sink, &mut a_up, &mut a_down);
                    prop_assert!(sink.is_empty(), "alice sends, never receives data here");
                }
                continue;
            }
            // Feed more data once connected, then rely on timers.
            if a_up && queued < data.len() {
                let hi = (queued + 256).min(data.len());
                let ev = alice.send(now, &data[queued..hi]);
                queued = hi;
                push_actions(ev, &mut to_bob, &mut received, &mut a_up, &mut a_down);
                continue;
            }
            let next = [alice.next_deadline(), bob.next_deadline()]
                .into_iter()
                .flatten()
                .min();
            let Some(t) = next else { break };
            now = now.max(t);
            let ev = alice.on_timer(now);
            push_actions(ev, &mut to_bob, &mut received, &mut a_up, &mut a_down);
            let ev = bob.on_timer(now);
            push_actions(ev, &mut to_alice, &mut received, &mut b_up, &mut b_down);
            prop_assert!(!a_down, "link must not die under N2={} retries at {loss:.2} loss", 10);
        }
        prop_assert_eq!(&received[..], &data[..], "in-order exactly-once delivery");
    }
}
